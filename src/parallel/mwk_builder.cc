#include "parallel/mwk_builder.h"

#include <atomic>

#include "parallel/level_engine.h"
#include "parallel/mwk_level.h"

namespace smptree {

Status BuildTreeMwk(BuildContext* ctx, std::vector<LeafTask> level) {
  const int threads = ctx->options().num_threads;
  const int num_attrs = ctx->data().num_attrs();
  const size_t window = static_cast<size_t>(ctx->options().window);
  BuildCounters* counters = ctx->counters();

  Barrier barrier(threads);
  ErrorSink sink;
  std::atomic<bool> done{false};
  // Release-store paired with the workers' acquire loads of `done`
  // (pre-spawn here, so thread creation also orders it; the release
  // keeps the pairing uniform with the in-loop store).
  if (level.empty()) done.store(true, std::memory_order_release);

  MwkLevelState state;
  if (!level.empty()) state.Arm(level, num_attrs);

  auto worker = [&](int tid) {
    TraceThreadBinding trace(ctx->trace(), tid);
    GiniScratch scratch;
    int level_no = 0;
    while (!done.load(std::memory_order_acquire)) {
      // One level: the E/W moving-window pipeline plus the gated split
      // phase; no barriers inside (paper section 3.2.3).
      state.RunLevel(ctx, &level, ctx->storage(), window, ctx->num_slots(),
                     &scratch, &sink, level_no);
      TimedBarrierWait(&barrier, counters);

      // Level transition (storage swap) by the master, then release
      // everyone into the next level.
      if (tid == 0) {
        if (!sink.aborted()) {
          sink.Record(ctx->storage()->AdvanceLevel());
          level = ctx->CollectNextLevel(level);
          if (!level.empty()) ctx->set_levels_built(ctx->levels_built() + 1);
        }
        if (sink.aborted() || level.empty()) {
          done.store(true, std::memory_order_release);
        } else {
          state.Arm(level, num_attrs);
        }
      }
      TimedBarrierWait(&barrier, counters);
      ++level_no;
    }
  };

  return RunThreadTeam(threads, &sink, worker);
}

}  // namespace smptree
