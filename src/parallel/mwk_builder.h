// MWK, Moving-Window-K (paper section 3.2.3): the block barrier of FWK is
// replaced by a per-leaf condition variable. A processor may start
// evaluating leaf i as soon as leaf i-K has been processed (the two share a
// file/state slot), so parallelism flows across block boundaries -- the
// window moves. The last processor to finish a leaf's evaluations builds its
// probe and signals the condition variable.
//
// Within a level there are no barriers at all; the split phase starts behind
// a gate that opens when the last leaf's probe is ready, and one barrier
// pair remains at the level transition (storage swap).

#ifndef SMPTREE_PARALLEL_MWK_BUILDER_H_
#define SMPTREE_PARALLEL_MWK_BUILDER_H_

#include <vector>

#include "core/builder_context.h"

namespace smptree {

Status BuildTreeMwk(BuildContext* ctx, std::vector<LeafTask> level);

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_MWK_BUILDER_H_
