// Record data parallelism (REC): the parallelization used by SPRINT's
// distributed-memory implementation on the IBM SP, where every processor
// owns ~1/P of each attribute list. The paper argues (section 3.1) that this
// scheme "is not well suited to SMP systems since it is likely to cause
// excessive synchronization, and replication of data structures" -- this
// builder exists to measure exactly that claim (the ablation_algorithms
// benchmark).
//
// Per (leaf, attribute) the evaluation runs in four barrier-separated
// sub-phases: shared read, per-chunk partial histograms (the replicated
// structures), prefix merge by the master, and the per-chunk candidate sweep
// with a final reduction. W and S then proceed as in BASIC.

#ifndef SMPTREE_PARALLEL_RECORD_PARALLEL_H_
#define SMPTREE_PARALLEL_RECORD_PARALLEL_H_

#include <vector>

#include "core/builder_context.h"

namespace smptree {

Status BuildTreeRecordParallel(BuildContext* ctx, std::vector<LeafTask> level);

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_RECORD_PARALLEL_H_
