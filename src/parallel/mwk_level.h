// Reusable Moving-Window-K level executor. One MwkLevelState drives the
// E/W pipeline (per-leaf condition variables, last-finisher probe
// construction), the split-phase gate, and the dynamically scheduled S for
// ONE tree level, executed cooperatively by any team of threads.
//
// Used by BuildTreeMwk (the whole build is one team) and by SUBTREE when
// MWK is selected as the per-group subroutine (paper section 3.4: "In fact
// we can also use FWK or MWK as the subroutine").
//
// Protocol per level:
//   one thread calls Arm(...) while the team is quiescent;
//   every team member then calls RunLevel(...) exactly once;
//   the caller synchronizes the team (its own barrier) before the next Arm.
//
// Slot-ordering invariant (enforced by the debug checker): leaf i of the
// level shares its slot file with leaf i-K (the same slot of the previous
// window block), so leaf i may only be evaluated after leaf i-K was
// processed -- its W complete and its slot file free for reuse.

#ifndef SMPTREE_PARALLEL_MWK_LEVEL_H_
#define SMPTREE_PARALLEL_MWK_LEVEL_H_

#include <atomic>
#include <memory>
#include <vector>

#include "core/builder_context.h"
#include "parallel/level_engine.h"
#include "parallel/scheduler.h"
#include "util/debug_checks.h"
#include "util/mutex.h"

namespace smptree {

/// Per-level pipeline state for the moving window: which leaves have been
/// processed (W complete) and the gate the split phase waits behind.
class MwkPipeline {
 public:
  void Arm(size_t leaves) EXCLUDES(mu_);

  /// Blocks until leaf `idx` has been processed (its W is complete). Only
  /// an actual blocked wait is accounted into `counters`.
  void WaitForLeaf(size_t idx, BuildCounters* counters) EXCLUDES(mu_);

  /// Marks leaf `idx` processed; returns true for the level's last leaf.
  /// The caller owning that `true` must call OpenGate() after laying out
  /// the children.
  bool MarkDone(size_t idx) EXCLUDES(mu_);

  void OpenGate() EXCLUDES(mu_);
  void WaitGate(BuildCounters* counters) EXCLUDES(mu_);

  /// Debug-only (no-op in release): asserts leaf `idx` was processed, i.e.
  /// its slot file may be reused by the leaf one window-block later.
  void AssertProcessed(size_t idx) EXCLUDES(mu_);

 private:
  Mutex mu_;
  CondVar cv_;
  std::vector<char> w_done_ GUARDED_BY(mu_);
  size_t pending_ GUARDED_BY(mu_) = 0;
  bool gate_open_ GUARDED_BY(mu_) = false;
};

/// One MWK level, executable by a cooperating team of threads.
class MwkLevelState {
 public:
  /// Prepares for a level of `level->size()` leaves. Single-threaded
  /// (between the caller's team barriers).
  void Arm(const std::vector<LeafTask>& level, int num_attrs);

  /// Runs this thread's share of the level: the E/W pipeline with window
  /// `window`, then the split phase over `storage`. `num_slots` is the slot
  /// count used for child layout; `depth` tags the level's trace spans (-1
  /// when unknown). Every team member must call this exactly once per Arm.
  void RunLevel(BuildContext* ctx, std::vector<LeafTask>* level,
                LevelStorage* storage, size_t window, int num_slots,
                GiniScratch* scratch, ErrorSink* sink, int depth = -1);

 private:
  MwkPipeline pipeline_;
  std::vector<std::unique_ptr<std::atomic<int>>> remaining_;
  DynamicScheduler e_sched_;
  DynamicScheduler s_sched_;
  int num_attrs_ = 0;
};

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_MWK_LEVEL_H_
