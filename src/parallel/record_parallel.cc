#include "parallel/record_parallel.h"

#include <atomic>

#include "parallel/level_engine.h"
#include "parallel/scheduler.h"

namespace smptree {

namespace {

/// Shared state for the record-parallel evaluation of one (leaf, attribute).
struct RecScratch {
  std::vector<AttrRecord> records;          // the leaf's list, shared
  std::vector<ClassHistogram> chunk_hist;   // per-thread partials
  std::vector<CountMatrix> chunk_matrix;    // per-thread partials (categorical)
  std::vector<SplitCandidate> chunk_best;   // per-thread local winners
  std::vector<ClassHistogram> prefix;       // C_below at each chunk start

  void Resize(int threads, int num_classes) {
    chunk_hist.assign(threads, ClassHistogram(num_classes));
    chunk_matrix.assign(threads, CountMatrix());
    chunk_best.assign(threads, SplitCandidate());
    prefix.assign(threads, ClassHistogram(num_classes));
  }
};

/// [begin, end) of thread `t`'s chunk of `n` records.
std::pair<size_t, size_t> Chunk(size_t n, int threads, int t) {
  const size_t base = n / threads;
  const size_t extra = n % threads;
  const size_t begin = base * t + std::min<size_t>(t, extra);
  const size_t len = base + (static_cast<size_t>(t) < extra ? 1 : 0);
  return {begin, begin + len};
}

}  // namespace

Status BuildTreeRecordParallel(BuildContext* ctx, std::vector<LeafTask> level) {
  const int threads = ctx->options().num_threads;
  const int num_attrs = ctx->data().num_attrs();
  const int num_classes = ctx->data().num_classes();
  const Schema& schema = ctx->data().schema();
  BuildCounters* counters = ctx->counters();

  Barrier barrier(threads);
  ErrorSink sink;
  std::atomic<bool> done{false};
  // Release-store paired with the workers' acquire loads of `done`
  // (pre-spawn here, so thread creation also orders it; the release
  // keeps the pairing uniform with the in-loop store).
  if (level.empty()) done.store(true, std::memory_order_release);

  RecScratch shared;
  DynamicScheduler s_sched;
  GiniScratch master_gini;

  auto worker = [&](int tid) {
    GiniScratch gini;
    while (!done.load(std::memory_order_acquire)) {
      // E: every (leaf, attribute) is evaluated by ALL processors together,
      // each owning ~1/P of the records.
      for (size_t li = 0; li < level.size(); ++li) {
        LeafTask& leaf = level[li];
        for (int attr = 0; attr < num_attrs; ++attr) {
          const bool categorical = schema.attr(attr).is_categorical();
          // (a) master materializes the shared list.
          if (tid == 0 && !sink.aborted()) {
            SegmentBuffer buf;
            Status s = ctx->storage()->ReadSegment(attr, leaf.seg, &buf);
            sink.Record(s);
            if (s.ok()) {
              shared.records.assign(buf.records().begin(),
                                    buf.records().end());
              shared.Resize(threads, num_classes);
              counters->records_scanned.fetch_add(leaf.seg.count,
                                                  std::memory_order_relaxed);
            }
          }
          TimedBarrierWait(&barrier, counters);
          if (sink.aborted()) {
            // Match the four remaining synchronization points of the
            // non-aborted path so peers cannot deadlock.
            for (int b = 0; b < 4; ++b) TimedBarrierWait(&barrier, counters);
            continue;
          }
          const auto [begin, end] =
              Chunk(shared.records.size(), threads, tid);
          // (b) per-chunk partial statistics (replicated structures).
          if (categorical) {
            CountMatrix& m = shared.chunk_matrix[tid];
            m.Reset(schema.attr(attr).cardinality, num_classes);
            for (size_t i = begin; i < end; ++i) {
              m.Add(shared.records[i].value.cat, shared.records[i].label);
            }
          } else {
            ClassHistogram& h = shared.chunk_hist[tid];
            h.Reset(num_classes);
            for (size_t i = begin; i < end; ++i) {
              h.Add(shared.records[i].label);
            }
          }
          TimedBarrierWait(&barrier, counters);
          // (c) master merges: prefix histograms (continuous) or the full
          // count matrix (categorical, evaluated centrally).
          if (tid == 0) {
            if (categorical) {
              // The partial matrices model the replicated structures; the
              // subset search itself is inherently central, so the master
              // evaluates it (the merge is implicit in the shared list).
              leaf.candidates[attr] = EvaluateCategoricalAttr(
                  attr, shared.records, leaf.hist,
                  schema.attr(attr).cardinality, ctx->options().gini,
                  &master_gini);
            } else {
              ClassHistogram below(num_classes);
              for (int t = 0; t < threads; ++t) {
                shared.prefix[t] = below;
                below.Merge(shared.chunk_hist[t]);
              }
            }
          }
          TimedBarrierWait(&barrier, counters);
          // (d) continuous: per-chunk sweep from the prefix C_below, then
          // reduction by the master.
          if (!categorical) {
            SplitCandidate best;
            ClassHistogram below = shared.prefix[tid];
            ClassHistogram above = leaf.hist;
            above.Subtract(below);
            for (size_t i = begin; i < end; ++i) {
              const AttrRecord& rec = shared.records[i];
              below.Add(rec.label);
              above.Remove(rec.label);
              if (i + 1 >= shared.records.size()) break;
              const float v = rec.value.f;
              const float next = shared.records[i + 1].value.f;
              if (v == next) continue;
              SplitCandidate candidate;
              candidate.test.attr = attr;
              candidate.test.categorical = false;
              const float mid = v + (next - v) * 0.5f;
              candidate.test.threshold = mid > v ? mid : next;
              candidate.gini = SplitImpurity(below, above, ctx->options().gini.criterion);
              candidate.left_count = static_cast<int64_t>(i) + 1;
              candidate.right_count =
                  static_cast<int64_t>(shared.records.size() - i) - 1;
              if (candidate.BetterThan(best)) best = candidate;
            }
            shared.chunk_best[tid] = best;
            TimedBarrierWait(&barrier, counters);
            if (tid == 0) {
              SplitCandidate reduced;
              for (int t = 0; t < threads; ++t) {
                if (shared.chunk_best[t].BetterThan(reduced)) {
                  reduced = shared.chunk_best[t];
                }
              }
              leaf.candidates[attr] = reduced;
            }
            TimedBarrierWait(&barrier, counters);
          } else {
            TimedBarrierWait(&barrier, counters);
            TimedBarrierWait(&barrier, counters);
          }
          counters->attr_tasks.fetch_add(1, std::memory_order_relaxed);
        }
      }
      TimedBarrierWait(&barrier, counters);

      // W and S as in BASIC.
      if (tid == 0 && !sink.aborted()) {
        for (LeafTask& leaf : level) {
          Status s = ctx->RunW(&leaf);
          sink.Record(s);
          if (!s.ok()) break;
        }
        ctx->AssignChildSlots(&level, ctx->num_slots());
        s_sched.Reset(num_attrs);
      }
      TimedBarrierWait(&barrier, counters);
      if (!sink.aborted()) {
        for (int64_t a = s_sched.Next(); a >= 0; a = s_sched.Next()) {
          sink.Record(ctx->SplitAttribute(static_cast<int>(a), level));
          if (sink.aborted()) break;
        }
      }
      TimedBarrierWait(&barrier, counters);

      if (tid == 0) {
        if (!sink.aborted()) {
          sink.Record(ctx->storage()->AdvanceLevel());
          level = ctx->CollectNextLevel(level);
          if (!level.empty()) ctx->set_levels_built(ctx->levels_built() + 1);
        }
        if (sink.aborted() || level.empty()) {
          done.store(true, std::memory_order_release);
        }
      }
      TimedBarrierWait(&barrier, counters);
    }
  };

  return RunThreadTeam(threads, &sink, worker);
}

}  // namespace smptree
