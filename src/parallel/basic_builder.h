// BASIC (paper section 3.2.1): attribute data parallelism with barriers.
// Per level: dynamically scheduled E over attributes; barrier; the master
// alone finds winners and builds the probe (the scheme's known serial
// bottleneck); barrier; dynamically scheduled S over attributes; barrier.

#ifndef SMPTREE_PARALLEL_BASIC_BUILDER_H_
#define SMPTREE_PARALLEL_BASIC_BUILDER_H_

#include <vector>

#include "core/builder_context.h"

namespace smptree {

Status BuildTreeBasic(BuildContext* ctx, std::vector<LeafTask> level);

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_BASIC_BUILDER_H_
