// SUBTREE (paper section 3.3): dynamic subtree task parallelism. All
// processors start as one group on the root. After each level a group's
// master collects the new leaf frontier, grabs any processors parked in the
// FREE queue, and either
//   * dissolves the group (empty frontier -> everyone joins the FREE queue),
//   * keeps the group together (one leaf left, or one processor), or
//   * splits the processors and the leaves into two child groups that then
//     proceed independently.
// Within a group each level runs the BASIC scheme (dynamic attribute E,
// master W, dynamic attribute S) using the group's own barrier and its own
// attribute-file sets; a freshly split group borrows its parent's current
// file set for its first level (hence the paper's "up to 2P files per
// attribute"). The probe and the tree are global: groups own disjoint tid
// ranges and distinct nodes.

#ifndef SMPTREE_PARALLEL_SUBTREE_BUILDER_H_
#define SMPTREE_PARALLEL_SUBTREE_BUILDER_H_

#include <vector>

#include "core/builder_context.h"

namespace smptree {

Status BuildTreeSubtree(BuildContext* ctx, std::vector<LeafTask> level);

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_SUBTREE_BUILDER_H_
