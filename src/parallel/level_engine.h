// Shared machinery for the SMP builders: a thread team with first-error
// capture, and helpers for timing blocked waits into the build counters.
//
// Error discipline inside the builders: a thread that hits an error records
// it in the ErrorSink and *keeps participating in every synchronization
// point* of the current level (otherwise peers would deadlock at barriers);
// all threads observe `aborted()` at the next level boundary and unwind
// together.

#ifndef SMPTREE_PARALLEL_LEVEL_ENGINE_H_
#define SMPTREE_PARALLEL_LEVEL_ENGINE_H_

#include <functional>
#include <mutex>

#include "util/barrier.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"

namespace smptree {

/// First-error-wins status collector shared by a thread team.
class ErrorSink {
 public:
  /// Records `status` if it is the first failure. OK statuses are ignored.
  void Record(const Status& status);

  /// True once any thread recorded a failure.
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// The first recorded failure, or OK.
  Status status() const;

 private:
  mutable std::mutex mutex_;
  Status first_;
  std::atomic<bool> aborted_{false};
};

/// Runs `body(thread_id)` on `num_threads` std::threads (thread 0 runs on
/// the calling thread) and returns the sink's verdict. `body` must not
/// throw; failures go through the sink.
Status RunThreadTeam(int num_threads, ErrorSink* sink,
                     const std::function<void(int)>& body);

/// Barrier::Wait wrapper that accounts the blocked time and count into the
/// build counters.
bool TimedBarrierWait(Barrier* barrier, BuildCounters* counters);

/// Measures one blocked wait (condition variables) into the counters.
class WaitTimer {
 public:
  explicit WaitTimer(BuildCounters* counters) : counters_(counters) {}
  ~WaitTimer() {
    counters_->condvar_waits.fetch_add(1, std::memory_order_relaxed);
    counters_->wait_nanos.fetch_add(
        static_cast<uint64_t>(timer_.Seconds() * 1e9),
        std::memory_order_relaxed);
  }

 private:
  BuildCounters* counters_;
  Timer timer_;
};

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_LEVEL_ENGINE_H_
