// Shared machinery for the SMP builders: a thread team with first-error
// capture, and helpers for timing blocked waits into the build counters.
//
// Error discipline inside the builders: a thread that hits an error records
// it in the ErrorSink and *keeps participating in every synchronization
// point* of the current level (otherwise peers would deadlock at barriers);
// all threads observe `aborted()` at the next level boundary and unwind
// together.

#ifndef SMPTREE_PARALLEL_LEVEL_ENGINE_H_
#define SMPTREE_PARALLEL_LEVEL_ENGINE_H_

#include <functional>

#include "util/barrier.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/timer.h"
#include "util/trace.h"

namespace smptree {

/// First-error-wins status collector shared by a thread team.
class ErrorSink {
 public:
  /// Records `status` if it is the first failure. OK statuses are ignored.
  void Record(const Status& status) EXCLUDES(mutex_);

  /// True once any thread recorded a failure. The release store inside
  /// Record() pairs with this acquire load, so a peer that observes
  /// aborted() == true also observes every write the failing thread made
  /// before recording.
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  /// The first recorded failure, or OK.
  Status status() const EXCLUDES(mutex_);

 private:
  mutable Mutex mutex_;
  Status first_ GUARDED_BY(mutex_);
  std::atomic<bool> aborted_{false};
};

/// Runs `body(thread_id)` on `num_threads` std::threads (thread 0 runs on
/// the calling thread) and returns the sink's verdict. `body` must not
/// throw; failures go through the sink.
Status RunThreadTeam(int num_threads, ErrorSink* sink,
                     const std::function<void(int)>& body);

/// Barrier::Wait wrapper that accounts the blocked time and count into the
/// build counters.
bool TimedBarrierWait(Barrier* barrier, BuildCounters* counters);

/// Accounts one *actual* blocked condition-variable wait into the counters.
/// Construct it only after the wait predicate was checked false while
/// holding the lock -- at that point the upcoming CondVar::Wait is
/// guaranteed to block, because the predicate can only flip under the same
/// lock. The fast path where the predicate is already true must not create
/// a WaitTimer (and therefore records nothing):
///
///   MutexLock lock(mu_);
///   if (!ready_) {
///     WaitTimer wt(counters);
///     while (!ready_) cv_.Wait(mu_);
///   }
///
/// `what` names the wait in the trace ("leaf_wait", "gate_wait",
/// "free_idle", ...; must be a string literal) and `level` tags it with the
/// tree level when known. Besides wait_nanos, the blocked time is mirrored
/// into the calling thread's ledger (AddThreadBlockedNanos) so an enclosing
/// PhaseTimer reports compute-only time.
class WaitTimer {
 public:
  explicit WaitTimer(BuildCounters* counters, const char* what = "cv_wait",
                     int level = -1)
      : counters_(counters), span_(what, "wait", level) {}
  ~WaitTimer() {
    const uint64_t nanos = static_cast<uint64_t>(timer_.Seconds() * 1e9);
    debug::SharedScope accumulating(counters_->reset_check);
    counters_->condvar_waits.fetch_add(1, std::memory_order_relaxed);
    counters_->wait_nanos.fetch_add(nanos, std::memory_order_relaxed);
    AddThreadBlockedNanos(nanos);
  }

  WaitTimer(const WaitTimer&) = delete;
  WaitTimer& operator=(const WaitTimer&) = delete;

 private:
  BuildCounters* counters_;
  TraceSpan span_;
  Timer timer_;
};

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_LEVEL_ENGINE_H_
