#include "parallel/mwk_level.h"

namespace smptree {

void MwkPipeline::Arm(size_t leaves) {
  MutexLock lock(mu_);
  SMPTREE_DCHECK(pending_ == 0,
                 "MwkPipeline re-armed while leaves of the previous level "
                 "are still unprocessed");
  w_done_.assign(leaves, 0);
  pending_ = leaves;
  // A level with no leaves has no last W-finisher to open the gate.
  gate_open_ = leaves == 0;
}

void MwkPipeline::WaitForLeaf(size_t idx, BuildCounters* counters) {
  MutexLock lock(mu_);
  SMPTREE_DCHECK(idx < w_done_.size(),
                 "MwkPipeline::WaitForLeaf on a leaf index outside the "
                 "armed level");
  if (w_done_[idx]) return;
  WaitTimer wt(counters, "leaf_wait");
  while (!w_done_[idx]) cv_.Wait(mu_);
}

bool MwkPipeline::MarkDone(size_t idx) {
  MutexLock lock(mu_);
  SMPTREE_DCHECK(idx < w_done_.size(),
                 "MwkPipeline::MarkDone on a leaf index outside the armed "
                 "level");
  SMPTREE_DCHECK(!w_done_[idx],
                 "MwkPipeline::MarkDone called twice for the same leaf (two "
                 "threads claimed the last-finisher role)");
  SMPTREE_DCHECK(pending_ > 0,
                 "MwkPipeline::MarkDone after every leaf of the level was "
                 "already processed");
  w_done_[idx] = 1;
  const bool last = --pending_ == 0;
  cv_.NotifyAll();  // wakes WaitForLeaf sleepers; the gate stays shut
  return last;
}

void MwkPipeline::OpenGate() {
  MutexLock lock(mu_);
  SMPTREE_DCHECK(pending_ == 0,
                 "MwkPipeline gate opened before every leaf's W completed");
  SMPTREE_DCHECK(!gate_open_,
                 "MwkPipeline gate opened twice in one level");
  gate_open_ = true;
  cv_.NotifyAll();
}

void MwkPipeline::WaitGate(BuildCounters* counters) {
  MutexLock lock(mu_);
  if (gate_open_) return;
  WaitTimer wt(counters, "gate_wait");
  while (!gate_open_) cv_.Wait(mu_);
}

void MwkPipeline::AssertProcessed(size_t idx) {
#if SMPTREE_DEBUG_CHECKS
  MutexLock lock(mu_);
  SMPTREE_DCHECK(idx < w_done_.size() && w_done_[idx],
                 "MWK slot-ordering violation: a leaf of window block b was "
                 "evaluated before its block b-1 slot sibling was processed");
#else
  (void)idx;
#endif
}

void MwkLevelState::Arm(const std::vector<LeafTask>& level, int num_attrs) {
  num_attrs_ = num_attrs;
  pipeline_.Arm(level.size());
  remaining_.resize(level.size());
  for (auto& r : remaining_) {
    r = std::make_unique<std::atomic<int>>(num_attrs);
  }
  e_sched_.Reset(static_cast<int64_t>(level.size()) * num_attrs);
  s_sched_.Reset(level.empty() ? 0 : num_attrs);
}

void MwkLevelState::RunLevel(BuildContext* ctx, std::vector<LeafTask>* level,
                             LevelStorage* storage, size_t window,
                             int num_slots, GiniScratch* scratch,
                             ErrorSink* sink, int depth) {
  BuildCounters* counters = ctx->counters();

  // E/W pipeline: (leaf, attr) tasks in leaf-major order; before touching
  // leaf i, wait until leaf i-K -- which shares its slot -- was processed.
  // E and W interleave in the moving window, so they share one span.
  {
    TraceSpan span("E+W", "phase", depth, static_cast<int64_t>(level->size()));
    size_t waited_for = 0;  // leaves [0, waited_for) known processed
    for (int64_t task = e_sched_.Next(); task >= 0; task = e_sched_.Next()) {
      const size_t leaf_idx = static_cast<size_t>(task / num_attrs_);
      const int attr = static_cast<int>(task % num_attrs_);
      if (leaf_idx >= window) {
        const size_t dep = leaf_idx - window;
        if (dep >= waited_for) {
          pipeline_.WaitForLeaf(dep, counters);
          waited_for = dep + 1;
        }
        pipeline_.AssertProcessed(dep);
      }
      if (!sink->aborted()) {
        sink->Record(
            ctx->EvaluateLeafAttr(&(*level)[leaf_idx], attr, scratch, storage));
      }
      // Last finisher on the leaf constructs its hash probe and signals the
      // moving window forward.
      if (remaining_[leaf_idx]->fetch_sub(1, std::memory_order_acq_rel) == 1) {
        if (!sink->aborted()) {
          sink->Record(ctx->RunW(&(*level)[leaf_idx], storage));
        }
        if (pipeline_.MarkDone(leaf_idx)) {
          // Last probe of the level: lay out the children and arm the split
          // phase, then release the peers waiting at the gate.
          if (!sink->aborted()) {
            ctx->AssignChildSlots(level, num_slots);
          }
          s_sched_.Reset(num_attrs_);
          pipeline_.OpenGate();
        }
      }
    }
    pipeline_.WaitGate(counters);
  }

  // S: dynamic attribute scheduling (the gate above is the only
  // synchronization separating it from the pipeline).
  if (!sink->aborted()) {
    TraceSpan span("S", "phase", depth);
    for (int64_t a = s_sched_.Next(); a >= 0; a = s_sched_.Next()) {
      sink->Record(ctx->SplitAttribute(static_cast<int>(a), *level, storage));
      if (sink->aborted()) break;
    }
  }
}

}  // namespace smptree
