#include "parallel/level_engine.h"

#include <thread>
#include <vector>

namespace smptree {

void ErrorSink::Record(const Status& status) {
  if (status.ok()) return;
  MutexLock lock(mutex_);
  if (first_.ok()) {
    first_ = status;
    aborted_.store(true, std::memory_order_release);
  }
}

Status ErrorSink::status() const {
  MutexLock lock(mutex_);
  return first_;
}

Status RunThreadTeam(int num_threads, ErrorSink* sink,
                     const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) {
    threads.emplace_back([&body, t] { body(t); });
  }
  body(0);
  for (auto& t : threads) t.join();
  return sink->status();
}

bool TimedBarrierWait(Barrier* barrier, BuildCounters* counters) {
  counters->barrier_waits.fetch_add(1, std::memory_order_relaxed);
  Timer timer;
  const bool serial = barrier->Wait();
  counters->wait_nanos.fetch_add(static_cast<uint64_t>(timer.Seconds() * 1e9),
                                 std::memory_order_relaxed);
  return serial;
}

}  // namespace smptree
