#include "parallel/level_engine.h"

#include <thread>
#include <vector>

namespace smptree {

void ErrorSink::Record(const Status& status) {
  if (status.ok()) return;
  MutexLock lock(mutex_);
  if (first_.ok()) {
    first_ = status;
    aborted_.store(true, std::memory_order_release);
  }
}

Status ErrorSink::status() const {
  MutexLock lock(mutex_);
  return first_;
}

Status RunThreadTeam(int num_threads, ErrorSink* sink,
                     const std::function<void(int)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (int t = 1; t < num_threads; ++t) {
    threads.emplace_back([&body, t] { body(t); });
  }
  body(0);
  for (auto& t : threads) t.join();
  return sink->status();
}

bool TimedBarrierWait(Barrier* barrier, BuildCounters* counters) {
  debug::SharedScope accumulating(counters->reset_check);
  counters->barrier_waits.fetch_add(1, std::memory_order_relaxed);
  bool serial;
  uint64_t nanos;
  {
    TraceSpan span("barrier", "wait");
    Timer timer;
    serial = barrier->Wait();
    nanos = static_cast<uint64_t>(timer.Seconds() * 1e9);
  }
  counters->wait_nanos.fetch_add(nanos, std::memory_order_relaxed);
  // Mirror into the thread ledger so an enclosing PhaseTimer subtracts the
  // blocked time (see the BuildCounters accounting model).
  AddThreadBlockedNanos(nanos);
  return serial;
}

}  // namespace smptree
