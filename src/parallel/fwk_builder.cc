#include "parallel/fwk_builder.h"

#include <atomic>
#include <memory>

#include "parallel/level_engine.h"
#include "parallel/scheduler.h"

namespace smptree {

Status BuildTreeFwk(BuildContext* ctx, std::vector<LeafTask> level) {
  const int threads = ctx->options().num_threads;
  const int num_attrs = ctx->data().num_attrs();
  const int window = ctx->options().window;
  BuildCounters* counters = ctx->counters();

  Barrier barrier(threads);
  ErrorSink sink;
  std::atomic<bool> done{false};
  // Release-store paired with the workers' acquire loads of `done`
  // (pre-spawn here, so thread creation also orders it; the release
  // keeps the pairing uniform with the in-loop store).
  if (level.empty()) done.store(true, std::memory_order_release);

  // Per-leaf countdown of outstanding evaluation tasks; the thread that
  // drops a leaf's count to zero owns its W step.
  std::vector<std::unique_ptr<std::atomic<int>>> remaining;
  auto arm_level = [&] {
    remaining.resize(level.size());
    for (auto& r : remaining) r = std::make_unique<std::atomic<int>>(num_attrs);
  };
  arm_level();

  DynamicScheduler block_sched;  // (leaf-in-block, attr) tasks
  DynamicScheduler s_sched;
  std::atomic<size_t> block_start{0};
  const auto arm_block = [&](size_t start) {
    const size_t block_leaves = std::min<size_t>(window, level.size() - start);
    block_sched.Reset(static_cast<int64_t>(block_leaves) * num_attrs);
  };
  if (!level.empty()) arm_block(0);

  auto worker = [&](int tid) {
    TraceThreadBinding trace(ctx->trace(), tid);
    GiniScratch scratch;
    int level_no = 0;
    while (!done.load(std::memory_order_acquire)) {
      // E (+ pipelined W) over the blocks of this level. E and W interleave
      // within a block, so they share one span.
      {
        TraceSpan span("E+W", "phase", level_no,
                       static_cast<int64_t>(level.size()));
        for (;;) {
          const size_t start = block_start.load(std::memory_order_acquire);
          if (start >= level.size()) break;
          for (int64_t task = block_sched.Next(); task >= 0;
               task = block_sched.Next()) {
            const size_t leaf_idx =
                start + static_cast<size_t>(task / num_attrs);
            const int attr = static_cast<int>(task % num_attrs);
            if (!sink.aborted()) {
              sink.Record(
                  ctx->EvaluateLeafAttr(&level[leaf_idx], attr, &scratch));
            }
            // Last finisher on the leaf constructs its hash probe while peers
            // evaluate the block's remaining leaves (the pipelining).
            if (remaining[leaf_idx]->fetch_sub(1, std::memory_order_acq_rel) ==
                1) {
              if (!sink.aborted()) sink.Record(ctx->RunW(&level[leaf_idx]));
            }
          }
          // One synchronization per K-block (paper: "the work overlap is
          // achieved at the cost of ... one [barrier] for each K-block").
          if (TimedBarrierWait(&barrier, counters)) {
            const size_t next =
                start + std::min<size_t>(window, level.size() - start);
            if (next < level.size()) arm_block(next);
            block_start.store(next, std::memory_order_release);
          }
          TimedBarrierWait(&barrier, counters);
        }
      }

      // All W done; master lays out the children, then the split phase runs
      // with dynamic attribute scheduling.
      if (tid == 0 && !sink.aborted()) {
        ctx->AssignChildSlots(&level, ctx->num_slots());
        s_sched.Reset(num_attrs);
      }
      TimedBarrierWait(&barrier, counters);
      if (!sink.aborted()) {
        TraceSpan span("S", "phase", level_no);
        for (int64_t a = s_sched.Next(); a >= 0; a = s_sched.Next()) {
          sink.Record(ctx->SplitAttribute(static_cast<int>(a), level));
          if (sink.aborted()) break;
        }
      }
      TimedBarrierWait(&barrier, counters);

      if (tid == 0) {
        if (!sink.aborted()) {
          sink.Record(ctx->storage()->AdvanceLevel());
          level = ctx->CollectNextLevel(level);
          if (!level.empty()) ctx->set_levels_built(ctx->levels_built() + 1);
        }
        if (sink.aborted() || level.empty()) {
          done.store(true, std::memory_order_release);
        } else {
          arm_level();
          arm_block(0);
          block_start.store(0, std::memory_order_release);
        }
      }
      TimedBarrierWait(&barrier, counters);
      ++level_no;
    }
  };

  return RunThreadTeam(threads, &sink, worker);
}

}  // namespace smptree
