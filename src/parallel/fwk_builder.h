// FWK, Fixed-Window-K (paper section 3.2.2): groups the level's leaves into
// blocks of K. Inside a block, (leaf, attribute) evaluation tasks are
// scheduled dynamically; the last processor to finish a leaf's evaluations
// builds that leaf's probe (W), overlapping W with the E of the block's
// later leaves. A barrier closes each block. The split phase S then runs
// once for the whole level with dynamic attribute scheduling.

#ifndef SMPTREE_PARALLEL_FWK_BUILDER_H_
#define SMPTREE_PARALLEL_FWK_BUILDER_H_

#include <vector>

#include "core/builder_context.h"

namespace smptree {

Status BuildTreeFwk(BuildContext* ctx, std::vector<LeafTask> level);

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_FWK_BUILDER_H_
