#include "parallel/subtree_builder.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <memory>

#include "parallel/level_engine.h"
#include "parallel/mwk_level.h"
#include "parallel/scheduler.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace smptree {

namespace {

/// One processor group working on one subtree's leaf frontier.
struct Group {
  // The next four fields are written by the master while every other
  // member sleeps in the decision handshake below; the cv release/acquire
  // publishes them to the members that resume.
  // lint: unguarded(master-only writes during the decision handshake)
  std::vector<int> members;  // thread ids, sorted; members[0] is the master
  // lint: unguarded(master-only writes during the decision handshake)
  int depth = 0;             // tree depth of the frontier (root group = 0)
  // lint: unguarded(master-only writes during the decision handshake)
  std::vector<LeafTask> level;
  // lint: unguarded(master-only writes during the decision handshake)
  std::unique_ptr<LevelStorage> storage;
  std::unique_ptr<Barrier> barrier;
  DynamicScheduler e_sched;
  DynamicScheduler s_sched;
  MwkLevelState mwk;  // used when the MWK subroutine is selected

  // Post-level decision handshake: non-masters sleep here until the master
  // has regrouped everyone.
  Mutex mu;
  CondVar cv;
  bool decision_ready GUARDED_BY(mu) = false;

  int master() const { return members[0]; }
};

/// Global coordination: the FREE queue of idle processors and the per-thread
/// next-group mailbox.
struct Coordinator {
  Mutex mu;
  CondVar cv;
  std::vector<int> free_queue GUARDED_BY(mu);
  std::vector<std::shared_ptr<Group>> mailbox GUARDED_BY(mu);  // per thread id
  int active_groups GUARDED_BY(mu) = 1;
  bool done GUARDED_BY(mu) = false;
  uint64_t group_seq GUARDED_BY(mu) = 0;
};

std::shared_ptr<Group> NewGroup(BuildContext* ctx, std::vector<int> members,
                                std::vector<LeafTask> level,
                                std::unique_ptr<LevelStorage> storage,
                                int depth) {
  auto g = std::make_shared<Group>();
  std::sort(members.begin(), members.end());
  g->members = std::move(members);
  g->depth = depth;
  g->level = std::move(level);
  g->storage = std::move(storage);
  g->barrier = std::make_unique<Barrier>(static_cast<int>(g->members.size()));
  if (ctx->options().subtree_subroutine == Algorithm::kMwk) {
    g->mwk.Arm(g->level, ctx->data().num_attrs());
  } else {
    g->e_sched.Reset(ctx->data().num_attrs());
  }
  return g;
}

/// Splits a leaf frontier into two contiguous halves balanced by record
/// count; returns the split index (in [1, level.size()-1]) and the left
/// half's weight fraction.
size_t BalancedLeafSplit(const std::vector<LeafTask>& level,
                         double* left_fraction) {
  uint64_t total = 0;
  for (const LeafTask& leaf : level) total += leaf.seg.count;
  uint64_t prefix = 0;
  size_t best_index = 1;
  uint64_t best_diff = total;
  uint64_t best_prefix = level[0].seg.count;
  for (size_t i = 1; i < level.size(); ++i) {
    prefix += level[i - 1].seg.count;
    const uint64_t diff =
        prefix > total - prefix ? prefix - (total - prefix)
                                : (total - prefix) - prefix;
    if (diff < best_diff) {
      best_diff = diff;
      best_index = i;
      best_prefix = prefix;
    }
  }
  *left_fraction =
      total == 0 ? 0.5
                 : static_cast<double>(best_prefix) / static_cast<double>(total);
  return best_index;
}

/// One BASIC level inside a group (paper: "apply BASIC algorithm on L with P
/// processors"). All members call this; internal barriers are group-local.
/// `storage` is the group's file sets (the root group aliases the context's).
void RunGroupLevel(BuildContext* ctx, Group* g, LevelStorage* storage, int tid,
                   GiniScratch* scratch, ErrorSink* sink) {
  const int num_attrs = ctx->data().num_attrs();
  BuildCounters* counters = ctx->counters();

  if (ctx->options().subtree_subroutine == Algorithm::kMwk) {
    // Hybrid (paper section 3.4): the group runs one MWK level -- the E/W
    // moving-window pipeline plus the gated split -- then synchronizes once
    // before the master's regrouping decision.
    g->mwk.RunLevel(ctx, &g->level, storage,
                    static_cast<size_t>(ctx->options().window),
                    storage->num_slots(), scratch, sink, g->depth);
    TimedBarrierWait(g->barrier.get(), counters);
    return;
  }

  // E: dynamic attribute scheduling over the group's frontier.
  if (!sink->aborted()) {
    TraceSpan span("E", "phase", g->depth,
                   static_cast<int64_t>(g->level.size()));
    for (int64_t a = g->e_sched.Next(); a >= 0; a = g->e_sched.Next()) {
      sink->Record(ctx->EvaluateAttrForLeaves(static_cast<int>(a), &g->level,
                                              0, g->level.size(), scratch,
                                              storage));
      if (sink->aborted()) break;
    }
  }
  TimedBarrierWait(g->barrier.get(), counters);

  // W: the group master finds winners and builds the probes.
  if (tid == g->master() && !sink->aborted()) {
    TraceSpan span("W", "phase", g->depth,
                   static_cast<int64_t>(g->level.size()));
    for (LeafTask& leaf : g->level) {
      Status s = ctx->RunW(&leaf, storage);
      sink->Record(s);
      if (!s.ok()) break;
    }
    ctx->AssignChildSlots(&g->level, storage->num_slots());
    g->s_sched.Reset(num_attrs);
  }
  TimedBarrierWait(g->barrier.get(), counters);

  // S: dynamic attribute scheduling into the group's alternate set.
  if (!sink->aborted()) {
    TraceSpan span("S", "phase", g->depth);
    for (int64_t a = g->s_sched.Next(); a >= 0; a = g->s_sched.Next()) {
      sink->Record(
          ctx->SplitAttribute(static_cast<int>(a), g->level, storage));
      if (sink->aborted()) break;
    }
  }
  TimedBarrierWait(g->barrier.get(), counters);
}

}  // namespace

Status BuildTreeSubtree(BuildContext* ctx, std::vector<LeafTask> level) {
  const int threads = ctx->options().num_threads;
  BuildCounters* counters = ctx->counters();
  ErrorSink sink;

  Coordinator coord;
  {
    MutexLock lock(coord.mu);
    coord.mailbox.resize(threads);
  }

  if (level.empty()) return Status::OK();

  // All processors start in one group on the root. The root group aliases
  // the context's storage (the one InitRoot loaded) instead of owning one:
  // Group::storage == nullptr means "use ctx->storage()".
  {
    std::vector<int> all(threads);
    for (int t = 0; t < threads; ++t) all[t] = t;
    auto root = NewGroup(ctx, std::move(all), std::move(level), nullptr,
                         /*depth=*/0);
    MutexLock lock(coord.mu);
    for (int t = 0; t < threads; ++t) coord.mailbox[t] = root;
  }

  auto group_storage = [&](Group* g) -> LevelStorage* {
    return g->storage ? g->storage.get() : ctx->storage();
  };

  // The master's post-level decision (paper Figure 7).
  auto master_decide = [&](std::shared_ptr<Group> g) {
    LevelStorage* storage = group_storage(g.get());
    std::vector<LeafTask> next;
    if (!sink.aborted()) {
      Status s = storage->AdvanceLevel();
      sink.Record(s);
      if (s.ok()) next = ctx->CollectNextLevel(g->level);
    }

    MutexLock lock(coord.mu);
    if (sink.aborted()) next.clear();

    if (next.empty()) {
      // Group dissolves; every member heads for the FREE queue (mailbox
      // stays empty). The last active group ends the build.
      for (int m : g->members) coord.mailbox[m] = nullptr;
      if (--coord.active_groups == 0) {
        coord.done = true;
      }
      coord.cv.NotifyAll();
    } else {
      // Grab everyone waiting in the FREE queue (paper: "the group master
      // checks if there are any new arrivals in the FREE queue and grabs
      // all free processors").
      std::vector<int> procs = g->members;
      procs.insert(procs.end(), coord.free_queue.begin(),
                   coord.free_queue.end());
      coord.free_queue.clear();

      if (next.size() == 1 || procs.size() == 1) {
        // One leaf (all processors stay on it) or one processor (works the
        // whole frontier alone): the group carries on, possibly enlarged.
        auto carried = NewGroup(ctx, procs, std::move(next),
                                std::move(g->storage), g->depth + 1);
        for (int m : carried->members) coord.mailbox[m] = carried;
      } else {
        // Split the leaves (balanced by records) and the processors
        // (proportionally) into two groups working independently.
        double left_fraction = 0.5;
        const size_t cut = BalancedLeafSplit(next, &left_fraction);
        int left_procs = static_cast<int>(
            static_cast<double>(procs.size()) * left_fraction + 0.5);
        left_procs = std::clamp(left_procs, 1,
                                static_cast<int>(procs.size()) - 1);

        std::vector<LeafTask> left_leaves(
            std::make_move_iterator(next.begin()),
            std::make_move_iterator(next.begin() + cut));
        std::vector<LeafTask> right_leaves(
            std::make_move_iterator(next.begin() + cut),
            std::make_move_iterator(next.end()));
        std::vector<int> left_members(procs.begin(),
                                      procs.begin() + left_procs);
        std::vector<int> right_members(procs.begin() + left_procs,
                                       procs.end());

        // Children borrow the parent's freshly advanced current set for
        // their first level and write into their own sets.
        std::shared_ptr<FileSet> source = storage->current_set();
        auto make_child = [&](std::vector<int> members,
                              std::vector<LeafTask> leaves)
            -> std::shared_ptr<Group> {
          std::unique_ptr<LevelStorage> child_storage;
          Status s = LevelStorage::CreateBorrowing(
              ctx->env(), ctx->scratch_dir(),
              StringPrintf("g%llu",
                           static_cast<unsigned long long>(coord.group_seq++)),
              ctx->data().num_attrs(), ctx->num_slots(), source,
              &child_storage);
          sink.Record(s);
          return NewGroup(ctx, std::move(members), std::move(leaves),
                          std::move(child_storage), g->depth + 1);
        };
        auto left_group = make_child(std::move(left_members),
                                     std::move(left_leaves));
        auto right_group = make_child(std::move(right_members),
                                      std::move(right_leaves));
        ++coord.active_groups;
        for (int m : left_group->members) coord.mailbox[m] = left_group;
        for (int m : right_group->members) coord.mailbox[m] = right_group;
      }
      coord.cv.NotifyAll();  // wakes grabbed FREE-queue processors
    }

    // Release the old group's members from the decision handshake.
    {
      MutexLock glock(g->mu);
      g->decision_ready = true;
    }
    g->cv.NotifyAll();
  };

  auto worker = [&](int tid) {
    TraceThreadBinding trace(ctx->trace(), tid);
    GiniScratch scratch;
    std::shared_ptr<Group> g;
    {
      MutexLock lock(coord.mu);
      g = std::move(coord.mailbox[tid]);
    }
    for (;;) {
      if (!g) {
        // Idle: park in the FREE queue until some master grabs us (or the
        // build finishes).
        MutexLock lock(coord.mu);
        coord.free_queue.push_back(tid);
        counters->free_queue_rounds.fetch_add(1, std::memory_order_relaxed);
        if (coord.mailbox[tid] == nullptr && !coord.done) {
          // The predicate can only flip under coord.mu, so checking it
          // false here means the wait below really blocks (WaitTimer
          // records actual blocked waits only).
          WaitTimer wt(counters, "free_idle");
          while (coord.mailbox[tid] == nullptr && !coord.done) {
            coord.cv.Wait(coord.mu);
          }
        }
        if (coord.mailbox[tid] == nullptr) {
          // done, and nobody grabbed us: drop out of the queue if still in.
          auto it = std::find(coord.free_queue.begin(),
                              coord.free_queue.end(), tid);
          if (it != coord.free_queue.end()) coord.free_queue.erase(it);
          return;
        }
        g = std::move(coord.mailbox[tid]);
        // If we were grabbed, we are no longer free; a master that grabbed
        // us already removed us from the queue.
      }

      RunGroupLevel(ctx, g.get(), group_storage(g.get()), tid, &scratch,
                    &sink);

      if (tid == g->master()) {
        master_decide(g);
      } else {
        MutexLock glock(g->mu);
        if (!g->decision_ready) {
          WaitTimer wt(counters, "decision_wait", g->depth);
          while (!g->decision_ready) g->cv.Wait(g->mu);
        }
      }

      {
        MutexLock lock(coord.mu);
        g = std::move(coord.mailbox[tid]);
      }
    }
  };

  SMPTREE_RETURN_IF_ERROR(RunThreadTeam(threads, &sink, worker));
  return sink.status();
}

}  // namespace smptree
