#include "parallel/basic_builder.h"

#include "parallel/level_engine.h"
#include "parallel/scheduler.h"

namespace smptree {

Status BuildTreeBasic(BuildContext* ctx, std::vector<LeafTask> level) {
  const int threads = ctx->options().num_threads;
  const int num_attrs = ctx->data().num_attrs();
  BuildCounters* counters = ctx->counters();

  Barrier barrier(threads);
  DynamicScheduler e_sched;
  DynamicScheduler s_sched;
  ErrorSink sink;
  std::atomic<bool> done{false};

  e_sched.Reset(level.empty() ? 0 : num_attrs);
  s_sched.Reset(level.empty() ? 0 : num_attrs);
  // Release-store paired with the workers' acquire loads of `done`
  // (pre-spawn here, so thread creation also orders it; the release
  // keeps the pairing uniform with the in-loop store).
  if (level.empty()) done.store(true, std::memory_order_release);

  auto worker = [&](int tid) {
    TraceThreadBinding trace(ctx->trace(), tid);
    GiniScratch scratch;
    int level_no = 0;
    while (!done.load(std::memory_order_acquire)) {
      // E: grab attributes dynamically; evaluate each for all leaves of the
      // level so every attribute list is read once, sequentially.
      {
        TraceSpan span("E", "phase", level_no,
                       static_cast<int64_t>(level.size()));
        for (int64_t a = e_sched.Next(); a >= 0; a = e_sched.Next()) {
          sink.Record(ctx->EvaluateAttrForLeaves(static_cast<int>(a), &level,
                                                 0, level.size(), &scratch));
          if (sink.aborted()) break;
        }
      }
      TimedBarrierWait(&barrier, counters);

      // W: performed serially by the pre-designated master while the other
      // processors sleep at the barrier -- the bottleneck MWK removes.
      if (tid == 0 && !sink.aborted()) {
        TraceSpan span("W", "phase", level_no,
                       static_cast<int64_t>(level.size()));
        for (LeafTask& leaf : level) {
          Status s = ctx->RunW(&leaf);
          sink.Record(s);
          if (!s.ok()) break;
        }
        ctx->AssignChildSlots(&level, ctx->num_slots());
      }
      TimedBarrierWait(&barrier, counters);

      // S: dynamic attribute scheduling again.
      if (!sink.aborted()) {
        TraceSpan span("S", "phase", level_no);
        for (int64_t a = s_sched.Next(); a >= 0; a = s_sched.Next()) {
          sink.Record(ctx->SplitAttribute(static_cast<int>(a), level));
          if (sink.aborted()) break;
        }
      }
      TimedBarrierWait(&barrier, counters);

      // Level transition (master), then release everyone into the next
      // level with freshly armed schedulers.
      if (tid == 0) {
        if (!sink.aborted()) {
          sink.Record(ctx->storage()->AdvanceLevel());
          level = ctx->CollectNextLevel(level);
          if (!level.empty()) ctx->set_levels_built(ctx->levels_built() + 1);
        }
        if (sink.aborted() || level.empty()) {
          done.store(true, std::memory_order_release);
        } else {
          e_sched.Reset(num_attrs);
          s_sched.Reset(num_attrs);
        }
      }
      TimedBarrierWait(&barrier, counters);
      ++level_no;
    }
  };

  return RunThreadTeam(threads, &sink, worker);
}

}  // namespace smptree
