// Dynamic task scheduling (paper section 3.2.1, "attributes are scheduled
// dynamically by using an attribute counter and locking"): a shared counter
// hands out task indices; whoever increments first gets the task. We use an
// atomic fetch-add, the lock-free equivalent of the paper's counter+lock.

#ifndef SMPTREE_PARALLEL_SCHEDULER_H_
#define SMPTREE_PARALLEL_SCHEDULER_H_

#include <atomic>
#include <cstdint>

namespace smptree {

/// Hands out indices [0, limit) exactly once across threads.
class DynamicScheduler {
 public:
  DynamicScheduler() = default;

  /// Re-arms the scheduler for a new phase with `limit` tasks. Must be
  /// called while no thread is pulling (between phase barriers).
  void Reset(int64_t limit) {
    limit_ = limit;
    next_.store(0, std::memory_order_relaxed);
  }

  /// Returns the next task index, or -1 when exhausted.
  int64_t Next() {
    const int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    return i < limit_ ? i : -1;
  }

  int64_t limit() const { return limit_; }

 private:
  std::atomic<int64_t> next_{0};
  int64_t limit_ = 0;
};

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_SCHEDULER_H_
