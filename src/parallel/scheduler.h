// Dynamic task scheduling (paper section 3.2.1, "attributes are scheduled
// dynamically by using an attribute counter and locking"): a shared counter
// hands out task indices; whoever increments first gets the task. We use an
// atomic fetch-add, the lock-free equivalent of the paper's counter+lock.

#ifndef SMPTREE_PARALLEL_SCHEDULER_H_
#define SMPTREE_PARALLEL_SCHEDULER_H_

#include <atomic>
#include <cstdint>

#include "util/debug_checks.h"

namespace smptree {

/// Hands out indices [0, limit) exactly once across threads.
///
/// Synchronization contract: Reset() may only run while no thread is inside
/// Next() -- the builders guarantee this by re-arming only between phase
/// barriers (or behind the MWK gate). The contract makes Reset/Next ordering
/// a non-issue for correctness, but `limit_` is still an atomic so the
/// object stays data-race-free at the memory-model level (relaxed order
/// suffices: the phase barrier provides the happens-before edge). The debug
/// invariant checker enforces the contract: a Reset() overlapping an
/// in-flight Next() aborts in debug builds.
class DynamicScheduler {
 public:
  DynamicScheduler() = default;

  /// Re-arms the scheduler for a new phase with `limit` tasks. Must be
  /// called while no thread is pulling (between phase barriers).
  void Reset(int64_t limit) {
    debug::ExclusiveScope quiescent(pull_check_);
    limit_.store(limit, std::memory_order_relaxed);
    next_.store(0, std::memory_order_relaxed);
  }

  /// Returns the next task index, or -1 when exhausted.
  int64_t Next() {
    debug::SharedScope pulling(pull_check_);
    const int64_t i = next_.fetch_add(1, std::memory_order_relaxed);
    return i < limit_.load(std::memory_order_relaxed) ? i : -1;
  }

  int64_t limit() const { return limit_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> next_{0};
  std::atomic<int64_t> limit_{0};
  debug::SharedExclusiveCheck pull_check_{"DynamicScheduler Reset vs Next"};
};

}  // namespace smptree

#endif  // SMPTREE_PARALLEL_SCHEDULER_H_
