#include "binned/leaf_histogram.h"

#include "util/string_util.h"

namespace smptree {
namespace {

/// Shape-mismatch diagnostic shared by Merge and Subtract.
Status ShapeMismatch(const char* op, const LeafHistogram& a,
                     const LeafHistogram& b) {
  return Status::InvalidArgument(StringPrintf(
      "LeafHistogram::%s shape mismatch: %d bins x %d classes vs %d bins x "
      "%d classes",
      op, a.total_bins(), a.num_classes(), b.total_bins(), b.num_classes()));
}

}  // namespace

void LeafHistogram::Reset(int total_bins, int num_classes) {
  total_bins_ = total_bins;
  num_classes_ = num_classes;
  counts_.assign(
      static_cast<size_t>(total_bins) * static_cast<size_t>(num_classes), 0);
}

void LeafHistogram::Clear() { counts_.assign(counts_.size(), 0); }

int64_t LeafHistogram::RowTotal(int flat_bin) const {
  int64_t total = 0;
  for (int64_t c : row(flat_bin)) total += c;
  return total;
}

Status LeafHistogram::Merge(const LeafHistogram& other) {
  if (total_bins_ != other.total_bins_ ||
      num_classes_ != other.num_classes_) {
    return ShapeMismatch("Merge", *this, other);
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  return Status::OK();
}

Status LeafHistogram::Subtract(const LeafHistogram& other) {
  if (total_bins_ != other.total_bins_ ||
      num_classes_ != other.num_classes_) {
    return ShapeMismatch("Subtract", *this, other);
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] -= other.counts_[i];
  return Status::OK();
}

}  // namespace smptree
