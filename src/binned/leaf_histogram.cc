#include "binned/leaf_histogram.h"

#include <cassert>

namespace smptree {

void LeafHistogram::Reset(int total_bins, int num_classes) {
  total_bins_ = total_bins;
  num_classes_ = num_classes;
  counts_.assign(
      static_cast<size_t>(total_bins) * static_cast<size_t>(num_classes), 0);
}

void LeafHistogram::Clear() { counts_.assign(counts_.size(), 0); }

int64_t LeafHistogram::RowTotal(int flat_bin) const {
  int64_t total = 0;
  for (int64_t c : row(flat_bin)) total += c;
  return total;
}

void LeafHistogram::Merge(const LeafHistogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

void LeafHistogram::Subtract(const LeafHistogram& other) {
  assert(counts_.size() == other.counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] -= other.counts_[i];
}

}  // namespace smptree
