// Per-leaf (bin x class) count histogram for the binned engine: the flat
// concatenation of every attribute's bin rows (layout per Quantizer::offset),
// each row holding num_classes int64 counts. Split evaluation sweeps these
// rows instead of attribute-list records, and a leaf's histogram can be
// derived from its parent's by subtracting the sibling's -- the "histogram
// subtraction" trick that halves H-phase scan work per level: only the
// smaller child of each split is built by scanning.

#ifndef SMPTREE_BINNED_LEAF_HISTOGRAM_H_
#define SMPTREE_BINNED_LEAF_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/records.h"
#include "util/status.h"

namespace smptree {

/// Flat (total_bins x num_classes) counts. Not thread-safe: the builder
/// gives each instance a single writer per phase (per-thread locals during
/// the scan, one reducer per leaf at the merge).
class LeafHistogram {
 public:
  /// Sizes to `total_bins` rows of `num_classes` counts, all zero. Reuses
  /// capacity, so pooled instances re-zero without reallocating.
  void Reset(int total_bins, int num_classes);

  /// Zeroes every count, keeping the shape.
  void Clear();

  bool empty() const { return counts_.empty(); }
  int total_bins() const { return total_bins_; }
  int num_classes() const { return num_classes_; }

  void Add(int flat_bin, ClassLabel cls) {
    ++counts_[static_cast<size_t>(flat_bin) * num_classes_ + cls];
  }

  int64_t count(int flat_bin, int cls) const {
    return counts_[static_cast<size_t>(flat_bin) * num_classes_ + cls];
  }

  /// One bin's class counts.
  std::span<const int64_t> row(int flat_bin) const {
    return {counts_.data() + static_cast<size_t>(flat_bin) * num_classes_,
            static_cast<size_t>(num_classes_)};
  }

  /// Tuples in one bin.
  int64_t RowTotal(int flat_bin) const;

  /// this += other. Returns InvalidArgument without touching any count if
  /// the shapes differ (checked in every build type, not just debug).
  Status Merge(const LeafHistogram& other);

  /// this -= other (derive a child: parent - sibling). Same shape contract
  /// as Merge.
  Status Subtract(const LeafHistogram& other);

 private:
  int total_bins_ = 0;
  int num_classes_ = 0;
  std::vector<int64_t> counts_;
};

}  // namespace smptree

#endif  // SMPTREE_BINNED_LEAF_HISTOGRAM_H_
