// Attribute quantization for the binned training engine (the histogram
// scheme of LightGBM-style learners): each continuous attribute is reduced
// to at most BuildOptions::max_bins ordered bins by cut points computed once
// at load, and every training tuple's attribute values are materialized as a
// column-major uint8_t bin matrix the builder then scans instead of the
// sorted attribute lists.
//
// Bin mapping invariant (everything downstream leans on it):
//
//   bin(v) = #{ cuts c : c <= v }    so    bin(v) <= i  <=>  v < cuts[i]
//
// i.e. "bins 0..i go left" is exactly the SplitTest `value < cuts[i]`. Cut
// points are therefore real float thresholds from day one -- the finished
// tree carries ordinary SplitTests and Classify never sees a bin. The
// canonical missing value (kMissingValue, the lowest float) lands in bin 0
// and keeps its "missing goes left" behavior under every cut.
//
// Categorical attributes map value codes to their own bins (bin == code), so
// the binned engine is exact for them; only continuous attributes are
// approximated, and only when an attribute has more than max_bins distinct
// values (otherwise cuts sit at every adjacent-distinct midpoint and the
// candidate set equals the exact engine's).

#ifndef SMPTREE_BINNED_QUANTIZER_H_
#define SMPTREE_BINNED_QUANTIZER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/records.h"
#include "data/dataset.h"
#include "util/status.h"

namespace smptree {

/// Per-attribute bin boundaries, computed once per training set.
/// Deterministic given the data: cut placement uses only sorted value order,
/// never hashing or sampling.
class Quantizer {
 public:
  /// Computes boundaries from `data`. `max_bins` must be in [2, 256] (bins
  /// are uint8_t codes); categorical cardinalities must fit the budget.
  /// Continuous attributes get quantile-spaced cuts advanced to real value
  /// boundaries, or exact adjacent-distinct midpoints when the attribute has
  /// at most max_bins distinct values.
  Status Build(const Dataset& data, int max_bins);

  int num_attrs() const { return static_cast<int>(attrs_.size()); }
  bool categorical(int attr) const { return attrs_[attr].categorical; }

  /// Bins of `attr`: cuts+1 for continuous, the cardinality for categorical.
  int num_bins(int attr) const { return attrs_[attr].num_bins; }
  /// Split boundaries of a continuous attribute (0 for categorical, which
  /// splits by subset, not by boundary).
  int num_cuts(int attr) const {
    return static_cast<int>(attrs_[attr].cuts.size());
  }
  /// The real threshold of boundary `i`: bins 0..i hold exactly the values
  /// with `value < cut(attr, i)`.
  float cut(int attr, int i) const { return attrs_[attr].cuts[i]; }

  /// Offset of `attr`'s bin rows in a flat per-leaf histogram.
  int offset(int attr) const { return attrs_[attr].offset; }
  /// Sum of num_bins over all attributes (the flat histogram length).
  int total_bins() const { return total_bins_; }

  /// Maps one value into its bin under the invariant above.
  uint8_t BinOf(int attr, AttrValue v) const {
    const AttrBins& a = attrs_[attr];
    if (a.categorical) return static_cast<uint8_t>(v.cat);
    return static_cast<uint8_t>(
        std::upper_bound(a.cuts.begin(), a.cuts.end(), v.f) - a.cuts.begin());
  }

 private:
  struct AttrBins {
    bool categorical = false;
    int num_bins = 0;
    int offset = 0;
    std::vector<float> cuts;  ///< ascending; empty for categorical
  };

  std::vector<AttrBins> attrs_;
  int total_bins_ = 0;
};

/// Column-major bin codes of the whole training set: column(attr)[tuple] is
/// the tuple's bin for that attribute. One byte per value, so the matrix is
/// a third the size of one attribute-list file set and scans sequentially
/// per attribute (the builder's H-phase access pattern).
class BinMatrix {
 public:
  /// Maps every value of `data` through `quantizer`.
  Status Materialize(const Dataset& data, const Quantizer& quantizer);

  int64_t num_tuples() const { return num_tuples_; }
  int num_attrs() const { return num_attrs_; }

  const uint8_t* column(int attr) const {
    return codes_.data() + static_cast<size_t>(attr) * num_tuples_;
  }

 private:
  int64_t num_tuples_ = 0;
  int num_attrs_ = 0;
  std::vector<uint8_t> codes_;
};

}  // namespace smptree

#endif  // SMPTREE_BINNED_QUANTIZER_H_
