#include "binned/quantizer.h"

#include <algorithm>
#include <cstddef>

#include "core/gini.h"
#include "util/string_util.h"

namespace smptree {

namespace {

// Cut points for one continuous column. `values` is consumed (sorted in
// place). Cuts use SplitMidpoint, the same midpoint arithmetic as the exact
// evaluators, so a cut and the corresponding exact threshold agree
// bit-for-bit whenever they straddle the same value pair.
std::vector<float> ContinuousCuts(std::vector<float>* values, int max_bins) {
  std::vector<float>& v = *values;
  std::vector<float> cuts;
  if (v.empty()) return cuts;
  std::sort(v.begin(), v.end());

  size_t distinct = 1;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1] < v[i]) ++distinct;
  }
  if (distinct <= static_cast<size_t>(max_bins)) {
    // Exact mode: one bin per distinct value. The candidate boundaries are
    // then precisely the exact engine's candidate split points, which is
    // what the winner-parity tests pin down.
    cuts.reserve(distinct - 1);
    for (size_t i = 1; i < v.size(); ++i) {
      if (v[i - 1] < v[i]) cuts.push_back(SplitMidpoint(v[i - 1], v[i]));
    }
    return cuts;
  }

  // Quantile mode: aim each cut at position k*n/max_bins, then advance to
  // the next real value boundary so every cut separates two distinct values
  // (a skewed column like {0 x 999, 1 x 1} still gets its one useful cut
  // instead of max_bins-1 copies of a boundary inside the 0-run). `j` only
  // moves forward, so duplicate cuts cannot arise.
  cuts.reserve(static_cast<size_t>(max_bins) - 1);
  const size_t n = v.size();
  size_t j = 0;  // last boundary used (v[j-1] < v[j])
  for (int k = 1; k < max_bins; ++k) {
    size_t pos = n * static_cast<size_t>(k) / static_cast<size_t>(max_bins);
    if (pos <= j) pos = j + 1;
    while (pos < n && !(v[pos - 1] < v[pos])) ++pos;
    if (pos >= n) break;
    cuts.push_back(SplitMidpoint(v[pos - 1], v[pos]));
    j = pos;
  }
  return cuts;
}

}  // namespace

Status Quantizer::Build(const Dataset& data, int max_bins) {
  if (max_bins < 2 || max_bins > 256) {
    return Status::InvalidArgument("max_bins outside [2,256]");
  }
  const int num_attrs = data.num_attrs();
  attrs_.assign(static_cast<size_t>(num_attrs), AttrBins());
  total_bins_ = 0;

  std::vector<float> scratch;
  for (int a = 0; a < num_attrs; ++a) {
    AttrBins& bins = attrs_[static_cast<size_t>(a)];
    const AttrInfo& info = data.schema().attr(a);
    if (info.is_categorical()) {
      if (info.cardinality > max_bins) {
        return Status::NotSupported(StringPrintf(
            "binned engine: categorical attribute '%s' has cardinality %d > "
            "max_bins %d",
            info.name.c_str(), info.cardinality, max_bins));
      }
      bins.categorical = true;
      bins.num_bins = info.cardinality;
    } else {
      const std::span<const AttrValue> column = data.column(a);
      scratch.resize(column.size());
      for (size_t i = 0; i < column.size(); ++i) scratch[i] = column[i].f;
      bins.cuts = ContinuousCuts(&scratch, max_bins);
      bins.num_bins = static_cast<int>(bins.cuts.size()) + 1;
    }
    bins.offset = total_bins_;
    total_bins_ += bins.num_bins;
  }
  return Status::OK();
}

Status BinMatrix::Materialize(const Dataset& data, const Quantizer& quantizer) {
  if (quantizer.num_attrs() != data.num_attrs()) {
    return Status::InvalidArgument("quantizer/dataset attribute mismatch");
  }
  num_tuples_ = data.num_tuples();
  num_attrs_ = data.num_attrs();
  codes_.resize(static_cast<size_t>(num_attrs_) *
                static_cast<size_t>(num_tuples_));
  for (int a = 0; a < num_attrs_; ++a) {
    const std::span<const AttrValue> column = data.column(a);
    uint8_t* out = codes_.data() + static_cast<size_t>(a) * num_tuples_;
    if (quantizer.categorical(a)) {
      for (int64_t t = 0; t < num_tuples_; ++t) {
        const int32_t code = column[static_cast<size_t>(t)].cat;
        if (code < 0 || code >= quantizer.num_bins(a)) {
          return Status::Corruption(StringPrintf(
              "categorical code %d of attribute %d outside [0,%d)", code, a,
              quantizer.num_bins(a)));
        }
        out[t] = static_cast<uint8_t>(code);
      }
    } else {
      for (int64_t t = 0; t < num_tuples_; ++t) {
        out[t] = quantizer.BinOf(a, column[static_cast<size_t>(t)]);
      }
    }
  }
  return Status::OK();
}

}  // namespace smptree
