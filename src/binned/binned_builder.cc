#include "binned/binned_builder.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "binned/leaf_histogram.h"
#include "core/gini.h"
#include "core/histogram.h"
#include "core/split.h"
#include "parallel/level_engine.h"
#include "parallel/scheduler.h"
#include "util/barrier.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace smptree {

namespace {

/// Records per H/S scheduling chunk: big enough that the per-chunk gather of
/// leaf slots and labels amortizes, small enough to balance across threads.
constexpr int64_t kChunkRecords = 8192;

/// Per-thread local-histogram budget in int64 counts (~16 MiB per thread).
/// Levels whose scan leaves exceed it are histogrammed in multiple batches;
/// each extra batch pays one more pass over the bin matrix, so the budget
/// only matters for frontiers with thousands of leaves.
constexpr int64_t kLocalCountBudget = int64_t{1} << 21;

/// Per-leaf state for one frontier level.
struct BinnedLeaf {
  NodeId node = kInvalidNode;
  ClassHistogram hist;  ///< class distribution of the leaf
  LeafHistogram bins;   ///< (bin x class) counts, filled during H
  int64_t count = 0;
  /// Histogram provenance: scan leaves accumulate from the bin matrix;
  /// subtract leaves derive bins = prev[parent].bins - frontier[sibling].bins
  /// (always the larger sibling of a split, so scans cover the smaller half).
  bool scan = true;
  int parent = -1;   ///< index into the previous level's frontier
  int sibling = -1;  ///< index of the scanning sibling in this frontier

  std::vector<SplitCandidate> candidates;  ///< per attr, filled during E
  /// Continuous boundary index backing candidates[attr] (-1 for categorical
  /// or no candidate): left iff bin <= candidate_bins[attr].
  std::vector<int> candidate_bins;

  /// Filled during W.
  SplitCandidate winner;
  int winner_bin = -1;
  NodeId child_node[2] = {kInvalidNode, kInvalidNode};
  int child_frontier[2] = {-1, -1};  ///< next-frontier index; -1 = finalized
};

/// Histogram integrity check: every attribute's bin rows must sum to the
/// leaf's class distribution. Catches scan/reduce races and subtraction
/// drift the way RunW's routed-count check catches probe drift.
Status VerifyLeafBins(const Quantizer& quantizer, const BinnedLeaf& leaf) {
  const int num_classes = leaf.hist.num_classes();
  for (int a = 0; a < quantizer.num_attrs(); ++a) {
    const int off = quantizer.offset(a);
    const int nbins = quantizer.num_bins(a);
    for (int c = 0; c < num_classes; ++c) {
      int64_t sum = 0;
      for (int b = 0; b < nbins; ++b) sum += leaf.bins.count(off + b, c);
      if (sum != leaf.hist.count(c)) {
        return Status::Corruption(StringPrintf(
            "node %d: attribute %d bins hold %lld class-%d tuples, leaf has "
            "%lld",
            leaf.node, a, static_cast<long long>(sum), c,
            static_cast<long long>(leaf.hist.count(c))));
      }
    }
  }
  return Status::OK();
}

/// E for one (leaf, attr): sweeps the attribute's bin rows exactly like
/// ReferenceEvaluateContinuousAttr sweeps records -- same Add/Remove
/// accumulation, same SplitImpurityWithTotals call, same BetterThan tie
/// rule -- so where cuts coincide with exact candidate points the impurities
/// agree bit-for-bit. Returns the boundaries examined (the bins_scanned
/// unit).
uint64_t EvaluateBinnedLeafAttr(const Quantizer& quantizer,
                                const BinnedLeaf& leaf, int attr,
                                const GiniOptions& gini, GiniScratch* scratch,
                                SplitCandidate* out, int* out_bin) {
  const int off = quantizer.offset(attr);
  const int nbins = quantizer.num_bins(attr);
  const int num_classes = leaf.hist.num_classes();
  *out = SplitCandidate();
  *out_bin = -1;

  if (quantizer.categorical(attr)) {
    CountMatrix& matrix = scratch->matrix;
    matrix.Reset(nbins, num_classes);
    for (int b = 0; b < nbins; ++b) {
      const std::span<const int64_t> row = leaf.bins.row(off + b);
      for (int c = 0; c < num_classes; ++c) {
        if (row[c] != 0) matrix.AddCount(b, c, row[c]);
      }
    }
    *out = EvaluateCategoricalFromMatrix(attr, matrix, leaf.hist, gini,
                                         scratch);
    return static_cast<uint64_t>(nbins);
  }

  ClassHistogram& below = scratch->below;
  ClassHistogram& above = scratch->above;
  below.Reset(num_classes);
  above = leaf.hist;
  const int64_t n_total = leaf.count;
  int64_t nl = 0;
  SplitCandidate best;
  int best_bin = -1;
  for (int b = 0; b + 1 < nbins; ++b) {
    const std::span<const int64_t> row = leaf.bins.row(off + b);
    for (int c = 0; c < num_classes; ++c) {
      if (row[c] == 0) continue;
      below.Add(static_cast<ClassLabel>(c), row[c]);
      above.Remove(static_cast<ClassLabel>(c), row[c]);
      nl += row[c];
    }
    if (nl == 0) continue;      // no records left of this cut yet
    if (nl == n_total) break;   // all records left: no proper split remains
    SplitCandidate candidate;
    candidate.test.attr = attr;
    candidate.test.threshold = quantizer.cut(attr, b);
    candidate.gini =
        SplitImpurityWithTotals(below, above, nl, n_total - nl, gini.criterion);
    candidate.left_count = nl;
    candidate.right_count = n_total - nl;
    if (candidate.BetterThan(best)) {
      best = candidate;
      best_bin = b;
    }
  }
  *out = best;
  *out_bin = best_bin;
  return nbins > 0 ? static_cast<uint64_t>(nbins - 1) : 0;
}

}  // namespace

Status BuildTreeBinned(const Dataset& data, const Quantizer& quantizer,
                       const BinMatrix& bin_matrix,
                       const BuildOptions& options, DecisionTree* tree,
                       BuildCounters* counters,
                       std::vector<LevelTraceEntry>* level_trace) {
  const int num_attrs = data.num_attrs();
  const int num_classes = data.num_classes();
  const int64_t n = data.num_tuples();
  const int total_bins = quantizer.total_bins();
  const int threads = options.num_threads;
  if (quantizer.num_attrs() != num_attrs ||
      bin_matrix.num_attrs() != num_attrs || bin_matrix.num_tuples() != n) {
    return Status::InvalidArgument(
        "quantizer/bin matrix do not match the dataset");
  }

  ClassHistogram root_hist(num_classes);
  for (ClassLabel l : data.labels()) root_hist.Add(l);
  tree->CreateRoot(root_hist);

  const bool root_splittable =
      !root_hist.IsPure() && n >= options.min_split &&
      (options.max_levels == 0 || options.max_levels > 1);
  if (!root_splittable) return Status::OK();

  // ---- level state, owned by the master between barriers ----------------
  // Everything below follows the BASIC builder's phase contract: the worker
  // lambda reads these vectors during a phase; only thread 0 mutates them,
  // and only between the barriers that delimit phases, so every write is
  // ordered before every cross-thread read by a barrier.
  std::vector<BinnedLeaf> frontier;
  std::vector<BinnedLeaf> prev;
  std::vector<BinnedLeaf> next;
  std::vector<int32_t> leaf_of(static_cast<size_t>(n), 0);
  std::vector<std::vector<int>> scan_batches;  // frontier indices per batch
  std::vector<int> subtract_leaves;            // frontier indices
  std::vector<int> slot_of_frontier;  // frontier index -> batch slot or -1
  size_t num_batches = 0;
  std::vector<LeafHistogram> free_bins;  // recycled histogram storage

  const int64_t counts_per_leaf =
      static_cast<int64_t>(total_bins) * num_classes;
  const size_t max_batch = static_cast<size_t>(
      std::max<int64_t>(1, kLocalCountBudget / std::max<int64_t>(
                                                   1, counts_per_leaf)));
  const int64_t num_chunks = (n + kChunkRecords - 1) / kChunkRecords;

  // Plans the H phase of the current frontier: batches the scan leaves
  // under the local-histogram budget, lists the subtract leaves, maps batch
  // 0's slots, and arms every scheduler. Master-only, between barriers.
  const auto PlanBatch = [&](size_t batch) {
    slot_of_frontier.assign(frontier.size(), -1);
    const std::vector<int>& leaves = scan_batches[batch];
    for (size_t j = 0; j < leaves.size(); ++j) {
      slot_of_frontier[static_cast<size_t>(leaves[j])] = static_cast<int>(j);
    }
  };
  DynamicScheduler h_sched;
  DynamicScheduler r_sched;
  DynamicScheduler sub_sched;
  DynamicScheduler e_sched;
  DynamicScheduler s_sched;
  const auto PlanLevel = [&] {
    scan_batches.clear();
    subtract_leaves.clear();
    for (size_t i = 0; i < frontier.size(); ++i) {
      BinnedLeaf& leaf = frontier[i];
      if (!leaf.scan) {
        subtract_leaves.push_back(static_cast<int>(i));
        continue;
      }
      if (!free_bins.empty()) {  // donate pooled storage to the scan leaf
        leaf.bins = std::move(free_bins.back());
        free_bins.pop_back();
      }
      if (scan_batches.empty() || scan_batches.back().size() >= max_batch) {
        scan_batches.emplace_back();
      }
      scan_batches.back().push_back(static_cast<int>(i));
    }
    num_batches = scan_batches.size();
    if (num_batches > 0) PlanBatch(0);
    h_sched.Reset(num_chunks);
    r_sched.Reset(num_batches > 0
                      ? static_cast<int64_t>(scan_batches.front().size())
                      : 0);
    sub_sched.Reset(static_cast<int64_t>(subtract_leaves.size()));
    e_sched.Reset(static_cast<int64_t>(frontier.size()) * num_attrs);
    s_sched.Reset(num_chunks);
  };

  {
    BinnedLeaf root;
    root.node = tree->root();
    root.hist = root_hist;
    root.count = n;
    root.candidates.resize(static_cast<size_t>(num_attrs));
    root.candidate_bins.assign(static_cast<size_t>(num_attrs), -1);
    frontier.push_back(std::move(root));
  }
  PlanLevel();

  Barrier barrier(threads);
  ErrorSink sink;
  std::atomic<bool> done{false};
  std::vector<std::vector<LeafHistogram>> locals(
      static_cast<size_t>(threads));
  const std::span<const ClassLabel> labels = data.labels();

  auto worker = [&](int tid) {
    TraceThreadBinding trace(options.trace, tid);
    GiniScratch scratch;
    std::vector<int32_t> slot_buf(static_cast<size_t>(kChunkRecords));
    std::vector<ClassLabel> label_buf(static_cast<size_t>(kChunkRecords));
    std::vector<LeafHistogram>& local = locals[static_cast<size_t>(tid)];
    int level_no = 0;
    while (!done.load(std::memory_order_acquire)) {
      // H: per batch, scan record ranges into per-thread local histograms,
      // then reduce each scan leaf's locals behind a barrier.
      for (size_t b = 0; b < num_batches; ++b) {
        const std::vector<int>& batch = scan_batches[b];
        {
          PhaseTimer phase(counters, BuildPhase::kHistogram);
          TraceSpan span("H", "phase", level_no,
                         static_cast<int64_t>(batch.size()));
          // Re-zero this thread's locals even when aborted: the reducer
          // merges them unconditionally.
          if (local.size() < batch.size()) local.resize(batch.size());
          for (size_t j = 0; j < batch.size(); ++j) {
            local[j].Reset(total_bins, num_classes);
          }
          for (int64_t ci = h_sched.Next(); ci >= 0 && !sink.aborted();
               ci = h_sched.Next()) {
            const int64_t lo = ci * kChunkRecords;
            const int64_t hi = std::min(n, lo + kChunkRecords);
            int64_t present = 0;
            for (int64_t t = lo; t < hi; ++t) {
              const int32_t li = leaf_of[static_cast<size_t>(t)];
              const int32_t slot =
                  li >= 0 ? slot_of_frontier[static_cast<size_t>(li)] : -1;
              slot_buf[static_cast<size_t>(t - lo)] = slot;
              label_buf[static_cast<size_t>(t - lo)] =
                  labels[static_cast<size_t>(t)];
              if (slot >= 0) ++present;
            }
            if (present == 0) continue;
            for (int a = 0; a < num_attrs; ++a) {
              const uint8_t* col = bin_matrix.column(a) + lo;
              const int off = quantizer.offset(a);
              for (int64_t i = 0; i < hi - lo; ++i) {
                const int32_t slot = slot_buf[static_cast<size_t>(i)];
                if (slot < 0) continue;
                local[static_cast<size_t>(slot)].Add(
                    off + col[i], label_buf[static_cast<size_t>(i)]);
              }
            }
            counters->records_scanned.fetch_add(
                static_cast<uint64_t>(present) * num_attrs,
                std::memory_order_relaxed);
          }
        }
        TimedBarrierWait(&barrier, counters);
        if (!sink.aborted()) {
          PhaseTimer phase(counters, BuildPhase::kHistogram);
          TraceSpan span("H", "phase", level_no);
          for (int64_t j = r_sched.Next(); j >= 0 && !sink.aborted();
               j = r_sched.Next()) {
            BinnedLeaf& leaf = frontier[static_cast<size_t>(batch[j])];
            leaf.bins.Reset(total_bins, num_classes);
            for (int t = 0; t < threads; ++t) {
              const std::vector<LeafHistogram>& other =
                  locals[static_cast<size_t>(t)];
              if (static_cast<size_t>(j) < other.size() &&
                  !other[static_cast<size_t>(j)].empty()) {
                sink.Record(leaf.bins.Merge(other[static_cast<size_t>(j)]));
              }
            }
            sink.Record(VerifyLeafBins(quantizer, leaf));
          }
        }
        TimedBarrierWait(&barrier, counters);
        if (b + 1 < num_batches) {
          if (tid == 0 && !sink.aborted()) {
            PlanBatch(b + 1);
            h_sched.Reset(num_chunks);
            r_sched.Reset(static_cast<int64_t>(scan_batches[b + 1].size()));
          }
          TimedBarrierWait(&barrier, counters);
        }
      }
      // H (subtraction): larger children inherit parent minus sibling.
      if (!sink.aborted()) {
        PhaseTimer phase(counters, BuildPhase::kHistogram);
        TraceSpan span("H", "phase", level_no,
                       static_cast<int64_t>(subtract_leaves.size()));
        for (int64_t j = sub_sched.Next(); j >= 0 && !sink.aborted();
             j = sub_sched.Next()) {
          BinnedLeaf& leaf =
              frontier[static_cast<size_t>(subtract_leaves[j])];
          leaf.bins = std::move(prev[static_cast<size_t>(leaf.parent)].bins);
          sink.Record(leaf.bins.Subtract(
              frontier[static_cast<size_t>(leaf.sibling)].bins));
          sink.Record(VerifyLeafBins(quantizer, leaf));
        }
      }
      TimedBarrierWait(&barrier, counters);

      // E: (leaf, attr) tasks through the dynamic scheduler, O(bins) each.
      if (!sink.aborted()) {
        PhaseTimer phase(counters, BuildPhase::kEvaluate);
        TraceSpan span("E", "phase", level_no,
                       static_cast<int64_t>(frontier.size()));
        uint64_t scanned = 0;
        for (int64_t id = e_sched.Next(); id >= 0 && !sink.aborted();
             id = e_sched.Next()) {
          BinnedLeaf& leaf = frontier[static_cast<size_t>(id / num_attrs)];
          const int attr = static_cast<int>(id % num_attrs);
          if (!options.feature_sampling.Allows(leaf.node, attr, num_attrs)) {
            leaf.candidates[static_cast<size_t>(attr)] = SplitCandidate();
            leaf.candidate_bins[static_cast<size_t>(attr)] = -1;
            continue;
          }
          scanned += EvaluateBinnedLeafAttr(
              quantizer, leaf, attr, options.gini, &scratch,
              &leaf.candidates[static_cast<size_t>(attr)],
              &leaf.candidate_bins[static_cast<size_t>(attr)]);
          counters->attr_tasks.fetch_add(1, std::memory_order_relaxed);
        }
        counters->bins_scanned.fetch_add(scanned, std::memory_order_relaxed);
      }
      TimedBarrierWait(&barrier, counters);

      // W: master picks winners, derives child distributions from the
      // winner attribute's bin rows, creates children, and lays out the next
      // frontier (smaller child scans, larger subtracts).
      if (tid == 0 && !sink.aborted()) {
        PhaseTimer phase(counters, BuildPhase::kWinner);
        TraceSpan span("W", "phase", level_no,
                       static_cast<int64_t>(frontier.size()));
        next.clear();
        for (size_t li = 0; li < frontier.size(); ++li) {
          BinnedLeaf& leaf = frontier[li];
          SplitCandidate best;
          for (const SplitCandidate& c : leaf.candidates) {
            if (c.BetterThan(best)) best = c;
          }
          leaf.winner = best;
          leaf.winner_bin = -1;
          leaf.child_node[0] = leaf.child_node[1] = kInvalidNode;
          leaf.child_frontier[0] = leaf.child_frontier[1] = -1;
          if (!best.valid()) continue;  // stays a majority-class leaf
          if (!best.test.categorical) {
            leaf.winner_bin =
                leaf.candidate_bins[static_cast<size_t>(best.test.attr)];
          }
          tree->SetSplit(leaf.node, best.test);

          ClassHistogram child_hist[2];
          child_hist[0].Reset(num_classes);
          const int off = quantizer.offset(best.test.attr);
          const int nbins = quantizer.num_bins(best.test.attr);
          for (int bb = 0; bb < nbins; ++bb) {
            const bool left = best.test.categorical
                                  ? best.test.SubsetContains(bb)
                                  : bb <= leaf.winner_bin;
            if (!left) continue;
            const std::span<const int64_t> row = leaf.bins.row(off + bb);
            for (int c = 0; c < num_classes; ++c) {
              child_hist[0].Add(static_cast<ClassLabel>(c), row[c]);
            }
          }
          child_hist[1] = leaf.hist;
          child_hist[1].Subtract(child_hist[0]);
          if (child_hist[0].Total() != best.left_count ||
              child_hist[1].Total() != best.right_count) {
            sink.Record(Status::Corruption(StringPrintf(
                "winner split of node %d covers %lld/%lld records, expected "
                "%lld/%lld",
                leaf.node, static_cast<long long>(child_hist[0].Total()),
                static_cast<long long>(child_hist[1].Total()),
                static_cast<long long>(best.left_count),
                static_cast<long long>(best.right_count))));
            break;
          }

          const int child_depth = tree->node(leaf.node).depth + 1;
          bool active[2];
          for (int side = 0; side < 2; ++side) {
            const ClassHistogram& h = child_hist[side];
            leaf.child_node[side] = tree->AddChild(leaf.node, side == 0, h);
            // Purity pre-test, same rule as the sorted engine's RunW.
            const bool finalized =
                h.IsPure() || h.Total() < options.min_split ||
                (options.max_levels > 0 &&
                 child_depth >= options.max_levels - 1);
            active[side] = !finalized;
          }
          int idx[2] = {-1, -1};
          for (int side = 0; side < 2; ++side) {
            if (!active[side]) continue;
            BinnedLeaf child;
            child.node = leaf.child_node[side];
            child.hist = child_hist[side];
            child.count = child.hist.Total();
            child.parent = static_cast<int>(li);
            child.candidates.resize(static_cast<size_t>(num_attrs));
            child.candidate_bins.assign(static_cast<size_t>(num_attrs), -1);
            idx[side] = static_cast<int>(next.size());
            leaf.child_frontier[side] = idx[side];
            next.push_back(std::move(child));
          }
          if (active[0] && active[1]) {
            // The smaller child is built by scanning, the larger one by
            // subtraction (ties keep left scanning, for determinism).
            const int scan_side =
                next[static_cast<size_t>(idx[1])].count <
                        next[static_cast<size_t>(idx[0])].count
                    ? 1
                    : 0;
            BinnedLeaf& sub = next[static_cast<size_t>(idx[1 - scan_side])];
            sub.scan = false;
            sub.sibling = idx[scan_side];
          }
        }
      }
      TimedBarrierWait(&barrier, counters);

      // S: reassign each record's frontier index with one bin comparison.
      // `bin <= winner_bin` is exactly `value < threshold` by the quantizer
      // invariant, so training partitions and Classify always agree.
      if (!sink.aborted()) {
        PhaseTimer phase(counters, BuildPhase::kSplit);
        TraceSpan span("S", "phase", level_no);
        for (int64_t ci = s_sched.Next(); ci >= 0 && !sink.aborted();
             ci = s_sched.Next()) {
          const int64_t lo = ci * kChunkRecords;
          const int64_t hi = std::min(n, lo + kChunkRecords);
          uint64_t moved = 0;
          for (int64_t t = lo; t < hi; ++t) {
            const int32_t li = leaf_of[static_cast<size_t>(t)];
            if (li < 0) continue;
            const BinnedLeaf& leaf = frontier[static_cast<size_t>(li)];
            if (!leaf.winner.valid()) {
              leaf_of[static_cast<size_t>(t)] = -1;
              continue;
            }
            const uint8_t bin =
                bin_matrix.column(leaf.winner.test.attr)[t];
            const bool left = leaf.winner.test.categorical
                                  ? leaf.winner.test.SubsetContains(bin)
                                  : bin <= leaf.winner_bin;
            leaf_of[static_cast<size_t>(t)] =
                leaf.child_frontier[left ? 0 : 1];
            ++moved;
          }
          counters->records_split.fetch_add(moved, std::memory_order_relaxed);
        }
      }
      TimedBarrierWait(&barrier, counters);

      // Level transition (master): record the processed level, recycle
      // histogram storage, promote the next frontier, re-arm schedulers.
      if (tid == 0) {
        if (!sink.aborted()) {
          int64_t records = 0;
          for (const BinnedLeaf& leaf : frontier) records += leaf.count;
          LevelTraceEntry entry;
          entry.level = tree->node(frontier.front().node).depth;
          entry.leaves = static_cast<int64_t>(frontier.size());
          entry.records = records;
          level_trace->push_back(entry);
          for (BinnedLeaf& p : prev) {
            if (!p.bins.empty()) free_bins.push_back(std::move(p.bins));
          }
          prev = std::move(frontier);
          frontier = std::move(next);
          next.clear();
          if (!frontier.empty()) PlanLevel();
        }
        if (sink.aborted() || frontier.empty()) {
          done.store(true, std::memory_order_release);
        }
      }
      TimedBarrierWait(&barrier, counters);
      ++level_no;
    }
  };

  return RunThreadTeam(threads, &sink, worker);
}

}  // namespace smptree
