// The binned training engine: breadth-first tree growth over quantized
// attributes (binned/quantizer.h). Instead of SPRINT's sorted attribute
// lists, each level runs
//
//   H  build per-leaf (bin x class) histograms -- record-range parallel with
//      per-thread locals reduced at a barrier; each split's larger child is
//      derived by parent-minus-sibling subtraction instead of scanning;
//   E  evaluate splits by sweeping histogram rows, O(bins) per (leaf,attr)
//      -- (leaf,attr) tasks through the dynamic scheduler, reusing the
//      core gini arithmetic over bin counts;
//   W  pick winners and create children (master, as in BASIC);
//   S  reassign each record's leaf index by one bin comparison -- no
//      attribute-list partitioning, no probe, no scratch files.
//
// The engine is exact for categorical attributes (bin == value code) and
// approximate for continuous ones: candidate thresholds come from the
// quantizer's cuts. Where an attribute has at most max_bins distinct values
// the cuts are every adjacent-distinct midpoint, and the winner (attribute,
// impurity, child counts) matches the exact engine bit-for-bit. Accuracy
// deltas in the general case are measured by bench/binned_vs_sorted and
// bounded in binned_builder_test -- reported, never hidden.
//
// Trees are byte-identical across thread counts: candidate evaluation is
// integer-exact per (leaf, attr), and the master reduces winners and numbers
// children in frontier order.

#ifndef SMPTREE_BINNED_BINNED_BUILDER_H_
#define SMPTREE_BINNED_BINNED_BUILDER_H_

#include <vector>

#include "binned/quantizer.h"
#include "core/builder_context.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "util/stats.h"
#include "util/status.h"

namespace smptree {

/// Grows `tree` (which must be empty) from `data` using the binned engine.
/// `quantizer`/`bin_matrix` must have been built from the same dataset.
/// Honors options.num_threads / min_split / max_levels / feature_sampling /
/// gini / max_bins / trace; ignores the sorted engine's algorithm, window,
/// and storage options. H-phase compute lands in counters->h_nanos and
/// bins_scanned counts the boundaries examined by E (the O(bins) work unit).
/// Appends one LevelTraceEntry per processed level to `level_trace`.
Status BuildTreeBinned(const Dataset& data, const Quantizer& quantizer,
                       const BinMatrix& bin_matrix,
                       const BuildOptions& options, DecisionTree* tree,
                       BuildCounters* counters,
                       std::vector<LevelTraceEntry>* level_trace);

}  // namespace smptree

#endif  // SMPTREE_BINNED_BINNED_BUILDER_H_
