// Schema: attribute metadata for a training set. Attributes are continuous
// (ordered domain, float values) or categorical (unordered domain, dense
// value codes with a recorded cardinality and optional value names).

#ifndef SMPTREE_DATA_SCHEMA_H_
#define SMPTREE_DATA_SCHEMA_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace smptree {

enum class AttrType : unsigned char {
  kContinuous,
  kCategorical,
};

/// Metadata for one attribute.
struct AttrInfo {
  std::string name;
  AttrType type = AttrType::kContinuous;
  /// Number of distinct value codes; meaningful for categorical attributes.
  int cardinality = 0;
  /// Optional display names for categorical value codes (size == cardinality
  /// when present).
  std::vector<std::string> value_names;

  bool is_categorical() const { return type == AttrType::kCategorical; }
};

/// Attribute layout of a dataset plus the class-label alphabet.
class Schema {
 public:
  Schema() = default;

  /// Appends a continuous attribute; returns its index.
  int AddContinuous(std::string name);

  /// Appends a categorical attribute with `cardinality` value codes.
  int AddCategorical(std::string name, int cardinality,
                     std::vector<std::string> value_names = {});

  /// Sets the class labels ("Group A", "Group B", ...).
  void SetClassNames(std::vector<std::string> names);

  int num_attrs() const { return static_cast<int>(attrs_.size()); }
  int num_classes() const { return static_cast<int>(class_names_.size()); }

  const AttrInfo& attr(int i) const { return attrs_[i]; }
  const std::vector<std::string>& class_names() const { return class_names_; }
  const std::string& class_name(int label) const { return class_names_[label]; }

  /// Index of the attribute named `name`, or -1.
  int FindAttr(const std::string& name) const;

  /// Validates internal consistency (non-empty, positive cardinalities,
  /// at least two classes).
  Status Validate() const;

 private:
  std::vector<AttrInfo> attrs_;
  std::vector<std::string> class_names_;
};

/// True when `a` and `b` agree on everything Classify depends on:
/// attribute count, per-attribute type and cardinality, and the class
/// alphabet. Attribute and class *names* must match too -- serving clients
/// send categorical values by name. (Shared by the model store's reload
/// compatibility check and the forest's member check.)
bool SchemasCompatible(const Schema& a, const Schema& b);

}  // namespace smptree

#endif  // SMPTREE_DATA_SCHEMA_H_
