#include "data/schema_io.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace smptree {

namespace {

/// Splits on runs of spaces; double quotes group tokens containing spaces
/// ("Group A").
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::string current;
  bool in_quotes = false;
  bool have_token = false;
  for (char c : line) {
    if (c == '"') {
      in_quotes = !in_quotes;
      have_token = true;  // "" is a valid (empty) token
    } else if ((c == ' ' || c == '\t') && !in_quotes) {
      if (have_token || !current.empty()) {
        out.push_back(std::move(current));
        current.clear();
        have_token = false;
      }
    } else {
      current.push_back(c);
    }
  }
  if (have_token || !current.empty()) out.push_back(std::move(current));
  return out;
}

/// Quotes a token when it contains whitespace.
std::string MaybeQuote(const std::string& token) {
  if (token.find(' ') == std::string::npos &&
      token.find('\t') == std::string::npos && !token.empty()) {
    return token;
  }
  return "\"" + token + "\"";
}

}  // namespace

std::string FormatSchemaText(const Schema& schema) {
  std::ostringstream os;
  os << "# smptree schema: " << schema.num_attrs() << " attributes, "
     << schema.num_classes() << " classes\n";
  for (int a = 0; a < schema.num_attrs(); ++a) {
    const AttrInfo& info = schema.attr(a);
    if (info.is_categorical()) {
      os << "attr " << info.name << " categorical " << info.cardinality;
      for (const std::string& v : info.value_names) os << " " << MaybeQuote(v);
      os << "\n";
    } else {
      os << "attr " << info.name << " continuous\n";
    }
  }
  os << "classes";
  for (const std::string& c : schema.class_names()) os << " " << MaybeQuote(c);
  os << "\n";
  return os.str();
}

Result<Schema> ParseSchemaText(const std::string& text) {
  Schema schema;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  bool saw_classes = false;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto tokens = Tokenize(trimmed);
    if (tokens[0] == "attr") {
      if (tokens.size() < 3) {
        return Status::Corruption(
            StringPrintf("line %d: attr needs a name and a type", line_no));
      }
      const std::string& name = tokens[1];
      if (schema.FindAttr(name) >= 0) {
        return Status::Corruption(
            StringPrintf("line %d: duplicate attribute '%s'", line_no,
                         name.c_str()));
      }
      if (tokens[2] == "continuous") {
        schema.AddContinuous(name);
      } else if (tokens[2] == "categorical") {
        if (tokens.size() < 4) {
          return Status::Corruption(StringPrintf(
              "line %d: categorical needs a cardinality", line_no));
        }
        int64_t cardinality = 0;
        if (!ParseInt64(tokens[3], &cardinality) || cardinality < 1 ||
            cardinality > 4096) {  // kMaxCategoricalCardinality
          return Status::Corruption(StringPrintf(
              "line %d: bad cardinality '%s'", line_no, tokens[3].c_str()));
        }
        std::vector<std::string> value_names(tokens.begin() + 4,
                                             tokens.end());
        if (!value_names.empty() &&
            static_cast<int64_t>(value_names.size()) != cardinality) {
          return Status::Corruption(StringPrintf(
              "line %d: %zu value names for cardinality %lld", line_no,
              value_names.size(), static_cast<long long>(cardinality)));
        }
        schema.AddCategorical(name, static_cast<int>(cardinality),
                              std::move(value_names));
      } else {
        return Status::Corruption(StringPrintf(
            "line %d: unknown attribute type '%s'", line_no,
            tokens[2].c_str()));
      }
    } else if (tokens[0] == "classes") {
      if (saw_classes) {
        return Status::Corruption(
            StringPrintf("line %d: duplicate classes line", line_no));
      }
      saw_classes = true;
      schema.SetClassNames(
          std::vector<std::string>(tokens.begin() + 1, tokens.end()));
    } else {
      return Status::Corruption(StringPrintf(
          "line %d: unknown directive '%s'", line_no, tokens[0].c_str()));
    }
  }
  SMPTREE_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

Status WriteSchemaFile(const Schema& schema, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << FormatSchemaText(schema);
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Schema> ReadSchemaFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseSchemaText(buffer.str());
}

}  // namespace smptree
