// Synthetic training-set generator reimplementing the classification
// benchmark of Agrawal, Imielinski & Swami (IEEE TKDE 5(6), 1993) -- the
// generator the paper's evaluation uses. Ten classification functions of
// increasing complexity label each tuple "Group A" or "Group B" from nine
// base attributes:
//
//   salary      continuous  uniform [20000, 150000]
//   commission  continuous  0 if salary >= 75000, else uniform [10000, 75000]
//   age         continuous  uniform [20, 80]
//   elevel      categorical uniform {0..4}           (education level)
//   car         categorical uniform {1..20}          (make of car)
//   zipcode     categorical uniform {0..8}
//   hvalue      continuous  uniform [0.5k, 1.5k] * 100000, k = 9 - zipcode
//   hyears      continuous  uniform [1, 30]
//   hloan       continuous  uniform [0, 500000]
//
// The paper's datasets are named Fx-Ay-DzK: function x, y attributes,
// z thousand tuples. Attribute counts beyond nine are reached by padding
// with irrelevant attributes (alternating continuous and categorical), which
// is what makes the "number of attributes" axis of Figures 8-11 meaningful:
// the extra lists must still be evaluated and split every level.
//
// Function 1 yields small trees; function 7 (a linear surface in
// salary+commission and loan) yields large trees -- the complexity contrast
// the evaluation section leans on.

#ifndef SMPTREE_DATA_SYNTHETIC_H_
#define SMPTREE_DATA_SYNTHETIC_H_

#include <cstdint>
#include <string>

#include "data/dataset.h"
#include "util/random.h"
#include "util/status.h"

namespace smptree {

/// Generation parameters.
struct SyntheticConfig {
  int function = 1;         ///< classification function, 1..10
  int num_attrs = 9;        ///< total attributes (>= 9; extras are noise)
  int64_t num_tuples = 1000;
  uint64_t seed = 42;
  /// Probability of flipping a tuple's label (classification noise). The
  /// original benchmark perturbs values; label noise exercises the same
  /// pruning behaviour and keeps the functions exact. 0 = noise-free.
  double label_noise = 0.0;

  /// Dataset name in the paper's notation, e.g. "F7-A32-D250K".
  std::string Name() const;
};

/// Generates a dataset per `config`. Deterministic in (seed, config).
Result<Dataset> GenerateSynthetic(const SyntheticConfig& config);

/// Generates one Agrawal tuple in place: fills `values` (sized to
/// `schema.num_attrs()`, a SyntheticSchema) and returns the label, advancing
/// `rng` exactly as GenerateSynthetic does per tuple — the streaming source
/// reuses this so a generator stream and a materialized dataset built from
/// the same seed agree tuple for tuple.
ClassLabel GenerateSyntheticTuple(const Schema& schema, int function,
                                  double label_noise, Random* rng,
                                  TupleValues* values);

/// The nine-attribute base schema padded to `num_attrs`, with classes
/// {"Group A", "Group B"}.
Schema SyntheticSchema(int num_attrs);

/// Evaluates classification function `function` (1..10) on base attribute
/// values; exposed for tests that verify the generator's labels.
/// `values` must follow SyntheticSchema attribute order.
bool SyntheticGroupA(int function, const TupleValues& values);

/// Number of defined classification functions (10).
int NumSyntheticFunctions();

/// Multiclass extension: the published benchmark is two-class; this
/// generator quantizes the function-9-style disposable-income surface into
/// `num_classes` bands, producing k-way problems over the same attribute
/// space (used to exercise the k-class histogram and gini paths end to
/// end).
struct MulticlassConfig {
  int num_classes = 4;  ///< 2..16
  int num_attrs = 9;    ///< >= 9, padded as in SyntheticSchema
  int64_t num_tuples = 1000;
  uint64_t seed = 42;
  double label_noise = 0.0;  ///< probability of re-rolling a label uniformly
};

/// The padded schema with classes {"band 0", ..., "band k-1"}.
Schema MulticlassSchema(int num_attrs, int num_classes);

/// Band index for base attribute values (exposed for tests).
int MulticlassBand(const TupleValues& values, int num_classes);

Result<Dataset> GenerateMulticlassSynthetic(const MulticlassConfig& config);

}  // namespace smptree

#endif  // SMPTREE_DATA_SYNTHETIC_H_
