// Dataset: columnar training data. Continuous attributes are float columns;
// categorical attributes are dense int32 code columns; class labels are a
// ClassLabel column. Column-major layout matches how SPRINT consumes the
// data (one attribute list per attribute).

#ifndef SMPTREE_DATA_DATASET_H_
#define SMPTREE_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/records.h"
#include "data/schema.h"
#include "util/status.h"

namespace smptree {

/// One training tuple's attribute values, used for row-wise access
/// (prediction, CSV). `values[i]` interprets per schema attr type.
using TupleValues = std::vector<AttrValue>;

/// Columnar training set.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  int64_t num_tuples() const { return num_tuples_; }
  int num_attrs() const { return schema_.num_attrs(); }
  int num_classes() const { return schema_.num_classes(); }

  /// Appends one tuple. `values.size()` must equal num_attrs(); `label` must
  /// be < num_classes().
  Status Append(const TupleValues& values, ClassLabel label);

  /// Reserves space for `n` tuples.
  void Reserve(int64_t n);

  /// Raw column access (values interpreted per attribute type).
  std::span<const AttrValue> column(int attr) const {
    return columns_[attr];
  }
  std::span<const ClassLabel> labels() const { return labels_; }

  AttrValue value(int64_t tuple, int attr) const {
    return columns_[attr][tuple];
  }
  ClassLabel label(int64_t tuple) const { return labels_[tuple]; }

  /// Gathers one tuple's values row-wise.
  TupleValues Tuple(int64_t tuple) const;

  /// Class frequency histogram over the whole set.
  std::vector<int64_t> ClassCounts() const;

  /// Approximate in-memory size in bytes (for the Table 1 "DB size" column).
  uint64_t SizeBytes() const;

  /// Fails unless every categorical code is within its cardinality and every
  /// label is within the class alphabet.
  Status Validate() const;

 private:
  Schema schema_;
  std::vector<std::vector<AttrValue>> columns_;
  std::vector<ClassLabel> labels_;
  int64_t num_tuples_ = 0;
};

}  // namespace smptree

#endif  // SMPTREE_DATA_DATASET_H_
