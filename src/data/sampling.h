// Train/test splitting and shuffling utilities for the examples and the
// accuracy experiments.

#ifndef SMPTREE_DATA_SAMPLING_H_
#define SMPTREE_DATA_SAMPLING_H_

#include <cstdint>
#include <utility>

#include "data/dataset.h"

namespace smptree {

/// A train/test partition of a dataset.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Randomly partitions `data` so that about `test_fraction` of the tuples
/// land in the test set. Deterministic in `seed`.
Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      double test_fraction, uint64_t seed);

/// Returns a copy of `data` with tuples in a random order (Fisher-Yates,
/// deterministic in `seed`).
Result<Dataset> ShuffleDataset(const Dataset& data, uint64_t seed);

/// Returns the first `n` tuples (n clamped to the dataset size).
Dataset TakePrefix(const Dataset& data, int64_t n);

}  // namespace smptree

#endif  // SMPTREE_DATA_SAMPLING_H_
