// Train/test splitting, shuffling and resampling utilities for the
// examples, the accuracy experiments, and the ensemble builder.

#ifndef SMPTREE_DATA_SAMPLING_H_
#define SMPTREE_DATA_SAMPLING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/dataset.h"

namespace smptree {

/// A train/test partition of a dataset.
struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

/// Randomly partitions `data` so that about `test_fraction` of the tuples
/// land in the test set. Deterministic in `seed`.
Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      double test_fraction, uint64_t seed);

/// Like SplitTrainTest but stratified: the split is performed per class, so
/// train and test preserve the class proportions of `data` (up to rounding;
/// each class contributes round(test_fraction * class_count) test tuples).
/// Tuples keep their original relative order within each side.
/// Deterministic in `seed`.
Result<TrainTestSplit> StratifiedSplitTrainTest(const Dataset& data,
                                                double test_fraction,
                                                uint64_t seed);

/// A with-replacement bootstrap resample of a dataset plus the complement
/// mask the resample did not touch (the ensemble builder's out-of-bag set).
struct BootstrapResult {
  Dataset sample;         ///< num_tuples() draws, with replacement
  std::vector<bool> oob;  ///< size = source tuples; true iff never drawn
};

/// Draws `data.num_tuples()` tuples from `data` with replacement and
/// records which source tuples were never drawn (the out-of-bag mask).
/// Draw order is source-tuple order (the sample is sorted by source index),
/// which keeps resamples of the same dataset byte-comparable across
/// platforms. Deterministic in `seed`.
Result<BootstrapResult> BootstrapSample(const Dataset& data, uint64_t seed);

/// Returns a copy of `data` with tuples in a random order (Fisher-Yates,
/// deterministic in `seed`).
Result<Dataset> ShuffleDataset(const Dataset& data, uint64_t seed);

/// Returns the first `n` tuples (n clamped to the dataset size).
Dataset TakePrefix(const Dataset& data, int64_t n);

}  // namespace smptree

#endif  // SMPTREE_DATA_SAMPLING_H_
