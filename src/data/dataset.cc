#include "data/dataset.h"

#include "util/string_util.h"

namespace smptree {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.num_attrs());
}

Status Dataset::Append(const TupleValues& values, ClassLabel label) {
  if (static_cast<int>(values.size()) != num_attrs()) {
    return Status::InvalidArgument(
        StringPrintf("tuple has %zu values, schema has %d attributes",
                     values.size(), num_attrs()));
  }
  if (label >= num_classes()) {
    return Status::InvalidArgument(
        StringPrintf("label %d out of range [0,%d)", label, num_classes()));
  }
  for (int a = 0; a < num_attrs(); ++a) {
    columns_[a].push_back(values[a]);
  }
  labels_.push_back(label);
  ++num_tuples_;
  return Status::OK();
}

void Dataset::Reserve(int64_t n) {
  for (auto& col : columns_) col.reserve(n);
  labels_.reserve(n);
}

TupleValues Dataset::Tuple(int64_t tuple) const {
  TupleValues out(num_attrs());
  for (int a = 0; a < num_attrs(); ++a) out[a] = columns_[a][tuple];
  return out;
}

std::vector<int64_t> Dataset::ClassCounts() const {
  std::vector<int64_t> counts(num_classes(), 0);
  for (ClassLabel l : labels_) ++counts[l];
  return counts;
}

uint64_t Dataset::SizeBytes() const {
  return static_cast<uint64_t>(num_tuples_) *
         (static_cast<uint64_t>(num_attrs()) * sizeof(AttrValue) +
          sizeof(ClassLabel));
}

Status Dataset::Validate() const {
  for (int a = 0; a < num_attrs(); ++a) {
    const AttrInfo& info = schema_.attr(a);
    if (!info.is_categorical()) continue;
    for (int64_t t = 0; t < num_tuples_; ++t) {
      const int32_t code = columns_[a][t].cat;
      if (code < 0 || code >= info.cardinality) {
        return Status::Corruption(StringPrintf(
            "tuple %lld attr '%s': code %d outside cardinality %d",
            static_cast<long long>(t), info.name.c_str(), code,
            info.cardinality));
      }
    }
  }
  for (int64_t t = 0; t < num_tuples_; ++t) {
    if (labels_[t] >= num_classes()) {
      return Status::Corruption(
          StringPrintf("tuple %lld: label %d outside %d classes",
                       static_cast<long long>(t), labels_[t], num_classes()));
    }
  }
  return Status::OK();
}

}  // namespace smptree
