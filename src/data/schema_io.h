// Text serialization for schemas, so models and datasets can be described
// in files (used by the smptree CLI). Line-oriented format:
//
//   # comments and blank lines are ignored
//   attr <name> continuous
//   attr <name> categorical <cardinality> [value names...]
//   classes <name> <name> ...
//
// Attribute order in the file is the attribute order in the schema.

#ifndef SMPTREE_DATA_SCHEMA_IO_H_
#define SMPTREE_DATA_SCHEMA_IO_H_

#include <string>

#include "data/schema.h"
#include "util/status.h"

namespace smptree {

/// Renders `schema` in the format above.
std::string FormatSchemaText(const Schema& schema);

/// Parses the format above; the result passes Schema::Validate().
Result<Schema> ParseSchemaText(const std::string& text);

/// File wrappers (real filesystem).
Status WriteSchemaFile(const Schema& schema, const std::string& path);
Result<Schema> ReadSchemaFile(const std::string& path);

}  // namespace smptree

#endif  // SMPTREE_DATA_SCHEMA_IO_H_
