#include "data/synthetic.h"

#include <cassert>
#include <cmath>

#include "util/random.h"
#include "util/string_util.h"

namespace smptree {

namespace {

// Base attribute indices in SyntheticSchema order.
enum BaseAttr {
  kSalary = 0,
  kCommission,
  kAge,
  kElevel,
  kCar,
  kZipcode,
  kHvalue,
  kHyears,
  kHloan,
  kNumBaseAttrs,
};

bool InRange(double v, double lo, double hi) { return v >= lo && v <= hi; }

// Disposable-income helpers shared by functions 7-10.
double Disposable(double salary, double commission, double loan,
                  double elevel, double equity, int function) {
  const double income = 0.67 * (salary + commission);
  switch (function) {
    case 7:
      return income - 0.2 * loan - 20000.0;
    case 8:
      return income - 5000.0 * elevel - 20000.0;
    case 9:
      return income - 5000.0 * elevel - 0.2 * loan - 10000.0;
    case 10:
      return income - 5000.0 * elevel + 0.2 * equity - 10000.0;
    default:
      assert(false);
      return 0.0;
  }
}

}  // namespace

std::string SyntheticConfig::Name() const {
  if (num_tuples % 1000 == 0) {
    return StringPrintf("F%d-A%d-D%lldK", function, num_attrs,
                        static_cast<long long>(num_tuples / 1000));
  }
  return StringPrintf("F%d-A%d-D%lld", function, num_attrs,
                      static_cast<long long>(num_tuples));
}

int NumSyntheticFunctions() { return 10; }

Schema SyntheticSchema(int num_attrs) {
  Schema schema;
  schema.AddContinuous("salary");
  schema.AddContinuous("commission");
  schema.AddContinuous("age");
  schema.AddCategorical("elevel", 5);
  schema.AddCategorical("car", 20);
  schema.AddCategorical("zipcode", 9);
  schema.AddContinuous("hvalue");
  schema.AddContinuous("hyears");
  schema.AddContinuous("hloan");
  // Irrelevant padding attributes, alternating continuous / categorical with
  // varied cardinalities so the categorical split-evaluation path is also
  // exercised by the padded workloads.
  static const int kPadCards[] = {2, 5, 10, 20};
  int pad = 0;
  while (schema.num_attrs() < num_attrs) {
    if (pad % 2 == 0) {
      schema.AddContinuous(StringPrintf("noise_c%d", pad));
    } else {
      schema.AddCategorical(StringPrintf("noise_d%d", pad),
                            kPadCards[(pad / 2) % 4]);
    }
    ++pad;
  }
  schema.SetClassNames({"Group A", "Group B"});
  return schema;
}

bool SyntheticGroupA(int function, const TupleValues& values) {
  const double salary = values[kSalary].f;
  const double commission = values[kCommission].f;
  const double age = values[kAge].f;
  const int elevel = values[kElevel].cat;
  const double hvalue = values[kHvalue].f;
  const double hyears = values[kHyears].f;
  const double loan = values[kHloan].f;

  switch (function) {
    case 1:
      return age < 40.0 || age >= 60.0;
    case 2:
      if (age < 40.0) return InRange(salary, 50000, 100000);
      if (age < 60.0) return InRange(salary, 75000, 125000);
      return InRange(salary, 25000, 75000);
    case 3:
      if (age < 40.0) return elevel >= 0 && elevel <= 1;
      if (age < 60.0) return elevel >= 1 && elevel <= 3;
      return elevel >= 2 && elevel <= 4;
    case 4:
      if (age < 40.0) {
        return (elevel >= 0 && elevel <= 1) ? InRange(salary, 25000, 75000)
                                            : InRange(salary, 50000, 100000);
      }
      if (age < 60.0) {
        return (elevel >= 1 && elevel <= 3) ? InRange(salary, 50000, 100000)
                                            : InRange(salary, 75000, 125000);
      }
      return (elevel >= 2 && elevel <= 4) ? InRange(salary, 50000, 100000)
                                          : InRange(salary, 25000, 75000);
    case 5:
      if (age < 40.0) {
        return InRange(salary, 50000, 100000) ? InRange(loan, 100000, 300000)
                                              : InRange(loan, 200000, 400000);
      }
      if (age < 60.0) {
        return InRange(salary, 75000, 125000) ? InRange(loan, 200000, 400000)
                                              : InRange(loan, 300000, 500000);
      }
      return InRange(salary, 25000, 75000) ? InRange(loan, 300000, 500000)
                                           : InRange(loan, 100000, 300000);
    case 6: {
      const double total = salary + commission;
      if (age < 40.0) return InRange(total, 50000, 100000);
      if (age < 60.0) return InRange(total, 75000, 125000);
      return InRange(total, 25000, 75000);
    }
    case 7:
    case 8:
    case 9:
    case 10: {
      const double equity =
          hyears >= 20.0 ? 0.1 * hvalue * (hyears - 20.0) : 0.0;
      return Disposable(salary, commission, loan, elevel, equity, function) >
             0.0;
    }
    default:
      assert(false && "function must be in 1..10");
      return false;
  }
}

Schema MulticlassSchema(int num_attrs, int num_classes) {
  Schema schema = SyntheticSchema(num_attrs);
  std::vector<std::string> names;
  names.reserve(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    names.push_back(StringPrintf("band %d", c));
  }
  schema.SetClassNames(std::move(names));
  return schema;
}

int MulticlassBand(const TupleValues& values, int num_classes) {
  const double disposable =
      0.67 * (values[kSalary].f + values[kCommission].f) -
      5000.0 * values[kElevel].cat - 0.2 * values[kHloan].f - 10000.0;
  // Fixed thresholds inside the reachable disposable-income range (about
  // [-110K, 90.5K]; the maximum is 0.67*(75K+75K)-10K); band 0 is lowest.
  const double lo = -60000.0;
  const double hi = 70000.0;
  const double step = (hi - lo) / (num_classes - 1);
  int band = 0;
  for (double threshold = lo + step; band < num_classes - 1;
       threshold += step) {
    if (disposable < threshold) break;
    ++band;
  }
  return band;
}

Result<Dataset> GenerateMulticlassSynthetic(const MulticlassConfig& config) {
  if (config.num_classes < 2 || config.num_classes > 16) {
    return Status::InvalidArgument("num_classes outside [2,16]");
  }
  if (config.num_attrs < kNumBaseAttrs) {
    return Status::InvalidArgument("need at least 9 attributes");
  }
  if (config.label_noise < 0.0 || config.label_noise > 1.0) {
    return Status::InvalidArgument("label_noise outside [0,1]");
  }

  const Schema schema = MulticlassSchema(config.num_attrs, config.num_classes);
  Dataset data(schema);
  data.Reserve(config.num_tuples);
  Random rng(config.seed);

  TupleValues values(config.num_attrs);
  for (int64_t t = 0; t < config.num_tuples; ++t) {
    const double salary = rng.UniformDouble(20000.0, 150000.0);
    const double commission =
        salary >= 75000.0 ? 0.0 : rng.UniformDouble(10000.0, 75000.0);
    const int32_t zipcode = static_cast<int32_t>(rng.Uniform(9));
    const double k = static_cast<double>(9 - zipcode);
    values[kSalary].f = static_cast<float>(salary);
    values[kCommission].f = static_cast<float>(commission);
    values[kAge].f = static_cast<float>(rng.UniformDouble(20.0, 80.0));
    values[kElevel].cat = static_cast<int32_t>(rng.Uniform(5));
    values[kCar].cat = static_cast<int32_t>(rng.Uniform(20));
    values[kZipcode].cat = zipcode;
    values[kHvalue].f =
        static_cast<float>(rng.UniformDouble(0.5 * k, 1.5 * k) * 100000.0);
    values[kHyears].f = static_cast<float>(rng.UniformDouble(1.0, 30.0));
    values[kHloan].f = static_cast<float>(rng.UniformDouble(0.0, 500000.0));
    for (int a = kNumBaseAttrs; a < config.num_attrs; ++a) {
      if (schema.attr(a).is_categorical()) {
        values[a].cat = static_cast<int32_t>(
            rng.Uniform(static_cast<uint64_t>(schema.attr(a).cardinality)));
      } else {
        values[a].f = static_cast<float>(rng.UniformDouble(0.0, 100000.0));
      }
    }
    int band = MulticlassBand(values, config.num_classes);
    if (config.label_noise > 0.0 && rng.Bernoulli(config.label_noise)) {
      band = static_cast<int>(
          rng.Uniform(static_cast<uint64_t>(config.num_classes)));
    }
    SMPTREE_RETURN_IF_ERROR(
        data.Append(values, static_cast<ClassLabel>(band)));
  }
  return data;
}

Result<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.function < 1 || config.function > NumSyntheticFunctions()) {
    return Status::InvalidArgument(StringPrintf(
        "classification function %d outside 1..10", config.function));
  }
  if (config.num_attrs < kNumBaseAttrs) {
    return Status::InvalidArgument(StringPrintf(
        "need at least %d attributes, got %d", int{kNumBaseAttrs},
        config.num_attrs));
  }
  if (config.num_tuples < 0) {
    return Status::InvalidArgument("negative tuple count");
  }
  if (config.label_noise < 0.0 || config.label_noise > 1.0) {
    return Status::InvalidArgument("label_noise outside [0,1]");
  }

  const Schema schema = SyntheticSchema(config.num_attrs);
  Dataset data(schema);
  data.Reserve(config.num_tuples);
  Random rng(config.seed);

  TupleValues values(config.num_attrs);
  for (int64_t t = 0; t < config.num_tuples; ++t) {
    const ClassLabel label = GenerateSyntheticTuple(
        schema, config.function, config.label_noise, &rng, &values);
    SMPTREE_RETURN_IF_ERROR(data.Append(values, label));
  }
  return data;
}

ClassLabel GenerateSyntheticTuple(const Schema& schema, int function,
                                  double label_noise, Random* rng,
                                  TupleValues* out) {
  TupleValues& values = *out;
  const int num_attrs = schema.num_attrs();
  const double salary = rng->UniformDouble(20000.0, 150000.0);
  const double commission =
      salary >= 75000.0 ? 0.0 : rng->UniformDouble(10000.0, 75000.0);
  const int32_t elevel = static_cast<int32_t>(rng->Uniform(5));
  const int32_t car = static_cast<int32_t>(rng->Uniform(20));
  const int32_t zipcode = static_cast<int32_t>(rng->Uniform(9));
  const double k = static_cast<double>(9 - zipcode);
  const double hvalue = rng->UniformDouble(0.5 * k, 1.5 * k) * 100000.0;

  values[kSalary].f = static_cast<float>(salary);
  values[kCommission].f = static_cast<float>(commission);
  values[kAge].f = static_cast<float>(rng->UniformDouble(20.0, 80.0));
  values[kElevel].cat = elevel;
  values[kCar].cat = car;
  values[kZipcode].cat = zipcode;
  values[kHvalue].f = static_cast<float>(hvalue);
  values[kHyears].f = static_cast<float>(rng->UniformDouble(1.0, 30.0));
  values[kHloan].f = static_cast<float>(rng->UniformDouble(0.0, 500000.0));

  for (int a = kNumBaseAttrs; a < num_attrs; ++a) {
    if (schema.attr(a).is_categorical()) {
      values[a].cat = static_cast<int32_t>(
          rng->Uniform(static_cast<uint64_t>(schema.attr(a).cardinality)));
    } else {
      values[a].f = static_cast<float>(rng->UniformDouble(0.0, 100000.0));
    }
  }

  bool group_a = SyntheticGroupA(function, values);
  if (label_noise > 0.0 && rng->Bernoulli(label_noise)) {
    group_a = !group_a;
  }
  return group_a ? 0 : 1;
}

}  // namespace smptree
