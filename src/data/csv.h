// CSV import/export for Dataset. The format is one header line with
// attribute names plus a final "class" column; categorical values and class
// labels are written by name when the schema has names, otherwise by code.

#ifndef SMPTREE_DATA_CSV_H_
#define SMPTREE_DATA_CSV_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace smptree {

/// Writes `data` as CSV to `path` (real filesystem).
Status WriteCsv(const Dataset& data, const std::string& path);

/// Reads a CSV written by WriteCsv (or hand-authored with the same layout)
/// against a known schema. The header is validated against the schema.
Result<Dataset> ReadCsv(const Schema& schema, const std::string& path);

/// Serializes to a CSV string (used by tests and small examples).
std::string ToCsvString(const Dataset& data);

/// Parses from a CSV string.
Result<Dataset> FromCsvString(const Schema& schema, const std::string& text);

}  // namespace smptree

#endif  // SMPTREE_DATA_CSV_H_
