#include "data/schema.h"

#include "util/string_util.h"

namespace smptree {

int Schema::AddContinuous(std::string name) {
  attrs_.push_back(AttrInfo{std::move(name), AttrType::kContinuous, 0, {}});
  return num_attrs() - 1;
}

int Schema::AddCategorical(std::string name, int cardinality,
                           std::vector<std::string> value_names) {
  attrs_.push_back(AttrInfo{std::move(name), AttrType::kCategorical,
                            cardinality, std::move(value_names)});
  return num_attrs() - 1;
}

void Schema::SetClassNames(std::vector<std::string> names) {
  class_names_ = std::move(names);
}

int Schema::FindAttr(const std::string& name) const {
  for (int i = 0; i < num_attrs(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return -1;
}

Status Schema::Validate() const {
  if (attrs_.empty()) {
    return Status::InvalidArgument("schema has no attributes");
  }
  if (num_classes() < 2) {
    return Status::InvalidArgument("schema needs at least two classes");
  }
  for (int i = 0; i < num_attrs(); ++i) {
    const AttrInfo& a = attrs_[i];
    if (a.name.empty()) {
      return Status::InvalidArgument(StringPrintf("attribute %d unnamed", i));
    }
    if (a.is_categorical()) {
      if (a.cardinality < 1) {
        return Status::InvalidArgument(StringPrintf(
            "categorical attribute '%s' has cardinality %d", a.name.c_str(),
            a.cardinality));
      }
      if (!a.value_names.empty() &&
          static_cast<int>(a.value_names.size()) != a.cardinality) {
        return Status::InvalidArgument(StringPrintf(
            "attribute '%s': %zu value names for cardinality %d",
            a.name.c_str(), a.value_names.size(), a.cardinality));
      }
    }
  }
  return Status::OK();
}

bool SchemasCompatible(const Schema& a, const Schema& b) {
  if (a.num_attrs() != b.num_attrs()) return false;
  if (a.num_classes() != b.num_classes()) return false;
  for (int i = 0; i < a.num_attrs(); ++i) {
    const AttrInfo& x = a.attr(i);
    const AttrInfo& y = b.attr(i);
    if (x.name != y.name || x.type != y.type) return false;
    if (x.is_categorical() && x.cardinality != y.cardinality) return false;
  }
  for (int c = 0; c < a.num_classes(); ++c) {
    if (a.class_names()[c] != b.class_names()[c]) return false;
  }
  return true;
}

}  // namespace smptree
