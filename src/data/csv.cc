#include "data/csv.h"

#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace smptree {

namespace {

std::string ValueToString(const Schema& schema, int attr, AttrValue v) {
  const AttrInfo& info = schema.attr(attr);
  if (info.is_categorical()) {
    if (!info.value_names.empty() && v.cat >= 0 &&
        v.cat < static_cast<int32_t>(info.value_names.size())) {
      return info.value_names[v.cat];
    }
    return StringPrintf("%d", v.cat);
  }
  if (IsMissing(v.f)) return "?";
  return StringPrintf("%.9g", static_cast<double>(v.f));
}

Status ParseValue(const Schema& schema, int attr, std::string_view text,
                  AttrValue* out) {
  const AttrInfo& info = schema.attr(attr);
  // "?" marks a missing value (ARFF/UCI convention). Continuous attributes
  // use the canonical missing sentinel; categorical schemas must declare an
  // explicit value (e.g. "unknown") instead, so "?" there is rejected by
  // the normal lookup below.
  if (!info.is_categorical() && text == "?") {
    out->f = kMissingValue;
    return Status::OK();
  }
  if (info.is_categorical()) {
    // Try a value name first, then a numeric code.
    for (size_t i = 0; i < info.value_names.size(); ++i) {
      if (info.value_names[i] == text) {
        out->cat = static_cast<int32_t>(i);
        return Status::OK();
      }
    }
    int64_t code = 0;
    if (!ParseInt64(text, &code) || code < 0 || code >= info.cardinality) {
      return Status::Corruption(StringPrintf(
          "bad categorical value '%.*s' for attribute '%s'",
          static_cast<int>(text.size()), text.data(), info.name.c_str()));
    }
    out->cat = static_cast<int32_t>(code);
    return Status::OK();
  }
  double v = 0.0;
  if (!ParseDouble(text, &v)) {
    return Status::Corruption(StringPrintf(
        "bad continuous value '%.*s' for attribute '%s'",
        static_cast<int>(text.size()), text.data(), info.name.c_str()));
  }
  out->f = static_cast<float>(v);
  return Status::OK();
}

Result<Dataset> ParseCsv(const Schema& schema, std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty CSV input");
  }
  const auto header = SplitString(TrimWhitespace(line), ',');
  if (static_cast<int>(header.size()) != schema.num_attrs() + 1) {
    return Status::Corruption(StringPrintf(
        "header has %zu columns, schema expects %d", header.size(),
        schema.num_attrs() + 1));
  }
  for (int a = 0; a < schema.num_attrs(); ++a) {
    if (std::string(TrimWhitespace(header[a])) != schema.attr(a).name) {
      return Status::Corruption(
          StringPrintf("header column %d is '%s', schema expects '%s'", a,
                       header[a].c_str(), schema.attr(a).name.c_str()));
    }
  }

  Dataset data(schema);
  TupleValues values(schema.num_attrs());
  int64_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    const auto fields = SplitString(trimmed, ',');
    if (static_cast<int>(fields.size()) != schema.num_attrs() + 1) {
      return Status::Corruption(
          StringPrintf("line %lld: %zu fields, expected %d",
                       static_cast<long long>(line_no), fields.size(),
                       schema.num_attrs() + 1));
    }
    for (int a = 0; a < schema.num_attrs(); ++a) {
      SMPTREE_RETURN_IF_ERROR(
          ParseValue(schema, a, TrimWhitespace(fields[a]), &values[a]));
    }
    const std::string_view label_text = TrimWhitespace(fields.back());
    int label = -1;
    for (int c = 0; c < schema.num_classes(); ++c) {
      if (schema.class_name(c) == label_text) {
        label = c;
        break;
      }
    }
    if (label < 0) {
      int64_t code = 0;
      if (ParseInt64(label_text, &code) && code >= 0 &&
          code < schema.num_classes()) {
        label = static_cast<int>(code);
      }
    }
    if (label < 0) {
      return Status::Corruption(
          StringPrintf("line %lld: unknown class '%.*s'",
                       static_cast<long long>(line_no),
                       static_cast<int>(label_text.size()), label_text.data()));
    }
    SMPTREE_RETURN_IF_ERROR(
        data.Append(values, static_cast<ClassLabel>(label)));
  }
  return data;
}

void EmitCsv(const Dataset& data, std::ostream& out) {
  const Schema& schema = data.schema();
  for (int a = 0; a < schema.num_attrs(); ++a) {
    out << schema.attr(a).name << ',';
  }
  out << "class\n";
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    for (int a = 0; a < schema.num_attrs(); ++a) {
      out << ValueToString(schema, a, data.value(t, a)) << ',';
    }
    out << schema.class_name(data.label(t)) << '\n';
  }
}

}  // namespace

Status WriteCsv(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  EmitCsv(data, out);
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

Result<Dataset> ReadCsv(const Schema& schema, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  return ParseCsv(schema, in);
}

std::string ToCsvString(const Dataset& data) {
  std::ostringstream os;
  EmitCsv(data, os);
  return os.str();
}

Result<Dataset> FromCsvString(const Schema& schema, const std::string& text) {
  std::istringstream is(text);
  return ParseCsv(schema, is);
}

}  // namespace smptree
