#include "data/sampling.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace smptree {

Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      double test_fraction, uint64_t seed) {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    return Status::InvalidArgument("test_fraction outside [0,1]");
  }
  Random rng(seed);
  TrainTestSplit split{Dataset(data.schema()), Dataset(data.schema())};
  TupleValues values;
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    values = data.Tuple(t);
    Dataset& target =
        rng.Bernoulli(test_fraction) ? split.test : split.train;
    SMPTREE_RETURN_IF_ERROR(target.Append(values, data.label(t)));
  }
  return split;
}

Result<TrainTestSplit> StratifiedSplitTrainTest(const Dataset& data,
                                                double test_fraction,
                                                uint64_t seed) {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    return Status::InvalidArgument("test_fraction outside [0,1]");
  }
  const int num_classes = data.num_classes();
  // Collect tuple indices per class, then mark each class's test picks by
  // shuffling its index list (deterministic in seed, varied per class) and
  // taking a rounded share from the front.
  std::vector<std::vector<int64_t>> by_class(
      static_cast<size_t>(num_classes));
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    by_class[static_cast<size_t>(data.label(t))].push_back(t);
  }
  std::vector<bool> to_test(static_cast<size_t>(data.num_tuples()), false);
  Random rng(seed);
  for (int c = 0; c < num_classes; ++c) {
    std::vector<int64_t>& members = by_class[static_cast<size_t>(c)];
    for (int64_t i = static_cast<int64_t>(members.size()) - 1; i > 0; --i) {
      const int64_t j = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(i) + 1));
      std::swap(members[static_cast<size_t>(i)],
                members[static_cast<size_t>(j)]);
    }
    const int64_t take = static_cast<int64_t>(
        test_fraction * static_cast<double>(members.size()) + 0.5);
    for (int64_t i = 0; i < take; ++i) {
      to_test[static_cast<size_t>(members[static_cast<size_t>(i)])] = true;
    }
  }
  TrainTestSplit split{Dataset(data.schema()), Dataset(data.schema())};
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    Dataset& target =
        to_test[static_cast<size_t>(t)] ? split.test : split.train;
    SMPTREE_RETURN_IF_ERROR(target.Append(data.Tuple(t), data.label(t)));
  }
  return split;
}

Result<BootstrapResult> BootstrapSample(const Dataset& data, uint64_t seed) {
  const int64_t n = data.num_tuples();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  // Draw counts per source tuple, then emit draws in source order: the
  // resample content depends only on the multiset of draws, and the sorted
  // order makes equal-seed resamples byte-identical however they are built.
  std::vector<int32_t> draws(static_cast<size_t>(n), 0);
  Random rng(seed);
  for (int64_t i = 0; i < n; ++i) {
    ++draws[static_cast<size_t>(rng.Uniform(static_cast<uint64_t>(n)))];
  }
  BootstrapResult result{Dataset(data.schema()),
                         std::vector<bool>(static_cast<size_t>(n), false)};
  result.sample.Reserve(n);
  for (int64_t t = 0; t < n; ++t) {
    const int32_t copies = draws[static_cast<size_t>(t)];
    if (copies == 0) {
      result.oob[static_cast<size_t>(t)] = true;
      continue;
    }
    const TupleValues values = data.Tuple(t);
    for (int32_t c = 0; c < copies; ++c) {
      SMPTREE_RETURN_IF_ERROR(result.sample.Append(values, data.label(t)));
    }
  }
  return result;
}

Result<Dataset> ShuffleDataset(const Dataset& data, uint64_t seed) {
  std::vector<int64_t> order(data.num_tuples());
  std::iota(order.begin(), order.end(), 0);
  Random rng(seed);
  for (int64_t i = data.num_tuples() - 1; i > 0; --i) {
    const int64_t j = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(i) + 1));
    std::swap(order[i], order[j]);
  }
  Dataset out(data.schema());
  out.Reserve(data.num_tuples());
  for (int64_t t : order) {
    SMPTREE_RETURN_IF_ERROR(out.Append(data.Tuple(t), data.label(t)));
  }
  return out;
}

Dataset TakePrefix(const Dataset& data, int64_t n) {
  n = std::min(n, data.num_tuples());
  Dataset out(data.schema());
  out.Reserve(n);
  for (int64_t t = 0; t < n; ++t) {
    Status s = out.Append(data.Tuple(t), data.label(t));
    (void)s;  // append into a fresh same-schema dataset cannot fail
  }
  return out;
}

}  // namespace smptree
