#include "data/sampling.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace smptree {

Result<TrainTestSplit> SplitTrainTest(const Dataset& data,
                                      double test_fraction, uint64_t seed) {
  if (test_fraction < 0.0 || test_fraction > 1.0) {
    return Status::InvalidArgument("test_fraction outside [0,1]");
  }
  Random rng(seed);
  TrainTestSplit split{Dataset(data.schema()), Dataset(data.schema())};
  TupleValues values;
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    values = data.Tuple(t);
    Dataset& target =
        rng.Bernoulli(test_fraction) ? split.test : split.train;
    SMPTREE_RETURN_IF_ERROR(target.Append(values, data.label(t)));
  }
  return split;
}

Result<Dataset> ShuffleDataset(const Dataset& data, uint64_t seed) {
  std::vector<int64_t> order(data.num_tuples());
  std::iota(order.begin(), order.end(), 0);
  Random rng(seed);
  for (int64_t i = data.num_tuples() - 1; i > 0; --i) {
    const int64_t j = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(i) + 1));
    std::swap(order[i], order[j]);
  }
  Dataset out(data.schema());
  out.Reserve(data.num_tuples());
  for (int64_t t : order) {
    SMPTREE_RETURN_IF_ERROR(out.Append(data.Tuple(t), data.label(t)));
  }
  return out;
}

Dataset TakePrefix(const Dataset& data, int64_t n) {
  n = std::min(n, data.num_tuples());
  Dataset out(data.schema());
  out.Reserve(n);
  for (int64_t t = 0; t < n; ++t) {
    Status s = out.Append(data.Tuple(t), data.label(t));
    (void)s;  // append into a fresh same-schema dataset cannot fail
  }
  return out;
}

}  // namespace smptree
