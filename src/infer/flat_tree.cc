#include "infer/flat_tree.h"

#include <algorithm>
#include <cstddef>
#include <cstring>

namespace smptree {

FlatTree FlatTree::Compile(const DecisionTree& tree) {
  FlatTree flat;
  if (tree.num_nodes() == 0) return flat;

  // Pass 1: breadth-first order. order[flat_id] = arena id; flat_of maps
  // back. Children of one internal node land adjacent, so each level is a
  // contiguous index range and sibling lookups stay in-line.
  const int64_t arena_nodes = tree.num_nodes();
  std::vector<NodeId> order;
  order.reserve(static_cast<size_t>(arena_nodes));
  std::vector<int32_t> flat_of(static_cast<size_t>(arena_nodes), -1);
  order.push_back(tree.root());
  flat_of[static_cast<size_t>(tree.root())] = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    const TreeNode& node = tree.node(order[i]);
    if (node.is_leaf()) continue;
    flat_of[static_cast<size_t>(node.left)] =
        static_cast<int32_t>(order.size());
    order.push_back(node.left);
    flat_of[static_cast<size_t>(node.right)] =
        static_cast<int32_t>(order.size());
    order.push_back(node.right);
  }

  const size_t n = order.size();
  flat.flags_.resize(n, 0);
  flat.attr_.resize(n, 0);
  flat.threshold_.resize(n, 0.0f);
  flat.subset_.resize(n, 0);
  flat.left_.resize(n);
  flat.right_.resize(n);
  flat.label_.resize(n);

  // Pass 2: fill the arrays. Leaves self-link so the scorer's child-select
  // is unconditional; the big-subset dispatch mirrors SplitTest: the big
  // path wins whenever big_subset is set, regardless of its length.
  for (size_t id = 0; id < n; ++id) {
    const TreeNode& node = tree.node(order[id]);
    flat.label_[id] = node.majority;
    flat.levels_ = std::max(flat.levels_, node.depth + 1);
    if (node.is_leaf()) {
      flat.flags_[id] = kLeaf;
      flat.left_[id] = static_cast<int32_t>(id);
      flat.right_[id] = static_cast<int32_t>(id);
      continue;
    }
    flat.attr_[id] = node.split.attr;
    flat.left_[id] = flat_of[static_cast<size_t>(node.left)];
    flat.right_[id] = flat_of[static_cast<size_t>(node.right)];
    if (!node.split.categorical) {
      flat.threshold_[id] = node.split.threshold;
      continue;
    }
    flat.flags_[id] = kCategorical;
    if (node.split.big_subset == nullptr) {
      if ((node.split.subset >> 63) != 0) {
        // The batch scorer tests inline masks with a clamped index
        // (min(code, 63)), relying on bit 63 being clear so clamped
        // out-of-range codes read a zero bit and go right. The rare mask
        // that really contains value 63 moves to the big pool, whose path
        // checks the range explicitly.
        flat.flags_[id] |= kBigSubset;
        const uint64_t offset = flat.big_words_.size();
        flat.big_words_.push_back(node.split.subset);
        flat.subset_[id] = (offset << 32) | 1u;
      } else {
        flat.subset_[id] = node.split.subset;
      }
    } else {
      flat.flags_[id] |= kBigSubset;
      const std::vector<uint64_t>& words = *node.split.big_subset;
      const uint64_t offset = flat.big_words_.size();
      flat.big_words_.insert(flat.big_words_.end(), words.begin(),
                             words.end());
      flat.subset_[id] = (offset << 32) | static_cast<uint32_t>(words.size());
    }
  }

  // Packed hot mirrors (see flat_tree.h): meta/test/children carry the same
  // node data the scorer's step reads, one word each. For continuous nodes
  // `test` is the threshold's float bits zero-extended; for small subsets it
  // is the mask itself; big-subset nodes are dispatched off the flags byte
  // in meta before `test` is interpreted, so their slot just keeps the
  // locator.
  flat.meta_.resize(n);
  flat.test_.resize(n);
  flat.children_.resize(n);
  for (size_t id = 0; id < n; ++id) {
    flat.meta_[id] =
        (static_cast<uint32_t>(flat.attr_[id]) << kMetaAttrShift) |
        flat.flags_[id];
    if ((flat.flags_[id] & kCategorical) != 0) {
      flat.test_[id] = flat.subset_[id];
    } else {
      uint32_t bits = 0;
      static_assert(sizeof(bits) == sizeof(float), "float is 32-bit");
      std::memcpy(&bits, &flat.threshold_[id], sizeof(bits));
      flat.test_[id] = bits;
    }
    flat.children_[id] =
        static_cast<uint32_t>(flat.right_[id]) |
        (static_cast<uint64_t>(static_cast<uint32_t>(flat.left_[id])) << 32);
  }
  return flat;
}

size_t FlatTree::bytes() const {
  return flags_.capacity() * sizeof(uint8_t) +
         attr_.capacity() * sizeof(int32_t) +
         threshold_.capacity() * sizeof(float) +
         subset_.capacity() * sizeof(uint64_t) +
         left_.capacity() * sizeof(int32_t) +
         right_.capacity() * sizeof(int32_t) +
         label_.capacity() * sizeof(ClassLabel) +
         big_words_.capacity() * sizeof(uint64_t) +
         meta_.capacity() * sizeof(uint32_t) +
         test_.capacity() * sizeof(uint64_t) +
         children_.capacity() * sizeof(uint64_t);
}

FlatForest FlatForest::Compile(const Forest& forest) {
  FlatForest flat;
  flat.num_classes_ = forest.schema().num_classes();
  flat.trees_.reserve(static_cast<size_t>(forest.num_trees()));
  for (int i = 0; i < forest.num_trees(); ++i) {
    flat.trees_.push_back(FlatTree::Compile(forest.tree(i)));
    flat.max_levels_ = std::max(flat.max_levels_, flat.trees_.back().levels());
  }
  // Same divisor Forest::Probabilities uses, so vote shares come out
  // bit-identical.
  flat.vote_denominator_ =
      flat.trees_.empty() ? 1.0 : static_cast<double>(flat.trees_.size());
  return flat;
}

size_t FlatForest::bytes() const {
  size_t total = 0;
  for (const FlatTree& tree : trees_) total += tree.bytes();
  return total;
}

}  // namespace smptree
