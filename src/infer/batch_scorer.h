// BatchScorer: scores a columnar serve::Batch against a FlatTree /
// FlatForest with an interleaved lane-refill walk. Instead of gathering
// each row into a scratch vector and walking the tree tuple-at-a-time (the
// pointer path in serve/engine.cc before PR 8), the scorer advances kLanes
// independent root-to-leaf walks at once:
//
//   - tuples are processed in blocks of kBlockTuples so label/vote scratch
//     and the tree's hot levels stay cache-resident;
//   - a block's tuples are dealt round-robin to kLanes lanes; each lane
//     walks its own stream with its node id in a register, refilling from
//     its next tuple the round after it lands on a leaf. Each chain is
//     serial dependent loads; kLanes independent chains keep that latency
//     overlapped, per-lane refill makes total rounds track the mean tuple
//     depth instead of the max over a lane group, and the round-robin deal
//     keeps all eight cursors within a few cache lines so the batch's
//     columns stay prefetch-friendly forward streams. Large deep trees,
//     where depth skew is proportionally small, switch to a leaner
//     lockstep-group walk (see batch_scorer.cc for the measured cutover);
//   - the per-level step is branch-free: continuous compare and inline
//     subset test are both evaluated and mask-selected by the node's kind
//     flag, child select is a shift off a packed children word, and leaves
//     self-link so a parked lane steps harmlessly in place
//     (infer/flat_tree.h). Only >64-value subsets take a (rare,
//     well-predicted) branch into the big-word pool;
//   - label stores are idempotent (mid-walk stores are overwritten, the
//     leaf store lands last), so lane refill needs no branches and leaf
//     node ids never round-trip through a cursor array;
//   - per-node column pointers are bound once per (tree, batch), so the
//     walk's critical chain is id -> column -> value -> compare -> id, with
//     no per-tuple GatherTuple row copy and no virtual dispatch.
//
// Parity: labels equal DecisionTree::Classify per tuple, and forest labels
// and vote-share probabilities are byte-identical to Forest::Vote /
// Forest::Probabilities (same strictly-greater lowest-label-ties argmax,
// same vote/num_trees division).
//
// Thread model: a BatchScorer owns reusable scratch, so one instance per
// thread (the engine keeps one in each worker arena). The models themselves
// are immutable and freely shared.

#ifndef SMPTREE_INFER_BATCH_SCORER_H_
#define SMPTREE_INFER_BATCH_SCORER_H_

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "infer/flat_tree.h"
#include "serve/batch.h"

namespace smptree {

class BatchScorer {
 public:
  BatchScorer() = default;

  // Scratch-owning, so moves fine but copies are a mistake.
  BatchScorer(const BatchScorer&) = delete;
  BatchScorer& operator=(const BatchScorer&) = delete;
  BatchScorer(BatchScorer&&) = default;
  BatchScorer& operator=(BatchScorer&&) = default;

  /// Scores every tuple of `batch`, writing labels[0..num_tuples). The
  /// batch's columns must match the schema the tree was trained on; `tree`
  /// must be non-empty.
  void ScoreTree(const FlatTree& tree, const Batch& batch, ClassLabel* labels);

  /// Majority-vote labels into labels[0..num_tuples); when `probs` is
  /// non-null, vote-share probabilities (row-major num_tuples x
  /// num_classes) byte-identical to Forest::Probabilities.
  void ScoreForest(const FlatForest& forest, const Batch& batch,
                   ClassLabel* labels, double* probs);

  /// Independent root-to-leaf chains walked in lockstep. Eight ~15-cycle
  /// dependent-load chains in flight covers the step latency; ids and meta
  /// words per lane still fit the register file.
  static constexpr size_t kLanes = 8;

 private:
  /// Tuples per block: large enough to amortize per-block setup, small
  /// enough that vote scratch stays in L1/L2 next to the tree's top levels.
  static constexpr int64_t kBlockTuples = 512;

  /// Caches one data pointer per batch column (the inner loop indexes
  /// columns by split attribute every pass).
  void BindColumns(const Batch& batch);

  /// Fills node_col_[slot .. slot + num_nodes) with each node's split
  /// column pointer for the bound batch, returning the span's base. One
  /// pointer per node per batch lets the walk load its value straight off
  /// the node id -- the meta -> attr -> column indirection would otherwise
  /// sit on the critical dependency chain of every step.
  const AttrValue* const* BindTree(const FlatTree& tree, size_t slot);

  std::vector<const AttrValue*> columns_;
  std::vector<const AttrValue*> node_col_;  ///< per-node column, per batch
  std::vector<size_t> member_slot_;  ///< forest: node_col_ offset per member
  std::vector<ClassLabel> member_labels_;  ///< forest: one member's labels
  std::vector<int32_t> votes_;  ///< forest: kBlockTuples x num_classes
};

}  // namespace smptree

#endif  // SMPTREE_INFER_BATCH_SCORER_H_
