// Flattened inference models: a DecisionTree (core/tree.h) compiled into a
// contiguous struct-of-arrays node layout for serving-side scoring, and the
// forest aggregate of the same.
//
// Why a second representation: the builders' TreeNode is optimized for
// concurrent growth -- ~100-byte nodes in chunked arenas, a shared_ptr per
// categorical big-subset, a class-count vector per node. Scoring never
// touches most of that, but pays for all of it in cache misses and pointer
// chases. FlatTree keeps only what Classify reads, one small array per
// field, in breadth-first order so the hot top levels of the tree share
// cache lines across tuples. Child links are array indices, not pointers;
// leaves link to themselves so a level-synchronous scorer can advance every
// cursor unconditionally (infer/batch_scorer.h).
//
// Parity contract: FlatTree::Classify and BatchScorer produce labels (and
// forest vote-share probabilities) BYTE-IDENTICAL to DecisionTree::Classify
// / Forest::Probabilities on every input, including missing values,
// out-of-range categorical codes and >64-value subset tests. The
// flat_infer_test parity suite enforces this across all builders, both
// training engines, pruned trees and forests.
//
// Concurrency: a FlatTree/FlatForest is immutable after Compile, so any
// number of threads may score against it with no synchronization -- the
// same published-then-read contract as core/tree.h, and what lets
// serve/model_store.h hand one compiled copy to every engine worker.

#ifndef SMPTREE_INFER_FLAT_TREE_H_
#define SMPTREE_INFER_FLAT_TREE_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/tree.h"
#include "data/dataset.h"
#include "ensemble/forest.h"

namespace smptree {

class FlatTree {
 public:
  /// Per-node flag bits (flags()[id]).
  static constexpr uint8_t kLeaf = 1;         ///< node is a leaf (self-link)
  static constexpr uint8_t kCategorical = 2;  ///< split is a subset test
  static constexpr uint8_t kBigSubset = 4;    ///< subset lives in big_words()

  FlatTree() = default;

  /// Compiles `tree` (fully built, published -- see core/tree.h) into the
  /// flat form. Nodes are laid out breadth-first with the two children of
  /// every internal node adjacent; unreachable arena nodes (possible only
  /// before CompactAfterPrune) are dropped. An empty tree compiles to an
  /// empty FlatTree (the forest-kind ServingModel's schema carrier).
  static FlatTree Compile(const DecisionTree& tree);

  int32_t num_nodes() const { return static_cast<int32_t>(left_.size()); }
  bool empty() const { return left_.empty(); }
  /// Tree levels (max depth + 1): the maximum number of level-synchronous
  /// passes a scorer needs.
  int levels() const { return levels_; }

  /// Heap bytes of the flat arrays (the /statz "model_bytes.flat" number).
  size_t bytes() const;

  /// Scores one tuple; identical to DecisionTree::Classify on the source
  /// tree. The batch path (infer/batch_scorer.h) is the fast one -- this is
  /// the spot-check / single-row entry point.
  ClassLabel Classify(const TupleValues& values) const {
    assert(!empty());
    int32_t id = 0;
    while ((flags_[id] & kLeaf) == 0) {
      id = SendsLeft(id, values[static_cast<size_t>(attr_[id])]) ? left_[id]
                                                                 : right_[id];
    }
    return label_[id];
  }

  /// True when `v` goes to node `id`'s left child, replicating
  /// SplitTest::GoesLeft exactly (continuous: value < threshold; missing is
  /// the lowest float so it always goes left; categorical: subset membership
  /// with out-of-range codes going right). Only meaningful for internal
  /// nodes.
  bool SendsLeft(int32_t id, AttrValue v) const {
    const uint8_t f = flags_[id];
    if ((f & kCategorical) == 0) return v.f < threshold_[id];
    if ((f & kBigSubset) == 0) {
      return v.cat >= 0 && v.cat < 64 &&
             ((subset_[id] >> v.cat) & 1) != 0;
    }
    const uint64_t packed = subset_[id];
    const uint32_t len = static_cast<uint32_t>(packed);
    const size_t word = static_cast<size_t>(static_cast<uint32_t>(v.cat)) >> 6;
    if (v.cat < 0 || word >= len) return false;
    const size_t offset = static_cast<size_t>(packed >> 32);
    return ((big_words_[offset + word] >> (v.cat & 63)) & 1) != 0;
  }

  // Raw array views -- the BatchScorer hot-loop contract. All are dense,
  // size num_nodes(), breadth-first, root at index 0. For leaves attr is 0
  // and left/right are the node's own index, so an unconditional
  // "select child" step parks finished cursors in place.
  const uint8_t* flags() const { return flags_.data(); }
  const int32_t* attr() const { return attr_.data(); }
  const float* threshold() const { return threshold_.data(); }
  const uint64_t* subset() const { return subset_.data(); }
  const int32_t* left() const { return left_.data(); }
  const int32_t* right() const { return right_.data(); }
  const ClassLabel* label() const { return label_.data(); }

  // Packed mirrors of the same node data, 16 bytes per node across three
  // arrays, built once in Compile for the scorer's inner loop: one step
  // needs one meta load (attr + flags), one test load (threshold bits or
  // inline subset mask -- the node kind decides which interpretation is
  // live), and one children load (right | left << 32, so `word >>
  // (goes_left * 32)` selects the child with no flip), instead of six
  // scattered array reads. Inline masks never have bit 63 set (Compile
  // moves those to the big pool), so a clamped min(code, 63) bit test is
  // exact for out-of-range codes. Big-subset nodes keep their locator in
  // subset_ and take the canonical SendsLeft path.
  const uint32_t* meta() const { return meta_.data(); }
  const uint64_t* test() const { return test_.data(); }
  const uint64_t* children() const { return children_.data(); }

  /// meta()[id] layout: low 8 bits are the flags byte (kLeaf etc., so a
  /// uint32 AND still isolates kLeaf), the rest is the split attribute.
  static constexpr int kMetaAttrShift = 8;

 private:
  // One array per field Classify reads (SoA). subset_ holds the inline
  // <=64-value mask, or -- when kBigSubset is set -- the (offset << 32 | len)
  // locator of the subset's words inside big_words_.
  std::vector<uint8_t> flags_;
  std::vector<int32_t> attr_;
  std::vector<float> threshold_;
  std::vector<uint64_t> subset_;
  std::vector<int32_t> left_;
  std::vector<int32_t> right_;
  std::vector<ClassLabel> label_;
  std::vector<uint64_t> big_words_;  ///< concatenated >64-value subsets
  std::vector<uint32_t> meta_;       ///< packed attr << 8 | flags
  std::vector<uint64_t> test_;       ///< threshold bits / inline mask
  std::vector<uint64_t> children_;   ///< right | left << 32
  int levels_ = 0;
};

/// A forest compiled member-by-member, plus the precomputed vote
/// denominator so Probabilities needs no per-call size lookups. Immutable
/// after Compile; concurrent-reader safe.
class FlatForest {
 public:
  FlatForest() = default;

  static FlatForest Compile(const Forest& forest);

  int num_trees() const { return static_cast<int>(trees_.size()); }
  int num_classes() const { return num_classes_; }
  const FlatTree& tree(int i) const { return trees_[static_cast<size_t>(i)]; }

  /// The divisor turning per-class vote counts into vote shares; matches
  /// Forest::Probabilities (num_trees, or 1.0 for an empty forest) so the
  /// resulting doubles are bit-identical.
  double vote_denominator() const { return vote_denominator_; }

  /// Deepest member's levels(): the scorer's worst-case pass count.
  int max_levels() const { return max_levels_; }

  size_t bytes() const;

 private:
  std::vector<FlatTree> trees_;
  int num_classes_ = 0;
  int max_levels_ = 0;
  double vote_denominator_ = 1.0;
};

}  // namespace smptree

#endif  // SMPTREE_INFER_FLAT_TREE_H_
