#include "infer/batch_scorer.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace smptree {
namespace {

constexpr size_t kLanes = BatchScorer::kLanes;

/// Below this many tuples the lane-refill walk degenerates (sub-ranges of a
/// couple of tuples each); a plain scalar walk wins.
constexpr size_t kMinRefillTuples = 64;

/// Above this many nodes the walk switches from lane-refill to lane-
/// lockstep groups. Measured crossover on Agrawal trees: refill's per-round
/// bookkeeping (clamp, idempotent store, refill selects) buys back the
/// depth-skew waste of a lockstep group -- a big win for shallow skewed
/// trees, where the max-of-kLanes depth runs far past the mean -- but on
/// large deep trees the skew is proportionally small and the leaner
/// lockstep round wins.
constexpr int32_t kLockstepNodeCutoff = 512;

/// Walks `tree` over tuples [begin, begin + count), writing each tuple's
/// leaf label to out[0..count). `node_col` is the per-(tree, batch)
/// column-pointer scratch (node_col[id] = column of node id's split
/// attribute): resolving the column per node rather than per step drops the
/// meta -> attr -> column hops from the walk's critical dependency chain,
/// leaving id -> column -> value -> compare -> id.
///
/// Traversal (refill mode, trees up to kLockstepNodeCutoff nodes): the
/// block's tuples are dealt to kLanes lanes round-robin (lane i owns tuples
/// i, i + kLanes, ...) and each lane walks its own stream with an
/// independent cursor, refilling from its next tuple the round after it
/// lands on a leaf. Root-to-leaf chains are serial dependent loads; kLanes
/// independent chains keep that latency overlapped, and per-lane refill
/// means a lane never idles behind the deepest tuple of a lane group --
/// total rounds track the MEAN tuple depth, not the expected max over
/// kLanes tuples, which for skewed trees is nearly half the work. The
/// label store is idempotent: every round each lane stores label[id] for
/// its current tuple (an internal node's majority label mid-walk), so the
/// last store before the cursor advances is the true leaf label and no "is
/// this lane done" branch exists anywhere -- refill is a pair of
/// flag-driven conditional moves off the critical path.
///
/// Bigger trees take the lockstep-group mode instead (see
/// kLockstepNodeCutoff): same lanes and branch-free step, but adjacent
/// tuples advance together and the group exits on the AND of the meta
/// words.
void WalkLabels(const FlatTree& tree, const AttrValue* const* node_col,
                int64_t begin, int64_t count, ClassLabel* out) {
  const size_t n = static_cast<size_t>(count);
  const uint32_t* meta = tree.meta();
  const uint64_t* test = tree.test();
  const uint64_t* children = tree.children();
  const ClassLabel* label = tree.label();
  const size_t base = static_cast<size_t>(begin);
  if ((tree.flags()[0] & FlatTree::kLeaf) != 0) {
    for (size_t t = 0; t < n; ++t) out[t] = label[0];
    return;
  }

  // One level of descent for tuple `t`, branch-free, off the packed node
  // words (flat_tree.h): `m` is the node's preloaded meta word. Both the
  // continuous compare and the inline subset test are computed from the
  // same `test` word and the node's kind bit selects between them with
  // mask arithmetic -- a ternary here tempts the compiler into a
  // data-dependent branch on the node kind, which mispredicts whenever a
  // lane crosses between continuous and categorical levels. The clamped
  // min(code, 63) index folds SendsLeft's `cat >= 0 && cat < 64` into the
  // bit test itself: Compile guarantees inline masks keep bit 63 clear, so
  // every out-of-range code reads a zero bit and goes right. Leaves read
  // column 0 and self-link, so stepping a parked lane is harmless. Only
  // >64-value subsets branch -- absent from typical trees, so the
  // predictor retires the test for free.
  static_assert(FlatTree::kCategorical == 2,
                "the cat-bit extraction below hardcodes the flag position");
  const auto step = [&](int32_t id, uint32_t m, size_t t) -> int32_t {
    const AttrValue v = node_col[id][base + t];
    const uint64_t w = test[id];
    const uint64_t ch = children[id];
    uint32_t goes_left;
    if (__builtin_expect((m & FlatTree::kBigSubset) != 0, 0)) {
      goes_left = tree.SendsLeft(id, v) ? 1u : 0u;
    } else {
      float thr;
      const uint32_t thr_bits = static_cast<uint32_t>(w);
      std::memcpy(&thr, &thr_bits, sizeof(thr));
      const uint32_t continuous_left = v.f < thr ? 1u : 0u;
      const uint32_t idx = std::min(static_cast<uint32_t>(v.cat), 63u);
      const uint32_t bit = static_cast<uint32_t>(w >> idx) & 1u;
      const uint32_t cat_mask = 0u - ((m >> 1) & 1u);  // kCategorical bit
      goes_left = ((bit ^ continuous_left) & cat_mask) ^ continuous_left;
    }
    // Child select by shift: the children word is right | left << 32, so
    // goes_left picks the half directly -- no conditional at all.
    return static_cast<int32_t>(
        static_cast<uint32_t>(ch >> (goes_left << 5)));
  };

  const uint32_t root_meta = meta[0];
  if (n >= kMinRefillTuples && tree.num_nodes() <= kLockstepNodeCutoff) {
    // Lane i owns tuples i, i + kLanes, i + 2*kLanes, ... -- STRIDED, not
    // contiguous ranges, so the eight cursors stay within a few cache
    // lines of each other and the columns look like a handful of forward
    // streams to the hardware prefetcher instead of 8 x attrs scattered
    // ones. Lane state: raw cursor r (advances by kLanes the round after
    // the lane lands on a leaf), node id, preloaded meta word. The clamped
    // cursor min(r, last) is what the step reads and the store writes;
    // once a lane passes its last tuple the refill is suppressed, so it
    // parks on that tuple's leaf and re-stores the same (correct) label
    // until the other lanes drain.
    size_t r0 = 0, r1 = 1, r2 = 2, r3 = 3, r4 = 4, r5 = 5, r6 = 6, r7 = 7;
    const size_t l0 = 0 + kLanes * ((n - 1 - 0) / kLanes);
    const size_t l1 = 1 + kLanes * ((n - 1 - 1) / kLanes);
    const size_t l2 = 2 + kLanes * ((n - 1 - 2) / kLanes);
    const size_t l3 = 3 + kLanes * ((n - 1 - 3) / kLanes);
    const size_t l4 = 4 + kLanes * ((n - 1 - 4) / kLanes);
    const size_t l5 = 5 + kLanes * ((n - 1 - 5) / kLanes);
    const size_t l6 = 6 + kLanes * ((n - 1 - 6) / kLanes);
    const size_t l7 = 7 + kLanes * ((n - 1 - 7) / kLanes);
    int32_t id0 = 0, id1 = 0, id2 = 0, id3 = 0;
    int32_t id4 = 0, id5 = 0, id6 = 0, id7 = 0;
    uint32_t m0 = root_meta, m1 = root_meta, m2 = root_meta, m3 = root_meta;
    uint32_t m4 = root_meta, m5 = root_meta, m6 = root_meta, m7 = root_meta;
    static_assert(kLanes == 8, "lane unroll below assumes 8");
#define SMPTREE_LANE_ROUND(i)                                   \
  do {                                                          \
    const size_t tc = std::min(r##i, l##i);                     \
    id##i = step(id##i, m##i, tc);                              \
    m##i = meta[id##i];                                         \
    const size_t done = m##i & FlatTree::kLeaf;                 \
    out[tc] = label[id##i];                                     \
    const size_t rn = r##i + (done << 3);                       \
    const bool refill = done != 0 && rn < n;                    \
    id##i = refill ? 0 : id##i;                                 \
    m##i = refill ? root_meta : m##i;                           \
    r##i = rn;                                                  \
  } while (0)
    while (r0 <= l0 || r1 <= l1 || r2 <= l2 || r3 <= l3 || r4 <= l4 ||
           r5 <= l5 || r6 <= l6 || r7 <= l7) {
      SMPTREE_LANE_ROUND(0);
      SMPTREE_LANE_ROUND(1);
      SMPTREE_LANE_ROUND(2);
      SMPTREE_LANE_ROUND(3);
      SMPTREE_LANE_ROUND(4);
      SMPTREE_LANE_ROUND(5);
      SMPTREE_LANE_ROUND(6);
      SMPTREE_LANE_ROUND(7);
    }
#undef SMPTREE_LANE_ROUND
    return;
  }

  // Lockstep groups (big trees): kLanes adjacent tuples walk together and
  // the group exits when the AND of the meta words carries the leaf bit --
  // finished lanes step in place on their self-linked leaf until the
  // group's deepest tuple lands.
  size_t t = 0;
  for (; t + kLanes <= n; t += kLanes) {
    int32_t id0 = 0, id1 = 0, id2 = 0, id3 = 0;
    int32_t id4 = 0, id5 = 0, id6 = 0, id7 = 0;
    uint32_t m0 = root_meta, m1 = root_meta, m2 = root_meta, m3 = root_meta;
    uint32_t m4 = root_meta, m5 = root_meta, m6 = root_meta, m7 = root_meta;
    static_assert(kLanes == 8, "lane unroll below assumes 8");
    while ((m0 & m1 & m2 & m3 & m4 & m5 & m6 & m7 & FlatTree::kLeaf) == 0) {
      id0 = step(id0, m0, t);
      id1 = step(id1, m1, t + 1);
      id2 = step(id2, m2, t + 2);
      id3 = step(id3, m3, t + 3);
      id4 = step(id4, m4, t + 4);
      id5 = step(id5, m5, t + 5);
      id6 = step(id6, m6, t + 6);
      id7 = step(id7, m7, t + 7);
      m0 = meta[id0];
      m1 = meta[id1];
      m2 = meta[id2];
      m3 = meta[id3];
      m4 = meta[id4];
      m5 = meta[id5];
      m6 = meta[id6];
      m7 = meta[id7];
    }
    out[t] = label[id0];
    out[t + 1] = label[id1];
    out[t + 2] = label[id2];
    out[t + 3] = label[id3];
    out[t + 4] = label[id4];
    out[t + 5] = label[id5];
    out[t + 6] = label[id6];
    out[t + 7] = label[id7];
  }
  for (; t < n; ++t) {
    int32_t id = 0;
    uint32_t m = root_meta;
    while ((m & FlatTree::kLeaf) == 0) {
      id = step(id, m, t);
      m = meta[id];
    }
    out[t] = label[id];
  }
}

}  // namespace

void BatchScorer::BindColumns(const Batch& batch) {
  columns_.resize(static_cast<size_t>(batch.num_attrs()));
  for (int a = 0; a < batch.num_attrs(); ++a) {
    columns_[static_cast<size_t>(a)] = batch.column(a).data();
  }
}

const AttrValue* const* BatchScorer::BindTree(const FlatTree& tree,
                                              size_t slot) {
  const size_t n = static_cast<size_t>(tree.num_nodes());
  if (node_col_.size() < slot + n) node_col_.resize(slot + n);
  const int32_t* attr = tree.attr();
  const AttrValue* const* cols = columns_.data();
  for (size_t id = 0; id < n; ++id) {
    node_col_[slot + id] = cols[attr[id]];
  }
  return node_col_.data() + slot;
}

void BatchScorer::ScoreTree(const FlatTree& tree, const Batch& batch,
                            ClassLabel* labels) {
  assert(!tree.empty());
  BindColumns(batch);
  const AttrValue* const* node_col = BindTree(tree, 0);
  const int64_t num_tuples = batch.num_tuples();
  for (int64_t begin = 0; begin < num_tuples; begin += kBlockTuples) {
    const int64_t count = std::min(kBlockTuples, num_tuples - begin);
    WalkLabels(tree, node_col, begin, count, labels + begin);
  }
}

void BatchScorer::ScoreForest(const FlatForest& forest, const Batch& batch,
                              ClassLabel* labels, double* probs) {
  BindColumns(batch);
  const size_t num_classes = static_cast<size_t>(forest.num_classes());
  const int num_trees = forest.num_trees();
  const double denom = forest.vote_denominator();
  // Bind every member's column-pointer scratch up front (one contiguous
  // span per member) so the per-block member loop pays no rebinds.
  member_slot_.resize(static_cast<size_t>(num_trees));
  size_t slot = 0;
  for (int m = 0; m < num_trees; ++m) {
    member_slot_[static_cast<size_t>(m)] = slot;
    BindTree(forest.tree(m), slot);
    slot += static_cast<size_t>(forest.tree(m).num_nodes());
  }
  const int64_t num_tuples = batch.num_tuples();
  for (int64_t begin = 0; begin < num_tuples; begin += kBlockTuples) {
    const int64_t count = std::min(kBlockTuples, num_tuples - begin);
    votes_.assign(static_cast<size_t>(count) * num_classes, 0);
    member_labels_.resize(static_cast<size_t>(count));
    int32_t* votes = votes_.data();
    for (int m = 0; m < num_trees; ++m) {
      // Walk the member into label scratch, then fold into vote counts in
      // a separate cheap pass -- the walk's idempotent stores rule out
      // bumping counters in-line.
      const FlatTree& tree = forest.tree(m);
      WalkLabels(tree, node_col_.data() + member_slot_[static_cast<size_t>(m)],
                 begin, count, member_labels_.data());
      for (int64_t t = 0; t < count; ++t) {
        ++votes[static_cast<size_t>(t) * num_classes +
                member_labels_[static_cast<size_t>(t)]];
      }
    }
    for (int64_t t = 0; t < count; ++t) {
      const int32_t* row = &votes_[static_cast<size_t>(t) * num_classes];
      // Argmax with strictly-greater scan from label 0: ties keep the
      // lowest label, exactly like Forest::Vote.
      size_t best = 0;
      for (size_t c = 1; c < num_classes; ++c) {
        if (row[c] > row[best]) best = c;
      }
      labels[begin + t] = static_cast<ClassLabel>(best);
      if (probs != nullptr) {
        double* prow = probs + static_cast<size_t>(begin + t) * num_classes;
        for (size_t c = 0; c < num_classes; ++c) {
          // votes/num_trees with the same division Forest::Probabilities
          // performs, so the doubles are bit-identical.
          prow[c] = static_cast<double>(row[c]) / denom;
        }
      }
    }
  }
}

}  // namespace smptree
