#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace smptree {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

namespace {

/// Sends the whole buffer; false on any error (connection is then dropped).
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RenderResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = StringPrintf(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: %s\r\n"
      "\r\n",
      response.status, HttpStatusText(response.status),
      response.content_type.c_str(), response.body.size(),
      keep_alive ? "keep-alive" : "close");
  out += response.body;
  return out;
}

/// Case-insensitive ASCII compare for header names.
bool IEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

HttpServer::HttpServer(Options options)
    : options_(std::move(options)),
      // Connection handoff queue: small bound; once it and the kernel
      // accept backlog are full, clients block in connect().
      pending_connections_(
          static_cast<size_t>(std::max(1, options_.num_threads)) * 2) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

Status HttpServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StringPrintf("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IOError(
        StringPrintf("bind %s:%d: %s", options_.bind_address.c_str(),
                     options_.port, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (::listen(fd, options_.backlog) != 0) {
    const Status s =
        Status::IOError(StringPrintf("listen: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s =
        Status::IOError(StringPrintf("getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  bound_port_ = ntohs(bound.sin_port);

  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  threads_.emplace_back([this] { AcceptLoop(); });
  for (int i = 0; i < std::max(1, options_.num_threads); ++i) {
    threads_.emplace_back([this] { ConnectionLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started or already stopped; still join any leftover threads.
  } else {
    // Closing the listener makes the blocking accept() fail, unblocking the
    // accept thread; shutdown() first for portability against raced fds.
    const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    pending_connections_.Close();
    // Kick handler threads out of blocking reads on live connections; the
    // owning thread still does the close().
    {
      MutexLock lock(conns_mu_);
      for (const int conn_fd : active_fds_) ::shutdown(conn_fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (Stop) or fatal error: hand off nothing more.
      return;
    }
    // Bound per-read wait so dead connections cannot pin a handler thread
    // forever and Stop() completes within one timeout.
    timeval tv{};
    tv.tv_sec = options_.io_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (!pending_connections_.Push(fd)) {
      ::close(fd);  // queue closed: shutting down
      return;
    }
  }
}

void HttpServer::ConnectionLoop() {
  for (;;) {
    std::optional<int> fd = pending_connections_.Pop();
    if (!fd.has_value()) return;
    RegisterConnection(*fd);
    ServeConnection(*fd);
    UnregisterConnection(*fd);
    ::close(*fd);
  }
}

void HttpServer::RegisterConnection(int fd) {
  MutexLock lock(conns_mu_);
  active_fds_.insert(fd);
  // Raced with Stop(): it may have walked active_fds_ before the insert,
  // so apply its shutdown ourselves and let ServeConnection fail fast.
  if (!running_.load(std::memory_order_acquire)) ::shutdown(fd, SHUT_RDWR);
}

void HttpServer::UnregisterConnection(int fd) {
  MutexLock lock(conns_mu_);
  active_fds_.erase(fd);
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;  // bytes read but not yet consumed
  char chunk[8192];
  while (running_.load(std::memory_order_acquire)) {
    // --- read until the blank line ending the header block ---
    size_t header_end = std::string::npos;
    for (;;) {
      header_end = buffer.find("\r\n\r\n");
      if (header_end != std::string::npos) break;
      if (buffer.size() > 64u * 1024) return;  // header flood
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;  // close, timeout, or error
      buffer.append(chunk, static_cast<size_t>(n));
    }
    const std::string head = buffer.substr(0, header_end);
    buffer.erase(0, header_end + 4);

    // --- request line ---
    HttpRequest request;
    const size_t line_end = head.find("\r\n");
    const std::string request_line =
        line_end == std::string::npos ? head : head.substr(0, line_end);
    {
      const size_t sp1 = request_line.find(' ');
      const size_t sp2 =
          sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
      if (sp2 == std::string::npos) {
        SendAll(fd, RenderResponse(
                        {400, "text/plain", "malformed request line\n"},
                        false));
        return;
      }
      request.method = request_line.substr(0, sp1);
      std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
      const size_t qmark = target.find('?');
      if (qmark != std::string::npos) {
        request.query = target.substr(qmark + 1);
        target.resize(qmark);
      }
      request.path = std::move(target);
    }

    // --- headers (only the ones the server acts on) ---
    size_t content_length = 0;
    bool keep_alive = true;  // HTTP/1.1 default
    {
      size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
      while (pos < head.size()) {
        size_t eol = head.find("\r\n", pos);
        if (eol == std::string::npos) eol = head.size();
        const std::string line = head.substr(pos, eol - pos);
        pos = eol + 2;
        const size_t colon = line.find(':');
        if (colon == std::string::npos) continue;
        std::string name = line.substr(0, colon);
        std::string value = line.substr(colon + 1);
        while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
          value.erase(value.begin());
        }
        if (IEquals(name, "Content-Length")) {
          int64_t parsed = 0;
          if (!ParseInt64(value, &parsed) || parsed < 0) {
            SendAll(fd, RenderResponse(
                            {400, "text/plain", "bad Content-Length\n"},
                            false));
            return;
          }
          content_length = static_cast<size_t>(parsed);
        } else if (IEquals(name, "Connection")) {
          if (IEquals(value, "close")) keep_alive = false;
        } else if (IEquals(name, "Transfer-Encoding")) {
          SendAll(fd,
                  RenderResponse({400, "text/plain",
                                  "chunked encoding not supported\n"},
                                 false));
          return;
        }
      }
    }
    if (content_length > options_.max_body_bytes) {
      SendAll(fd, RenderResponse({413, "text/plain", "body too large\n"},
                                 false));
      return;
    }

    // --- body ---
    while (buffer.size() < content_length) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) return;
      buffer.append(chunk, static_cast<size_t>(n));
    }
    request.body = buffer.substr(0, content_length);
    buffer.erase(0, content_length);

    // --- dispatch and respond ---
    const HttpResponse response = Dispatch(request);
    if (!SendAll(fd, RenderResponse(response, keep_alive))) return;
    if (!keep_alive) return;
  }
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  const auto it = routes_.find({request.method, request.path});
  if (it != routes_.end()) return it->second(request);
  // Distinguish wrong-method from unknown path for usable client errors.
  for (const auto& [key, handler] : routes_) {
    if (key.second == request.path) {
      return {405, "text/plain", "method not allowed\n"};
    }
  }
  return {404, "text/plain", "no such endpoint\n"};
}

}  // namespace smptree
