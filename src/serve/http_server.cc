#include "serve/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "serve/epoll_server.h"
#include "serve/http_parser.h"
#include "util/string_util.h"

namespace smptree {

namespace {

/// Sends the whole buffer; false on any error (connection is then dropped).
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Status BindHttpListener(const HttpServer::Options& options, bool nonblocking,
                        int* out_fd, uint16_t* out_port) {
  const int type = SOCK_STREAM | (nonblocking ? SOCK_NONBLOCK : 0);
  const int fd = ::socket(AF_INET, type, 0);
  if (fd < 0) {
    return Status::IOError(StringPrintf("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument("bad bind address " + options.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IOError(
        StringPrintf("bind %s:%d: %s", options.bind_address.c_str(),
                     options.port, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (::listen(fd, options.backlog) != 0) {
    const Status s =
        Status::IOError(StringPrintf("listen: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const Status s =
        Status::IOError(StringPrintf("getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return s;
  }
  *out_fd = fd;
  *out_port = ntohs(bound.sin_port);
  return Status::OK();
}

HttpServer::HttpServer(Options options)
    : options_(std::move(options)),
      // Connection handoff queue: small bound; once it and the kernel
      // accept backlog are full, clients block in connect().
      pending_connections_(
          static_cast<size_t>(std::max(1, options_.num_threads)) * 2) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Route(const std::string& method, const std::string& path,
                       Handler handler) {
  routes_[{method, path}] = std::move(handler);
}

Status HttpServer::Start() {
  if (options_.front_end == FrontEnd::kEpoll) {
    epoll_ = std::make_unique<EpollServer>(
        options_, [this](const HttpRequest& r) { return Dispatch(r); });
    const Status s = epoll_->Start();
    if (!s.ok()) epoll_.reset();
    return s;
  }

  int fd = -1;
  SMPTREE_RETURN_IF_ERROR(
      BindHttpListener(options_, /*nonblocking=*/false, &fd, &bound_port_));
  listen_fd_.store(fd, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  threads_.emplace_back([this] { AcceptLoop(); });
  for (int i = 0; i < std::max(1, options_.num_threads); ++i) {
    threads_.emplace_back([this] { ConnectionLoop(); });
  }
  return Status::OK();
}

uint16_t HttpServer::port() const {
  return epoll_ != nullptr ? epoll_->port() : bound_port_;
}

bool HttpServer::running() const {
  return epoll_ != nullptr ? epoll_->running()
                           : running_.load(std::memory_order_acquire);
}

void HttpServer::Stop() {
  if (epoll_ != nullptr) {
    epoll_->Stop();
    epoll_.reset();
    return;
  }
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started or already stopped; still join any leftover threads.
  } else {
    // Closing the listener makes the blocking accept() fail, unblocking the
    // accept thread; shutdown() first for portability against raced fds.
    const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
      ::close(fd);
    }
    pending_connections_.Close();
    // Kick handler threads out of blocking reads on live connections; the
    // owning thread still does the close().
    {
      MutexLock lock(conns_mu_);
      for (const int conn_fd : active_fds_) ::shutdown(conn_fd, SHUT_RDWR);
    }
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

FrontEndStats HttpServer::Stats() const {
  if (epoll_ != nullptr) return epoll_->Stats();
  FrontEndStats stats;
  stats.front_end = "threaded";
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.pipelined_requests =
      pipelined_requests_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  {
    MutexLock lock(conns_mu_);
    stats.open_connections = active_fds_.size();
  }
  return stats;
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Listener closed (Stop) or fatal error: hand off nothing more.
      return;
    }
    // Bound per-read wait so dead connections cannot pin a handler thread
    // forever and Stop() completes within one timeout.
    timeval tv{};
    tv.tv_sec = options_.io_timeout_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    if (!pending_connections_.Push(fd)) {
      ::close(fd);  // queue closed: shutting down
      return;
    }
  }
}

void HttpServer::ConnectionLoop() {
  for (;;) {
    std::optional<int> fd = pending_connections_.Pop();
    if (!fd.has_value()) return;
    RegisterConnection(*fd);
    ServeConnection(*fd);
    UnregisterConnection(*fd);
    ::close(*fd);
  }
}

void HttpServer::RegisterConnection(int fd) {
  MutexLock lock(conns_mu_);
  active_fds_.insert(fd);
  // Raced with Stop(): it may have walked active_fds_ before the insert,
  // so apply its shutdown ourselves and let ServeConnection fail fast.
  if (!running_.load(std::memory_order_acquire)) ::shutdown(fd, SHUT_RDWR);
}

void HttpServer::UnregisterConnection(int fd) {
  MutexLock lock(conns_mu_);
  active_fds_.erase(fd);
}

void HttpServer::ServeConnection(int fd) {
  HttpRequestParser parser(HttpRequestParser::Limits{
      options_.max_header_bytes, options_.max_body_bytes});
  char chunk[8192];
  while (running_.load(std::memory_order_acquire)) {
    // Advance on buffered bytes first: pipelined requests that arrived
    // with the previous one are served without another recv.
    HttpRequestParser::State state = parser.Advance();
    const bool pipelined = state == HttpRequestParser::State::kComplete;
    while (state == HttpRequestParser::State::kReadingHeaders ||
           state == HttpRequestParser::State::kReadingBody) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;  // a signal is not a hangup
      if (n <= 0) {
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
            parser.buffered_bytes() == 0 &&
            state == HttpRequestParser::State::kReadingHeaders) {
          // Idle keep-alive connection hit SO_RCVTIMEO between requests.
          idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
        }
        return;  // close, timeout, or error
      }
      state = parser.Feed(chunk, static_cast<size_t>(n));
    }
    if (state == HttpRequestParser::State::kError) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      SendAll(fd, RenderHttpResponse({parser.error_status(), "text/plain",
                                      parser.error_message(),
                                      {}},
                                     false));
      return;
    }
    const bool keep_alive = parser.keep_alive();
    const HttpRequest request = std::move(parser.request());
    parser.Reset();
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (pipelined) {
      pipelined_requests_.fetch_add(1, std::memory_order_relaxed);
    }

    const HttpResponse response = Dispatch(request);
    if (!SendAll(fd, RenderHttpResponse(response, keep_alive))) return;
    if (!keep_alive) return;
  }
}

HttpResponse HttpServer::Dispatch(const HttpRequest& request) const {
  const auto it = routes_.find({request.method, request.path});
  if (it != routes_.end()) return it->second(request);
  // Distinguish wrong-method from unknown path for usable client errors;
  // a 405 must name the methods that would work (RFC 7231 6.5.5).
  std::string allow;
  for (const auto& [key, handler] : routes_) {
    if (key.second == request.path) {
      if (!allow.empty()) allow += ", ";
      allow += key.first;
    }
  }
  if (!allow.empty()) {
    HttpResponse response{405, "text/plain", "method not allowed\n", {}};
    response.extra_headers.emplace_back("Allow", allow);
    return response;
  }
  return {404, "text/plain", "no such endpoint\n", {}};
}

}  // namespace smptree
