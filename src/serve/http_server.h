// HTTP/1.1 server facade for the inference front end. Two interchangeable
// front ends sit behind one Options switch:
//
//   - kEpoll (default): a single event-loop thread multiplexes every
//     connection over epoll with nonblocking sockets -- per-connection
//     state machines, buffered writes with EPOLLOUT backpressure, a
//     deadline heap for idle timeouts, and pipelined keep-alive. Handlers
//     run on a small dispatch worker pool, so concurrent *connections* are
//     bounded by memory, not by thread count. (serve/epoll_server.h)
//
//   - kThreaded: the original blocking accept thread + connection-thread
//     pool. One thread per live connection, so concurrency is capped at
//     num_threads -- kept as the byte-exactness parity oracle for the
//     event loop and for platforms without epoll semantics.
//
// Both front ends parse with the same incremental HttpRequestParser and
// render with the same RenderHttpResponse, so responses are byte-identical
// by construction. Supports exactly what the serving endpoints need --
// GET/POST, Content-Length bodies, keep-alive, pipelining -- and nothing
// else (no TLS, no chunked encoding).

#ifndef SMPTREE_SERVE_HTTP_SERVER_H_
#define SMPTREE_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/http_types.h"
#include "serve/work_queue.h"
#include "util/mutex.h"
#include "util/status.h"

namespace smptree {

class EpollServer;

/// Monitoring snapshot of the connection path for /statz, filled by
/// whichever front end is running.
struct FrontEndStats {
  const char* front_end = "none";
  uint64_t accepted = 0;            ///< connections accepted since Start
  uint64_t open_connections = 0;    ///< currently live connections
  uint64_t requests = 0;            ///< requests dispatched
  uint64_t pipelined_requests = 0;  ///< served from buffered bytes, no recv
  uint64_t backpressure_stalls = 0;  ///< writes that had to arm EPOLLOUT
  uint64_t idle_timeouts = 0;        ///< connections reaped by deadline
  uint64_t protocol_errors = 0;      ///< 4xx answered by the parser itself
};

class HttpServer {
 public:
  enum class FrontEnd {
    kEpoll,     ///< event loop + dispatch pool (the production path)
    kThreaded,  ///< accept thread + blocking connection threads (oracle)
  };

  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;  ///< 0 picks an ephemeral port (see port())
    /// kThreaded: connection handler threads (= max live connections).
    /// kEpoll: dispatch worker threads running the handlers.
    int num_threads = 4;
    int backlog = 128;
    size_t max_header_bytes = 64u * 1024;  ///< over it answers 431
    size_t max_body_bytes = 32u << 20;     ///< over it answers 413
    /// Per-read idle timeout (threaded: SO_RCVTIMEO; epoll: deadline heap).
    /// Also bounds Stop() latency.
    int io_timeout_seconds = 30;
    FrontEnd front_end = FrontEnd::kEpoll;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Options options);
  ~HttpServer();  ///< Stop() if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path) pair. Must be called
  /// before Start (the route table is immutable while serving).
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Binds, listens, and spawns the selected front end's threads.
  Status Start();

  /// The bound port (after Start; resolves port 0 to the real port).
  uint16_t port() const;

  /// Stops accepting, closes the listener, and joins all threads.
  /// In-flight requests finish; idle keep-alive connections are dropped.
  void Stop();

  bool running() const;

  /// Routes the request (shared by both front ends). Answers 404 for
  /// unknown paths and 405 with the required Allow header when the path
  /// exists under other methods.
  HttpResponse Dispatch(const HttpRequest& request) const;

  FrontEndStats Stats() const;

 private:
  void AcceptLoop();
  void ConnectionLoop();
  /// Serves one connection until close/error/shutdown (keep-alive loop).
  void ServeConnection(int fd);

  /// Active-connection registry so Stop() can shutdown() fds that handler
  /// threads are blocked reading (idle keep-alive connections would
  /// otherwise pin Stop for up to io_timeout_seconds).
  void RegisterConnection(int fd) EXCLUDES(conns_mu_);
  void UnregisterConnection(int fd) EXCLUDES(conns_mu_);

  const Options options_;
  // lint: unguarded(route table is frozen before Start; immutable serving)
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  // lint: unguarded(constructed in Start before serving, reset in Stop)
  std::unique_ptr<EpollServer> epoll_;
  WorkQueue<int> pending_connections_;
  // lint: unguarded(written in Start/Stop only; never touched by workers)
  std::vector<std::thread> threads_;  ///< [0] = accept, rest = connections
  std::atomic<bool> running_{false};
  std::atomic<int> listen_fd_{-1};
  // lint: unguarded(written once in Start before the accept thread spawns)
  uint16_t bound_port_ = 0;
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> pipelined_requests_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  mutable Mutex conns_mu_;
  std::set<int> active_fds_ GUARDED_BY(conns_mu_);
};

/// Creates, binds, and listens a TCP socket for `options` (shared by both
/// front ends). On success stores the fd and the resolved port.
Status BindHttpListener(const HttpServer::Options& options, bool nonblocking,
                        int* fd, uint16_t* port);

}  // namespace smptree

#endif  // SMPTREE_SERVE_HTTP_SERVER_H_
