// Minimal HTTP/1.1 server for the inference front end: a blocking accept
// thread hands accepted connections to a pool of connection threads through
// the same bounded WorkQueue the prediction engine uses. Supports exactly
// what the serving endpoints need -- GET/POST, Content-Length bodies,
// keep-alive -- and nothing else (no TLS, no chunked encoding, no
// pipelining). Handlers run on the connection threads; the predict handler
// blocks there on PredictionEngine::Predict, which is the intended
// closed-loop backpressure path: when all workers are busy the connection
// threads queue, then the accept backlog fills, then clients see connect
// latency.

#ifndef SMPTREE_SERVE_HTTP_SERVER_H_
#define SMPTREE_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/work_queue.h"
#include "util/mutex.h"
#include "util/status.h"

namespace smptree {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent)
  std::string path;    ///< path only; "?query" is split off into `query`
  std::string query;   ///< raw query string, no leading '?'
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Standard reason phrase for the handful of statuses the server emits.
const char* HttpStatusText(int status);

class HttpServer {
 public:
  struct Options {
    std::string bind_address = "127.0.0.1";
    uint16_t port = 0;          ///< 0 picks an ephemeral port (see port())
    int num_threads = 4;        ///< connection handler threads
    int backlog = 128;
    size_t max_body_bytes = 32u << 20;
    int io_timeout_seconds = 30;  ///< per-read timeout (also bounds Stop latency)
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(Options options);
  ~HttpServer();  ///< Stop() if still running

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a handler for an exact (method, path) pair. Must be called
  /// before Start (the route table is immutable while serving).
  void Route(const std::string& method, const std::string& path,
             Handler handler);

  /// Binds, listens, and spawns the accept + connection threads.
  Status Start();

  /// The bound port (after Start; resolves port 0 to the real port).
  uint16_t port() const { return bound_port_; }

  /// Stops accepting, closes the listener, and joins all threads.
  /// In-flight requests finish; idle keep-alive connections are dropped.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void ConnectionLoop();
  /// Serves one connection until close/error/shutdown (keep-alive loop).
  void ServeConnection(int fd);
  HttpResponse Dispatch(const HttpRequest& request) const;

  /// Active-connection registry so Stop() can shutdown() fds that handler
  /// threads are blocked reading (idle keep-alive connections would
  /// otherwise pin Stop for up to io_timeout_seconds).
  void RegisterConnection(int fd) EXCLUDES(conns_mu_);
  void UnregisterConnection(int fd) EXCLUDES(conns_mu_);

  const Options options_;
  // lint: unguarded(route table is frozen before Start; immutable serving)
  std::map<std::pair<std::string, std::string>, Handler> routes_;
  WorkQueue<int> pending_connections_;
  // lint: unguarded(written in Start/Stop only; never touched by workers)
  std::vector<std::thread> threads_;  ///< [0] = accept, rest = connections
  std::atomic<bool> running_{false};
  std::atomic<int> listen_fd_{-1};
  // lint: unguarded(written once in Start before the accept thread spawns)
  uint16_t bound_port_ = 0;
  Mutex conns_mu_;
  std::set<int> active_fds_ GUARDED_BY(conns_mu_);
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_HTTP_SERVER_H_
