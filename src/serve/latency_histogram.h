// Log-bucketed latency histogram for the serving stats: O(1) lock-free
// Record() into power-of-two nanosecond buckets, quantile estimation from a
// merged snapshot. Each prediction worker owns one histogram (no sharing on
// the hot path); /statz merges the per-worker histograms on demand.

#ifndef SMPTREE_SERVE_LATENCY_HISTOGRAM_H_
#define SMPTREE_SERVE_LATENCY_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace smptree {

class LatencyHistogram {
 public:
  /// Bucket b holds samples in [2^b, 2^(b+1)) nanoseconds; bucket 0 also
  /// absorbs sub-nanosecond samples, the last bucket absorbs overflow
  /// (bucket 63 would be ~292 years, so overflow cannot happen in practice).
  static constexpr int kBuckets = 64;

  /// Records one latency sample. Safe to call concurrently with Merge /
  /// snapshot readers (relaxed atomics; monitoring tolerates small skew).
  void Record(uint64_t nanos) {
    buckets_[BucketFor(nanos)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    total_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  }

  /// Adds `other`'s counts into this histogram (for the merged snapshot).
  void Merge(const LatencyHistogram& other) {
    for (int b = 0; b < kBuckets; ++b) {
      buckets_[b].fetch_add(
          other.buckets_[b].load(std::memory_order_relaxed),
          std::memory_order_relaxed);
    }
    count_.fetch_add(other.count_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    total_nanos_.fetch_add(other.total_nanos_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Samples in bucket `b`, i.e. values in [2^b, 2^(b+1)) (monitoring
  /// snapshot; relaxed, like the rest of the read surface). The value unit
  /// is whatever the caller Records -- nanoseconds for latencies, tuple
  /// counts for the engine's batch-size histogram.
  uint64_t bucket_count(int b) const {
    return buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }

  double mean_nanos() const {
    const uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        total_nanos_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Latency (ns) below which fraction `q` in (0,1] of samples fall,
  /// estimated as the upper edge of the bucket containing that rank.
  uint64_t QuantileNanos(double q) const;

  /// "p50=1.2ms p90=... p99=... max=..." -- human summary for logs/CLI.
  std::string Summary() const;

  /// Fixed-width console rendering of the non-empty buckets (loadgen
  /// output): one line per bucket with a proportional bar.
  std::string ToAscii() const;

 private:
  static int BucketFor(uint64_t nanos) {
    if (nanos == 0) return 0;
    return 63 - __builtin_clzll(nanos);  // floor(log2): bucket 0 holds 0..1ns
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> total_nanos_{0};
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_LATENCY_HISTOGRAM_H_
