#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "serve/http_parser.h"
#include "util/string_util.h"

namespace smptree {

HttpClientConnection::HttpClientConnection(std::string host, uint16_t port,
                                           int timeout_seconds)
    : host_(std::move(host)), port_(port), timeout_seconds_(timeout_seconds) {}

HttpClientConnection::~HttpClientConnection() { Close(); }

void HttpClientConnection::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClientConnection::Connect() {
  Close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StringPrintf("socket: %s", std::strerror(errno)));
  }
  timeval tv{};
  tv.tv_sec = timeout_seconds_;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address " + host_);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Status::IOError(StringPrintf(
        "connect %s:%d: %s", host_.c_str(), port_, std::strerror(errno)));
    ::close(fd);
    return s;
  }
  fd_ = fd;
  return Status::OK();
}

Result<HttpClientResponse> HttpClientConnection::Call(
    const std::string& method, const std::string& path,
    const std::string& body) {
  const bool had_connection = fd_ >= 0;
  if (!had_connection) SMPTREE_RETURN_IF_ERROR(Connect());
  auto first = CallOnce(method, path, body);
  if (first.ok() || !had_connection) return first;
  // The kept-alive connection likely went stale; retry once on a fresh one.
  SMPTREE_RETURN_IF_ERROR(Connect());
  return CallOnce(method, path, body);
}

Result<HttpClientResponse> HttpClientConnection::CallOnce(
    const std::string& method, const std::string& path,
    const std::string& body) {
  std::string request = StringPrintf(
      "%s %s HTTP/1.1\r\n"
      "Host: %s\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: %zu\r\n"
      "\r\n",
      method.c_str(), path.c_str(), host_.c_str(), body.size());
  request += body;

  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd_, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Close();
      return Status::IOError("send failed");
    }
    sent += static_cast<size_t>(n);
  }

  std::string buffer;
  char chunk[8192];
  size_t header_end = std::string::npos;
  for (;;) {
    header_end = buffer.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;  // a signal is not a hangup
    if (n <= 0) {
      Close();
      return Status::IOError("connection closed before response headers");
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }

  const std::string head = buffer.substr(0, header_end);
  HttpClientResponse response;
  {
    // "HTTP/1.1 200 OK"
    const size_t sp = head.find(' ');
    if (sp == std::string::npos) {
      Close();
      return Status::Corruption("malformed status line");
    }
    int64_t status = 0;
    if (!ParseInt64(head.substr(sp + 1, 3), &status)) {
      Close();
      return Status::Corruption("malformed status code");
    }
    response.status = static_cast<int>(status);
  }

  size_t content_length = 0;
  bool close_after = false;
  {
    size_t pos = head.find("\r\n");
    pos = pos == std::string::npos ? head.size() : pos + 2;
    while (pos < head.size()) {
      size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      const std::string line = head.substr(pos, eol - pos);
      pos = eol + 2;
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      std::string name = line.substr(0, colon);
      for (char& c : name) c = static_cast<char>(std::tolower(
          static_cast<unsigned char>(c)));
      std::string value(TrimWhitespace(line.substr(colon + 1)));
      if (name == "content-length") {
        int64_t parsed = 0;
        if (!ParseInt64(value, &parsed) || parsed < 0) {
          Close();
          return Status::Corruption("bad Content-Length in response");
        }
        content_length = static_cast<size_t>(parsed);
      } else if (name == "connection") {
        // Token list, not exact equality: "Keep-Alive, Upgrade" must not
        // read as close, and "foo, close" must.
        close_after = HeaderValueHasToken(value, "close");
      }
    }
  }

  std::string rest = buffer.substr(header_end + 4);
  while (rest.size() < content_length) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;  // a signal is not a hangup
    if (n <= 0) {
      Close();
      return Status::IOError("connection closed mid-body");
    }
    rest.append(chunk, static_cast<size_t>(n));
  }
  response.body = rest.substr(0, content_length);
  if (close_after) Close();
  return response;
}

}  // namespace smptree
