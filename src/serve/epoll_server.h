// Epoll event-loop front end: one loop thread multiplexes the listener and
// every connection socket (all nonblocking), a small worker pool runs the
// route handlers, and completed responses flow back to the loop through a
// mutex-protected completion queue + eventfd wakeup.
//
// Per-connection state machine (driven entirely by the loop thread, which
// exclusively owns every Connection object):
//
//   kReading ----complete request----> kDispatching ----response----+
//      ^  \                                                         |
//      |   `--parse error--> kWriting (error response, then close)  |
//      +-------------- response fully written <-------- kWriting <--+
//
//   - kReading: EPOLLIN armed; bytes feed the incremental parser. A
//     complete request disarms EPOLLIN (no new reads while a request is in
//     flight -- one request at a time per connection keeps responses
//     ordered) and hands the request to the dispatch queue.
//   - kDispatching: a worker runs the handler and posts the rendered bytes
//     back; the connection has no epoll interest and no deadline.
//   - kWriting: the loop sends from the output buffer. EPOLLOUT is armed
//     *only* when send() returns EAGAIN (write backpressure); a slow
//     reader therefore costs one buffered response, never a thread.
//   - After a full write: keep-alive connections first try to parse the
//     *next* request from bytes already buffered (pipelining -- requests
//     that arrived back-to-back in one segment are served without another
//     recv), otherwise EPOLLIN is re-armed with a fresh idle deadline.
//
// Idle timeouts use a lazy min-heap of (deadline, connection id): expired
// entries whose connection has since progressed or closed are skipped, so
// rearming is O(log n) with no cancellation bookkeeping.
//
// Stop() semantics match the threaded front end: the listener closes,
// idle keep-alive connections are dropped, and requests already dispatched
// finish and are flushed (bounded by io_timeout_seconds).

#ifndef SMPTREE_SERVE_EPOLL_SERVER_H_
#define SMPTREE_SERVE_EPOLL_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/http_parser.h"
#include "serve/http_server.h"
#include "serve/http_types.h"
#include "serve/work_queue.h"
#include "util/mutex.h"
#include "util/status.h"

namespace smptree {

class EpollServer {
 public:
  using Dispatcher = std::function<HttpResponse(const HttpRequest&)>;

  /// `dispatch` runs on the worker pool (options.num_threads workers) and
  /// must be safe to call concurrently.
  EpollServer(const HttpServer::Options& options, Dispatcher dispatch);
  ~EpollServer();  ///< Stop() if still running

  EpollServer(const EpollServer&) = delete;
  EpollServer& operator=(const EpollServer&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return bound_port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  FrontEndStats Stats() const;

 private:
  struct Connection {
    enum class State { kReading, kDispatching, kWriting };

    explicit Connection(HttpRequestParser::Limits limits)
        : parser(limits) {}

    int fd = -1;
    uint64_t id = 0;
    State state = State::kReading;
    HttpRequestParser parser;
    std::string out;        ///< rendered bytes not yet fully sent
    size_t out_offset = 0;  ///< already-sent prefix of `out`
    bool close_after_write = false;
    bool want_write = false;   ///< EPOLLOUT currently armed
    bool want_read = false;    ///< EPOLLIN currently armed
    int64_t deadline_ms = 0;   ///< absolute steady-clock ms; 0 = no deadline
  };

  struct DispatchJob {
    uint64_t conn_id = 0;
    bool keep_alive = true;
    HttpRequest request;
  };

  struct Completion {
    uint64_t conn_id = 0;
    bool close_after = false;
    std::string bytes;
  };

  /// Heap entry for the lazy deadline heap (smallest deadline on top).
  struct Deadline {
    int64_t at_ms = 0;
    uint64_t conn_id = 0;
    bool operator>(const Deadline& other) const {
      return at_ms > other.at_ms;
    }
  };

  void LoopThread();
  void WorkerThread();
  void WakeLoop();

  // All of the following run on the loop thread only.
  void HandleAccept();
  void HandleReadable(Connection* conn);
  void OnParserProgress(Connection* conn, bool pipelined);
  void StartDispatch(Connection* conn, bool pipelined);
  void SendError(Connection* conn);
  void EnqueueResponse(Connection* conn, std::string bytes, bool close_after);
  void TryWrite(Connection* conn);
  void DrainCompletions();
  void ExpireDeadlines(int64_t now_ms);
  void SetDeadline(Connection* conn, int64_t at_ms);
  void UpdateInterest(Connection* conn, bool want_read, bool want_write);
  void CloseConnection(Connection* conn);
  int NextWaitMillis(int64_t now_ms) const;
  bool HasPendingWork() const;

  const HttpServer::Options options_;
  const Dispatcher dispatch_;

  std::atomic<bool> running_{false};
  // lint: unguarded(written once in Start before any thread spawns)
  uint16_t bound_port_ = 0;
  // lint: unguarded(opened in Start, closed in Stop after joining threads)
  int epoll_fd_ = -1;
  // lint: unguarded(opened in Start, closed in Stop after joining threads)
  int listen_fd_ = -1;
  // lint: unguarded(opened in Start, closed in Stop after joining threads)
  int wake_fd_ = -1;

  // lint: unguarded(loop thread exclusively owns the connection table)
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  // lint: unguarded(loop thread only: monotonically increasing conn ids)
  uint64_t next_conn_id_ = 1;
  // lint: unguarded(loop thread only: lazy deadline min-heap)
  std::vector<Deadline> deadlines_;
  // Requests handed to workers and not yet completed; drives Stop() drain.
  // lint: unguarded(loop thread only)
  uint64_t outstanding_dispatches_ = 0;

  WorkQueue<DispatchJob> dispatch_queue_;
  Mutex completions_mu_;
  std::vector<Completion> completions_ GUARDED_BY(completions_mu_);

  // lint: unguarded(written in Start/Stop only; never touched by workers)
  std::vector<std::thread> threads_;  ///< [0] = loop, rest = workers

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> open_connections_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> pipelined_requests_{0};
  std::atomic<uint64_t> backpressure_stalls_{0};
  std::atomic<uint64_t> idle_timeouts_{0};
  std::atomic<uint64_t> protocol_errors_{0};
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_EPOLL_SERVER_H_
