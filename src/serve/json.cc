#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/string_util.h"

namespace smptree {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

/// Recursive-descent parser over a string view kept as (text, pos).
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SMPTREE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StringPrintf("json: %s at offset %zu", what.c_str(), pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(depth);
    if (c == '[') return ParseArray(depth);
    if (c == '"') {
      SMPTREE_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::MakeString(std::move(s));
    }
    if (ConsumeWord("true")) return JsonValue::MakeBool(true);
    if (ConsumeWord("false")) return JsonValue::MakeBool(false);
    if (ConsumeWord("null")) return JsonValue();
    return ParseNumber();
  }

  Result<JsonValue> ParseObject(int depth) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipSpace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    for (;;) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      SMPTREE_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SMPTREE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      members.insert_or_assign(std::move(key), std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipSpace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    for (;;) {
      SMPTREE_ASSIGN_OR_RETURN(JsonValue v, ParseValue(depth + 1));
      items.push_back(std::move(v));
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("dangling escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // passed through as two separate 3-byte sequences).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return Error("malformed number");
    return JsonValue::MakeNumber(value);
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonQuote(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "null";
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    return StringPrintf("%lld", static_cast<long long>(value));
  }
  return StringPrintf("%.17g", value);
}

}  // namespace smptree
