// Minimal HTTP/1.1 client used by the load generator, the serving tests,
// and the CLI: one keep-alive connection per object, blocking calls,
// Content-Length responses only (which is all the server sends).

#ifndef SMPTREE_SERVE_HTTP_CLIENT_H_
#define SMPTREE_SERVE_HTTP_CLIENT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace smptree {

struct HttpClientResponse {
  int status = 0;
  std::string body;
};

class HttpClientConnection {
 public:
  HttpClientConnection(std::string host, uint16_t port,
                       int timeout_seconds = 30);
  ~HttpClientConnection();

  HttpClientConnection(const HttpClientConnection&) = delete;
  HttpClientConnection& operator=(const HttpClientConnection&) = delete;

  /// Sends one request and reads the full response. Connects lazily on the
  /// first call and reconnects once transparently if the kept-alive
  /// connection died (server restarted, idle timeout).
  Result<HttpClientResponse> Call(const std::string& method,
                                  const std::string& path,
                                  const std::string& body);

  void Close();

 private:
  Status Connect();
  Result<HttpClientResponse> CallOnce(const std::string& method,
                                      const std::string& path,
                                      const std::string& body);

  const std::string host_;
  const uint16_t port_;
  const int timeout_seconds_;
  int fd_ = -1;
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_HTTP_CLIENT_H_
