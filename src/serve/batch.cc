#include "serve/batch.h"

#include <cmath>

#include "util/string_util.h"

namespace smptree {

void Batch::GatherTuple(int64_t tuple, TupleValues* out) const {
  out->resize(columns_.size());
  for (size_t a = 0; a < columns_.size(); ++a) {
    (*out)[a] = columns_[a][static_cast<size_t>(tuple)];
  }
}

namespace {

Result<AttrValue> ValueFromJson(const Schema& schema, int attr,
                                const JsonValue& v, int64_t row) {
  const AttrInfo& info = schema.attr(attr);
  AttrValue out;
  if (!info.is_categorical()) {
    if (v.is_null()) {
      out.f = kMissingValue;
      return out;
    }
    if (!v.is_number()) {
      return Status::InvalidArgument(StringPrintf(
          "tuple %lld, attribute '%s': expected a number",
          static_cast<long long>(row), info.name.c_str()));
    }
    out.f = static_cast<float>(v.number_value());
    return out;
  }
  if (v.is_string()) {
    for (int code = 0; code < static_cast<int>(info.value_names.size());
         ++code) {
      if (info.value_names[code] == v.string_value()) {
        out.cat = code;
        return out;
      }
    }
    return Status::InvalidArgument(StringPrintf(
        "tuple %lld, attribute '%s': unknown categorical value '%s'",
        static_cast<long long>(row), info.name.c_str(),
        v.string_value().c_str()));
  }
  if (v.is_number()) {
    const double d = v.number_value();
    const int code = static_cast<int>(d);
    if (d != std::floor(d) || code < 0 || code >= info.cardinality) {
      return Status::InvalidArgument(StringPrintf(
          "tuple %lld, attribute '%s': categorical code out of range",
          static_cast<long long>(row), info.name.c_str()));
    }
    out.cat = code;
    return out;
  }
  return Status::InvalidArgument(StringPrintf(
      "tuple %lld, attribute '%s': expected a code or value name",
      static_cast<long long>(row), info.name.c_str()));
}

}  // namespace

Result<Batch> Batch::FromJson(const Schema& schema, const JsonValue& doc) {
  const JsonValue* tuples = doc.Find("tuples");
  if (tuples == nullptr || !tuples->is_array()) {
    return Status::InvalidArgument(
        "request must be an object with a \"tuples\" array");
  }
  if (tuples->array_items().empty()) {
    return Status::InvalidArgument("\"tuples\" is empty");
  }
  Batch batch;
  const int num_attrs = schema.num_attrs();
  batch.columns_.resize(static_cast<size_t>(num_attrs));
  for (auto& col : batch.columns_) {
    col.reserve(tuples->array_items().size());
  }
  int64_t row = 0;
  for (const JsonValue& t : tuples->array_items()) {
    if (!t.is_array() ||
        static_cast<int>(t.array_items().size()) != num_attrs) {
      return Status::InvalidArgument(StringPrintf(
          "tuple %lld: expected an array of %d values",
          static_cast<long long>(row), num_attrs));
    }
    for (int a = 0; a < num_attrs; ++a) {
      SMPTREE_ASSIGN_OR_RETURN(
          AttrValue v, ValueFromJson(schema, a, t.array_items()[a], row));
      batch.columns_[static_cast<size_t>(a)].push_back(v);
    }
    ++row;
  }
  batch.num_tuples_ = row;
  return batch;
}

Batch Batch::FromDataset(const Dataset& data, int64_t begin, int64_t end) {
  Batch batch;
  const int num_attrs = data.num_attrs();
  batch.columns_.resize(static_cast<size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    auto col = data.column(a);
    batch.columns_[static_cast<size_t>(a)]
        .assign(col.begin() + begin, col.begin() + end);
  }
  batch.num_tuples_ = end - begin;
  return batch;
}

}  // namespace smptree
