#include "serve/epoll_server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/string_util.h"

namespace smptree {
namespace {

// epoll user-data ids for the two non-connection fds; connection ids are
// allocated from 1 upward so they can never collide.
constexpr uint64_t kListenerId = 0;
constexpr uint64_t kWakeId = ~uint64_t{0};

int64_t NowMillis() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

EpollServer::EpollServer(const HttpServer::Options& options,
                         Dispatcher dispatch)
    : options_(options),
      dispatch_(std::move(dispatch)),
      // Bounds loop->worker handoff; a full queue blocks the loop thread,
      // which is the intended backpressure once every worker is busy and
      // this many requests are already waiting.
      dispatch_queue_(static_cast<size_t>(
          std::max(64, std::max(1, options.num_threads) * 4))) {}

EpollServer::~EpollServer() { Stop(); }

Status EpollServer::Start() {
  SMPTREE_RETURN_IF_ERROR(
      BindHttpListener(options_, /*nonblocking=*/true, &listen_fd_,
                       &bound_port_));
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const Status s = Status::IOError(
        StringPrintf("epoll_create1: %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    const Status s =
        Status::IOError(StringPrintf("eventfd: %s", std::strerror(errno)));
    ::close(listen_fd_);
    ::close(epoll_fd_);
    listen_fd_ = epoll_fd_ = -1;
    return s;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  running_.store(true, std::memory_order_release);
  threads_.emplace_back([this] { LoopThread(); });
  for (int i = 0; i < std::max(1, options_.num_threads); ++i) {
    threads_.emplace_back([this] { WorkerThread(); });
  }
  return Status::OK();
}

void EpollServer::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    WakeLoop();
  }
  // Join the loop thread first: it drains in-flight dispatches, flushes
  // their responses, closes every connection, and closes the dispatch
  // queue, which is what lets the workers exit.
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  listen_fd_ = wake_fd_ = epoll_fd_ = -1;
}

FrontEndStats EpollServer::Stats() const {
  FrontEndStats stats;
  stats.front_end = "epoll";
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.open_connections = open_connections_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.pipelined_requests =
      pipelined_requests_.load(std::memory_order_relaxed);
  stats.backpressure_stalls =
      backpressure_stalls_.load(std::memory_order_relaxed);
  stats.idle_timeouts = idle_timeouts_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  return stats;
}

void EpollServer::WakeLoop() {
  const uint64_t one = 1;
  // Best effort: a full eventfd counter already guarantees a pending wake.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EpollServer::WorkerThread() {
  for (;;) {
    std::optional<DispatchJob> job = dispatch_queue_.Pop();
    if (!job.has_value()) return;
    const HttpResponse response = dispatch_(job->request);
    std::string bytes = RenderHttpResponse(response, job->keep_alive);
    {
      MutexLock lock(completions_mu_);
      completions_.push_back(
          {job->conn_id, !job->keep_alive, std::move(bytes)});
    }
    WakeLoop();
  }
}

void EpollServer::LoopThread() {
  std::vector<epoll_event> events(128);
  bool draining = false;
  int64_t drain_deadline_ms = 0;
  for (;;) {
    if (!draining && !running_.load(std::memory_order_acquire)) {
      // Stop() was called: quit accepting, drop idle keep-alive
      // connections, and let already-dispatched requests finish and flush
      // (bounded below). The queue close is what terminates the workers.
      draining = true;
      drain_deadline_ms =
          NowMillis() + int64_t{options_.io_timeout_seconds} * 1000;
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      dispatch_queue_.Close();
      std::vector<Connection*> idle;
      for (auto& [id, conn] : connections_) {
        if (conn->state == Connection::State::kReading) {
          idle.push_back(conn.get());
        }
      }
      for (Connection* conn : idle) CloseConnection(conn);
    }
    if (draining &&
        (!HasPendingWork() || NowMillis() >= drain_deadline_ms)) {
      break;
    }

    const int timeout = draining ? 10 : NextWaitMillis(NowMillis());
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t id = events[static_cast<size_t>(i)].data.u64;
      const uint32_t mask = events[static_cast<size_t>(i)].events;
      if (id == kListenerId) {
        if (!draining) HandleAccept();
        continue;
      }
      if (id == kWakeId) {
        uint64_t drained = 0;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        DrainCompletions();
        continue;
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection* conn = it->second.get();
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(conn);
        continue;
      }
      if ((mask & EPOLLIN) != 0 &&
          conn->state == Connection::State::kReading) {
        HandleReadable(conn);
      }
      // Re-find: the read path may have closed or re-stated the connection.
      auto again = connections_.find(id);
      if (again == connections_.end()) continue;
      conn = again->second.get();
      if ((mask & EPOLLOUT) != 0 &&
          conn->state == Connection::State::kWriting) {
        TryWrite(conn);
      }
    }
    DrainCompletions();
    ExpireDeadlines(NowMillis());
  }

  // Loop exit: anything still open is torn down here, on the owning
  // thread. Workers may still post completions afterwards; they are
  // dropped by the next (nonexistent) drain, which is fine -- their
  // connections are gone.
  while (!connections_.empty()) {
    CloseConnection(connections_.begin()->second.get());
  }
}

void EpollServer::HandleAccept() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or a transient error; epoll re-arms us
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Connection>(HttpRequestParser::Limits{
        options_.max_header_bytes, options_.max_body_bytes});
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->want_read = true;
    Connection* raw = conn.get();
    connections_[raw->id] = std::move(conn);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = raw->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseConnection(raw);
      continue;
    }
    SetDeadline(raw, NowMillis() +
                         int64_t{options_.io_timeout_seconds} * 1000);
  }
}

void EpollServer::HandleReadable(Connection* conn) {
  char chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Partial request: stay in kReading with a refreshed idle deadline
        // (the per-read timeout the threaded front end gets from
        // SO_RCVTIMEO).
        SetDeadline(conn, NowMillis() +
                              int64_t{options_.io_timeout_seconds} * 1000);
        return;
      }
      CloseConnection(conn);
      return;
    }
    if (n == 0) {
      CloseConnection(conn);
      return;
    }
    const HttpRequestParser::State state =
        conn->parser.Feed(chunk, static_cast<size_t>(n));
    if (state == HttpRequestParser::State::kComplete ||
        state == HttpRequestParser::State::kError) {
      // One request in flight per connection: stop reading until the
      // response is written (any pipelined followers stay buffered).
      OnParserProgress(conn, /*pipelined=*/false);
      return;
    }
  }
}

void EpollServer::OnParserProgress(Connection* conn, bool pipelined) {
  switch (conn->parser.state()) {
    case HttpRequestParser::State::kComplete:
      StartDispatch(conn, pipelined);
      return;
    case HttpRequestParser::State::kError:
      SendError(conn);
      return;
    default:
      // Still mid-request: wait for more bytes.
      UpdateInterest(conn, /*want_read=*/true, /*want_write=*/false);
      SetDeadline(conn, NowMillis() +
                            int64_t{options_.io_timeout_seconds} * 1000);
      return;
  }
}

void EpollServer::StartDispatch(Connection* conn, bool pipelined) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (pipelined) pipelined_requests_.fetch_add(1, std::memory_order_relaxed);

  DispatchJob job;
  job.conn_id = conn->id;
  job.keep_alive = conn->parser.keep_alive();
  job.request = std::move(conn->parser.request());
  conn->parser.Reset();

  conn->state = Connection::State::kDispatching;
  UpdateInterest(conn, /*want_read=*/false, /*want_write=*/false);
  SetDeadline(conn, 0);  // handlers own the latency while dispatching

  // Blocking push is deliberate: with every worker busy and the queue
  // full, the loop thread stalling is the closed-loop backpressure that
  // eventually fills the kernel accept backlog.
  if (!dispatch_queue_.Push(std::move(job))) {
    CloseConnection(conn);  // shutting down; the request is dropped
    return;
  }
  ++outstanding_dispatches_;
}

void EpollServer::SendError(Connection* conn) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  const HttpResponse response{conn->parser.error_status(), "text/plain",
                              conn->parser.error_message(), {}};
  EnqueueResponse(conn, RenderHttpResponse(response, false),
                  /*close_after=*/true);
}

void EpollServer::EnqueueResponse(Connection* conn, std::string bytes,
                                  bool close_after) {
  conn->out = std::move(bytes);
  conn->out_offset = 0;
  conn->close_after_write = close_after;
  conn->state = Connection::State::kWriting;
  // Bound how long an unread response may sit in the buffer: a reader
  // stalled past the io timeout is reaped like an idle connection.
  SetDeadline(conn, NowMillis() +
                        int64_t{options_.io_timeout_seconds} * 1000);
  TryWrite(conn);
}

void EpollServer::TryWrite(Connection* conn) {
  while (conn->out_offset < conn->out.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data() + conn->out_offset,
               conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Write backpressure: the socket buffer is full because the
        // client is not reading. Arm EPOLLOUT until it drains.
        if (!conn->want_write) {
          backpressure_stalls_.fetch_add(1, std::memory_order_relaxed);
        }
        UpdateInterest(conn, /*want_read=*/false, /*want_write=*/true);
        return;
      }
      CloseConnection(conn);
      return;
    }
    conn->out_offset += static_cast<size_t>(n);
  }

  // Response fully written.
  conn->out.clear();
  conn->out_offset = 0;
  if (conn->close_after_write ||
      !running_.load(std::memory_order_acquire)) {
    CloseConnection(conn);
    return;
  }
  conn->state = Connection::State::kReading;
  // Pipelining: a follower request may already be buffered in the parser;
  // serve it without touching the socket.
  conn->parser.Advance();
  if (conn->parser.state() != HttpRequestParser::State::kReadingHeaders ||
      conn->parser.buffered_bytes() > 0) {
    OnParserProgress(conn, /*pipelined=*/true);
    return;
  }
  UpdateInterest(conn, /*want_read=*/true, /*want_write=*/false);
  SetDeadline(conn, NowMillis() +
                        int64_t{options_.io_timeout_seconds} * 1000);
}

void EpollServer::DrainCompletions() {
  std::vector<Completion> batch;
  {
    MutexLock lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& done : batch) {
    --outstanding_dispatches_;
    auto it = connections_.find(done.conn_id);
    if (it == connections_.end()) continue;  // connection died meanwhile
    EnqueueResponse(it->second.get(), std::move(done.bytes),
                    done.close_after);
  }
}

void EpollServer::ExpireDeadlines(int64_t now_ms) {
  while (!deadlines_.empty() && deadlines_.front().at_ms <= now_ms) {
    const Deadline expired = deadlines_.front();
    std::pop_heap(deadlines_.begin(), deadlines_.end(),
                  std::greater<Deadline>());
    deadlines_.pop_back();
    auto it = connections_.find(expired.conn_id);
    if (it == connections_.end()) continue;         // already closed
    Connection* conn = it->second.get();
    if (conn->deadline_ms == 0 || conn->deadline_ms != expired.at_ms) {
      continue;  // stale heap entry: the connection progressed since
    }
    idle_timeouts_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
  }
}

void EpollServer::SetDeadline(Connection* conn, int64_t at_ms) {
  conn->deadline_ms = at_ms;
  if (at_ms == 0) return;  // lazily invalidates any queued heap entries
  deadlines_.push_back({at_ms, conn->id});
  std::push_heap(deadlines_.begin(), deadlines_.end(),
                 std::greater<Deadline>());
}

void EpollServer::UpdateInterest(Connection* conn, bool want_read,
                                 bool want_write) {
  if (conn->want_read == want_read && conn->want_write == want_write) return;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->want_read = want_read;
    conn->want_write = want_write;
  }
}

void EpollServer::CloseConnection(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_.erase(conn->id);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

int EpollServer::NextWaitMillis(int64_t now_ms) const {
  if (deadlines_.empty()) return -1;  // the eventfd wakes us for everything
  const int64_t until = deadlines_.front().at_ms - now_ms;
  if (until <= 0) return 0;
  return static_cast<int>(std::min<int64_t>(until, 1000));
}

bool EpollServer::HasPendingWork() const {
  if (outstanding_dispatches_ > 0) return true;
  for (const auto& [id, conn] : connections_) {
    if (conn->state == Connection::State::kWriting &&
        conn->out_offset < conn->out.size()) {
      return true;
    }
  }
  return false;
}

}  // namespace smptree
