#include "serve/service.h"

#include <utility>

#include "serve/batch.h"
#include "serve/json.h"
#include "util/string_util.h"

namespace smptree {
namespace {

HttpResponse JsonError(int status, const Status& error) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\": " + JsonQuote(error.ToString()) + "}\n";
  return response;
}

}  // namespace

InferenceService::InferenceService(std::unique_ptr<ModelStore> store,
                                   ServiceOptions options)
    : options_(std::move(options)),
      store_(std::move(store)),
      engine_(store_.get(), options_.engine),
      http_(options_.http) {
  http_.Route("POST", "/v1/predict",
              [this](const HttpRequest& r) { return HandlePredict(r); });
  http_.Route("POST", "/v1/reload",
              [this](const HttpRequest& r) { return HandleReload(r); });
  http_.Route("GET", "/healthz",
              [this](const HttpRequest& r) { return HandleHealthz(r); });
  http_.Route("GET", "/statz",
              [this](const HttpRequest& r) { return HandleStatz(r); });
}

InferenceService::~InferenceService() { Stop(); }

Status InferenceService::Start() { return http_.Start(); }

void InferenceService::Stop() {
  // Order matters: stop the front end first so no new batches arrive, then
  // drain the engine. In-flight predicts complete before Stop returns
  // because HttpServer joins its connection threads.
  http_.Stop();
  engine_.Shutdown();
}

HttpResponse InferenceService::HandlePredict(const HttpRequest& request) {
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    predict_errors_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(400, doc.status());
  }
  auto batch = Batch::FromJson(store_->schema(), *doc);
  if (!batch.ok()) {
    predict_errors_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(400, batch.status());
  }
  auto outcome = engine_.Predict(std::move(*batch));
  if (!outcome.ok()) {
    predict_errors_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(outcome.status().IsAborted() ? 503 : 400,
                     outcome.status());
  }

  const Schema& schema = store_->schema();
  std::string codes, labels;
  codes.reserve(outcome->labels.size() * 3);
  for (size_t i = 0; i < outcome->labels.size(); ++i) {
    if (i > 0) {
      codes += ",";
      labels += ",";
    }
    codes += StringPrintf("%d", static_cast<int>(outcome->labels[i]));
    labels += JsonQuote(schema.class_name(outcome->labels[i]));
  }
  // Forest models add per-tuple class-probability rows (vote shares).
  std::string probs;
  if (outcome->num_classes > 0 && !outcome->probs.empty()) {
    const int k = outcome->num_classes;
    for (size_t i = 0; i < outcome->labels.size(); ++i) {
      probs += i > 0 ? ",[" : "[";
      for (int c = 0; c < k; ++c) {
        if (c > 0) probs += ",";
        probs += JsonNumber(
            outcome->probs[i * static_cast<size_t>(k) +
                           static_cast<size_t>(c)]);
      }
      probs += "]";
    }
  }
  HttpResponse response;
  if (probs.empty()) {
    response.body = StringPrintf(
        "{\"epoch\": %lld, \"codes\": [%s], \"labels\": [%s]}\n",
        static_cast<long long>(outcome->model_epoch), codes.c_str(),
        labels.c_str());
  } else {
    response.body = StringPrintf(
        "{\"epoch\": %lld, \"codes\": [%s], \"labels\": [%s], "
        "\"probs\": [%s]}\n",
        static_cast<long long>(outcome->model_epoch), codes.c_str(),
        labels.c_str(), probs.c_str());
  }
  return response;
}

HttpResponse InferenceService::HandleReload(const HttpRequest& request) {
  if (!options_.allow_reload) {
    reload_errors_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(403, Status::NotSupported("reload is disabled"));
  }
  auto doc = ParseJson(request.body);
  if (!doc.ok()) {
    reload_errors_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(400, doc.status());
  }
  const JsonValue* model = doc->Find("model");
  if (model == nullptr || !model->is_string()) {
    reload_errors_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(400, Status::InvalidArgument(
                              "request needs a \"model\" path string"));
  }
  const Status s = store_->Reload(model->string_value());
  if (!s.ok()) {
    reload_errors_.fetch_add(1, std::memory_order_relaxed);
    return JsonError(s.IsIOError() || s.IsNotFound() ? 404 : 400, s);
  }
  reloads_.fetch_add(1, std::memory_order_relaxed);
  const ServingModelPtr current = store_->Current();
  HttpResponse response;
  response.body = StringPrintf(
      "{\"epoch\": %lld, \"kind\": \"%s\", \"trees\": %d, \"nodes\": %lld, "
      "\"source\": %s}\n",
      static_cast<long long>(current->epoch), current->kind_name(),
      current->num_trees(),
      static_cast<long long>(current->total_nodes()),
      JsonQuote(current->source).c_str());
  return response;
}

HttpResponse InferenceService::HandleHealthz(const HttpRequest&) {
  HttpResponse response;
  response.body = StringPrintf(
      "{\"status\": \"ok\", \"epoch\": %lld}\n",
      static_cast<long long>(store_->epoch()));
  return response;
}

HttpResponse InferenceService::HandleStatz(const HttpRequest&) {
  const EngineStats stats = engine_.Stats();
  const FrontEndStats http = http_.Stats();
  const ServingModelPtr model = store_->Current();
  const double uptime = uptime_.Seconds();
  const double tuples_per_second =
      uptime > 0 ? static_cast<double>(stats.tuples) / uptime : 0.0;
  // Non-empty log2 buckets of the batch-size histogram, rendered as
  // {"<lower-edge>": count, ...} so real batch shapes are observable.
  std::string size_buckets;
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    const uint64_t count = stats.batch_size_buckets[static_cast<size_t>(b)];
    if (count == 0) continue;
    if (!size_buckets.empty()) size_buckets += ", ";
    size_buckets += StringPrintf(
        "\"%llu\": %llu", static_cast<unsigned long long>(uint64_t{1} << b),
        static_cast<unsigned long long>(count));
  }
  HttpResponse response;
  response.body = StringPrintf(
      "{\"model_epoch\": %lld, \"model_kind\": \"%s\", \"model_trees\": %d, "
      "\"model_nodes\": %lld, "
      "\"model_source\": %s, "
      "\"model_bytes\": {\"pointer\": %zu, \"flat\": %zu}, "
      "\"workers\": %d, \"queue_depth\": %zu, "
      "\"batches\": %llu, \"tuples\": %llu, \"rejected\": %llu, "
      "\"predict_errors\": %llu, \"reloads\": %llu, "
      "\"reload_errors\": %llu, \"uptime_seconds\": %s, "
      "\"tuples_per_second\": %s, \"batch_tuples\": "
      "{\"mean\": %s, \"p50\": %llu, \"p99\": %llu, \"log2_buckets\": {%s}}, "
      "\"latency\": "
      "{\"mean_ms\": %s, \"p50_ms\": %s, \"p90_ms\": %s, \"p99_ms\": %s}}\n",
      static_cast<long long>(model->epoch), model->kind_name(),
      model->num_trees(),
      static_cast<long long>(model->total_nodes()),
      JsonQuote(model->source).c_str(),
      stats.model_bytes_pointer, stats.model_bytes_flat,
      stats.workers, stats.queue_depth,
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.tuples),
      static_cast<unsigned long long>(stats.rejected),
      static_cast<unsigned long long>(
          predict_errors_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          reloads_.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          reload_errors_.load(std::memory_order_relaxed)),
      JsonNumber(uptime).c_str(), JsonNumber(tuples_per_second).c_str(),
      JsonNumber(stats.batch_mean_tuples).c_str(),
      static_cast<unsigned long long>(stats.batch_p50_tuples),
      static_cast<unsigned long long>(stats.batch_p99_tuples),
      size_buckets.c_str(),
      JsonNumber(stats.mean_nanos / 1e6).c_str(),
      JsonNumber(static_cast<double>(stats.p50_nanos) / 1e6).c_str(),
      JsonNumber(static_cast<double>(stats.p90_nanos) / 1e6).c_str(),
      JsonNumber(static_cast<double>(stats.p99_nanos) / 1e6).c_str());
  // Connection-path counters from whichever front end is serving; spliced
  // in as an "http" member before the outer closing brace (the body above
  // always ends "}}\n").
  const std::string http_json = StringPrintf(
      ", \"http\": {\"front_end\": \"%s\", \"open_connections\": %llu, "
      "\"accepted\": %llu, \"requests\": %llu, "
      "\"pipelined_requests\": %llu, \"backpressure_stalls\": %llu, "
      "\"idle_timeouts\": %llu, \"protocol_errors\": %llu}",
      http.front_end,
      static_cast<unsigned long long>(http.open_connections),
      static_cast<unsigned long long>(http.accepted),
      static_cast<unsigned long long>(http.requests),
      static_cast<unsigned long long>(http.pipelined_requests),
      static_cast<unsigned long long>(http.backpressure_stalls),
      static_cast<unsigned long long>(http.idle_timeouts),
      static_cast<unsigned long long>(http.protocol_errors));
  response.body.insert(response.body.rfind("}\n"), http_json);
  if (!options_.build_stats_json.empty()) {
    // Splice the training-run BuildStats in as a "build" member before the
    // outer closing brace (the body above always ends "}}\n").
    const size_t tail = response.body.rfind("}\n");
    response.body.insert(tail, ", \"build\": " + options_.build_stats_json);
  }
  if (options_.stream_stats) {
    // Live streaming-trainer counters, same splice as "build".
    const size_t tail = response.body.rfind("}\n");
    response.body.insert(tail, ", \"stream\": " + options_.stream_stats());
  }
  return response;
}

}  // namespace smptree
