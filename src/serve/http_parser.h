// Incremental HTTP/1.x request parser shared by both serving front ends
// (the threaded accept pool and the epoll event loop). The parser owns a
// byte buffer: callers Feed() whatever recv() produced -- a single byte, a
// half request, or several pipelined requests in one TCP segment -- and the
// state machine advances as far as the bytes allow. When a request
// completes, the caller takes it, calls Reset(), and Advance() may complete
// the *next* request from the already-buffered remainder without another
// read (pipelined keep-alive).
//
// Protocol decisions centralized here so the two front ends cannot drift:
//   - the request-line HTTP version is parsed; HTTP/1.0 requests default to
//     Connection: close unless the client sends a keep-alive token,
//     HTTP/1.1 defaults to keep-alive unless it sends close (RFC 7230 6.3);
//   - Connection header values are case-insensitive comma-separated token
//     lists ("Keep-Alive, Upgrade" negotiates keep-alive);
//   - oversized header blocks answer 431, oversized bodies 413, chunked
//     transfer coding 400 -- all as renderable error responses instead of a
//     silent connection drop.

#ifndef SMPTREE_SERVE_HTTP_PARSER_H_
#define SMPTREE_SERVE_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "serve/http_types.h"

namespace smptree {

/// Case-insensitive ASCII string equality (header names, tokens).
bool IEqualsAscii(std::string_view a, std::string_view b);

/// True when the comma-separated header value contains `token`,
/// case-insensitively and ignoring optional whitespace around list items:
/// HeaderValueHasToken("Keep-Alive, Upgrade", "keep-alive") is true.
bool HeaderValueHasToken(std::string_view value, std::string_view token);

class HttpRequestParser {
 public:
  enum class State {
    kReadingHeaders,  ///< waiting for the blank line ending the header block
    kReadingBody,     ///< headers parsed; waiting for Content-Length bytes
    kComplete,        ///< request() is ready; call Reset() before reusing
    kError,           ///< protocol error; send error response, then close
  };

  struct Limits {
    size_t max_header_bytes = 64u * 1024;
    size_t max_body_bytes = 32u << 20;
  };

  HttpRequestParser();  ///< default Limits
  explicit HttpRequestParser(Limits limits) : limits_(limits) {}

  /// Appends raw connection bytes and advances as far as possible.
  State Feed(const char* data, size_t n);

  /// Re-runs the state machine on already-buffered bytes (after Reset, to
  /// consume a pipelined request that arrived with the previous one).
  State Advance();

  State state() const { return state_; }

  /// The parsed request; valid only in kComplete. Mutable so the caller
  /// can move the strings out before Reset().
  HttpRequest& request() { return request_; }

  /// Negotiated connection persistence for the completed request (version
  /// default overridden by Connection tokens). Valid in kComplete.
  bool keep_alive() const { return keep_alive_; }

  /// Error response to send before closing; valid only in kError.
  int error_status() const { return error_status_; }
  const std::string& error_message() const { return error_message_; }

  /// Discards the completed request and returns to kReadingHeaders,
  /// keeping any buffered bytes beyond it (the pipelined remainder).
  /// Must not be called in kError (a protocol error poisons the framing,
  /// so the connection cannot be reused).
  void Reset();

  /// Bytes received but not yet consumed by a completed request.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  void ParseHead(const std::string& head);
  State Fail(int status, const std::string& message);

  const Limits limits_;
  State state_ = State::kReadingHeaders;
  std::string buffer_;
  HttpRequest request_;
  size_t content_length_ = 0;
  bool keep_alive_ = true;
  int error_status_ = 0;
  std::string error_message_;
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_HTTP_PARSER_H_
