// Wire-level HTTP request/response structs and response rendering, shared
// by the parser, both serving front ends, and the client. Kept free of any
// socket or threading concerns so the protocol layer is testable in
// isolation.

#ifndef SMPTREE_SERVE_HTTP_TYPES_H_
#define SMPTREE_SERVE_HTTP_TYPES_H_

#include <string>
#include <utility>
#include <vector>

namespace smptree {

struct HttpRequest {
  std::string method;  ///< "GET", "POST", ... (uppercase as sent)
  std::string path;    ///< path only; "?query" is split off into `query`
  std::string query;   ///< raw query string, no leading '?'
  std::string body;
  int version_major = 1;  ///< from the request line ("HTTP/1.0" -> 1, 0)
  int version_minor = 1;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  /// Extra response headers beyond the standard set RenderHttpResponse
  /// always emits (Content-Type, Content-Length, Connection) -- e.g. the
  /// Allow header a 405 is required to carry.
  std::vector<std::pair<std::string, std::string>> extra_headers;
};

/// Standard reason phrase for the handful of statuses the server emits.
const char* HttpStatusText(int status);

/// Serializes the response head + body; `keep_alive` picks the Connection
/// header. Identical bytes regardless of front end -- the parity contract
/// between the threaded and epoll servers lives here.
std::string RenderHttpResponse(const HttpResponse& response, bool keep_alive);

}  // namespace smptree

#endif  // SMPTREE_SERVE_HTTP_TYPES_H_
