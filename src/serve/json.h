// Minimal JSON support for the serving subsystem: a recursive-descent
// parser into a small value model, plus string-building helpers for
// responses. Covers the JSON the serving endpoints exchange (objects,
// arrays, strings, numbers, booleans, null); it is not a general-purpose
// library -- no surrogate-pair decoding, numbers parse as double.

#ifndef SMPTREE_SERVE_JSON_H_
#define SMPTREE_SERVE_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace smptree {

/// One parsed JSON value. Containers own their children by value; the
/// whole tree is immutable after parsing.
class JsonValue {
 public:
  enum class Type : unsigned char { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(std::map<std::string, JsonValue> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::map<std::string, JsonValue>& object_members() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

 private:
  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error. Nesting
/// deeper than 64 levels is rejected (requests are flat; this bounds the
/// parser's recursion on hostile input).
Result<JsonValue> ParseJson(const std::string& text);

/// Renders `raw` as a JSON string literal, quotes included.
std::string JsonQuote(const std::string& raw);

/// Renders a double the way the responses need it: integral values without
/// a fraction, NaN/Inf as null (JSON has no literal for them).
std::string JsonNumber(double value);

}  // namespace smptree

#endif  // SMPTREE_SERVE_JSON_H_
