#include "serve/latency_histogram.h"

#include <algorithm>

#include "util/string_util.h"

namespace smptree {
namespace {

std::string FormatNanos(uint64_t nanos) {
  if (nanos >= 1000000000ull) {
    return StringPrintf("%.2fs", static_cast<double>(nanos) / 1e9);
  }
  if (nanos >= 1000000ull) {
    return StringPrintf("%.2fms", static_cast<double>(nanos) / 1e6);
  }
  if (nanos >= 1000ull) {
    return StringPrintf("%.2fus", static_cast<double>(nanos) / 1e3);
  }
  return StringPrintf("%lluns", static_cast<unsigned long long>(nanos));
}

}  // namespace

uint64_t LatencyHistogram::QuantileNanos(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the sample we want, 1-based; q=1 selects the last sample.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(n) + 0.5));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= rank) {
      // Upper edge of bucket b: 2^(b+1) - 1 (bucket 0 holds 0..1ns).
      return b >= 63 ? ~0ull : (uint64_t{2} << b) - 1;
    }
  }
  return ~0ull;
}

std::string LatencyHistogram::Summary() const {
  return StringPrintf(
      "n=%llu mean=%s p50=%s p90=%s p99=%s",
      static_cast<unsigned long long>(count()),
      FormatNanos(static_cast<uint64_t>(mean_nanos())).c_str(),
      FormatNanos(QuantileNanos(0.5)).c_str(),
      FormatNanos(QuantileNanos(0.9)).c_str(),
      FormatNanos(QuantileNanos(0.99)).c_str());
}

std::string LatencyHistogram::ToAscii() const {
  uint64_t max_bucket = 0;
  int first = kBuckets, last = -1;
  for (int b = 0; b < kBuckets; ++b) {
    const uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    max_bucket = std::max(max_bucket, c);
    first = std::min(first, b);
    last = std::max(last, b);
  }
  if (last < 0) return "(no samples)\n";
  std::string out;
  for (int b = first; b <= last; ++b) {
    const uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    const int width = max_bucket == 0
                          ? 0
                          : static_cast<int>(40.0 * static_cast<double>(c) /
                                             static_cast<double>(max_bucket));
    out += StringPrintf("%10s..%-10s %8llu |%s\n",
                        FormatNanos(b == 0 ? 0 : uint64_t{1} << b).c_str(),
                        FormatNanos((uint64_t{2} << b) - 1).c_str(),
                        static_cast<unsigned long long>(c),
                        std::string(static_cast<size_t>(width), '#').c_str());
  }
  return out;
}

}  // namespace smptree
