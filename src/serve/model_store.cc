#include "serve/model_store.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "core/tree_io.h"
#include "data/schema_io.h"
#include "ensemble/forest_io.h"

namespace smptree {

namespace {

/// Reads a whole model file (both kinds share this).
Result<std::string> ReadFileText(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open model file " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool LooksLikeForest(const std::string& text) {
  return text.rfind("forest ", 0) == 0;
}

}  // namespace

const char* ModelKindName(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTree:
      return "tree";
    case ModelKind::kForest:
      return "forest";
  }
  return "unknown";
}

ClassLabel ServingModel::Probabilities(const TupleValues& values,
                                       std::vector<double>* probs) const {
  if (kind == ModelKind::kForest) return forest->Probabilities(values, probs);
  const ClassLabel label = tree.Classify(values);
  probs->assign(static_cast<size_t>(schema().num_classes()), 0.0);
  (*probs)[static_cast<size_t>(label)] = 1.0;
  return label;
}

namespace {

/// Chunk-rounded arena bytes plus the per-node class-count vectors: the
/// dominant heap costs of the builder representation. Vector/bookkeeping
/// overheads are ignored, so this is a (slight) underestimate.
size_t PointerTreeBytes(const DecisionTree& tree) {
  constexpr int64_t kChunk = 1024;  // core/tree.h arena chunk size
  const int64_t nodes = tree.num_nodes();
  if (nodes == 0) return 0;
  const int64_t chunks = (nodes + kChunk - 1) / kChunk;
  return static_cast<size_t>(chunks * kChunk) * sizeof(TreeNode) +
         static_cast<size_t>(nodes) *
             static_cast<size_t>(tree.schema().num_classes()) *
             sizeof(int64_t);
}

}  // namespace

size_t ServingModel::pointer_bytes() const {
  if (kind != ModelKind::kForest) return PointerTreeBytes(tree);
  size_t total = 0;
  for (int i = 0; i < forest->num_trees(); ++i) {
    total += PointerTreeBytes(forest->tree(i));
  }
  return total;
}

size_t ServingModel::flat_bytes() const {
  return kind == ModelKind::kForest ? flat_forest->bytes()
                                    : flat_tree.bytes();
}

ModelStore::ModelStore(ServingModelPtr initial) : schema_(initial->schema()) {
  MutexLock lock(mu_);
  current_ = std::move(initial);
}

Result<std::unique_ptr<ModelStore>> ModelStore::Create(DecisionTree tree) {
  SMPTREE_RETURN_IF_ERROR(tree.Validate());
  auto model = std::make_shared<ServingModel>(std::move(tree));
  model->epoch = 1;
  return std::unique_ptr<ModelStore>(new ModelStore(std::move(model)));
}

Result<std::unique_ptr<ModelStore>> ModelStore::Create(Forest forest) {
  SMPTREE_RETURN_IF_ERROR(forest.Validate());
  auto model = std::make_shared<ServingModel>(std::move(forest));
  model->epoch = 1;
  return std::unique_ptr<ModelStore>(new ModelStore(std::move(model)));
}

Result<DecisionTree> ModelStore::LoadTreeFile(const Schema& schema,
                                              const std::string& model_path) {
  SMPTREE_ASSIGN_OR_RETURN(std::string text, ReadFileText(model_path));
  SMPTREE_ASSIGN_OR_RETURN(DecisionTree tree, DeserializeTree(schema, text));
  SMPTREE_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

Result<Forest> ModelStore::LoadForestFile(const Schema& schema,
                                          const std::string& model_path) {
  SMPTREE_ASSIGN_OR_RETURN(std::string text, ReadFileText(model_path));
  // DeserializeForest validates every member and the assembled forest.
  return DeserializeForest(schema, text);
}

Result<bool> ModelStore::IsForestFile(const std::string& model_path) {
  std::ifstream in(model_path);
  if (!in) return Status::IOError("cannot open model file " + model_path);
  std::string first_line;
  std::getline(in, first_line);
  return LooksLikeForest(first_line);
}

Result<std::unique_ptr<ModelStore>> ModelStore::Open(
    const std::string& schema_path, const std::string& model_path) {
  SMPTREE_ASSIGN_OR_RETURN(Schema schema, ReadSchemaFile(schema_path));
  SMPTREE_ASSIGN_OR_RETURN(std::string text, ReadFileText(model_path));
  std::shared_ptr<ServingModel> model;
  if (LooksLikeForest(text)) {
    SMPTREE_ASSIGN_OR_RETURN(Forest forest, DeserializeForest(schema, text));
    model = std::make_shared<ServingModel>(std::move(forest));
  } else {
    SMPTREE_ASSIGN_OR_RETURN(DecisionTree tree,
                             DeserializeTree(schema, text));
    SMPTREE_RETURN_IF_ERROR(tree.Validate());
    model = std::make_shared<ServingModel>(std::move(tree));
  }
  model->epoch = 1;
  model->source = model_path;
  return std::unique_ptr<ModelStore>(new ModelStore(std::move(model)));
}

Status ModelStore::InstallModel(std::shared_ptr<ServingModel> model) {
  if (!SchemasCompatible(schema_, model->schema())) {
    return Status::InvalidArgument(
        "model schema is incompatible with the serving schema (" +
        model->source + ")");
  }
  ServingModelPtr retired;
  {
    MutexLock lock(mu_);
    model->epoch = ++last_epoch_;
    retired = std::move(current_);
    current_ = std::move(model);
  }
  // `retired` holds the outgoing model; if this was its last reference
  // (no batch in flight), the old model is destroyed here, outside the lock.
  return Status::OK();
}

Status ModelStore::Install(DecisionTree tree, const std::string& source) {
  SMPTREE_RETURN_IF_ERROR(tree.Validate());
  auto model = std::make_shared<ServingModel>(std::move(tree));
  model->source = source;
  return InstallModel(std::move(model));
}

Status ModelStore::InstallForest(Forest forest, const std::string& source) {
  SMPTREE_RETURN_IF_ERROR(forest.Validate());
  auto model = std::make_shared<ServingModel>(std::move(forest));
  model->source = source;
  return InstallModel(std::move(model));
}

Status ModelStore::Reload(const std::string& model_path) {
  // Parse and validate outside the install lock; only the epoch assignment
  // and pointer swap serialize. A corrupt or truncated file fails here and
  // the installed model -- tree or forest -- stays.
  SMPTREE_ASSIGN_OR_RETURN(std::string text, ReadFileText(model_path));
  if (LooksLikeForest(text)) {
    SMPTREE_ASSIGN_OR_RETURN(Forest forest, DeserializeForest(schema_, text));
    return InstallForest(std::move(forest), model_path);
  }
  SMPTREE_ASSIGN_OR_RETURN(DecisionTree tree, DeserializeTree(schema_, text));
  return Install(std::move(tree), model_path);
}

}  // namespace smptree
