#include "serve/model_store.h"

#include <fstream>
#include <sstream>
#include <utility>

#include "core/tree_io.h"
#include "data/schema_io.h"

namespace smptree {

bool SchemasCompatible(const Schema& a, const Schema& b) {
  if (a.num_attrs() != b.num_attrs()) return false;
  if (a.num_classes() != b.num_classes()) return false;
  for (int i = 0; i < a.num_attrs(); ++i) {
    const AttrInfo& x = a.attr(i);
    const AttrInfo& y = b.attr(i);
    if (x.name != y.name || x.type != y.type) return false;
    if (x.is_categorical() && x.cardinality != y.cardinality) return false;
  }
  for (int c = 0; c < a.num_classes(); ++c) {
    if (a.class_names()[c] != b.class_names()[c]) return false;
  }
  return true;
}

ModelStore::ModelStore(ServingModelPtr initial) : schema_(initial->schema()) {
  MutexLock lock(mu_);
  current_ = std::move(initial);
}

Result<std::unique_ptr<ModelStore>> ModelStore::Create(DecisionTree tree) {
  SMPTREE_RETURN_IF_ERROR(tree.Validate());
  auto model = std::make_shared<ServingModel>(std::move(tree));
  model->epoch = 1;
  return std::unique_ptr<ModelStore>(new ModelStore(std::move(model)));
}

Result<DecisionTree> ModelStore::LoadTreeFile(const Schema& schema,
                                              const std::string& model_path) {
  std::ifstream in(model_path);
  if (!in) return Status::IOError("cannot open model file " + model_path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  SMPTREE_ASSIGN_OR_RETURN(DecisionTree tree,
                           DeserializeTree(schema, buffer.str()));
  SMPTREE_RETURN_IF_ERROR(tree.Validate());
  return tree;
}

Result<std::unique_ptr<ModelStore>> ModelStore::Open(
    const std::string& schema_path, const std::string& model_path) {
  SMPTREE_ASSIGN_OR_RETURN(Schema schema, ReadSchemaFile(schema_path));
  SMPTREE_ASSIGN_OR_RETURN(DecisionTree tree,
                           LoadTreeFile(schema, model_path));
  auto model = std::make_shared<ServingModel>(std::move(tree));
  model->epoch = 1;
  model->source = model_path;
  return std::unique_ptr<ModelStore>(new ModelStore(std::move(model)));
}

Status ModelStore::Install(DecisionTree tree, const std::string& source) {
  SMPTREE_RETURN_IF_ERROR(tree.Validate());
  if (!SchemasCompatible(schema_, tree.schema())) {
    return Status::InvalidArgument(
        "model schema is incompatible with the serving schema (" + source +
        ")");
  }
  auto model = std::make_shared<ServingModel>(std::move(tree));
  model->source = source;
  ServingModelPtr retired;
  {
    MutexLock lock(mu_);
    model->epoch = ++last_epoch_;
    retired = std::move(current_);
    current_ = std::move(model);
  }
  // `retired` holds the outgoing model; if this was its last reference
  // (no batch in flight), the old tree is destroyed here, outside the lock.
  return Status::OK();
}

Status ModelStore::Reload(const std::string& model_path) {
  // Parse and validate outside the install lock; only the epoch assignment
  // and pointer swap serialize.
  SMPTREE_ASSIGN_OR_RETURN(DecisionTree tree,
                           LoadTreeFile(schema_, model_path));
  return Install(std::move(tree), model_path);
}

}  // namespace smptree
