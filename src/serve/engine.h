// PredictionEngine: the scoring core of the serving subsystem. A fixed pool
// of worker threads pops Batch requests from a bounded MPMC queue
// (serve/work_queue.h) and scores each whole batch through the snapshot's
// flattened model (infer/batch_scorer.h) -- level-synchronous traversal
// straight off the Batch columns, no per-tuple row gather, no pointer
// chasing.
//
// Concurrency model (the read-side mirror of the paper's build-side
// protocols): workers share NOTHING mutable on the hot path. Each batch
// takes one ServingModelPtr snapshot from the ModelStore -- an O(1)
// pointer copy -- and scores every tuple against that snapshot (the flat
// form is compiled into the snapshot at install time), so a hot reload
// mid-batch never changes the model under a batch and never blocks.
// Per-worker arenas hold the scorer scratch and private histograms
// (latency + batch size); /statz merges them on demand.

#ifndef SMPTREE_SERVE_ENGINE_H_
#define SMPTREE_SERVE_ENGINE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/records.h"
#include "infer/batch_scorer.h"
#include "serve/batch.h"
#include "serve/latency_histogram.h"
#include "serve/model_store.h"
#include "serve/work_queue.h"
#include "util/mutex.h"
#include "util/status.h"

namespace smptree {

struct EngineOptions {
  /// Worker threads scoring batches; 0 means hardware_concurrency.
  int num_workers = 0;
  /// Bound on queued batches; producers block when full (backpressure).
  size_t queue_capacity = 128;
  /// Test-only: called by the worker after it takes its model snapshot and
  /// before it scores, with the snapshot's epoch. Lets tests hold a batch
  /// "in flight" across a reload deterministically.
  std::function<void(int64_t epoch)> test_batch_hook;
};

/// The scored batch: one label per input tuple, plus the epoch of the model
/// that produced them (so callers can tell which model answered across a
/// reload). Forest models additionally report per-class vote shares:
/// `probs` holds num_tuples() x num_classes doubles, row-major
/// (probs[t * num_classes + c]); it is empty for single-tree models.
/// Every field comes from ONE model snapshot -- a reload mid-batch can
/// never mix one model's labels with another's probabilities.
struct PredictOutcome {
  std::vector<ClassLabel> labels;
  std::vector<double> probs;
  int num_classes = 0;  ///< probs row width; 0 when probs is empty
  int64_t model_epoch = 0;
};

/// Monitoring snapshot for /statz.
struct EngineStats {
  uint64_t batches = 0;         ///< batches scored
  uint64_t tuples = 0;          ///< tuples scored
  uint64_t rejected = 0;        ///< batches rejected before scoring
  size_t queue_depth = 0;       ///< instantaneous queued batches
  int workers = 0;
  double mean_nanos = 0.0;      ///< per-batch service latency (queue+score)
  uint64_t p50_nanos = 0;
  uint64_t p90_nanos = 0;
  uint64_t p99_nanos = 0;
  /// Heap cost of the currently installed model, both representations
  /// (pointer-linked builder form vs flattened SoA inference form).
  size_t model_bytes_pointer = 0;
  size_t model_bytes_flat = 0;
  /// Batch-size distribution (tuples per scored batch): log2 buckets, so
  /// batch_size_buckets[b] counts batches of [2^b, 2^(b+1)) tuples.
  double batch_mean_tuples = 0.0;
  uint64_t batch_p50_tuples = 0;
  uint64_t batch_p99_tuples = 0;
  std::array<uint64_t, LatencyHistogram::kBuckets> batch_size_buckets{};
};

class PredictionEngine {
 public:
  /// `store` must outlive the engine. Workers start immediately.
  PredictionEngine(const ModelStore* store, EngineOptions options);

  /// Joins the workers (Shutdown() if not already called).
  ~PredictionEngine();

  PredictionEngine(const PredictionEngine&) = delete;
  PredictionEngine& operator=(const PredictionEngine&) = delete;

  /// Scores `batch`: enqueues it and blocks until a worker completes it.
  /// Safe to call from any number of threads concurrently. Fails without
  /// scoring when the batch arity does not match the serving schema or the
  /// engine is shutting down.
  Result<PredictOutcome> Predict(Batch batch);

  /// Closes the queue; queued batches still complete, new Predict calls
  /// fail with Aborted. Idempotent.
  void Shutdown();

  EngineStats Stats() const;

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  /// One in-flight request: the caller stack-allocates it, the worker
  /// fills outcome/status and signals done.
  struct Request {
    explicit Request(Batch b) : batch(std::move(b)) {}

    // Handoff protocol, not lock coverage: the worker fills batch/outcome
    // while it solely owns the request, then sets done under mu; the
    // caller touches them again only after observing done under mu.
    // lint: unguarded(worker-owned until done is set under mu)
    Batch batch;
    // lint: unguarded(worker-owned until done is set under mu)
    PredictOutcome outcome;

    Mutex mu;
    CondVar cv;
    bool done GUARDED_BY(mu) = false;
  };

  /// Per-worker arena: scorer scratch reused across batches, and the
  /// worker's private slice of the stats.
  struct WorkerArena {
    BatchScorer scorer;            ///< cursor/vote scratch (infer/)
    LatencyHistogram latency;      ///< per-batch service latency
    LatencyHistogram batch_size;   ///< tuples per batch (log2 buckets)
    std::atomic<uint64_t> batches{0};
    std::atomic<uint64_t> tuples{0};
  };

  void WorkerLoop(int worker_index);

  const ModelStore* const store_;
  const EngineOptions options_;
  WorkQueue<Request*> queue_;
  std::vector<std::unique_ptr<WorkerArena>> arenas_;
  std::vector<std::thread> workers_;
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_ENGINE_H_
