// Bounded MPMC blocking queue used for request handoff in the serving
// subsystem: producers (HTTP connection threads, the load generator's
// clients) push work items, consumers (prediction workers) pop them. Built
// on the annotated Mutex/CondVar wrappers so -Wthread-safety verifies the
// protocol. Close() drains nothing: already-queued items are still handed
// out, then Pop() reports shutdown -- the server uses this to finish
// in-flight requests on Stop().

#ifndef SMPTREE_SERVE_WORK_QUEUE_H_
#define SMPTREE_SERVE_WORK_QUEUE_H_

#include <deque>
#include <optional>
#include <utility>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smptree {

template <typename T>
class WorkQueue {
 public:
  /// `capacity` bounds the number of queued items; Push blocks when full
  /// (closed-loop backpressure instead of unbounded memory growth).
  explicit WorkQueue(size_t capacity) : capacity_(capacity) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Blocks until there is room (or the queue is closed). Returns false
  /// when the queue was closed -- the item was not enqueued.
  bool Push(T item) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.NotifyOne();
    return true;
  }

  /// Blocks until an item is available (or the queue is closed and empty).
  /// Returns nullopt only on shutdown with nothing left to hand out.
  std::optional<T> Pop() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (items_.empty() && !closed_) not_empty_.Wait(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.NotifyOne();
    return item;
  }

  /// Wakes all blocked producers and consumers; subsequent Push calls are
  /// rejected, Pop drains the remaining items then reports shutdown.
  void Close() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    not_empty_.NotifyAll();
    not_full_.NotifyAll();
  }

  bool closed() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_;
  }

  /// Instantaneous depth (monitoring only; stale by the time it returns).
  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return items_.size();
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ GUARDED_BY(mu_);
  bool closed_ GUARDED_BY(mu_) = false;
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_WORK_QUEUE_H_
