// InferenceService: binds the serving layers together -- ModelStore (model
// lifecycle) + PredictionEngine (scoring pool) + HttpServer (front end) --
// and implements the HTTP API:
//
//   POST /v1/predict  {"tuples": [[v, ...], ...]}
//     -> {"epoch": E, "codes": [c, ...], "labels": ["name", ...]}
//   POST /v1/reload   {"model": "path/to/model.tree"}
//     -> {"epoch": E, "nodes": N, "source": "..."}   (swap-on-load)
//   GET  /healthz     -> {"status": "ok", "epoch": E}
//   GET  /statz       -> counters, latency quantiles, queue depth, epoch
//
// Values in a predict tuple follow schema attribute order; categorical
// values may be sent as value names (strings) or integer codes; null means
// a missing continuous value. Responses carry both dense label codes and
// class names so thin clients need no schema.

#ifndef SMPTREE_SERVE_SERVICE_H_
#define SMPTREE_SERVE_SERVICE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>

#include "serve/engine.h"
#include "serve/http_server.h"
#include "serve/model_store.h"
#include "util/status.h"
#include "util/timer.h"

namespace smptree {

struct ServiceOptions {
  EngineOptions engine;
  HttpServer::Options http;
  /// When false, POST /v1/reload answers 403 (immutable deployments).
  bool allow_reload = true;
  /// Optional BuildStats JSON of the served model's training run (as written
  /// by `smptree_cli train --stats-out`). When non-empty it is embedded
  /// verbatim as the "build" section of /statz, so a deployment carries its
  /// training-time phase/wait breakdown next to the serving metrics. Must be
  /// a single valid JSON object; smptree_serve validates it at startup.
  std::string build_stats_json;
  /// Optional live producer of the /statz "stream" section (a JSON object),
  /// wired by `smptree train-stream --serve-port` to the streaming builder's
  /// StatsJson. Called on the statz handler's thread while training runs, so
  /// it must be thread-safe (the builder's is: it reads relaxed atomics).
  std::function<std::string()> stream_stats;
};

class InferenceService {
 public:
  InferenceService(std::unique_ptr<ModelStore> store, ServiceOptions options);
  ~InferenceService();

  InferenceService(const InferenceService&) = delete;
  InferenceService& operator=(const InferenceService&) = delete;

  Status Start();
  void Stop();

  uint16_t port() const { return http_.port(); }
  ModelStore& store() { return *store_; }
  PredictionEngine& engine() { return engine_; }

 private:
  HttpResponse HandlePredict(const HttpRequest& request);
  HttpResponse HandleReload(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request);
  HttpResponse HandleStatz(const HttpRequest& request);

  const ServiceOptions options_;
  std::unique_ptr<ModelStore> store_;
  PredictionEngine engine_;
  HttpServer http_;
  Timer uptime_;
  std::atomic<uint64_t> predict_errors_{0};
  std::atomic<uint64_t> reloads_{0};
  std::atomic<uint64_t> reload_errors_{0};
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_SERVICE_H_
