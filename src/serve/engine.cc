#include "serve/engine.h"

#include <algorithm>

#include "util/string_util.h"
#include "util/timer.h"

namespace smptree {

PredictionEngine::PredictionEngine(const ModelStore* store,
                                   EngineOptions options)
    : store_(store),
      options_(std::move(options)),
      queue_(std::max<size_t>(1, options_.queue_capacity)) {
  int n = options_.num_workers;
  if (n <= 0) {
    n = static_cast<int>(std::thread::hardware_concurrency());
    if (n <= 0) n = 2;
  }
  arenas_.reserve(static_cast<size_t>(n));
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    arenas_.push_back(std::make_unique<WorkerArena>());
  }
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

PredictionEngine::~PredictionEngine() {
  Shutdown();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void PredictionEngine::Shutdown() { queue_.Close(); }

Result<PredictOutcome> PredictionEngine::Predict(Batch batch) {
  if (batch.num_tuples() <= 0) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("empty batch");
  }
  if (batch.num_attrs() != store_->schema().num_attrs()) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument(StringPrintf(
        "batch has %d attributes, serving schema has %d", batch.num_attrs(),
        store_->schema().num_attrs()));
  }
  Request request(std::move(batch));
  if (!queue_.Push(&request)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::Aborted("prediction engine is shut down");
  }
  {
    MutexLock lock(request.mu);
    while (!request.done) request.cv.Wait(request.mu);
  }
  return std::move(request.outcome);
}

void PredictionEngine::WorkerLoop(int worker_index) {
  WorkerArena& arena = *arenas_[static_cast<size_t>(worker_index)];
  for (;;) {
    std::optional<Request*> item = queue_.Pop();
    if (!item.has_value()) return;  // shutdown, queue drained
    Request* request = *item;
    Timer timer;

    // The batch's model snapshot: one atomic load; holding the shared_ptr
    // keeps this epoch's tree alive past any concurrent reload.
    const ServingModelPtr model = store_->Current();
    if (options_.test_batch_hook) options_.test_batch_hook(model->epoch);

    // Score the whole batch through the snapshot's flattened model: one
    // exact-size resize per output buffer, then the scorer writes labels
    // and probs in place -- no per-tuple row gather, no interim copies.
    const int64_t n = request->batch.num_tuples();
    request->outcome.labels.resize(static_cast<size_t>(n));
    if (model->kind == ModelKind::kForest) {
      // Forests also report vote shares; the whole batch scores against the
      // one snapshot taken above, so no reload can tear labels from probs.
      const int k = model->schema().num_classes();
      request->outcome.num_classes = k;
      request->outcome.probs.resize(static_cast<size_t>(n * k));
      arena.scorer.ScoreForest(*model->flat_forest, request->batch,
                               request->outcome.labels.data(),
                               request->outcome.probs.data());
    } else {
      arena.scorer.ScoreTree(model->flat_tree, request->batch,
                             request->outcome.labels.data());
    }
    request->outcome.model_epoch = model->epoch;

    arena.batch_size.Record(static_cast<uint64_t>(n));
    arena.latency.Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
    arena.batches.fetch_add(1, std::memory_order_relaxed);
    arena.tuples.fetch_add(static_cast<uint64_t>(n),
                           std::memory_order_relaxed);

    MutexLock lock(request->mu);
    request->done = true;
    request->cv.NotifyAll();
    // `request` lives on the caller's stack and may be destroyed as soon
    // as done is observed; do not touch it after the lock drops.
  }
}

EngineStats PredictionEngine::Stats() const {
  EngineStats stats;
  LatencyHistogram merged;
  LatencyHistogram merged_sizes;
  for (const auto& arena : arenas_) {
    stats.batches += arena->batches.load(std::memory_order_relaxed);
    stats.tuples += arena->tuples.load(std::memory_order_relaxed);
    merged.Merge(arena->latency);
    merged_sizes.Merge(arena->batch_size);
  }
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.size();
  stats.workers = static_cast<int>(workers_.size());
  stats.mean_nanos = merged.mean_nanos();
  stats.p50_nanos = merged.QuantileNanos(0.5);
  stats.p90_nanos = merged.QuantileNanos(0.9);
  stats.p99_nanos = merged.QuantileNanos(0.99);
  stats.batch_mean_tuples = merged_sizes.mean_nanos();
  if (merged_sizes.count() > 0) {
    stats.batch_p50_tuples = merged_sizes.QuantileNanos(0.5);
    stats.batch_p99_tuples = merged_sizes.QuantileNanos(0.99);
  }
  for (int b = 0; b < LatencyHistogram::kBuckets; ++b) {
    stats.batch_size_buckets[static_cast<size_t>(b)] =
        merged_sizes.bucket_count(b);
  }
  // Both representations of the live model; a reload between Stats calls
  // shows up as the new model's footprint.
  const ServingModelPtr model = store_->Current();
  stats.model_bytes_pointer = model->pointer_bytes();
  stats.model_bytes_flat = model->flat_bytes();
  return stats;
}

}  // namespace smptree
