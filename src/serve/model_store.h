// ModelStore: owns the tree a long-lived serving process scores against.
//
// Models load from the text formats the training side already writes
// (schema_io + tree_io), are structurally validated (DecisionTree::Validate)
// before they become visible, and hot-reload with swap-on-load semantics:
// Reload() installs the new model atomically and returns without waiting
// for readers. Retirement is epoch-based: every model carries a
// monotonically increasing epoch, in-flight batches hold a
// shared_ptr<const ServingModel> snapshot for the whole batch, and the old
// epoch's tree is destroyed only when the last such snapshot drops --
// readers never block a swap and a swap never invalidates a reader.
//
// Schema compatibility: the store is created against one schema (the
// contract with connected clients); a reloaded model whose schema differs
// in any way that changes scoring (attribute count/order/type/cardinality,
// class alphabet) is rejected and the current model stays installed.

#ifndef SMPTREE_SERVE_MODEL_STORE_H_
#define SMPTREE_SERVE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "core/tree.h"
#include "util/mutex.h"
#include "util/status.h"

namespace smptree {

/// One immutable, epoch-stamped model. The schema is stored by value so a
/// ServingModel snapshot is self-contained (the tree's own schema copy and
/// this one are identical).
struct ServingModel {
  DecisionTree tree;
  int64_t epoch = 0;
  std::string source;  ///< file path the model was loaded from ("" = in-proc)

  explicit ServingModel(DecisionTree t) : tree(std::move(t)) {}

  const Schema& schema() const { return tree.schema(); }
};

using ServingModelPtr = std::shared_ptr<const ServingModel>;

/// True when `a` and `b` agree on everything Classify depends on:
/// attribute count, per-attribute type and cardinality, and the class
/// alphabet. Attribute and class *names* must match too -- clients send
/// categorical values by name.
bool SchemasCompatible(const Schema& a, const Schema& b);

class ModelStore {
 public:
  /// Creates the store with an already-built tree at epoch 1 (used by tests
  /// and in-process embedding).
  static Result<std::unique_ptr<ModelStore>> Create(DecisionTree tree);

  /// Creates the store from files: schema + serialized tree (the CLI's
  /// train output). The deserialized tree must pass Validate().
  static Result<std::unique_ptr<ModelStore>> Open(
      const std::string& schema_path, const std::string& model_path);

  /// Loads a serialized tree against an externally supplied schema --
  /// the shared load path for Open(), Reload() and the CLI `predict`
  /// subcommand (validation included, no store required).
  static Result<DecisionTree> LoadTreeFile(const Schema& schema,
                                           const std::string& model_path);

  /// Swap-on-load hot reload: parses `model_path` against the store's
  /// schema, validates it, then atomically installs it at epoch+1.
  /// On any error the current model stays installed and serving continues.
  /// All the expensive work (file IO, parsing, Validate) happens before
  /// the publication lock is touched, so a reload in progress never stalls
  /// readers for longer than a pointer swap.
  Status Reload(const std::string& model_path) EXCLUDES(mu_);

  /// Installs an already-built tree (test hook for reload semantics).
  Status Install(DecisionTree tree, const std::string& source) EXCLUDES(mu_);

  /// Current model snapshot. The returned pointer keeps its epoch's tree
  /// alive for as long as the caller holds it; each batch takes exactly one
  /// snapshot so a reload mid-batch never changes the tree under it.
  /// The critical section is one shared_ptr copy -- O(1), no IO, no tree
  /// work. (Not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic::load
  /// releases its internal spinlock with a relaxed RMW, which leaves the
  /// load formally unordered against a concurrent store's pointer swap --
  /// ThreadSanitizer reports it, correctly, as a data race.)
  ServingModelPtr Current() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return current_;
  }

  /// Epoch of the currently installed model (starts at 1, +1 per reload).
  int64_t epoch() const { return Current()->epoch; }

  /// The schema every model in this store must be compatible with.
  const Schema& schema() const { return schema_; }

 private:
  explicit ModelStore(ServingModelPtr initial);

  Schema schema_;  ///< fixed at creation; immutable thereafter
  // One lock for epoch assignment and publication: installs serialize so
  // epochs are published in order, and snapshot reads copy the pointer
  // inside the same lock. Retirement needs no lock at all -- it is the
  // shared_ptr refcount dropping to zero.
  mutable Mutex mu_;
  ServingModelPtr current_ GUARDED_BY(mu_);
  int64_t last_epoch_ GUARDED_BY(mu_) = 1;
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_MODEL_STORE_H_
