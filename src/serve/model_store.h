// ModelStore: owns the model a long-lived serving process scores against --
// a single decision tree or a bagged forest (ensemble/forest.h); the file's
// own header line says which, so reload can swap one kind for the other.
//
// Models load from the text formats the training side already writes
// (schema_io + tree_io + forest_io), are structurally validated
// (DecisionTree::Validate / Forest::Validate per member)
// before they become visible, and hot-reload with swap-on-load semantics:
// Reload() installs the new model atomically and returns without waiting
// for readers. Retirement is epoch-based: every model carries a
// monotonically increasing epoch, in-flight batches hold a
// shared_ptr<const ServingModel> snapshot for the whole batch, and the old
// epoch's tree is destroyed only when the last such snapshot drops --
// readers never block a swap and a swap never invalidates a reader.
//
// Schema compatibility: the store is created against one schema (the
// contract with connected clients); a reloaded model whose schema differs
// in any way that changes scoring (attribute count/order/type/cardinality,
// class alphabet) is rejected and the current model stays installed.

#ifndef SMPTREE_SERVE_MODEL_STORE_H_
#define SMPTREE_SERVE_MODEL_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/tree.h"
#include "ensemble/forest.h"
#include "infer/flat_tree.h"
#include "util/mutex.h"
#include "util/status.h"

namespace smptree {

/// What a ServingModel holds.
enum class ModelKind : unsigned char {
  kTree,
  kForest,
};

/// "tree" / "forest" (the /statz "model_kind" field).
const char* ModelKindName(ModelKind kind);

/// One immutable, epoch-stamped model. The schema is stored by value so a
/// ServingModel snapshot is self-contained (the tree's own schema copy and
/// this one are identical).
///
/// Kind dispatch: for kTree the model is `tree`; for kForest it is
/// `forest` and `tree` is an empty (0-node) schema carrier -- score through
/// Classify()/Probabilities(), which dispatch on kind, instead of touching
/// the members directly.
///
/// Every model also carries its flattened form (infer/flat_tree.h),
/// compiled once here in the constructors so all install paths -- Create,
/// Open, Install, InstallForest, Reload -- publish snapshots the engine's
/// BatchScorer can score with no per-request compilation. The flat form is
/// immutable alongside the rest of the snapshot, so the epoch/no-torn-votes
/// retirement contract covers it unchanged.
struct ServingModel {
  ModelKind kind = ModelKind::kTree;
  DecisionTree tree;
  std::optional<Forest> forest;  ///< engaged iff kind == kForest
  FlatTree flat_tree;            ///< kTree: compiled form (empty for kForest)
  std::optional<FlatForest> flat_forest;  ///< engaged iff kind == kForest
  int64_t epoch = 0;
  std::string source;  ///< file path the model was loaded from ("" = in-proc)

  explicit ServingModel(DecisionTree t)
      : tree(std::move(t)), flat_tree(FlatTree::Compile(tree)) {}
  explicit ServingModel(Forest f)
      : kind(ModelKind::kForest),
        tree(f.schema()),
        forest(std::move(f)),
        flat_forest(FlatForest::Compile(*forest)) {}

  const Schema& schema() const { return tree.schema(); }
  const char* kind_name() const { return ModelKindName(kind); }

  /// Members voting per prediction: forests their size, trees 1.
  int num_trees() const {
    return kind == ModelKind::kForest ? forest->num_trees() : 1;
  }

  /// Decision nodes across the whole model.
  int64_t total_nodes() const {
    return kind == ModelKind::kForest ? forest->total_nodes()
                                      : tree.num_nodes();
  }

  /// Scores one tuple (forest: majority vote). Concurrent-reader safe.
  ClassLabel Classify(const TupleValues& values) const {
    return kind == ModelKind::kForest ? forest->Classify(values)
                                      : tree.Classify(values);
  }

  /// Scores one tuple and fills per-class probabilities: vote shares for a
  /// forest, a one-hot vector for a single tree.
  ClassLabel Probabilities(const TupleValues& values,
                           std::vector<double>* probs) const;

  /// Estimated heap bytes of the pointer-linked representation (arena
  /// chunks rounded up, plus per-node class-count vectors) -- the /statz
  /// "model_bytes.pointer" number.
  size_t pointer_bytes() const;

  /// Exact heap bytes of the flattened representation
  /// ("model_bytes.flat").
  size_t flat_bytes() const;
};

using ServingModelPtr = std::shared_ptr<const ServingModel>;

class ModelStore {
 public:
  /// Creates the store with an already-built tree at epoch 1 (used by tests
  /// and in-process embedding).
  static Result<std::unique_ptr<ModelStore>> Create(DecisionTree tree);

  /// Creates the store with an already-built forest at epoch 1.
  static Result<std::unique_ptr<ModelStore>> Create(Forest forest);

  /// Creates the store from files: schema + serialized model (the CLI's
  /// train / train-forest output). The model file's header line decides the
  /// kind ("forest v1 ..." vs "tree v1 ..."); either way the model must
  /// pass its structural Validate().
  static Result<std::unique_ptr<ModelStore>> Open(
      const std::string& schema_path, const std::string& model_path);

  /// Loads a serialized tree against an externally supplied schema --
  /// the shared load path for tree models (validation included, no store
  /// required; also used by the CLI `predict` subcommand).
  static Result<DecisionTree> LoadTreeFile(const Schema& schema,
                                           const std::string& model_path);

  /// Forest counterpart of LoadTreeFile (forest_io parse + per-member
  /// validation).
  static Result<Forest> LoadForestFile(const Schema& schema,
                                       const std::string& model_path);

  /// True when the file at `model_path` starts with the forest container
  /// header (the kind sniff Open/Reload/predict share).
  static Result<bool> IsForestFile(const std::string& model_path);

  /// Swap-on-load hot reload: parses `model_path` against the store's
  /// schema, validates it, then atomically installs it at epoch+1. The new
  /// model may be a tree or a forest regardless of what is installed now.
  /// On any error the current model stays installed and serving continues.
  /// All the expensive work (file IO, parsing, Validate) happens before
  /// the publication lock is touched, so a reload in progress never stalls
  /// readers for longer than a pointer swap.
  Status Reload(const std::string& model_path) EXCLUDES(mu_);

  /// Installs an already-built tree (test hook for reload semantics).
  Status Install(DecisionTree tree, const std::string& source) EXCLUDES(mu_);

  /// Installs an already-built forest.
  Status InstallForest(Forest forest, const std::string& source)
      EXCLUDES(mu_);

  /// Current model snapshot. The returned pointer keeps its epoch's tree
  /// alive for as long as the caller holds it; each batch takes exactly one
  /// snapshot so a reload mid-batch never changes the tree under it.
  /// The critical section is one shared_ptr copy -- O(1), no IO, no tree
  /// work. (Not std::atomic<shared_ptr>: libstdc++'s _Sp_atomic::load
  /// releases its internal spinlock with a relaxed RMW, which leaves the
  /// load formally unordered against a concurrent store's pointer swap --
  /// ThreadSanitizer reports it, correctly, as a data race.)
  ServingModelPtr Current() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return current_;
  }

  /// Epoch of the currently installed model (starts at 1, +1 per reload).
  int64_t epoch() const { return Current()->epoch; }

  /// The schema every model in this store must be compatible with.
  const Schema& schema() const { return schema_; }

 private:
  explicit ModelStore(ServingModelPtr initial);

  /// Shared install tail: schema check, epoch stamp, pointer swap.
  Status InstallModel(std::shared_ptr<ServingModel> model) EXCLUDES(mu_);

  const Schema schema_;  ///< fixed at creation; immutable thereafter
  // One lock for epoch assignment and publication: installs serialize so
  // epochs are published in order, and snapshot reads copy the pointer
  // inside the same lock. Retirement needs no lock at all -- it is the
  // shared_ptr refcount dropping to zero.
  mutable Mutex mu_;
  ServingModelPtr current_ GUARDED_BY(mu_);
  int64_t last_epoch_ GUARDED_BY(mu_) = 1;
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_MODEL_STORE_H_
