#include "serve/http_parser.h"

#include <cctype>

#include "util/string_util.h"

namespace smptree {

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string RenderHttpResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = StringPrintf(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n",
      response.status, HttpStatusText(response.status),
      response.content_type.c_str(), response.body.size());
  for (const auto& [name, value] : response.extra_headers) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

bool IEqualsAscii(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool HeaderValueHasToken(std::string_view value, std::string_view token) {
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string_view::npos) comma = value.size();
    const std::string_view item =
        TrimWhitespace(value.substr(pos, comma - pos));
    if (IEqualsAscii(item, token)) return true;
    pos = comma + 1;
  }
  return false;
}

namespace {

/// Parses "HTTP/<major>.<minor>" (single-digit fields per RFC 7230 2.6).
bool ParseHttpVersion(std::string_view text, int* major, int* minor) {
  constexpr std::string_view kPrefix = "HTTP/";
  if (text.size() != kPrefix.size() + 3 ||
      text.substr(0, kPrefix.size()) != kPrefix) {
    return false;
  }
  const char hi = text[kPrefix.size()];
  const char lo = text[kPrefix.size() + 2];
  if (text[kPrefix.size() + 1] != '.' || !std::isdigit(
          static_cast<unsigned char>(hi)) ||
      !std::isdigit(static_cast<unsigned char>(lo))) {
    return false;
  }
  *major = hi - '0';
  *minor = lo - '0';
  return true;
}

}  // namespace

HttpRequestParser::HttpRequestParser() : HttpRequestParser(Limits{}) {}

HttpRequestParser::State HttpRequestParser::Feed(const char* data, size_t n) {
  if (state_ == State::kComplete || state_ == State::kError) return state_;
  buffer_.append(data, n);
  return Advance();
}

HttpRequestParser::State HttpRequestParser::Advance() {
  if (state_ == State::kReadingHeaders) {
    const size_t header_end = buffer_.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (buffer_.size() > limits_.max_header_bytes) {
        return Fail(431, "header block too large\n");
      }
      return state_;
    }
    if (header_end > limits_.max_header_bytes) {
      return Fail(431, "header block too large\n");
    }
    const std::string head = buffer_.substr(0, header_end);
    buffer_.erase(0, header_end + 4);
    ParseHead(head);
    if (state_ == State::kError) return state_;
    state_ = State::kReadingBody;
  }
  if (state_ == State::kReadingBody) {
    if (buffer_.size() < content_length_) return state_;
    request_.body = buffer_.substr(0, content_length_);
    buffer_.erase(0, content_length_);
    state_ = State::kComplete;
  }
  return state_;
}

void HttpRequestParser::ParseHead(const std::string& head) {
  // --- request line: METHOD SP TARGET SP HTTP/x.y ---
  const size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) {
    Fail(400, "malformed request line\n");
    return;
  }
  if (!ParseHttpVersion(
          std::string_view(request_line).substr(sp2 + 1),
          &request_.version_major, &request_.version_minor)) {
    Fail(400, "malformed HTTP version\n");
    return;
  }
  request_.method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = target.find('?');
  if (qmark != std::string::npos) {
    request_.query = target.substr(qmark + 1);
    target.resize(qmark);
  }
  request_.path = std::move(target);

  // Persistence default comes from the version: HTTP/1.1+ keeps the
  // connection open, HTTP/1.0 closes it, before any Connection header.
  const bool http10 = request_.version_major == 1 &&
                      request_.version_minor == 0;
  keep_alive_ = !http10;

  // --- headers (only the ones the server acts on) ---
  size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string name = line.substr(0, colon);
    const std::string value(TrimWhitespace(
        std::string_view(line).substr(colon + 1)));
    if (IEqualsAscii(name, "Content-Length")) {
      int64_t parsed = 0;
      if (!ParseInt64(value, &parsed) || parsed < 0) {
        Fail(400, "bad Content-Length\n");
        return;
      }
      if (static_cast<size_t>(parsed) > limits_.max_body_bytes) {
        Fail(413, "body too large\n");
        return;
      }
      content_length_ = static_cast<size_t>(parsed);
    } else if (IEqualsAscii(name, "Connection")) {
      // Token list, not exact match: "close" wins over any keep-alive
      // token; otherwise an explicit keep-alive upgrades the 1.0 default.
      if (HeaderValueHasToken(value, "close")) {
        keep_alive_ = false;
      } else if (HeaderValueHasToken(value, "keep-alive")) {
        keep_alive_ = true;
      }
    } else if (IEqualsAscii(name, "Transfer-Encoding")) {
      Fail(400, "chunked encoding not supported\n");
      return;
    }
  }
}

HttpRequestParser::State HttpRequestParser::Fail(int status,
                                                 const std::string& message) {
  state_ = State::kError;
  error_status_ = status;
  error_message_ = message;
  return state_;
}

void HttpRequestParser::Reset() {
  request_ = HttpRequest();
  content_length_ = 0;
  keep_alive_ = true;
  error_status_ = 0;
  error_message_.clear();
  state_ = State::kReadingHeaders;
}

}  // namespace smptree
