// Batch: the serving subsystem's unit of work -- a columnar slab of tuples
// to score, reusing the core AttrValue representation (core/records.h) so a
// batch lays out exactly like Dataset columns and row gathers are cheap.
// Batches are built either from the JSON wire format (HTTP predict
// requests) or straight from a Dataset (CLI predict, load generator,
// benchmarks).

#ifndef SMPTREE_SERVE_BATCH_H_
#define SMPTREE_SERVE_BATCH_H_

#include <cstdint>
#include <vector>

#include "core/records.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "serve/json.h"
#include "util/status.h"

namespace smptree {

class Batch {
 public:
  Batch() = default;

  int64_t num_tuples() const { return num_tuples_; }
  int num_attrs() const { return static_cast<int>(columns_.size()); }

  const std::vector<AttrValue>& column(int attr) const {
    return columns_[attr];
  }

  /// Gathers row `tuple` into `out` (resized to num_attrs). `out` is a
  /// caller-owned scratch buffer so the per-worker arena can reuse it
  /// across rows with no allocation.
  void GatherTuple(int64_t tuple, TupleValues* out) const;

  /// Builds a batch from the predict wire format:
  ///   {"tuples": [[v0, v1, ...], ...]}
  /// Each inner array holds one tuple's values in schema attribute order.
  /// Continuous: number, or null for missing. Categorical: value name
  /// (string, resolved through the schema) or integer code; codes are
  /// range-checked against the cardinality.
  static Result<Batch> FromJson(const Schema& schema, const JsonValue& doc);

  /// Copies rows [begin, end) of `data` (labels ignored).
  static Batch FromDataset(const Dataset& data, int64_t begin, int64_t end);

 private:
  std::vector<std::vector<AttrValue>> columns_;  ///< [attr][tuple]
  int64_t num_tuples_ = 0;
};

}  // namespace smptree

#endif  // SMPTREE_SERVE_BATCH_H_
