#include "core/split.h"

#include "util/string_util.h"

namespace smptree {

std::string SplitTest::ToString(const Schema& schema) const {
  if (!valid()) return "<invalid>";
  const AttrInfo& info = schema.attr(attr);
  if (!categorical) {
    return StringPrintf("%s < %.6g", info.name.c_str(),
                        static_cast<double>(threshold));
  }
  std::string out = info.name + " in {";
  bool first = true;
  const int domain = big_subset != nullptr
                         ? static_cast<int>(big_subset->size() * 64)
                         : 64;
  for (int v = 0; v < domain; ++v) {
    if (SubsetContains(v)) {
      if (!first) out += ", ";
      first = false;
      if (!info.value_names.empty() &&
          v < static_cast<int>(info.value_names.size())) {
        out += info.value_names[v];
      } else {
        out += StringPrintf("%d", v);
      }
    }
  }
  out += "}";
  return out;
}

bool SplitTest::operator==(const SplitTest& other) const {
  if (attr != other.attr || categorical != other.categorical) return false;
  if (!categorical) return threshold == other.threshold;
  if ((big_subset != nullptr) != (other.big_subset != nullptr)) return false;
  if (big_subset != nullptr) return *big_subset == *other.big_subset;
  return subset == other.subset;
}

bool SplitCandidate::BetterThan(const SplitCandidate& other) const {
  if (!valid()) return false;
  if (!other.valid()) return true;
  if (gini != other.gini) return gini < other.gini;
  // Deterministic tie-breaks so every builder picks the same tree: lower
  // attribute index, then lower threshold / smaller subset mask.
  if (test.attr != other.test.attr) return test.attr < other.test.attr;
  if (test.categorical != other.test.categorical) return !test.categorical;
  if (!test.categorical && test.threshold != other.test.threshold) {
    return test.threshold < other.test.threshold;
  }
  if (test.big_subset != nullptr && other.test.big_subset != nullptr) {
    return *test.big_subset < *other.test.big_subset;
  }
  return test.subset < other.test.subset;
}

}  // namespace smptree
