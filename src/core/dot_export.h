// Graphviz DOT export for decision trees: render with
//   dot -Tpng tree.dot -o tree.png
// Internal nodes show the split test; leaves show the class and training
// distribution; edges are labelled yes/no.

#ifndef SMPTREE_CORE_DOT_EXPORT_H_
#define SMPTREE_CORE_DOT_EXPORT_H_

#include <string>

#include "core/tree.h"

namespace smptree {

struct DotOptions {
  std::string graph_name = "decision_tree";
  bool show_counts = true;   ///< append the class distribution to leaves
  bool left_to_right = false;  ///< rankdir=LR instead of top-down
};

/// Renders `tree` as a DOT digraph.
std::string TreeToDot(const DecisionTree& tree, const DotOptions& options = {});

}  // namespace smptree

#endif  // SMPTREE_CORE_DOT_EXPORT_H_
