// Split tests (paper section 2.2): `value(A) < x` for continuous attributes
// and `value(A) in X` for categorical attributes. A tuple satisfying the
// test goes to the left child.

#ifndef SMPTREE_CORE_SPLIT_H_
#define SMPTREE_CORE_SPLIT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/records.h"
#include "data/schema.h"

namespace smptree {

/// Bit mask over a categorical domain larger than 64 values. Immutable and
/// shared so SplitTest stays cheap to copy.
using BigSubset = std::shared_ptr<const std::vector<uint64_t>>;

/// The test at a decision node.
struct SplitTest {
  int32_t attr = -1;        ///< attribute index in the schema
  bool categorical = false;
  float threshold = 0.0f;   ///< continuous: left iff value < threshold
  uint64_t subset = 0;      ///< categorical, cardinality <= 64
  BigSubset big_subset;     ///< categorical, cardinality > 64 (overrides)

  bool valid() const { return attr >= 0; }

  /// True when categorical value code `v` is in the left-going subset.
  bool SubsetContains(int32_t v) const {
    if (big_subset != nullptr) {
      const size_t word = static_cast<size_t>(v) >> 6;
      if (v < 0 || word >= big_subset->size()) return false;
      return (((*big_subset)[word] >> (v & 63)) & 1) != 0;
    }
    return v >= 0 && v < 64 && ((subset >> v) & 1) != 0;
  }

  /// True when `v` (interpreted per this test's attribute type) goes left.
  bool GoesLeft(AttrValue v) const {
    return categorical ? SubsetContains(v.cat) : v.f < threshold;
  }

  /// Renders the test against a schema, e.g. "age < 27.5" or
  /// "car in {1, 4, 7}".
  std::string ToString(const Schema& schema) const;

  bool operator==(const SplitTest& other) const;
};

/// A candidate split with its evaluated quality.
struct SplitCandidate {
  SplitTest test;
  /// Weighted impurity of the partition under the build's criterion (gini
  /// by default); lower wins. The placeholder value is never compared --
  /// BetterThan checks validity first.
  double gini = 2.0;
  int64_t left_count = 0;
  int64_t right_count = 0;

  bool valid() const { return test.valid(); }

  /// True when this candidate beats `other` (strictly lower gini; ties keep
  /// the lower attribute index so parallel and serial builders agree).
  bool BetterThan(const SplitCandidate& other) const;
};

}  // namespace smptree

#endif  // SMPTREE_CORE_SPLIT_H_
