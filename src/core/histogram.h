// Class-distribution histograms used to evaluate split points (paper
// section 2.1): for continuous attributes a pair of histograms C_below /
// C_above is swept along the sorted attribute list; for categorical
// attributes a count matrix (value x class) is tabulated in one scan.

#ifndef SMPTREE_CORE_HISTOGRAM_H_
#define SMPTREE_CORE_HISTOGRAM_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/records.h"

namespace smptree {

/// Per-class tuple counts.
class ClassHistogram {
 public:
  ClassHistogram() = default;
  explicit ClassHistogram(int num_classes) : counts_(num_classes, 0) {}

  void Reset(int num_classes) { counts_.assign(num_classes, 0); }
  void Clear() { counts_.assign(counts_.size(), 0); }

  int num_classes() const { return static_cast<int>(counts_.size()); }
  int64_t count(int cls) const { return counts_[cls]; }
  std::span<const int64_t> counts() const { return counts_; }

  void Add(ClassLabel cls, int64_t n = 1) { counts_[cls] += n; }
  void Remove(ClassLabel cls, int64_t n = 1) { counts_[cls] -= n; }
  void Merge(const ClassHistogram& other);
  /// this -= other (used to derive C_above = total - C_below).
  void Subtract(const ClassHistogram& other);

  int64_t Total() const;

  /// True when all tuples belong to one class (or the histogram is empty).
  bool IsPure() const;

  /// Label with the highest count (lowest label wins ties).
  ClassLabel Majority() const;

  /// Tuples not belonging to the majority class.
  int64_t ErrorCount() const;

  std::string ToString() const;

 private:
  std::vector<int64_t> counts_;
};

/// Impurity measure used to score splits. SPRINT (and the paper) use the
/// gini index; entropy (information gain, the C4.5 family's measure) is
/// provided as an extension -- same candidate enumeration, different score.
enum class SplitCriterion : unsigned char {
  kGini,
  kEntropy,
};

/// gini(S) = 1 - sum_j p_j^2 over the class distribution.
double GiniIndex(std::span<const int64_t> counts);
double GiniIndex(const ClassHistogram& hist);

/// GiniIndex with the count total supplied by the caller (hoisted out of
/// sweep loops where the total follows the scan position). `total` must
/// equal sum(counts); the arithmetic is identical to GiniIndex, so results
/// agree bit-for-bit.
double GiniIndexWithTotal(std::span<const int64_t> counts, int64_t total);

/// entropy(S) = -sum_j p_j log2 p_j (0 for empty/pure distributions).
double EntropyIndex(std::span<const int64_t> counts);
double EntropyIndex(const ClassHistogram& hist);

/// EntropyIndex with a caller-supplied total (see GiniIndexWithTotal).
double EntropyIndexWithTotal(std::span<const int64_t> counts, int64_t total);

/// Impurity under the chosen criterion.
double Impurity(const ClassHistogram& hist, SplitCriterion criterion);

/// Weighted gini of a binary partition:
///   (n_l/n) gini(left) + (n_r/n) gini(right).
/// Returns 1.0 (worst) when either side is empty so degenerate candidate
/// splits never win.
double GiniSplit(const ClassHistogram& left, const ClassHistogram& right);

/// Weighted impurity of a binary partition under `criterion`; like
/// GiniSplit, empty sides score worst (gini: 1.0; entropy: log2(classes)).
double SplitImpurity(const ClassHistogram& left, const ClassHistogram& right,
                     SplitCriterion criterion);

/// SplitImpurity with caller-supplied side totals (`nl` = left.Total(),
/// `nr` = right.Total()): skips the four Total() passes per candidate that
/// SplitImpurity pays. Same arithmetic, bit-identical results.
double SplitImpurityWithTotals(const ClassHistogram& left,
                               const ClassHistogram& right, int64_t nl,
                               int64_t nr, SplitCriterion criterion);

/// value-code x class count matrix for a categorical attribute list.
class CountMatrix {
 public:
  CountMatrix() = default;
  CountMatrix(int cardinality, int num_classes);

  void Reset(int cardinality, int num_classes);

  int cardinality() const { return cardinality_; }
  int num_classes() const { return num_classes_; }

  void Add(int32_t value_code, ClassLabel cls) {
    ++cells_[static_cast<size_t>(value_code) * num_classes_ + cls];
  }

  void AddCount(int32_t value_code, int cls, int64_t n) {
    cells_[static_cast<size_t>(value_code) * num_classes_ + cls] += n;
  }

  int64_t count(int32_t value_code, int cls) const {
    return cells_[static_cast<size_t>(value_code) * num_classes_ + cls];
  }

  /// Row sum: tuples with this value code.
  int64_t ValueTotal(int32_t value_code) const;

  /// Fills `hist` with the per-class totals of all codes in `subset_mask`
  /// (bit v set => code v included). Cardinality must be <= 64.
  void SubsetHistogram(uint64_t subset_mask, ClassHistogram* hist) const;

 private:
  int cardinality_ = 0;
  int num_classes_ = 0;
  std::vector<int64_t> cells_;
};

}  // namespace smptree

#endif  // SMPTREE_CORE_HISTOGRAM_H_
