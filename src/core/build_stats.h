// Structured summary of one build's observability data: the BuildCounters
// totals, the per-level frontier shape, and -- when the build ran with a
// TraceRecorder -- a per-thread compute-vs-blocked breakdown folded from the
// trace spans. This is the machine-readable form behind `smptree_cli train
// --stats-out`, the `/statz` "build" section of smptree_serve, and the
// speedup bench (bench/speedup_builders.cc).

#ifndef SMPTREE_CORE_BUILD_STATS_H_
#define SMPTREE_CORE_BUILD_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder_context.h"
#include "util/stats.h"
#include "util/trace.h"

namespace smptree {

/// Per-thread accounting folded from a build trace. All values are
/// nanoseconds of wall time on that one thread.
struct ThreadBuildStats {
  int tid = 0;
  uint64_t phase_nanos = 0;    ///< total time inside E/W/S (phase) spans
  uint64_t blocked_nanos = 0;  ///< total time inside wait spans
  uint64_t compute_nanos = 0;  ///< phase_nanos minus waits overlapping a phase
  uint64_t phase_spans = 0;    ///< number of phase spans
  uint64_t wait_spans = 0;     ///< number of wait spans
};

/// One build's observability summary. Counter fields mirror BuildCounters
/// (see util/stats.h for the compute-vs-blocked accounting model); `threads`
/// is filled only when the build was traced.
struct BuildStats {
  std::string algorithm;
  /// Training engine kind ("sorted" / "binned", EngineName); set by the
  /// classifier facade so /statz and --stats-out can tell the exact and
  /// histogram engines apart.
  std::string engine = "sorted";
  int num_threads = 1;
  uint64_t wall_nanos = 0;  ///< build wall time (one clock, not per-thread)

  // Compute-only per-phase time summed across threads (H is the binned
  // engine's histogram-construction phase; 0 for the sorted engine).
  uint64_t e_nanos = 0;
  uint64_t w_nanos = 0;
  uint64_t s_nanos = 0;
  uint64_t h_nanos = 0;
  // Blocked time summed across threads, and its event counts.
  uint64_t wait_nanos = 0;
  uint64_t barrier_waits = 0;
  uint64_t condvar_waits = 0;

  uint64_t attr_tasks = 0;
  uint64_t free_queue_rounds = 0;
  uint64_t records_scanned = 0;
  uint64_t records_split = 0;
  /// Bin boundaries examined by the binned E phase (the O(bins) work unit);
  /// always 0 for the sorted engine.
  uint64_t bins_scanned = 0;

  /// Frontier shape per level (leaves processed, records held).
  std::vector<LevelTraceEntry> levels;

  /// Per-thread breakdown; empty unless the build ran with a TraceRecorder.
  std::vector<ThreadBuildStats> threads;

  /// Fraction of the build's total thread-time spent blocked:
  /// wait_nanos / (num_threads * wall_nanos). 0 when wall_nanos is 0.
  double WaitShare() const;

  /// Serializes everything as a single JSON object (parseable by
  /// serve/json.h and python -m json.tool).
  std::string ToJson() const;
};

/// Assembles a BuildStats from the raw sources. `trace` may be null (no
/// per-thread section); when given, it must be quiescent (the build's thread
/// team has joined).
BuildStats MakeBuildStats(const std::string& algorithm, int num_threads,
                          uint64_t wall_nanos, const BuildCounters& counters,
                          std::vector<LevelTraceEntry> levels,
                          const TraceRecorder* trace);

}  // namespace smptree

#endif  // SMPTREE_CORE_BUILD_STATS_H_
