// Serial SPRINT tree growth (paper section 2): breadth-first levels, each
// processing the E, W and S steps for every leaf with a single thread and a
// single set of histograms. This is the baseline all speedups in the
// evaluation are measured against, and the subroutine semantics the parallel
// builders must reproduce exactly (the equivalence tests rely on it).

#ifndef SMPTREE_CORE_SERIAL_BUILDER_H_
#define SMPTREE_CORE_SERIAL_BUILDER_H_

#include <vector>

#include "core/builder_context.h"

namespace smptree {

/// Grows the tree level by level from the root LeafTask produced by
/// BuildContext::InitRoot.
Status BuildTreeSerial(BuildContext* ctx, std::vector<LeafTask> level);

}  // namespace smptree

#endif  // SMPTREE_CORE_SERIAL_BUILDER_H_
