// Model-quality metrics: accuracy, per-class confusion matrix, error rate.

#ifndef SMPTREE_CORE_METRICS_H_
#define SMPTREE_CORE_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tree.h"
#include "data/dataset.h"

namespace smptree {

/// Confusion counts: cell (actual, predicted).
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(ClassLabel actual, ClassLabel predicted);

  int num_classes() const { return num_classes_; }
  int64_t count(int actual, int predicted) const {
    return cells_[static_cast<size_t>(actual) * num_classes_ + predicted];
  }
  int64_t total() const { return total_; }
  int64_t correct() const;
  double accuracy() const;

  std::string ToString(const Schema& schema) const;

 private:
  int num_classes_;
  std::vector<int64_t> cells_;
  int64_t total_ = 0;
};

/// Classifies every tuple of `data` with `tree` and tallies the confusion
/// matrix.
ConfusionMatrix EvaluateTree(const DecisionTree& tree, const Dataset& data);

/// Convenience: EvaluateTree(...).accuracy().
double TreeAccuracy(const DecisionTree& tree, const Dataset& data);

/// Batch classification of every tuple, `threads`-way parallel over tuple
/// ranges (tree application is embarrassingly parallel -- the scoring-side
/// counterpart of the paper's build-side parallelism).
std::vector<ClassLabel> ClassifyDataset(const DecisionTree& tree,
                                        const Dataset& data, int threads = 1);

/// Parallel EvaluateTree: per-thread confusion matrices merged at the end.
ConfusionMatrix EvaluateTreeParallel(const DecisionTree& tree,
                                     const Dataset& data, int threads);

}  // namespace smptree

#endif  // SMPTREE_CORE_METRICS_H_
