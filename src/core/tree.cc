#include "core/tree.h"

#include <cassert>
#include <functional>
#include <sstream>

#include "util/string_util.h"

namespace smptree {

DecisionTree::DecisionTree(Schema schema)
    : schema_(std::move(schema)),
      chunks_(
          std::make_unique<std::array<std::atomic<TreeNode*>, kMaxChunks>>()) {
  for (auto& chunk : *chunks_) {
    chunk.store(nullptr, std::memory_order_relaxed);
  }
}

DecisionTree::DecisionTree(DecisionTree&& other) noexcept NO_THREAD_SAFETY_ANALYSIS
    : schema_(std::move(other.schema_)),
      chunks_(std::move(other.chunks_)),
      owned_chunks_(std::move(other.owned_chunks_)),
      size_(other.size_.load(std::memory_order_relaxed)),
      grow_mutex_(std::move(other.grow_mutex_)) {
  other.size_.store(0, std::memory_order_relaxed);
}

DecisionTree& DecisionTree::operator=(DecisionTree&& other) noexcept
    NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    schema_ = std::move(other.schema_);
    chunks_ = std::move(other.chunks_);
    owned_chunks_ = std::move(other.owned_chunks_);
    size_.store(other.size_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    grow_mutex_ = std::move(other.grow_mutex_);
    other.size_.store(0, std::memory_order_relaxed);
  }
  return *this;
}

NodeId DecisionTree::Append(TreeNode node) {
  // Caller holds grow_mutex_.
  const int64_t id = size_.load(std::memory_order_relaxed);
  assert(id < kMaxChunks * kChunkSize && "node arena capacity exceeded");
  const size_t chunk_index = static_cast<size_t>(id) >> kChunkBits;
  TreeNode* chunk =
      (*chunks_)[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    auto fresh = std::make_unique<TreeNode[]>(kChunkSize);
    chunk = fresh.get();
    owned_chunks_.push_back(std::move(fresh));
    // Publish the chunk before the size so readers that observe the new
    // size always find the chunk pointer.
    (*chunks_)[chunk_index].store(chunk, std::memory_order_release);
  }
  chunk[id & kChunkMask] = std::move(node);
  size_.store(id + 1, std::memory_order_release);
  return static_cast<NodeId>(id);
}

void DecisionTree::ResetArena() {
  for (auto& chunk : *chunks_) {
    chunk.store(nullptr, std::memory_order_relaxed);
  }
  owned_chunks_.clear();
  size_.store(0, std::memory_order_relaxed);
}

NodeId DecisionTree::CreateRoot(const ClassHistogram& counts) {
  MutexLock lock(*grow_mutex_);
  assert(num_nodes() == 0);
  TreeNode root;
  root.depth = 0;
  root.class_counts.assign(counts.counts().begin(), counts.counts().end());
  root.majority = counts.Majority();
  return Append(std::move(root));
}

NodeId DecisionTree::AddChild(NodeId parent, bool left_side,
                              const ClassHistogram& counts) {
  MutexLock lock(*grow_mutex_);
  assert(parent >= 0 && parent < num_nodes());
  TreeNode child;
  child.parent = parent;
  child.depth = Slot(parent)->depth + 1;
  child.class_counts.assign(counts.counts().begin(), counts.counts().end());
  child.majority = counts.Majority();
  const NodeId id = Append(std::move(child));
  if (left_side) {
    Slot(parent)->left = id;
  } else {
    Slot(parent)->right = id;
  }
  return id;
}

void DecisionTree::SetSplit(NodeId node, const SplitTest& test) {
  Slot(node)->split = test;
}

void DecisionTree::MakeLeaf(NodeId node) {
  TreeNode* n = Slot(node);
  n->left = kInvalidNode;
  n->right = kInvalidNode;
  n->split = SplitTest{};
}

void DecisionTree::CompactAfterPrune() {
  if (num_nodes() == 0) return;
  // Collect reachable nodes in preorder, then rebuild the arena.
  std::vector<TreeNode> kept;
  kept.reserve(static_cast<size_t>(num_nodes()));
  std::function<NodeId(NodeId, NodeId)> copy = [&](NodeId id,
                                                   NodeId new_parent) {
    const TreeNode& source = node(id);
    const NodeId new_id = static_cast<NodeId>(kept.size());
    kept.push_back(source);
    kept[new_id].parent = new_parent;
    if (!source.is_leaf()) {
      const NodeId left = copy(source.left, new_id);
      const NodeId right = copy(source.right, new_id);
      kept[new_id].left = left;
      kept[new_id].right = right;
    }
    return new_id;
  };
  copy(0, kInvalidNode);

  MutexLock lock(*grow_mutex_);
  ResetArena();
  for (TreeNode& n : kept) Append(std::move(n));
}

ClassLabel DecisionTree::Classify(const TupleValues& values) const {
  assert(num_nodes() > 0);
  NodeId id = 0;
  for (;;) {
    const TreeNode& n = node(id);
    if (n.is_leaf()) return n.majority;
    id = n.split.GoesLeft(values[n.split.attr]) ? n.left : n.right;
  }
}

ClassLabel DecisionTree::Classify(const Dataset& data, int64_t tuple) const {
  assert(num_nodes() > 0);
  NodeId id = 0;
  for (;;) {
    const TreeNode& n = node(id);
    if (n.is_leaf()) return n.majority;
    id = n.split.GoesLeft(data.value(tuple, n.split.attr)) ? n.left : n.right;
  }
}

TreeStats DecisionTree::Stats() const {
  TreeStats stats;
  stats.num_nodes = num_nodes();
  std::vector<int64_t> leaves_at_depth;
  for (NodeId id = 0; id < stats.num_nodes; ++id) {
    const TreeNode& n = node(id);
    if (n.depth >= stats.levels) stats.levels = n.depth + 1;
    if (n.is_leaf()) {
      ++stats.num_leaves;
      if (n.depth >= static_cast<int>(leaves_at_depth.size())) {
        leaves_at_depth.resize(n.depth + 1, 0);
      }
      ++leaves_at_depth[n.depth];
    }
  }
  for (int64_t c : leaves_at_depth) {
    stats.max_leaves_per_level = std::max(stats.max_leaves_per_level, c);
  }
  return stats;
}

Status DecisionTree::Validate() const {
  const int64_t n = num_nodes();
  if (n == 0) return Status::Corruption("tree has no nodes");
  std::vector<char> visited(static_cast<size_t>(n), 0);
  std::vector<NodeId> stack = {0};
  if (node(0).parent != kInvalidNode) {
    return Status::Corruption("root has a parent");
  }
  if (node(0).depth != 0) return Status::Corruption("root depth != 0");
  int64_t reached = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (id < 0 || id >= n) {
      return Status::Corruption(StringPrintf("child id %d out of range", id));
    }
    if (visited[id]) {
      return Status::Corruption(
          StringPrintf("node %d reached twice (cycle or shared child)", id));
    }
    visited[id] = 1;
    ++reached;
    const TreeNode& current = node(id);
    if (static_cast<int>(current.class_counts.size()) !=
        schema_.num_classes()) {
      return Status::Corruption(
          StringPrintf("node %d: class-count arity mismatch", id));
    }
    if (current.majority >= schema_.num_classes()) {
      return Status::Corruption(StringPrintf("node %d: bad majority", id));
    }
    if (current.is_leaf()) {
      if (current.right != kInvalidNode) {
        return Status::Corruption(
            StringPrintf("node %d: leaf with right child", id));
      }
      continue;
    }
    if (current.right == kInvalidNode) {
      return Status::Corruption(
          StringPrintf("node %d: internal node missing right child", id));
    }
    const SplitTest& test = current.split;
    if (!test.valid() || test.attr >= schema_.num_attrs()) {
      return Status::Corruption(
          StringPrintf("node %d: invalid split attribute", id));
    }
    if (test.categorical != schema_.attr(test.attr).is_categorical()) {
      return Status::Corruption(
          StringPrintf("node %d: split kind does not match attribute", id));
    }
    for (NodeId child : {current.left, current.right}) {
      if (child < 0 || child >= n) {
        return Status::Corruption(
            StringPrintf("node %d: child out of range", id));
      }
      if (node(child).parent != id) {
        return Status::Corruption(
            StringPrintf("node %d: child %d has wrong parent", id, child));
      }
      if (node(child).depth != current.depth + 1) {
        return Status::Corruption(
            StringPrintf("node %d: child %d has wrong depth", id, child));
      }
      stack.push_back(child);
    }
    for (int c = 0; c < schema_.num_classes(); ++c) {
      if (node(current.left).class_counts[c] +
              node(current.right).class_counts[c] !=
          current.class_counts[c]) {
        return Status::Corruption(StringPrintf(
            "node %d: children's class counts do not sum to parent's", id));
      }
    }
  }
  if (reached != n) {
    return Status::Corruption(StringPrintf(
        "%lld of %lld nodes unreachable from the root",
        static_cast<long long>(n - reached), static_cast<long long>(n)));
  }
  return Status::OK();
}

std::string DecisionTree::ToString() const {
  std::ostringstream os;
  std::function<void(NodeId, int)> emit = [&](NodeId id, int indent) {
    const TreeNode& n = node(id);
    for (int i = 0; i < indent; ++i) os << "|   ";
    if (n.is_leaf()) {
      os << "leaf: " << schema_.class_name(n.majority) << " "
         << StringPrintf("(n=%lld)", static_cast<long long>(n.tuple_count()))
         << "\n";
      return;
    }
    os << n.split.ToString(schema_) << " ?\n";
    emit(n.left, indent + 1);
    for (int i = 0; i < indent; ++i) os << "|   ";
    os << "else\n";
    emit(n.right, indent + 1);
  };
  if (num_nodes() > 0) emit(0, 0);
  return os.str();
}

}  // namespace smptree
