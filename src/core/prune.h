// Tree pruning (paper section 2: "the prune phase generalizes the tree...
// by removing statistical noise or variations"; it needs only the grown
// tree, no data passes). Two bottom-up strategies:
//
//   kPessimistic     C4.5-style pessimistic error estimates: a subtree is
//                    replaced by a leaf when the leaf's estimated error is
//                    no worse than the subtree's.
//   kCostComplexity  MDL-flavoured cost: cost(leaf) = errors + penalty;
//                    cost(subtree) = split_penalty + costs of children;
//                    prune when the leaf is no more expensive (this is the
//                    SLIQ-like scheme with the code lengths folded into two
//                    scalar penalties).

#ifndef SMPTREE_CORE_PRUNE_H_
#define SMPTREE_CORE_PRUNE_H_

#include <cstdint>

#include "core/tree.h"

namespace smptree {

struct PruneOptions {
  enum class Method : unsigned char {
    kNone,
    kPessimistic,
    kCostComplexity,
  };
  Method method = Method::kNone;

  /// kPessimistic: z-score of the one-sided confidence bound (C4.5's default
  /// 25% confidence corresponds to z ~ 0.6745).
  double confidence_z = 0.6745;

  /// kCostComplexity: cost in "error units" of keeping a leaf / a split.
  double leaf_penalty = 0.5;
  double split_penalty = 1.0;
};

/// Prunes `tree` in place and compacts the node arena. Returns the number of
/// nodes removed.
int64_t PruneTree(DecisionTree* tree, const PruneOptions& options);

/// Pessimistic error bound for a leaf with `n` tuples and `errors`
/// misclassified, at z-score `z` (exposed for tests).
double PessimisticErrors(int64_t n, int64_t errors, double z);

}  // namespace smptree

#endif  // SMPTREE_CORE_PRUNE_H_
