// Decision-tree-to-SQL conversion. The paper's introduction motivates
// decision trees partly because "trees can also be converted into SQL
// statements that can be used to access databases efficiently"; this module
// provides that conversion: a CASE expression classifying each row, and one
// SELECT per class retrieving its members.

#ifndef SMPTREE_CORE_SQL_EXPORT_H_
#define SMPTREE_CORE_SQL_EXPORT_H_

#include <string>
#include <vector>

#include "core/tree.h"

namespace smptree {

/// Options for SQL generation.
struct SqlOptions {
  std::string table = "training_data";  ///< table the predicates reference
  bool uppercase_keywords = true;
};

/// Renders the tree as `CASE WHEN <path predicate> THEN '<class>' ... END`.
std::string TreeToSqlCase(const DecisionTree& tree,
                          const SqlOptions& options = {});

/// One `SELECT * FROM <table> WHERE <disjunction of leaf paths>` per class.
/// Classes with no leaf get a query with a false predicate.
std::vector<std::string> TreeToSqlSelects(const DecisionTree& tree,
                                          const SqlOptions& options = {});

}  // namespace smptree

#endif  // SMPTREE_CORE_SQL_EXPORT_H_
