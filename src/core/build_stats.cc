#include "core/build_stats.h"

#include <algorithm>
#include <cstring>

#include "util/string_util.h"

namespace smptree {

namespace {

bool IsPhaseEvent(const TraceEvent& ev) {
  return std::strcmp(ev.cat, "phase") == 0;
}

/// Wall-time overlap of [a_start, a_end) with [b_start, b_end).
uint64_t Overlap(uint64_t a_start, uint64_t a_end, uint64_t b_start,
                 uint64_t b_end) {
  const uint64_t lo = std::max(a_start, b_start);
  const uint64_t hi = std::min(a_end, b_end);
  return hi > lo ? hi - lo : 0;
}

ThreadBuildStats FoldThread(int tid, const std::vector<TraceEvent>& events) {
  ThreadBuildStats out;
  out.tid = tid;
  // Spans land in the buffer in *end*-time order (RAII destruction), so
  // waits nested inside a phase span precede it. Collect both kinds first,
  // then charge each wait against the phase spans it overlaps. Waits nest at
  // most one level deep inside a phase on the same thread, so the simple
  // pairwise overlap cannot double-charge.
  std::vector<const TraceEvent*> phases;
  for (const TraceEvent& ev : events) {
    if (IsPhaseEvent(ev)) {
      out.phase_nanos += ev.dur_ns;
      ++out.phase_spans;
      phases.push_back(&ev);
    } else {
      out.blocked_nanos += ev.dur_ns;
      ++out.wait_spans;
    }
  }
  uint64_t blocked_in_phase = 0;
  for (const TraceEvent& ev : events) {
    if (IsPhaseEvent(ev)) continue;
    for (const TraceEvent* ph : phases) {
      blocked_in_phase += Overlap(ev.ts_ns, ev.ts_ns + ev.dur_ns, ph->ts_ns,
                                  ph->ts_ns + ph->dur_ns);
    }
  }
  out.compute_nanos = out.phase_nanos > blocked_in_phase
                          ? out.phase_nanos - blocked_in_phase
                          : 0;
  return out;
}

double Ms(uint64_t nanos) { return static_cast<double>(nanos) / 1e6; }

}  // namespace

double BuildStats::WaitShare() const {
  if (wall_nanos == 0 || num_threads <= 0) return 0.0;
  return static_cast<double>(wait_nanos) /
         (static_cast<double>(num_threads) * static_cast<double>(wall_nanos));
}

std::string BuildStats::ToJson() const {
  std::string out;
  out.reserve(1024 + 160 * (levels.size() + threads.size()));
  out += StringPrintf(
      "{\"algorithm\": \"%s\", \"engine\": \"%s\", \"num_threads\": %d, "
      "\"wall_ms\": %.3f,\n"
      " \"e_ms\": %.3f, \"w_ms\": %.3f, \"s_ms\": %.3f, \"h_ms\": %.3f, "
      "\"wait_ms\": %.3f,\n"
      " \"wait_share\": %.4f,\n"
      " \"barrier_waits\": %llu, \"condvar_waits\": %llu, "
      "\"attr_tasks\": %llu, \"free_queue_rounds\": %llu,\n"
      " \"records_scanned\": %llu, \"records_split\": %llu, "
      "\"bins_scanned\": %llu,\n",
      algorithm.c_str(), engine.c_str(), num_threads, Ms(wall_nanos),
      Ms(e_nanos), Ms(w_nanos), Ms(s_nanos), Ms(h_nanos), Ms(wait_nanos),
      WaitShare(), static_cast<unsigned long long>(barrier_waits),
      static_cast<unsigned long long>(condvar_waits),
      static_cast<unsigned long long>(attr_tasks),
      static_cast<unsigned long long>(free_queue_rounds),
      static_cast<unsigned long long>(records_scanned),
      static_cast<unsigned long long>(records_split),
      static_cast<unsigned long long>(bins_scanned));
  out += " \"levels\": [";
  for (size_t i = 0; i < levels.size(); ++i) {
    out += StringPrintf(
        "%s{\"level\": %d, \"leaves\": %lld, \"records\": %lld}",
        i == 0 ? "" : ", ", levels[i].level,
        static_cast<long long>(levels[i].leaves),
        static_cast<long long>(levels[i].records));
  }
  out += "],\n \"threads\": [";
  for (size_t i = 0; i < threads.size(); ++i) {
    const ThreadBuildStats& t = threads[i];
    out += StringPrintf(
        "%s\n  {\"tid\": %d, \"phase_ms\": %.3f, \"blocked_ms\": %.3f, "
        "\"compute_ms\": %.3f, \"phase_spans\": %llu, \"wait_spans\": %llu}",
        i == 0 ? "" : ",", t.tid, Ms(t.phase_nanos), Ms(t.blocked_nanos),
        Ms(t.compute_nanos), static_cast<unsigned long long>(t.phase_spans),
        static_cast<unsigned long long>(t.wait_spans));
  }
  out += "]}";
  return out;
}

BuildStats MakeBuildStats(const std::string& algorithm, int num_threads,
                          uint64_t wall_nanos, const BuildCounters& counters,
                          std::vector<LevelTraceEntry> levels,
                          const TraceRecorder* trace) {
  BuildStats stats;
  stats.algorithm = algorithm;
  stats.num_threads = num_threads;
  stats.wall_nanos = wall_nanos;
  stats.e_nanos = counters.e_nanos.load(std::memory_order_relaxed);
  stats.w_nanos = counters.w_nanos.load(std::memory_order_relaxed);
  stats.s_nanos = counters.s_nanos.load(std::memory_order_relaxed);
  stats.h_nanos = counters.h_nanos.load(std::memory_order_relaxed);
  stats.wait_nanos = counters.wait_nanos.load(std::memory_order_relaxed);
  stats.barrier_waits = counters.barrier_waits.load(std::memory_order_relaxed);
  stats.condvar_waits = counters.condvar_waits.load(std::memory_order_relaxed);
  stats.attr_tasks = counters.attr_tasks.load(std::memory_order_relaxed);
  stats.free_queue_rounds =
      counters.free_queue_rounds.load(std::memory_order_relaxed);
  stats.records_scanned =
      counters.records_scanned.load(std::memory_order_relaxed);
  stats.records_split = counters.records_split.load(std::memory_order_relaxed);
  stats.bins_scanned = counters.bins_scanned.load(std::memory_order_relaxed);
  stats.levels = std::move(levels);
  if (trace != nullptr) {
    const int n = trace->num_threads();
    stats.threads.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      stats.threads.push_back(
          FoldThread(trace->thread_tid(i), trace->thread_events(i)));
    }
    std::sort(stats.threads.begin(), stats.threads.end(),
              [](const ThreadBuildStats& a, const ThreadBuildStats& b) {
                return a.tid < b.tid;
              });
  }
  return stats;
}

}  // namespace smptree
