// Text serialization of decision trees: a stable, line-oriented format that
// round-trips exactly (used to persist models and by the equivalence tests).
//
// Format (one node per line, preorder):
//   tree v1 classes=<k> nodes=<n>
//   N <id> split attr=<a> cat=<0|1> thr=<bits>|subset=<mask> counts=<c0,c1,..>
//   L <id> class=<label> counts=<c0,c1,..>
// Continuous thresholds are written as raw float bits so parsing is exact.

#ifndef SMPTREE_CORE_TREE_IO_H_
#define SMPTREE_CORE_TREE_IO_H_

#include <string>

#include "core/tree.h"
#include "util/status.h"

namespace smptree {

/// Serializes `tree` to the text format above.
std::string SerializeTree(const DecisionTree& tree);

/// Parses a tree serialized by SerializeTree. The schema must match the one
/// the tree was built against (attribute indices are not re-validated beyond
/// range checks).
Result<DecisionTree> DeserializeTree(const Schema& schema,
                                     const std::string& text);

/// Structural equality: same shape, same split tests, same leaf classes.
/// Class-count vectors must match too.
bool TreesEqual(const DecisionTree& a, const DecisionTree& b);

}  // namespace smptree

#endif  // SMPTREE_CORE_TREE_IO_H_
