#include "core/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <sstream>

namespace smptree {

void ClassHistogram::Merge(const ClassHistogram& other) {
  assert(num_classes() == other.num_classes());
  for (int c = 0; c < num_classes(); ++c) counts_[c] += other.counts_[c];
}

void ClassHistogram::Subtract(const ClassHistogram& other) {
  assert(num_classes() == other.num_classes());
  for (int c = 0; c < num_classes(); ++c) counts_[c] -= other.counts_[c];
}

int64_t ClassHistogram::Total() const {
  int64_t total = 0;
  for (int64_t c : counts_) total += c;
  return total;
}

bool ClassHistogram::IsPure() const {
  int nonzero = 0;
  for (int64_t c : counts_) {
    if (c > 0 && ++nonzero > 1) return false;
  }
  return true;
}

ClassLabel ClassHistogram::Majority() const {
  int best = 0;
  for (int c = 1; c < num_classes(); ++c) {
    if (counts_[c] > counts_[best]) best = c;
  }
  return static_cast<ClassLabel>(best);
}

int64_t ClassHistogram::ErrorCount() const {
  return Total() - counts_[Majority()];
}

std::string ClassHistogram::ToString() const {
  std::ostringstream os;
  os << "[";
  for (int c = 0; c < num_classes(); ++c) {
    if (c) os << ", ";
    os << counts_[c];
  }
  os << "]";
  return os.str();
}

double GiniIndexWithTotal(std::span<const int64_t> counts, int64_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  const double inv = 1.0 / static_cast<double>(total);
  for (int64_t c : counts) {
    const double p = static_cast<double>(c) * inv;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

double GiniIndex(std::span<const int64_t> counts) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  return GiniIndexWithTotal(counts, total);
}

double GiniIndex(const ClassHistogram& hist) { return GiniIndex(hist.counts()); }

double EntropyIndexWithTotal(std::span<const int64_t> counts, int64_t total) {
  if (total == 0) return 0.0;
  double entropy = 0.0;
  const double inv = 1.0 / static_cast<double>(total);
  for (int64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) * inv;
    entropy -= p * std::log2(p);
  }
  return entropy;
}

double EntropyIndex(std::span<const int64_t> counts) {
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  return EntropyIndexWithTotal(counts, total);
}

double EntropyIndex(const ClassHistogram& hist) {
  return EntropyIndex(hist.counts());
}

double Impurity(const ClassHistogram& hist, SplitCriterion criterion) {
  return criterion == SplitCriterion::kGini ? GiniIndex(hist)
                                            : EntropyIndex(hist);
}

double GiniSplit(const ClassHistogram& left, const ClassHistogram& right) {
  return SplitImpurityWithTotals(left, right, left.Total(), right.Total(),
                                 SplitCriterion::kGini);
}

double SplitImpurity(const ClassHistogram& left, const ClassHistogram& right,
                     SplitCriterion criterion) {
  return SplitImpurityWithTotals(left, right, left.Total(), right.Total(),
                                 criterion);
}

double SplitImpurityWithTotals(const ClassHistogram& left,
                               const ClassHistogram& right, int64_t nl,
                               int64_t nr, SplitCriterion criterion) {
  const int64_t n = nl + nr;
  if (criterion == SplitCriterion::kGini) {
    if (nl == 0 || nr == 0) return 1.0;
    const double wl = static_cast<double>(nl) / static_cast<double>(n);
    const double wr = static_cast<double>(nr) / static_cast<double>(n);
    return wl * GiniIndexWithTotal(left.counts(), nl) +
           wr * GiniIndexWithTotal(right.counts(), nr);
  }
  if (nl == 0 || nr == 0) {
    // Worst possible entropy so degenerate splits never win.
    return std::log2(std::max(2, left.num_classes()));
  }
  const double wl = static_cast<double>(nl) / static_cast<double>(n);
  const double wr = static_cast<double>(nr) / static_cast<double>(n);
  return wl * EntropyIndexWithTotal(left.counts(), nl) +
         wr * EntropyIndexWithTotal(right.counts(), nr);
}

CountMatrix::CountMatrix(int cardinality, int num_classes) {
  Reset(cardinality, num_classes);
}

void CountMatrix::Reset(int cardinality, int num_classes) {
  cardinality_ = cardinality;
  num_classes_ = num_classes;
  cells_.assign(static_cast<size_t>(cardinality) * num_classes, 0);
}

int64_t CountMatrix::ValueTotal(int32_t value_code) const {
  int64_t total = 0;
  for (int c = 0; c < num_classes_; ++c) total += count(value_code, c);
  return total;
}

void CountMatrix::SubsetHistogram(uint64_t subset_mask,
                                  ClassHistogram* hist) const {
  assert(cardinality_ <= 64);
  hist->Reset(num_classes_);
  // Word-at-a-time: iterate the set bits directly (lowest first, i.e. the
  // same ascending value order as a 0..cardinality scan) instead of testing
  // all `cardinality` positions. Subset masks are sparse for most of the
  // exhaustive enumeration and throughout the greedy growth.
  uint64_t mask = subset_mask;
  if (cardinality_ < 64) mask &= (uint64_t{1} << cardinality_) - 1;
  while (mask != 0) {
    const int v = std::countr_zero(mask);
    mask &= mask - 1;
    const int64_t* row = &cells_[static_cast<size_t>(v) * num_classes_];
    for (int c = 0; c < num_classes_; ++c) {
      hist->Add(static_cast<ClassLabel>(c), row[c]);
    }
  }
}

}  // namespace smptree
