#include "core/presort.h"

#include <algorithm>
#include <atomic>
#include <functional>
#include <thread>

#include "util/timer.h"

namespace smptree {

Result<AttributeLists> BuildAttributeLists(const Dataset& data,
                                           int sort_threads) {
  if (data.num_tuples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.num_tuples() >
      static_cast<int64_t>(std::numeric_limits<Tid>::max())) {
    return Status::InvalidArgument("training set exceeds 32-bit tid space");
  }

  AttributeLists out;
  Timer timer;

  // Runs `work(i)` for every i in [0, count) on up to `max_threads`
  // threads, dynamically scheduled (one unit per attribute; list lengths
  // are equal but per-attribute cost varies with value distribution).
  const auto parallel_for = [](int max_threads, size_t count,
                               const std::function<void(size_t)>& work) {
    if (max_threads <= 1 || count <= 1) {
      for (size_t i = 0; i < count; ++i) work(i);
      return;
    }
    std::atomic<size_t> next{0};
    const int workers = std::min<int>(max_threads, static_cast<int>(count));
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= count) return;
          work(i);
        }
      });
    }
    for (auto& t : threads) t.join();
  };

  // Setup phase: materialize (value, class, tid) records per attribute.
  // Attributes are independent columns, so the materialization loop uses
  // the same per-attribute dynamic scheduling as the sort phase below.
  const int num_attrs = data.num_attrs();
  const int64_t n = data.num_tuples();
  out.lists.resize(num_attrs);
  parallel_for(sort_threads, static_cast<size_t>(num_attrs), [&](size_t a) {
    auto& list = out.lists[a];
    list.resize(n);
    const auto column = data.column(static_cast<int>(a));
    const auto labels = data.labels();
    for (int64_t t = 0; t < n; ++t) {
      list[t].value = column[t];
      list[t].tid = static_cast<Tid>(t);
      list[t].label = labels[t];
      list[t].unused = 0;
    }
  });
  out.setup_seconds = timer.Seconds();

  // Sort phase: continuous lists only; categorical lists stay unsorted.
  timer.Start();
  std::vector<int> continuous;
  for (int a = 0; a < num_attrs; ++a) {
    if (!data.schema().attr(a).is_categorical()) continuous.push_back(a);
  }
  parallel_for(sort_threads, continuous.size(), [&](size_t i) {
    std::sort(out.lists[continuous[i]].begin(),
              out.lists[continuous[i]].end(), ContinuousRecordLess());
  });
  out.sort_seconds = timer.Seconds();
  return out;
}

}  // namespace smptree
