#include "core/presort.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "util/timer.h"

namespace smptree {

Result<AttributeLists> BuildAttributeLists(const Dataset& data,
                                           int sort_threads) {
  if (data.num_tuples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (data.num_tuples() >
      static_cast<int64_t>(std::numeric_limits<Tid>::max())) {
    return Status::InvalidArgument("training set exceeds 32-bit tid space");
  }

  AttributeLists out;
  Timer timer;

  // Setup phase: materialize (value, class, tid) records per attribute.
  const int num_attrs = data.num_attrs();
  const int64_t n = data.num_tuples();
  out.lists.resize(num_attrs);
  for (int a = 0; a < num_attrs; ++a) {
    auto& list = out.lists[a];
    list.resize(n);
    const auto column = data.column(a);
    const auto labels = data.labels();
    for (int64_t t = 0; t < n; ++t) {
      list[t].value = column[t];
      list[t].tid = static_cast<Tid>(t);
      list[t].label = labels[t];
      list[t].unused = 0;
    }
  }
  out.setup_seconds = timer.Seconds();

  // Sort phase: continuous lists only; categorical lists stay unsorted.
  timer.Start();
  std::vector<int> continuous;
  for (int a = 0; a < num_attrs; ++a) {
    if (!data.schema().attr(a).is_categorical()) continuous.push_back(a);
  }
  auto sort_one = [&](int attr) {
    std::sort(out.lists[attr].begin(), out.lists[attr].end(),
              ContinuousRecordLess());
  };
  if (sort_threads <= 1 || continuous.size() <= 1) {
    for (int a : continuous) sort_one(a);
  } else {
    std::atomic<size_t> next{0};
    const int workers =
        std::min<int>(sort_threads, static_cast<int>(continuous.size()));
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (int w = 0; w < workers; ++w) {
      threads.emplace_back([&] {
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= continuous.size()) return;
          sort_one(continuous[i]);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  out.sort_seconds = timer.Seconds();
  return out;
}

}  // namespace smptree
