// The attribute-list record, the unit of data SPRINT-style classifiers move
// around (paper section 2.1): an attribute value, the class label, and the
// tuple identifier (tid) of the originating training tuple.
//
// Records are fixed-size PODs so attribute lists can be stored as raw arrays
// in physical files and read back with no serialization step - the layout IS
// the file format (native endianness; the files are scratch space local to
// one build, never interchange data).

#ifndef SMPTREE_CORE_RECORDS_H_
#define SMPTREE_CORE_RECORDS_H_

#include <cstdint>
#include <type_traits>

namespace smptree {

/// Tuple identifier: index of the training tuple in the dataset.
using Tid = uint32_t;

/// Class label: dense code in [0, num_classes).
using ClassLabel = uint16_t;

/// Attribute value: continuous attributes use `f`, categorical attributes
/// use `cat` (a dense value code in [0, cardinality)).
union AttrValue {
  float f;
  int32_t cat;
};

/// Canonical encoding of a missing continuous value: the lowest float, so a
/// missing value deterministically satisfies every `value < threshold` test
/// (the "missing goes left" strategy) with no special cases anywhere in the
/// evaluators, probe, or classification. Categorical domains represent
/// missing as an ordinary extra value code the schema declares.
inline constexpr float kMissingValue = -3.402823466e+38f;  // lowest float

inline bool IsMissing(float value) { return value == kMissingValue; }

/// One entry of an attribute list.
struct AttrRecord {
  AttrValue value;
  Tid tid;
  ClassLabel label;
  uint16_t unused = 0;  ///< padding kept explicit so the file layout is fixed
};

static_assert(std::is_trivially_copyable_v<AttrRecord>,
              "attribute records are raw-copied to files");
static_assert(sizeof(AttrRecord) == 12, "file layout is 12 bytes per record");

/// Orders records of a continuous attribute list by value, breaking ties by
/// tid so sorting is deterministic.
struct ContinuousRecordLess {
  bool operator()(const AttrRecord& a, const AttrRecord& b) const {
    if (a.value.f != b.value.f) return a.value.f < b.value.f;
    return a.tid < b.tid;
  }
};

}  // namespace smptree

#endif  // SMPTREE_CORE_RECORDS_H_
