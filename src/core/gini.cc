#include "core/gini.h"

#include <cassert>
#include <cmath>

namespace smptree {

float SplitMidpoint(float lo, float hi) {
  assert(lo < hi);
  const float mid = lo + (hi - lo) * 0.5f;
  return mid > lo ? mid : hi;
}

namespace {

/// Evaluates one categorical subset mask against the count matrix,
/// tightening `best` when the partition is proper and strictly better.
void ConsiderSubset(int attr, uint64_t mask, const CountMatrix& matrix,
                    const ClassHistogram& total, SplitCriterion criterion,
                    GiniScratch* scratch, SplitCandidate* best) {
  matrix.SubsetHistogram(mask, &scratch->below);
  const int64_t nl = scratch->below.Total();
  const int64_t n = total.Total();
  if (nl == 0 || nl == n) return;  // degenerate partition
  scratch->above = total;
  scratch->above.Subtract(scratch->below);
  const double gini = SplitImpurity(scratch->below, scratch->above, criterion);
  SplitCandidate candidate;
  candidate.test.attr = attr;
  candidate.test.categorical = true;
  candidate.test.subset = mask;
  candidate.gini = gini;
  candidate.left_count = nl;
  candidate.right_count = n - nl;
  if (candidate.BetterThan(*best)) *best = candidate;
}

}  // namespace

SplitCandidate ReferenceEvaluateContinuousAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    const GiniOptions& options, GiniScratch* scratch) {
  SplitCandidate best;
  const size_t n = records.size();
  if (n < 2) return best;

  scratch->below.Reset(total.num_classes());
  scratch->above = total;
  // Hoisted out of the loop: the side totals follow the scan position
  // (below holds i+1 records), so no candidate needs a Total() pass over
  // the histograms.
  const int64_t n_total = total.Total();

  for (size_t i = 0; i + 1 < n; ++i) {
    const AttrRecord& rec = records[i];
    scratch->below.Add(rec.label);
    scratch->above.Remove(rec.label);
    const float v = rec.value.f;
    const float next = records[i + 1].value.f;
    assert(v <= next && "continuous attribute list must be sorted");
    if (v == next) continue;  // not a class boundary between equal values
    const int64_t nl = static_cast<int64_t>(i) + 1;
    const double gini = SplitImpurityWithTotals(
        scratch->below, scratch->above, nl, n_total - nl, options.criterion);
    SplitCandidate candidate;
    candidate.test.attr = attr;
    candidate.test.categorical = false;
    candidate.test.threshold = SplitMidpoint(v, next);
    candidate.gini = gini;
    candidate.left_count = nl;
    candidate.right_count = static_cast<int64_t>(n - i) - 1;
    if (candidate.BetterThan(best)) best = candidate;
  }
  return best;
}

SplitCandidate EvaluateContinuousAttr(int attr,
                                      std::span<const AttrRecord> records,
                                      const ClassHistogram& total,
                                      const GiniOptions& options,
                                      GiniScratch* scratch) {
  if (options.use_kernels) {
    return KernelEvaluateContinuousAttr(attr, records, total, options,
                                        scratch);
  }
  return ReferenceEvaluateContinuousAttr(attr, records, total, options,
                                         scratch);
}

namespace {

/// Large-domain greedy over a tabulated matrix (see
/// EvaluateCategoricalLargeAttr).
SplitCandidate LargeFromMatrix(int attr, const CountMatrix& matrix,
                               const ClassHistogram& total,
                               SplitCriterion criterion) {
  SplitCandidate best;
  const int cardinality = matrix.cardinality();
  assert(cardinality > 64 && cardinality <= kMaxCategoricalCardinality);
  const int num_classes = total.num_classes();
  const int64_t n = total.Total();

  // Greedy hill-climbing with incremental histograms: moving value v from
  // the right side to the left adds the matrix row v to `left` and removes
  // it from `right`; trial ginis are computed from the row deltas without
  // copying histograms.
  std::vector<uint64_t> mask((static_cast<size_t>(cardinality) + 63) / 64, 0);
  ClassHistogram left(num_classes);
  ClassHistogram right = total;
  double best_gini = 1e30;  // +inf sentinel (entropy can exceed gini's 2.0)

  auto trial_gini = [&](int v) {
    int64_t nl = 0;
    int64_t nr = 0;
    double sum_l = 0.0;
    double sum_r = 0.0;
    for (int c = 0; c < num_classes; ++c) {
      const int64_t delta = matrix.count(v, c);
      nl += left.count(c) + delta;
      nr += right.count(c) - delta;
    }
    if (nl == 0 || nr == 0) return 1e30;  // degenerate partition
    if (criterion == SplitCriterion::kGini) {
      for (int c = 0; c < num_classes; ++c) {
        const int64_t delta = matrix.count(v, c);
        const double pl = static_cast<double>(left.count(c) + delta) /
                          static_cast<double>(nl);
        const double pr = static_cast<double>(right.count(c) - delta) /
                          static_cast<double>(nr);
        sum_l += pl * pl;
        sum_r += pr * pr;
      }
      const double wl = static_cast<double>(nl) / static_cast<double>(n);
      return wl * (1.0 - sum_l) + (1.0 - wl) * (1.0 - sum_r);
    }
    // Entropy: sums accumulate -p log2 p directly.
    for (int c = 0; c < num_classes; ++c) {
      const int64_t delta = matrix.count(v, c);
      const double pl = static_cast<double>(left.count(c) + delta) /
                        static_cast<double>(nl);
      const double pr = static_cast<double>(right.count(c) - delta) /
                        static_cast<double>(nr);
      if (pl > 0.0) sum_l -= pl * std::log2(pl);
      if (pr > 0.0) sum_r -= pr * std::log2(pr);
    }
    const double wl = static_cast<double>(nl) / static_cast<double>(n);
    return wl * sum_l + (1.0 - wl) * sum_r;
  };

  for (;;) {
    int best_v = -1;
    double round_best = best_gini;
    for (int v = 0; v < cardinality; ++v) {
      if ((mask[v >> 6] >> (v & 63)) & 1) continue;
      if (matrix.ValueTotal(v) == 0) continue;  // no-op move
      const double g = trial_gini(v);
      if (g < round_best) {  // strict: stop when no improvement (ties keep
        round_best = g;      // the smaller subset, like the <=64 path)
        best_v = v;
      }
    }
    if (best_v < 0) break;
    mask[best_v >> 6] |= uint64_t{1} << (best_v & 63);
    for (int c = 0; c < num_classes; ++c) {
      const int64_t delta = matrix.count(best_v, c);
      left.Add(static_cast<ClassLabel>(c), delta);
      right.Remove(static_cast<ClassLabel>(c), delta);
    }
    best_gini = round_best;
  }

  if (left.Total() == 0 || left.Total() == n) return best;  // no valid split
  best.test.attr = attr;
  best.test.categorical = true;
  best.test.big_subset =
      std::make_shared<const std::vector<uint64_t>>(std::move(mask));
  best.gini = best_gini;
  best.left_count = left.Total();
  best.right_count = right.Total();
  return best;
}

/// Exhaustive / small-greedy search over a tabulated matrix.
SplitCandidate SmallFromMatrix(int attr, const CountMatrix& matrix,
                               const ClassHistogram& total,
                               const GiniOptions& options,
                               GiniScratch* scratch) {
  SplitCandidate best;
  const int cardinality = matrix.cardinality();
  if (cardinality <= options.max_exhaustive_cardinality) {
    // All proper subsets. Complementary masks give the same partition; since
    // masks are visited in ascending order and BetterThan is strict on equal
    // gini (up to tie-break), the smaller mask of each pair wins
    // deterministically.
    const uint64_t limit = (uint64_t{1} << cardinality) - 1;
    for (uint64_t mask = 1; mask < limit; ++mask) {
      ConsiderSubset(attr, mask, matrix, total, options.criterion, scratch,
                     &best);
    }
    return best;
  }

  // Greedy subsetting (paper section 2.2: "if the cardinality is too large a
  // greedy subsetting algorithm is used"): grow the subset one value at a
  // time, keeping the addition that lowers gini the most, until no addition
  // improves it.
  uint64_t current = 0;
  SplitCandidate current_best;  // best seen for the grown subset
  for (;;) {
    SplitCandidate round_best = current_best;
    uint64_t round_mask = 0;
    for (int v = 0; v < cardinality; ++v) {
      const uint64_t bit = uint64_t{1} << v;
      if (current & bit) continue;
      SplitCandidate trial = round_best;
      ConsiderSubset(attr, current | bit, matrix, total, options.criterion,
                     scratch, &trial);
      if (trial.BetterThan(round_best)) {
        round_best = trial;
        round_mask = current | bit;
      }
    }
    if (round_mask == 0) break;  // no addition improved the split
    current = round_mask;
    current_best = round_best;
  }
  return current_best;
}

}  // namespace

SplitCandidate EvaluateCategoricalFromMatrix(int attr,
                                             const CountMatrix& matrix,
                                             const ClassHistogram& total,
                                             const GiniOptions& options,
                                             GiniScratch* scratch) {
  if (matrix.cardinality() > 64) {
    return LargeFromMatrix(attr, matrix, total, options.criterion);
  }
  return SmallFromMatrix(attr, matrix, total, options, scratch);
}

SplitCandidate EvaluateCategoricalLargeAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    int cardinality, GiniScratch* scratch) {
  if (records.size() < 2) return SplitCandidate();
  CountMatrix& matrix = scratch->matrix;
  matrix.Reset(cardinality, total.num_classes());
  for (const AttrRecord& rec : records) {
    matrix.Add(rec.value.cat, rec.label);
  }
  return LargeFromMatrix(attr, matrix, total, SplitCriterion::kGini);
}

SplitCandidate ReferenceEvaluateCategoricalAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    int cardinality, const GiniOptions& options, GiniScratch* scratch) {
  assert(cardinality >= 1 && cardinality <= kMaxCategoricalCardinality);
  if (records.size() < 2) return SplitCandidate();
  CountMatrix& matrix = scratch->matrix;
  matrix.Reset(cardinality, total.num_classes());
  for (const AttrRecord& rec : records) {
    matrix.Add(rec.value.cat, rec.label);
  }
  return EvaluateCategoricalFromMatrix(attr, matrix, total, options, scratch);
}

SplitCandidate EvaluateCategoricalAttr(int attr,
                                       std::span<const AttrRecord> records,
                                       const ClassHistogram& total,
                                       int cardinality,
                                       const GiniOptions& options,
                                       GiniScratch* scratch) {
  if (options.use_kernels) {
    return KernelEvaluateCategoricalAttr(attr, records, total, cardinality,
                                         options, scratch);
  }
  return ReferenceEvaluateCategoricalAttr(attr, records, total, cardinality,
                                          options, scratch);
}

SplitCandidate EvaluateAttr(const Schema& schema, int attr,
                            std::span<const AttrRecord> records,
                            const ClassHistogram& total,
                            const GiniOptions& options, GiniScratch* scratch) {
  const AttrInfo& info = schema.attr(attr);
  if (info.is_categorical()) {
    return EvaluateCategoricalAttr(attr, records, total, info.cardinality,
                                   options, scratch);
  }
  return EvaluateContinuousAttr(attr, records, total, options, scratch);
}

}  // namespace smptree
