// The split probe (paper section 3.2.1, "hash probe construction"): a global
// bit structure with one bit per training tuple, written while the winning
// attribute list of a leaf is scanned and consulted while the losing
// attribute lists are split. We use the paper's option 2 -- a single bit
// vector over all tids of the training set, shared by every leaf of the
// level (leaves own disjoint tid sets).

#ifndef SMPTREE_CORE_PROBE_H_
#define SMPTREE_CORE_PROBE_H_

#include "core/records.h"
#include "util/bitvector.h"

namespace smptree {

/// Tuple-to-child routing for one tree level.
class SplitProbe {
 public:
  /// Prepares the probe for `num_tuples` training tuples. Bits keep their
  /// values from the previous level until overwritten by that leaf's W phase
  /// (stale bits are never read: S only consults tids whose leaf completed W
  /// this level).
  void Reset(size_t num_tuples) {
    if (bits_.size() != num_tuples) bits_.Resize(num_tuples);
  }

  /// Routes `tid` left (true) or right (false). Thread-safe for distinct
  /// tids (atomic word RMW underneath).
  void Route(Tid tid, bool left) { bits_.Set(tid, left); }

  /// True when `tid` goes to the left child. Plain load: callers are in the
  /// S phase, ordered after the leaf's W by the builders' synchronization.
  bool GoesLeft(Tid tid) const { return bits_.Get(tid); }

  /// Prefetches the word holding `tid`'s bit; the split loop issues this a
  /// fixed distance ahead of the GoesLeft it pairs with.
  void Prefetch(Tid tid) const { bits_.Prefetch(tid); }

  size_t size() const { return bits_.size(); }

 private:
  BitVector bits_;
};

}  // namespace smptree

#endif  // SMPTREE_CORE_PROBE_H_
