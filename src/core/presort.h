// Attribute-list creation and one-time pre-sort (paper section 2.1, and the
// setup/sort columns of Table 1). From a columnar Dataset this produces one
// AttrRecord array per attribute; continuous lists are then sorted by value.
// Sorting happens once -- split preserves order, so no re-sorting is ever
// needed during tree growth.
//
// The paper measures setup and sort as separate sequential phases and notes
// they could be parallelized further; `sort_threads > 1` does exactly that
// for BOTH phases (one attribute per thread, dynamic scheduling), which the
// ablation benchmark uses to revisit the paper's "speedups can be improved
// by parallelizing the setup phase more aggressively" remark.

#ifndef SMPTREE_CORE_PRESORT_H_
#define SMPTREE_CORE_PRESORT_H_

#include <vector>

#include "core/records.h"
#include "data/dataset.h"
#include "util/status.h"

namespace smptree {

/// One attribute list per attribute, root-level order.
struct AttributeLists {
  std::vector<std::vector<AttrRecord>> lists;
  double setup_seconds = 0.0;  ///< time to create the lists
  double sort_seconds = 0.0;   ///< time to sort the continuous lists
};

/// Builds (setup) and pre-sorts (sort) the attribute lists of `data`.
/// `sort_threads` <= 1 reproduces the paper's sequential setup.
Result<AttributeLists> BuildAttributeLists(const Dataset& data,
                                           int sort_threads = 1);

}  // namespace smptree

#endif  // SMPTREE_CORE_PRESORT_H_
