#include "core/metrics.h"

#include <algorithm>
#include <sstream>
#include <thread>
#include <utility>

#include "util/string_util.h"

namespace smptree {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<size_t>(num_classes) * num_classes, 0) {}

void ConfusionMatrix::Add(ClassLabel actual, ClassLabel predicted) {
  ++cells_[static_cast<size_t>(actual) * num_classes_ + predicted];
  ++total_;
}

int64_t ConfusionMatrix::correct() const {
  int64_t c = 0;
  for (int i = 0; i < num_classes_; ++i) c += count(i, i);
  return c;
}

double ConfusionMatrix::accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct()) /
                           static_cast<double>(total_);
}

std::string ConfusionMatrix::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << StringPrintf("%-14s", "actual\\pred");
  for (int p = 0; p < num_classes_; ++p) {
    os << StringPrintf(" %12s", schema.class_name(p).c_str());
  }
  os << "\n";
  for (int a = 0; a < num_classes_; ++a) {
    os << StringPrintf("%-14s", schema.class_name(a).c_str());
    for (int p = 0; p < num_classes_; ++p) {
      os << StringPrintf(" %12lld", static_cast<long long>(count(a, p)));
    }
    os << "\n";
  }
  os << StringPrintf("accuracy: %.4f (%lld/%lld)\n", accuracy(),
                     static_cast<long long>(correct()),
                     static_cast<long long>(total_));
  return os.str();
}

ConfusionMatrix EvaluateTree(const DecisionTree& tree, const Dataset& data) {
  ConfusionMatrix cm(data.num_classes());
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    cm.Add(data.label(t), tree.Classify(data, t));
  }
  return cm;
}

double TreeAccuracy(const DecisionTree& tree, const Dataset& data) {
  return EvaluateTree(tree, data).accuracy();
}

namespace {

/// [begin, end) tuple range of worker `t` out of `threads`.
std::pair<int64_t, int64_t> TupleRange(int64_t n, int threads, int t) {
  const int64_t base = n / threads;
  const int64_t extra = n % threads;
  const int64_t begin = base * t + std::min<int64_t>(t, extra);
  return {begin, begin + base + (t < extra ? 1 : 0)};
}

}  // namespace

std::vector<ClassLabel> ClassifyDataset(const DecisionTree& tree,
                                        const Dataset& data, int threads) {
  std::vector<ClassLabel> out(data.num_tuples());
  if (threads <= 1 || data.num_tuples() < 2 * threads) {
    for (int64_t t = 0; t < data.num_tuples(); ++t) {
      out[t] = tree.Classify(data, t);
    }
    return out;
  }
  std::vector<std::thread> team;
  team.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    team.emplace_back([&, w] {
      const auto [begin, end] = TupleRange(data.num_tuples(), threads, w);
      for (int64_t t = begin; t < end; ++t) {
        out[t] = tree.Classify(data, t);
      }
    });
  }
  for (auto& th : team) th.join();
  return out;
}

ConfusionMatrix EvaluateTreeParallel(const DecisionTree& tree,
                                     const Dataset& data, int threads) {
  const std::vector<ClassLabel> predicted =
      ClassifyDataset(tree, data, threads);
  ConfusionMatrix cm(data.num_classes());
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    cm.Add(data.label(t), predicted[t]);
  }
  return cm;
}

}  // namespace smptree
