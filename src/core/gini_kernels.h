// Vectorized split-evaluation kernels: cache-friendly rewrites of the E-phase
// inner loops that every builder (serial/BASIC/FWK/MWK/SUBTREE) spends most
// of its per-level time in.
//
// The reference evaluators in core/gini.cc stay as the oracle; these kernels
// are selected by GiniOptions::use_kernels and must reproduce the reference
// winner (attribute, threshold/subset, gini, left/right counts) on any input.
// Three ideas, in decreasing order of impact:
//
//   1. SoA scan columns. A leaf's AttrRecord list is 12 bytes per record of
//      which the E scan needs only the 4-byte value and 2-byte label. A
//      one-time transpose into contiguous value[] / label[] columns halves
//      the bytes streamed by the scan and gives the compiler unit-stride
//      arrays it can vectorize. The column buffers live in GiniScratch so
//      one leaf's evaluations reuse the same allocation across attributes.
//
//   2. Incremental gini. gini_split at a boundary is
//        1 - (sum_l/n_l + sum_r/n_r) / n,   sum_side = sum_c count_c^2,
//      and moving one record of class c across the boundary changes the two
//      integer sums by +-(2*count_c +- 1): O(1) per record instead of a full
//      SplitImpurity recomputation over all classes, and two divisions per
//      boundary instead of 2C. A two-class fast path keeps the whole state
//      in registers (the Agrawal-function datasets are binary).
//
//   3. Blocked boundary test. Runs of equal values admit no split point, so
//      the scan checks each block of records for any boundary with a
//      branch-light vectorizable pass and falls back to the scalar
//      boundary-scoring loop only for blocks that contain one.
//
// Categorical attributes get a dual-bank CountMatrix tabulation straight
// from the AoS records (a transpose would cost a full extra pass for a
// single-use scan): consecutive records count into alternating banks so
// repeated increments of a hot cell -- the norm at low cardinality -- never
// form a serial store-load dependency chain. The subset search itself is
// shared with the reference path (same code => bit-identical candidates).

#ifndef SMPTREE_CORE_GINI_KERNELS_H_
#define SMPTREE_CORE_GINI_KERNELS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/histogram.h"
#include "core/records.h"
#include "core/split.h"

namespace smptree {

struct GiniOptions;
struct GiniScratch;

/// Reusable SoA scan columns for one leaf's attribute list. Vectors keep
/// their capacity across evaluations (one instance per GiniScratch, i.e.
/// per thread x window slot), so steady-state evaluation allocates nothing.
struct ScanColumns {
  std::vector<float> values;      ///< continuous attribute values
  std::vector<uint16_t> labels;   ///< class labels, parallel to values

  /// Transposes a continuous list into values[] + labels[].
  void BuildContinuous(std::span<const AttrRecord> records);

  /// Scratch for the multi-class continuous scan: running below-boundary
  /// class counts and the snapshot at the best boundary seen so far.
  std::vector<int64_t> class_counts;
  std::vector<int64_t> best_counts;

  /// Scratch for the dual-bank categorical tabulation (2 x cardinality x
  /// classes cells).
  std::vector<int64_t> tabulate_banks;
};

/// Kernel twin of EvaluateContinuousAttr: SoA transpose + incremental-gini
/// boundary sweep. Same contract as the reference evaluator.
SplitCandidate KernelEvaluateContinuousAttr(int attr,
                                            std::span<const AttrRecord> records,
                                            const ClassHistogram& total,
                                            const GiniOptions& options,
                                            GiniScratch* scratch);

/// Kernel twin of EvaluateCategoricalAttr: blocked SoA tabulation into the
/// scratch CountMatrix, then the shared subset search (exhaustive, greedy,
/// or large-domain exactly like the reference path).
SplitCandidate KernelEvaluateCategoricalAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    int cardinality, const GiniOptions& options, GiniScratch* scratch);

}  // namespace smptree

#endif  // SMPTREE_CORE_GINI_KERNELS_H_
