// Split-point evaluation (paper section 2.2). For a continuous attribute the
// candidate points are midpoints between consecutive distinct values of the
// pre-sorted attribute list, swept with C_below/C_above histograms. For a
// categorical attribute a value x class count matrix is tabulated and
// subsets of the value domain are searched: exhaustively up to a cardinality
// limit, greedily (hill-climbing, as in SPRINT/SLIQ) above it.

#ifndef SMPTREE_CORE_GINI_H_
#define SMPTREE_CORE_GINI_H_

#include <span>

#include "core/gini_kernels.h"
#include "core/histogram.h"
#include "core/split.h"
#include "data/schema.h"

namespace smptree {

/// Tuning knobs for split evaluation.
struct GiniOptions {
  /// Categorical domains up to this cardinality are searched exhaustively
  /// (2^(c-1)-1 proper subsets); larger ones use greedy subsetting.
  int max_exhaustive_cardinality = 12;
  /// Impurity measure: gini (SPRINT / the paper) or entropy (extension).
  SplitCriterion criterion = SplitCriterion::kGini;
  /// Selects the vectorized SoA kernels (core/gini_kernels.h) for the E
  /// phase. The reference evaluators remain the oracle: the kernels must
  /// reproduce their winner on any input, so this only trades speed.
  bool use_kernels = true;
};

/// Largest categorical domain the library accepts (bounds the per-leaf
/// count-matrix scratch; domains above 64 use BigSubset masks).
inline constexpr int kMaxCategoricalCardinality = 4096;

/// Scratch space reused across evaluations so the inner loop allocates
/// nothing. One instance per (thread x window slot).
struct GiniScratch {
  ClassHistogram below;
  ClassHistogram above;
  CountMatrix matrix;
  ScanColumns columns;  ///< SoA buffers for the kernel path
};

/// Midpoint between two consecutive distinct float values, nudged so that
/// `lo < mid <= hi` holds even when rounding collapses the midpoint onto
/// `lo` (then the test `value < mid` still separates lo from hi). Shared by
/// the reference evaluator and the kernels so thresholds agree exactly.
float SplitMidpoint(float lo, float hi);

/// Evaluates the best split of a *sorted* continuous attribute list.
/// `total` is the leaf's class histogram. Returns an invalid candidate when
/// all values are equal. Dispatches to the kernel or reference path per
/// `options.use_kernels`.
SplitCandidate EvaluateContinuousAttr(int attr,
                                      std::span<const AttrRecord> records,
                                      const ClassHistogram& total,
                                      const GiniOptions& options,
                                      GiniScratch* scratch);

/// Evaluates the best subset split of a categorical attribute list (order
/// irrelevant). Returns an invalid candidate when fewer than two distinct
/// values are present. Cardinalities above 64 take the large-domain greedy
/// path and return BigSubset tests. Dispatches per `options.use_kernels`.
SplitCandidate EvaluateCategoricalAttr(int attr,
                                       std::span<const AttrRecord> records,
                                       const ClassHistogram& total,
                                       int cardinality,
                                       const GiniOptions& options,
                                       GiniScratch* scratch);

/// The scalar reference evaluators: the oracle the kernels are verified
/// against (and the path selected by `use_kernels = false`).
SplitCandidate ReferenceEvaluateContinuousAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    const GiniOptions& options, GiniScratch* scratch);
SplitCandidate ReferenceEvaluateCategoricalAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    int cardinality, const GiniOptions& options, GiniScratch* scratch);

/// Large-domain (cardinality > 64) greedy subsetting with incremental
/// histograms; exposed for tests.
SplitCandidate EvaluateCategoricalLargeAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    int cardinality, GiniScratch* scratch);

/// Subset search over an already-tabulated count matrix (used by SPRINT
/// after its list scan and by SLIQ, whose single pass per level fills one
/// matrix per leaf). Dispatches exhaustive/greedy/large exactly like
/// EvaluateCategoricalAttr.
SplitCandidate EvaluateCategoricalFromMatrix(int attr,
                                             const CountMatrix& matrix,
                                             const ClassHistogram& total,
                                             const GiniOptions& options,
                                             GiniScratch* scratch);

/// Dispatches on the attribute's type per `schema`.
SplitCandidate EvaluateAttr(const Schema& schema, int attr,
                            std::span<const AttrRecord> records,
                            const ClassHistogram& total,
                            const GiniOptions& options, GiniScratch* scratch);

}  // namespace smptree

#endif  // SMPTREE_CORE_GINI_H_
