#include "core/prune.h"

#include <cmath>
#include <functional>

namespace smptree {

namespace {

int64_t LeafErrors(const TreeNode& n) {
  int64_t total = 0;
  int64_t best = 0;
  for (int64_t c : n.class_counts) {
    total += c;
    if (c > best) best = c;
  }
  return total - best;
}

}  // namespace

double PessimisticErrors(int64_t n, int64_t errors, double z) {
  if (n == 0) return 0.0;
  const double f = static_cast<double>(errors) / static_cast<double>(n);
  const double nd = static_cast<double>(n);
  const double z2 = z * z;
  // Upper bound of the Wilson score interval, scaled back to a count.
  const double numerator =
      f + z2 / (2.0 * nd) +
      z * std::sqrt(f / nd - f * f / nd + z2 / (4.0 * nd * nd));
  return nd * numerator / (1.0 + z2 / nd);
}

int64_t PruneTree(DecisionTree* tree, const PruneOptions& options) {
  if (options.method == PruneOptions::Method::kNone ||
      tree->num_nodes() == 0) {
    return 0;
  }
  const int64_t before = tree->num_nodes();

  // Bottom-up: returns the (estimated) cost of the possibly-pruned subtree.
  std::function<double(NodeId)> prune = [&](NodeId id) -> double {
    TreeNode& n = tree->mutable_node(id);
    const int64_t tuples = n.tuple_count();
    const int64_t errors = LeafErrors(n);

    double leaf_cost;
    if (options.method == PruneOptions::Method::kPessimistic) {
      leaf_cost = PessimisticErrors(tuples, errors, options.confidence_z);
    } else {
      leaf_cost = static_cast<double>(errors) + options.leaf_penalty;
    }
    if (n.is_leaf()) return leaf_cost;

    double subtree_cost = prune(n.left) + prune(n.right);
    if (options.method == PruneOptions::Method::kCostComplexity) {
      subtree_cost += options.split_penalty;
    }
    if (leaf_cost <= subtree_cost) {
      tree->MakeLeaf(id);
      return leaf_cost;
    }
    return subtree_cost;
  };
  prune(tree->root());
  tree->CompactAfterPrune();
  return before - tree->num_nodes();
}

}  // namespace smptree
