// The public facade: train a decision-tree classifier over a Dataset with
// any of the paper's algorithms, get back the tree plus the phase timing
// breakdown the paper's evaluation reports (setup / sort / build).
//
// Quickstart:
//
//   smptree::ClassifierOptions options;
//   options.build.algorithm = smptree::Algorithm::kMwk;
//   options.build.num_threads = 4;
//   auto result = smptree::TrainClassifier(data, options);
//   if (!result.ok()) { ... }
//   smptree::ClassLabel y = result->tree->Classify(tuple_values);

#ifndef SMPTREE_CORE_CLASSIFIER_H_
#define SMPTREE_CORE_CLASSIFIER_H_

#include <memory>

#include "core/build_stats.h"
#include "core/builder_context.h"
#include "core/prune.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "util/status.h"

namespace smptree {

/// Training configuration: growth options plus pruning.
struct ClassifierOptions {
  BuildOptions build;
  PruneOptions prune;
};

/// Phase timing and build accounting (the paper's Table 1 columns plus the
/// storage/synchronization counters the ablations report).
struct TrainStats {
  double setup_seconds = 0.0;  ///< attribute-list creation
  double sort_seconds = 0.0;   ///< pre-sorting of continuous lists
  double build_seconds = 0.0;  ///< tree growth (the parallelized phase)
  double prune_seconds = 0.0;
  double total_seconds = 0.0;

  TreeStats tree;                 ///< shape before pruning
  int64_t nodes_pruned = 0;

  // Storage traffic (records through the attribute files).
  uint64_t records_read = 0;
  uint64_t records_written = 0;

  // Synchronization accounting.
  uint64_t barrier_waits = 0;
  uint64_t condvar_waits = 0;
  uint64_t attr_tasks = 0;
  uint64_t free_queue_rounds = 0;
  double wait_seconds = 0.0;

  // Cumulative per-phase CPU time across all threads (paper steps E/W/S,
  // plus the binned engine's histogram phase H -- 0 for the sorted engine).
  double e_phase_seconds = 0.0;
  double w_phase_seconds = 0.0;
  double s_phase_seconds = 0.0;
  double h_phase_seconds = 0.0;

  /// Frontier shape per level (leaves processed and records held).
  std::vector<LevelTraceEntry> level_trace;

  /// Structured summary of the same accounting (plus the per-thread
  /// compute-vs-blocked breakdown when options.build.trace was set);
  /// build_stats.ToJson() is what --stats-out and /statz export.
  BuildStats build_stats;
};

/// A trained model.
struct TrainResult {
  std::unique_ptr<DecisionTree> tree;
  TrainStats stats;
};

/// Trains a classifier on `data`. Validates options, runs setup + sort +
/// the selected build algorithm + optional pruning.
Result<TrainResult> TrainClassifier(const Dataset& data,
                                    const ClassifierOptions& options);

}  // namespace smptree

#endif  // SMPTREE_CORE_CLASSIFIER_H_
