#include "core/builder_context.h"

#include <atomic>
#include <cassert>
#include <filesystem>
#include <limits>
#include <span>
#include <vector>

#include "util/random.h"
#include "util/string_util.h"

namespace smptree {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kSerial:
      return "SERIAL";
    case Algorithm::kBasic:
      return "BASIC";
    case Algorithm::kFwk:
      return "FWK";
    case Algorithm::kMwk:
      return "MWK";
    case Algorithm::kSubtree:
      return "SUBTREE";
    case Algorithm::kRecordParallel:
      return "REC";
  }
  return "?";
}

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kSorted:
      return "sorted";
    case Engine::kBinned:
      return "binned";
  }
  return "?";
}

bool FeatureSampling::Allows(NodeId node, int attr, int num_attrs) const {
  if (!active(num_attrs)) return true;
  // Partial Fisher-Yates over the attribute indices, seeded per node:
  // the first features_per_node positions after k swap steps are the
  // node's sampled subset. O(num_attrs) per query, trivial next to the
  // record scan the E phase performs when the attribute is kept.
  Random rng(seed ^ (0x9E3779B97F4A7C15ull +
                     static_cast<uint64_t>(node) * 0xBF58476D1CE4E5B9ull));
  // Attribute counts are bounded by the schema (small); a stack-friendly
  // vector keeps this allocation-free in practice via SSO-sized sizes.
  std::vector<int> idx(static_cast<size_t>(num_attrs));
  for (int i = 0; i < num_attrs; ++i) idx[static_cast<size_t>(i)] = i;
  for (int i = 0; i < features_per_node; ++i) {
    const int j = i + static_cast<int>(rng.Uniform(
                          static_cast<uint64_t>(num_attrs - i)));
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
    if (idx[static_cast<size_t>(i)] == attr) return true;
  }
  return false;
}

Status BuildOptions::Validate() const {
  if (num_threads < 1) return Status::InvalidArgument("num_threads < 1");
  if (feature_sampling.features_per_node < 0) {
    return Status::InvalidArgument("features_per_node < 0");
  }
  if (feature_sampling.features_per_node > 0 &&
      algorithm == Algorithm::kRecordParallel) {
    // The record-parallel ablation evaluates attributes through its own
    // replicated-statistics path, not the EvaluateLeafAttr gate; rejecting
    // beats silently ignoring the option.
    return Status::InvalidArgument(
        "feature subsampling is not supported by the record-parallel "
        "ablation");
  }
  if (window < 1) return Status::InvalidArgument("window < 1");
  if (max_bins < 2 || max_bins > 256) {
    // Bins are uint8_t codes in the materialized matrix; 2 is the smallest
    // budget that admits any split.
    return Status::InvalidArgument("max_bins outside [2,256]");
  }
  if (min_split < 1) return Status::InvalidArgument("min_split < 1");
  if (max_levels < 0) return Status::InvalidArgument("max_levels < 0");
  if (sort_threads < 1) return Status::InvalidArgument("sort_threads < 1");
  if (split_buffer_records < 0) {
    return Status::InvalidArgument("split_buffer_records < 0");
  }
  if (gini.max_exhaustive_cardinality < 1 ||
      gini.max_exhaustive_cardinality > 20) {
    return Status::InvalidArgument(
        "max_exhaustive_cardinality outside [1,20]");
  }
  if (subtree_subroutine != Algorithm::kBasic &&
      subtree_subroutine != Algorithm::kMwk) {
    return Status::InvalidArgument(
        "subtree_subroutine must be BASIC or MWK");
  }
  return Status::OK();
}

std::string MakeScratchDir(Env* env, const std::string& requested) {
  static std::atomic<uint64_t> counter{0};
  // Relaxed RMW: the counter only allocates unique suffixes; it publishes
  // no data, so no ordering is needed.
  const uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  std::string base = requested;
  if (base.empty()) {
    if (env->Name() == "posix") {
      base = std::filesystem::temp_directory_path().string();
    } else {
      base = "/scratch";
    }
  }
  return base + StringPrintf("/smptree-%d-%llu", ::getpid(),
                             static_cast<unsigned long long>(id));
}

BuildContext::BuildContext(const Dataset& data, const BuildOptions& options,
                           DecisionTree* tree, BuildCounters* counters)
    : data_(&data), options_(options), tree_(tree), counters_(counters) {
  if (options_.env != nullptr) {
    env_ = options_.env;
  } else {
    owned_env_ = Env::NewMem();
    env_ = owned_env_.get();
  }
}

int BuildContext::num_slots() const {
  switch (options_.algorithm) {
    case Algorithm::kFwk:
    case Algorithm::kMwk:
      return options_.window;
    case Algorithm::kSubtree:
      // Groups running the MWK subroutine need K slot files per attribute,
      // exactly like standalone MWK; the BASIC subroutine uses the paper's
      // four-files-per-attribute scheme.
      return options_.subtree_subroutine == Algorithm::kMwk ? options_.window
                                                            : 2;
    default:
      // Serial SPRINT, BASIC and the record-parallel ablation use the
      // paper's four files per attribute: two current slots (left/right
      // children) plus two alternates.
      return 2;
  }
}

Status BuildContext::InitRoot(AttributeLists lists,
                              std::vector<LeafTask>* level) {
  const int num_attrs = data_->num_attrs();
  if (static_cast<int>(lists.lists.size()) != num_attrs) {
    return Status::InvalidArgument("attribute list arity mismatch");
  }
  for (int a = 0; a < num_attrs; ++a) {
    const AttrInfo& info = data_->schema().attr(a);
    if (info.is_categorical() &&
        info.cardinality > kMaxCategoricalCardinality) {
      return Status::NotSupported(StringPrintf(
          "categorical attribute '%s' has cardinality %d > %d",
          info.name.c_str(), info.cardinality, kMaxCategoricalCardinality));
    }
  }

  scratch_dir_ = MakeScratchDir(env_, options_.scratch_dir);
  SMPTREE_RETURN_IF_ERROR(LevelStorage::Create(
      env_, scratch_dir_, "attr", num_attrs, num_slots(), &storage_));

  const int64_t n = data_->num_tuples();
  for (int a = 0; a < num_attrs; ++a) {
    SMPTREE_RETURN_IF_ERROR(storage_->AppendRoot(a, lists.lists[a]));
    lists.lists[a].clear();
    lists.lists[a].shrink_to_fit();  // lists are large; free as we go
  }
  SMPTREE_RETURN_IF_ERROR(storage_->FinishRootLoad());

  probe_.Reset(static_cast<size_t>(n));

  ClassHistogram root_hist(data_->num_classes());
  for (ClassLabel l : data_->labels()) root_hist.Add(l);
  tree_->CreateRoot(root_hist);
  levels_built_ = 1;

  level->clear();
  const bool root_splittable = !root_hist.IsPure() &&
                               n >= options_.min_split &&
                               (options_.max_levels == 0 ||
                                options_.max_levels > 1);
  if (root_splittable) {
    LeafTask root;
    root.node = tree_->root();
    root.seg = Segment{0, 0, static_cast<uint64_t>(n)};
    root.hist = root_hist;
    root.candidates.resize(num_attrs);
    level->push_back(std::move(root));
  }
  return Status::OK();
}

Status BuildContext::EvaluateLeafAttr(LeafTask* leaf, int attr,
                                      GiniScratch* scratch,
                                      LevelStorage* storage) {
  PhaseTimer phase(counters_, BuildPhase::kEvaluate);
  if (!options_.feature_sampling.Allows(leaf->node, attr,
                                        data_->num_attrs())) {
    // Attribute not in this node's sampled subset: no candidate. RunW
    // already treats an invalid candidate as "this attribute offers no
    // split", so every builder inherits subsampling through this one gate.
    leaf->candidates[attr] = SplitCandidate();
    return Status::OK();
  }
  SegmentBuffer buf;
  SMPTREE_RETURN_IF_ERROR(storage->ReadSegment(attr, leaf->seg, &buf));
  leaf->candidates[attr] = EvaluateAttr(data_->schema(), attr, buf.records(),
                                        leaf->hist, options_.gini, scratch);
  counters_->records_scanned.fetch_add(leaf->seg.count,
                                       std::memory_order_relaxed);
  counters_->attr_tasks.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status BuildContext::EvaluateAttrForLeaves(int attr,
                                           std::vector<LeafTask>* level,
                                           size_t first_leaf,
                                           size_t leaf_limit,
                                           GiniScratch* scratch,
                                           LevelStorage* storage) {
  for (size_t i = first_leaf; i < leaf_limit; ++i) {
    SMPTREE_RETURN_IF_ERROR(
        EvaluateLeafAttr(&(*level)[i], attr, scratch, storage));
  }
  return Status::OK();
}

Status BuildContext::RunW(LeafTask* leaf, LevelStorage* storage) {
  PhaseTimer phase(counters_, BuildPhase::kWinner);
  // Reduce the per-attribute candidates to the global winner for this leaf.
  SplitCandidate best;
  for (const SplitCandidate& c : leaf->candidates) {
    if (c.BetterThan(best)) best = c;
  }
  leaf->winner = best;
  leaf->child_active[0] = leaf->child_active[1] = false;
  if (!best.valid()) {
    // No attribute offers a proper split (e.g. all values identical while
    // classes are mixed): the node stays a majority-class leaf.
    return Status::OK();
  }

  tree_->SetSplit(leaf->node, best.test);

  // Scan the winning attribute's list: route every tid through the probe
  // and tally the children's class distributions (this doubles as the
  // paper's purity pre-test input).
  leaf->child_hist[0].Reset(data_->num_classes());
  leaf->child_hist[1].Reset(data_->num_classes());
  SegmentBuffer buf;
  SMPTREE_RETURN_IF_ERROR(
      storage->ReadSegment(best.test.attr, leaf->seg, &buf));
  for (const AttrRecord& rec : buf.records()) {
    const bool left = best.test.GoesLeft(rec.value);
    probe_.Route(rec.tid, left);
    leaf->child_hist[left ? 0 : 1].Add(rec.label);
  }
  counters_->records_scanned.fetch_add(leaf->seg.count,
                                       std::memory_order_relaxed);

  if (leaf->child_hist[0].Total() != best.left_count ||
      leaf->child_hist[1].Total() != best.right_count) {
    return Status::Corruption(StringPrintf(
        "winner split of node %d routed %lld/%lld records, expected %lld/%lld",
        leaf->node, static_cast<long long>(leaf->child_hist[0].Total()),
        static_cast<long long>(leaf->child_hist[1].Total()),
        static_cast<long long>(best.left_count),
        static_cast<long long>(best.right_count)));
  }

  const int child_depth = tree_->node(leaf->node).depth + 1;
  for (int side = 0; side < 2; ++side) {
    const ClassHistogram& h = leaf->child_hist[side];
    leaf->child_node[side] = tree_->AddChild(leaf->node, side == 0, h);
    // Purity pre-test (paper section 3.2.2): pure children -- and children
    // too small or too deep to split -- are finalized now and never get
    // slot files, keeping the K-slot schedule hole-free after relabelling.
    const bool finalized =
        h.IsPure() || h.Total() < options_.min_split ||
        (options_.max_levels > 0 && child_depth >= options_.max_levels - 1);
    leaf->child_active[side] = !finalized;
  }
  return Status::OK();
}

void BuildContext::AssignChildSlots(std::vector<LeafTask>* level,
                                    int num_slots) const {
  std::vector<uint64_t> totals(num_slots, 0);
  int64_t next_index = 0;
  for (LeafTask& leaf : *level) {
    for (int side = 0; side < 2; ++side) {
      if (leaf.child_node[side] == kInvalidNode) continue;
      if (!leaf.child_active[side]) {
        if (!options_.relabel_children) ++next_index;  // leave the hole
        continue;
      }
      const int slot = static_cast<int>(next_index % num_slots);
      leaf.child_seg[side] =
          Segment{slot, totals[slot],
                  static_cast<uint64_t>(leaf.child_hist[side].Total())};
      totals[slot] += leaf.child_seg[side].count;
      ++next_index;
    }
  }
}

Status BuildContext::SplitAttribute(int attr,
                                    const std::vector<LeafTask>& level,
                                    LevelStorage* storage) {
  PhaseTimer phase(counters_, BuildPhase::kSplit);
  const bool any_appends = [&] {
    for (const LeafTask& leaf : level) {
      if (leaf.child_active[0] || leaf.child_active[1]) return true;
    }
    return false;
  }();
  uint64_t moved = 0;
  // Probe lookups hit effectively random bit-vector words (tids arrive in
  // attribute-value order), so the loop prefetches the probe word this many
  // records ahead of the lookup it pairs with.
  constexpr size_t kProbePrefetchDistance = 16;
  const size_t buffer_cap =
      options_.split_buffer_records > 0
          ? static_cast<size_t>(options_.split_buffer_records)
          : std::numeric_limits<size_t>::max();
  SegmentBuffer buf;
  std::vector<AttrRecord> batch[2];
  for (const LeafTask& leaf : level) {
    if (!leaf.child_active[0] && !leaf.child_active[1]) {
      continue;  // all children finalized (or none): records are dropped
    }
    SMPTREE_RETURN_IF_ERROR(storage->ReadSegment(attr, leaf.seg, &buf));
    const bool is_winner_attr = leaf.winner.test.attr == attr;
    // Children's records are buffered per side and streamed into the
    // alternate files in bounded runs. Segments must stay contiguous: when
    // both children share a slot file (window K=1, or holes in the
    // no-relabel ablation) the left child's run must fully precede the
    // right child's -- matching AssignChildSlots order -- so only the left
    // buffer may drain mid-leaf there; the right side then buffers in full.
    const bool shared_slot = leaf.child_active[0] && leaf.child_active[1] &&
                             leaf.child_seg[0].slot == leaf.child_seg[1].slot;
    const bool may_stream[2] = {true, !shared_slot};
    batch[0].clear();
    batch[1].clear();
    const std::span<const AttrRecord> records = buf.records();
    for (size_t i = 0; i < records.size(); ++i) {
      if (!is_winner_attr && i + kProbePrefetchDistance < records.size()) {
        probe_.Prefetch(records[i + kProbePrefetchDistance].tid);
      }
      const AttrRecord& rec = records[i];
      // The winning attribute is partitioned by applying the split test
      // directly (paper section 2.3); the losing attributes consult the
      // probe structure on the tid.
      const bool left = is_winner_attr ? leaf.winner.test.GoesLeft(rec.value)
                                       : probe_.GoesLeft(rec.tid);
      const int side = left ? 0 : 1;
      if (!leaf.child_active[side]) continue;
      batch[side].push_back(rec);
      if (batch[side].size() >= buffer_cap && may_stream[side]) {
        SMPTREE_RETURN_IF_ERROR(storage->AppendChild(
            attr, leaf.child_seg[side].slot, batch[side]));
        moved += batch[side].size();
        batch[side].clear();
      }
    }
    for (int side = 0; side < 2; ++side) {
      if (batch[side].empty()) continue;
      SMPTREE_RETURN_IF_ERROR(storage->AppendChild(
          attr, leaf.child_seg[side].slot, batch[side]));
      moved += batch[side].size();
    }
  }
  counters_->records_split.fetch_add(moved, std::memory_order_relaxed);
  if (any_appends) {
    SMPTREE_RETURN_IF_ERROR(storage->FlushAlternate(attr));
  }
  return Status::OK();
}

std::vector<LeafTask> BuildContext::CollectNextLevel(
    const std::vector<LeafTask>& level) {
  if (!level.empty()) {
    const int depth = tree_->node(level.front().node).depth;
    int64_t records = 0;
    for (const LeafTask& leaf : level) {
      records += static_cast<int64_t>(leaf.seg.count);
    }
    MutexLock lock(trace_mutex_);
    LevelTraceEntry& entry = trace_[depth];
    entry.level = depth;
    entry.leaves += static_cast<int64_t>(level.size());
    entry.records += records;
  }
  std::vector<LeafTask> next;
  for (const LeafTask& leaf : level) {
    for (int side = 0; side < 2; ++side) {
      if (!leaf.child_active[side]) continue;
      LeafTask task;
      task.node = leaf.child_node[side];
      task.seg = leaf.child_seg[side];
      task.hist = leaf.child_hist[side];
      task.candidates.resize(data_->num_attrs());
      next.push_back(std::move(task));
    }
  }
  return next;
}

std::vector<LevelTraceEntry> BuildContext::LevelTrace() const {
  MutexLock lock(trace_mutex_);
  std::vector<LevelTraceEntry> out;
  out.reserve(trace_.size());
  for (const auto& [depth, entry] : trace_) out.push_back(entry);
  return out;
}

}  // namespace smptree
