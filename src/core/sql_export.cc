#include "core/sql_export.h"

#include <functional>

#include "util/string_util.h"

namespace smptree {

namespace {

std::string Kw(const SqlOptions& options, const char* upper,
               const char* lower) {
  return options.uppercase_keywords ? upper : lower;
}

/// SQL predicate for taking `left` at node `id`.
std::string EdgePredicate(const DecisionTree& tree, NodeId id, bool left,
                          const SqlOptions& options) {
  const SplitTest& test = tree.node(id).split;
  const AttrInfo& info = tree.schema().attr(test.attr);
  if (!test.categorical) {
    return StringPrintf("%s %s %.9g", info.name.c_str(), left ? "<" : ">=",
                        static_cast<double>(test.threshold));
  }
  std::string values;
  const int domain = info.cardinality > 0 ? info.cardinality : 64;
  for (int v = 0; v < domain; ++v) {
    if (!test.SubsetContains(v)) continue;
    if (!values.empty()) values += ", ";
    if (!info.value_names.empty() &&
        v < static_cast<int>(info.value_names.size())) {
      values += "'" + info.value_names[v] + "'";
    } else {
      values += StringPrintf("%d", v);
    }
  }
  return info.name + (left ? " " + Kw(options, "IN", "in") + " ("
                           : " " + Kw(options, "NOT IN", "not in") + " (") +
         values + ")";
}

/// Collects, per class, the conjunction of edge predicates along each
/// root-to-leaf path.
std::vector<std::vector<std::string>> LeafPathsByClass(
    const DecisionTree& tree, const SqlOptions& options) {
  std::vector<std::vector<std::string>> by_class(
      tree.schema().num_classes());
  if (tree.num_nodes() == 0) return by_class;
  std::vector<std::string> path;
  std::function<void(NodeId)> walk = [&](NodeId id) {
    const TreeNode& n = tree.node(id);
    if (n.is_leaf()) {
      std::string pred =
          path.empty() ? Kw(options, "TRUE", "true") : JoinStrings(path, " " + Kw(options, "AND", "and") + " ");
      by_class[n.majority].push_back(std::move(pred));
      return;
    }
    path.push_back(EdgePredicate(tree, id, /*left=*/true, options));
    walk(n.left);
    path.back() = EdgePredicate(tree, id, /*left=*/false, options);
    walk(n.right);
    path.pop_back();
  };
  walk(tree.root());
  return by_class;
}

}  // namespace

std::string TreeToSqlCase(const DecisionTree& tree, const SqlOptions& options) {
  const auto by_class = LeafPathsByClass(tree, options);
  std::string out = Kw(options, "CASE", "case");
  for (int c = 0; c < tree.schema().num_classes(); ++c) {
    if (by_class[c].empty()) continue;
    std::string disjunction;
    for (size_t i = 0; i < by_class[c].size(); ++i) {
      if (i) disjunction += " " + Kw(options, "OR", "or") + " ";
      disjunction += "(" + by_class[c][i] + ")";
    }
    out += "\n  " + Kw(options, "WHEN", "when") + " " + disjunction + " " +
           Kw(options, "THEN", "then") + " '" +
           tree.schema().class_name(c) + "'";
  }
  out += "\n" + Kw(options, "END", "end");
  return out;
}

std::vector<std::string> TreeToSqlSelects(const DecisionTree& tree,
                                          const SqlOptions& options) {
  const auto by_class = LeafPathsByClass(tree, options);
  std::vector<std::string> out;
  for (int c = 0; c < tree.schema().num_classes(); ++c) {
    std::string where;
    if (by_class[c].empty()) {
      where = "1 = 0";
    } else {
      for (size_t i = 0; i < by_class[c].size(); ++i) {
        if (i) where += " " + Kw(options, "OR", "or") + " ";
        where += "(" + by_class[c][i] + ")";
      }
    }
    out.push_back(Kw(options, "SELECT", "select") + " * " +
                  Kw(options, "FROM", "from") + " " + options.table + " " +
                  Kw(options, "WHERE", "where") + " " + where + ";");
  }
  return out;
}

}  // namespace smptree
