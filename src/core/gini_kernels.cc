#include "core/gini_kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/gini.h"

namespace smptree {

void ScanColumns::BuildContinuous(std::span<const AttrRecord> records) {
  const size_t n = records.size();
  values.resize(n);
  labels.resize(n);
  const AttrRecord* rec = records.data();
  for (size_t i = 0; i < n; ++i) {
    values[i] = rec[i].value.f;
    labels[i] = rec[i].label;
  }
}

namespace {

/// Block length for the boundary pre-check. Small enough that a block of
/// values + labels stays in L1, large enough to amortize the second pass
/// over blocks that do contain a boundary.
constexpr size_t kScanBlock = 128;

/// True when [first, limit) of the value column contains at least one
/// boundary (values[j] != values[j+1]). Branch-light: a pure OR-reduction
/// the compiler vectorizes; boundary-free runs of equal values (the common
/// case on low-cardinality numeric data) never reach the scalar loop.
inline bool BlockHasBoundary(const float* values, size_t first, size_t limit) {
  uint32_t any = 0;
  for (size_t j = first; j < limit; ++j) {
    any |= static_cast<uint32_t>(values[j] != values[j + 1]);
  }
  return any != 0;
}

/// Two-class gini sweep: the entire scan state is four integers (records
/// and class-1 count on each side), so boundary scoring is two divisions.
/// Selection maximizes m = sum_l/n_l + sum_r/n_r, which minimizes
/// gini = 1 - m/n; the winner's gini is then recomputed with the exact
/// reference formula so the reported double is bit-identical to the
/// reference evaluator's.
SplitCandidate TwoClassGiniScan(int attr, const ScanColumns& cols,
                                const ClassHistogram& total,
                                GiniScratch* scratch) {
  const size_t n = cols.values.size();
  const float* values = cols.values.data();
  const uint16_t* labels = cols.labels.data();
  const int64_t n_total = total.Total();
  const int64_t t1 = total.count(1);

  // Counts fit int64 squares for any 32-bit-tid training set region.
  int64_t b1 = 0;  // class-1 records at or below the scan position
  size_t best_i = static_cast<size_t>(-1);
  int64_t best_b1 = 0;
  double best_m = -1.0;  // m is always positive

  const size_t scan_n = n - 1;  // boundaries lie between i and i+1
  size_t i = 0;
  while (i < scan_n) {
    const size_t block_end = std::min(i + kScanBlock, scan_n);
    if (!BlockHasBoundary(values, i, block_end)) {
      int64_t acc = 0;
      for (size_t j = i; j < block_end; ++j) acc += labels[j];
      b1 += acc;
      i = block_end;
      continue;
    }
    for (; i < block_end; ++i) {
      b1 += labels[i];
      assert(values[i] <= values[i + 1] &&
             "continuous attribute list must be sorted");
      if (values[i] == values[i + 1]) continue;
      const int64_t nl = static_cast<int64_t>(i) + 1;
      const int64_t nr = n_total - nl;
      const int64_t b0 = nl - b1;
      const int64_t a1 = t1 - b1;
      const int64_t a0 = nr - a1;
      const double sl = static_cast<double>(b0 * b0 + b1 * b1);
      const double sr = static_cast<double>(a0 * a0 + a1 * a1);
      const double m =
          sl / static_cast<double>(nl) + sr / static_cast<double>(nr);
      if (m > best_m) {
        best_m = m;
        best_i = i;
        best_b1 = b1;
      }
    }
  }

  SplitCandidate best;
  if (best_i == static_cast<size_t>(-1)) return best;
  const int64_t nl = static_cast<int64_t>(best_i) + 1;
  scratch->below.Reset(2);
  scratch->below.Add(0, nl - best_b1);
  scratch->below.Add(1, best_b1);
  scratch->above = total;
  scratch->above.Subtract(scratch->below);
  best.test.attr = attr;
  best.test.categorical = false;
  best.test.threshold = SplitMidpoint(values[best_i], values[best_i + 1]);
  best.gini = SplitImpurityWithTotals(scratch->below, scratch->above, nl,
                                      n_total - nl, SplitCriterion::kGini);
  best.left_count = nl;
  best.right_count = static_cast<int64_t>(n) - nl;
  return best;
}

/// Multi-class gini sweep carrying sum(count_c^2) for both sides: moving one
/// record of class c across the boundary changes the below sum by
/// (b_c)^2 - (b_c - 1)^2 = 2 b_c - 1 and the above sum by -(2 a_c + 1), so
/// each record costs O(1) and each boundary two divisions. The winner's gini
/// is recomputed with the reference formula from a snapshot of the
/// below-boundary counts.
SplitCandidate MultiClassGiniScan(int attr, ScanColumns* cols,
                                  const ClassHistogram& total,
                                  GiniScratch* scratch) {
  const size_t n = cols->values.size();
  const float* values = cols->values.data();
  const uint16_t* labels = cols->labels.data();
  const int num_classes = total.num_classes();
  const std::span<const int64_t> tot = total.counts();
  const int64_t n_total = total.Total();

  std::vector<int64_t>& below = cols->class_counts;
  below.assign(num_classes, 0);
  std::vector<int64_t>& best_below = cols->best_counts;
  best_below.assign(num_classes, 0);

  int64_t sl = 0;
  int64_t sr = 0;
  for (int c = 0; c < num_classes; ++c) sr += tot[c] * tot[c];

  size_t best_i = static_cast<size_t>(-1);
  double best_m = -1.0;

  const size_t scan_n = n - 1;
  size_t i = 0;
  while (i < scan_n) {
    const size_t block_end = std::min(i + kScanBlock, scan_n);
    if (!BlockHasBoundary(values, i, block_end)) {
      for (size_t j = i; j < block_end; ++j) ++below[labels[j]];
      // Rebuild the square sums once per boundary-free block instead of
      // per record.
      sl = 0;
      sr = 0;
      for (int c = 0; c < num_classes; ++c) {
        sl += below[c] * below[c];
        const int64_t ac = tot[c] - below[c];
        sr += ac * ac;
      }
      i = block_end;
      continue;
    }
    for (; i < block_end; ++i) {
      const int c = labels[i];
      const int64_t bc = ++below[c];
      sl += 2 * bc - 1;
      const int64_t ac = tot[c] - bc;
      sr -= 2 * ac + 1;
      assert(values[i] <= values[i + 1] &&
             "continuous attribute list must be sorted");
      if (values[i] == values[i + 1]) continue;
      const int64_t nl = static_cast<int64_t>(i) + 1;
      const int64_t nr = n_total - nl;
      const double m = static_cast<double>(sl) / static_cast<double>(nl) +
                       static_cast<double>(sr) / static_cast<double>(nr);
      if (m > best_m) {
        best_m = m;
        best_i = i;
        std::copy(below.begin(), below.end(), best_below.begin());
      }
    }
  }

  SplitCandidate best;
  if (best_i == static_cast<size_t>(-1)) return best;
  const int64_t nl = static_cast<int64_t>(best_i) + 1;
  scratch->below.Reset(num_classes);
  for (int c = 0; c < num_classes; ++c) {
    scratch->below.Add(static_cast<ClassLabel>(c), best_below[c]);
  }
  scratch->above = total;
  scratch->above.Subtract(scratch->below);
  best.test.attr = attr;
  best.test.categorical = false;
  best.test.threshold = SplitMidpoint(values[best_i], values[best_i + 1]);
  best.gini = SplitImpurityWithTotals(scratch->below, scratch->above, nl,
                                      n_total - nl, SplitCriterion::kGini);
  best.left_count = nl;
  best.right_count = static_cast<int64_t>(n) - nl;
  return best;
}

/// Entropy sweep. Entropy admits no incremental sum trick, but the SoA
/// layout, the blocked boundary test and the hoisted totals still apply.
/// Boundary scores replicate the reference operation order exactly
/// (EntropyIndexWithTotal over ascending classes, then the weighted sum), so
/// scores -- and therefore selection and ties -- are bit-identical to the
/// reference evaluator's.
SplitCandidate EntropyScan(int attr, ScanColumns* cols,
                           const ClassHistogram& total) {
  const size_t n = cols->values.size();
  const float* values = cols->values.data();
  const uint16_t* labels = cols->labels.data();
  const int num_classes = total.num_classes();
  const std::span<const int64_t> tot = total.counts();
  const int64_t n_total = total.Total();

  std::vector<int64_t>& below = cols->class_counts;
  below.assign(num_classes, 0);

  size_t best_i = static_cast<size_t>(-1);
  double best_score = 0.0;
  bool have_best = false;

  const size_t scan_n = n - 1;
  size_t i = 0;
  while (i < scan_n) {
    const size_t block_end = std::min(i + kScanBlock, scan_n);
    if (!BlockHasBoundary(values, i, block_end)) {
      for (size_t j = i; j < block_end; ++j) ++below[labels[j]];
      i = block_end;
      continue;
    }
    for (; i < block_end; ++i) {
      ++below[labels[i]];
      if (values[i] == values[i + 1]) continue;
      const int64_t nl = static_cast<int64_t>(i) + 1;
      const int64_t nr = n_total - nl;
      // Same operation order as EntropyIndexWithTotal + the weighted sum in
      // SplitImpurityWithTotals.
      double el = 0.0;
      const double invl = 1.0 / static_cast<double>(nl);
      for (int c = 0; c < num_classes; ++c) {
        if (below[c] == 0) continue;
        const double p = static_cast<double>(below[c]) * invl;
        el -= p * std::log2(p);
      }
      double er = 0.0;
      const double invr = 1.0 / static_cast<double>(nr);
      for (int c = 0; c < num_classes; ++c) {
        const int64_t ac = tot[c] - below[c];
        if (ac == 0) continue;
        const double p = static_cast<double>(ac) * invr;
        er -= p * std::log2(p);
      }
      const double wl =
          static_cast<double>(nl) / static_cast<double>(n_total);
      const double wr =
          static_cast<double>(nr) / static_cast<double>(n_total);
      const double score = wl * el + wr * er;
      if (!have_best || score < best_score) {
        have_best = true;
        best_score = score;
        best_i = i;
      }
    }
  }

  SplitCandidate best;
  if (!have_best) return best;
  best.test.attr = attr;
  best.test.categorical = false;
  best.test.threshold = SplitMidpoint(values[best_i], values[best_i + 1]);
  best.gini = best_score;
  best.left_count = static_cast<int64_t>(best_i) + 1;
  best.right_count = static_cast<int64_t>(n) - best.left_count;
  return best;
}

/// Dual-bank tabulation straight from the AoS records. Low-cardinality
/// domains hammer a handful of matrix cells, so a plain increment loop
/// serializes on store-load forwarding whenever consecutive records hit the
/// same cell; routing even/odd records into two separate count banks
/// guarantees back-to-back increments never alias, and the banks are merged
/// into the matrix in one cheap pass over the (tiny) cell array.
void TabulateDualBank(std::span<const AttrRecord> records, CountMatrix* matrix,
                      std::vector<int64_t>* bank_storage) {
  const int num_classes = matrix->num_classes();
  const size_t cells =
      static_cast<size_t>(matrix->cardinality()) * num_classes;
  bank_storage->assign(2 * cells, 0);
  int64_t* bank0 = bank_storage->data();
  int64_t* bank1 = bank0 + cells;
  const AttrRecord* rec = records.data();
  const size_t n = records.size();
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    ++bank0[static_cast<size_t>(rec[i].value.cat) * num_classes +
            rec[i].label];
    ++bank1[static_cast<size_t>(rec[i + 1].value.cat) * num_classes +
            rec[i + 1].label];
  }
  if (i < n) {
    ++bank0[static_cast<size_t>(rec[i].value.cat) * num_classes +
            rec[i].label];
  }
  for (int32_t v = 0; v < matrix->cardinality(); ++v) {
    for (int c = 0; c < num_classes; ++c) {
      const size_t cell = static_cast<size_t>(v) * num_classes + c;
      matrix->AddCount(v, c, bank0[cell] + bank1[cell]);
    }
  }
}

}  // namespace

SplitCandidate KernelEvaluateContinuousAttr(int attr,
                                            std::span<const AttrRecord> records,
                                            const ClassHistogram& total,
                                            const GiniOptions& options,
                                            GiniScratch* scratch) {
  if (records.size() < 2) return SplitCandidate();
  ScanColumns& cols = scratch->columns;
  cols.BuildContinuous(records);
  if (options.criterion == SplitCriterion::kEntropy) {
    return EntropyScan(attr, &cols, total);
  }
  if (total.num_classes() == 2) {
    return TwoClassGiniScan(attr, cols, total, scratch);
  }
  return MultiClassGiniScan(attr, &cols, total, scratch);
}

SplitCandidate KernelEvaluateCategoricalAttr(
    int attr, std::span<const AttrRecord> records, const ClassHistogram& total,
    int cardinality, const GiniOptions& options, GiniScratch* scratch) {
  assert(cardinality >= 1 && cardinality <= kMaxCategoricalCardinality);
  if (records.size() < 2) return SplitCandidate();
  CountMatrix& matrix = scratch->matrix;
  matrix.Reset(cardinality, total.num_classes());
  TabulateDualBank(records, &matrix, &scratch->columns.tabulate_banks);
  // The subset search is shared with the reference path: same code, same
  // candidates, bit-for-bit.
  return EvaluateCategoricalFromMatrix(attr, matrix, total, options, scratch);
}

}  // namespace smptree
