#include "core/dot_export.h"

#include <functional>
#include <sstream>

#include "util/string_util.h"

namespace smptree {

namespace {

/// Escapes characters special inside DOT double-quoted strings.
std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string TreeToDot(const DecisionTree& tree, const DotOptions& options) {
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  if (options.left_to_right) os << "  rankdir=LR;\n";
  os << "  node [fontname=\"Helvetica\"];\n";
  if (tree.num_nodes() == 0) {
    os << "}\n";
    return os.str();
  }

  int64_t next_id = 0;
  std::function<int64_t(NodeId)> emit = [&](NodeId id) -> int64_t {
    const TreeNode& n = tree.node(id);
    const int64_t out_id = next_id++;
    if (n.is_leaf()) {
      // Escape user-controlled text only; the \n below is intentional DOT
      // label markup and must survive verbatim.
      std::string label = DotEscape(tree.schema().class_name(n.majority));
      if (options.show_counts) {
        label += "\\n[";
        for (size_t c = 0; c < n.class_counts.size(); ++c) {
          if (c) label += ", ";
          label += StringPrintf(
              "%lld", static_cast<long long>(n.class_counts[c]));
        }
        label += "]";
      }
      os << "  n" << out_id << " [shape=box, style=rounded, label=\""
         << label << "\"];\n";
      return out_id;
    }
    os << "  n" << out_id << " [shape=ellipse, label=\""
       << DotEscape(n.split.ToString(tree.schema())) << "\"];\n";
    const int64_t left = emit(n.left);
    const int64_t right = emit(n.right);
    os << "  n" << out_id << " -> n" << left << " [label=\"yes\"];\n";
    os << "  n" << out_id << " -> n" << right << " [label=\"no\"];\n";
    return out_id;
  };
  emit(tree.root());
  os << "}\n";
  return os.str();
}

}  // namespace smptree
