#include "core/classifier.h"

#include "binned/binned_builder.h"
#include "binned/quantizer.h"
#include "core/serial_builder.h"
#include "parallel/basic_builder.h"
#include "parallel/fwk_builder.h"
#include "parallel/mwk_builder.h"
#include "parallel/record_parallel.h"
#include "parallel/subtree_builder.h"
#include "util/timer.h"

namespace smptree {

namespace {

Status RunBuild(BuildContext* ctx, std::vector<LeafTask> level) {
  switch (ctx->options().algorithm) {
    case Algorithm::kSerial:
      return BuildTreeSerial(ctx, std::move(level));
    case Algorithm::kBasic:
      return BuildTreeBasic(ctx, std::move(level));
    case Algorithm::kFwk:
      return BuildTreeFwk(ctx, std::move(level));
    case Algorithm::kMwk:
      return BuildTreeMwk(ctx, std::move(level));
    case Algorithm::kSubtree:
      return BuildTreeSubtree(ctx, std::move(level));
    case Algorithm::kRecordParallel:
      return BuildTreeRecordParallel(ctx, std::move(level));
  }
  return Status::InvalidArgument("unknown algorithm");
}

// Folds the quiescent counters into the stats. Relaxed loads: the builder's
// thread team has joined by this point, so the join orders every counter
// update before these reads.
void FoldCounters(const BuildCounters& counters, TrainStats* stats) {
  stats->barrier_waits =
      counters.barrier_waits.load(std::memory_order_relaxed);
  stats->condvar_waits =
      counters.condvar_waits.load(std::memory_order_relaxed);
  stats->attr_tasks = counters.attr_tasks.load(std::memory_order_relaxed);
  stats->free_queue_rounds =
      counters.free_queue_rounds.load(std::memory_order_relaxed);
  stats->wait_seconds =
      static_cast<double>(counters.wait_nanos.load(
          std::memory_order_relaxed)) / 1e9;
  stats->e_phase_seconds =
      static_cast<double>(counters.e_nanos.load(
          std::memory_order_relaxed)) / 1e9;
  stats->w_phase_seconds =
      static_cast<double>(counters.w_nanos.load(
          std::memory_order_relaxed)) / 1e9;
  stats->s_phase_seconds =
      static_cast<double>(counters.s_nanos.load(
          std::memory_order_relaxed)) / 1e9;
  stats->h_phase_seconds =
      static_cast<double>(counters.h_nanos.load(
          std::memory_order_relaxed)) / 1e9;
}

// The binned-engine path: quantize, materialize the bin matrix, grow the
// tree breadth-first over per-leaf histograms. No attribute lists, no
// scratch files -- records_read/written stay 0.
Result<TrainResult> TrainBinnedClassifier(const Dataset& data,
                                          const ClassifierOptions& options) {
  TrainResult result;
  result.tree = std::make_unique<DecisionTree>(data.schema());
  BuildCounters counters;

  Timer total;

  // Quantization stands in for the sort phase (it sorts each continuous
  // column once to place cuts); materialization stands in for attribute-list
  // setup, so the Table 1 style columns stay comparable across engines.
  Timer sort_timer;
  Quantizer quantizer;
  SMPTREE_RETURN_IF_ERROR(quantizer.Build(data, options.build.max_bins));
  result.stats.sort_seconds = sort_timer.Seconds();
  Timer setup_timer;
  BinMatrix matrix;
  SMPTREE_RETURN_IF_ERROR(matrix.Materialize(data, quantizer));
  result.stats.setup_seconds = setup_timer.Seconds();

  Timer build_timer;
  SMPTREE_RETURN_IF_ERROR(
      BuildTreeBinned(data, quantizer, matrix, options.build,
                      result.tree.get(), &counters,
                      &result.stats.level_trace));
  result.stats.build_seconds = build_timer.Seconds();
  result.stats.tree = result.tree->Stats();

  Timer prune_timer;
  result.stats.nodes_pruned = PruneTree(result.tree.get(), options.prune);
  result.stats.prune_seconds = prune_timer.Seconds();

  result.stats.total_seconds = total.Seconds();
  FoldCounters(counters, &result.stats);
  result.stats.build_stats = MakeBuildStats(
      "BINNED", options.build.num_threads,
      static_cast<uint64_t>(result.stats.build_seconds * 1e9), counters,
      result.stats.level_trace, options.build.trace);
  result.stats.build_stats.engine = EngineName(Engine::kBinned);
  return result;
}

}  // namespace

Result<TrainResult> TrainClassifier(const Dataset& data,
                                    const ClassifierOptions& options) {
  SMPTREE_RETURN_IF_ERROR(options.build.Validate());
  SMPTREE_RETURN_IF_ERROR(data.schema().Validate());
  if (data.num_tuples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (options.build.engine == Engine::kBinned) {
    return TrainBinnedClassifier(data, options);
  }

  TrainResult result;
  result.tree = std::make_unique<DecisionTree>(data.schema());
  BuildCounters counters;

  Timer total;

  // Setup + sort phases (timed inside BuildAttributeLists).
  SMPTREE_ASSIGN_OR_RETURN(AttributeLists lists,
                           BuildAttributeLists(data, options.build.sort_threads));
  result.stats.setup_seconds = lists.setup_seconds;
  result.stats.sort_seconds = lists.sort_seconds;

  // Build phase.
  Timer build_timer;
  BuildContext ctx(data, options.build, result.tree.get(), &counters);
  {
    std::vector<LeafTask> level;
    SMPTREE_RETURN_IF_ERROR(ctx.InitRoot(std::move(lists), &level));
    Status build_status = RunBuild(&ctx, std::move(level));
    if (!build_status.ok()) {
      // Best-effort scratch cleanup before reporting the failure.
      ctx.env()->RemoveDirRecursive(ctx.scratch_dir());
      return build_status;
    }
  }
  result.stats.build_seconds = build_timer.Seconds();
  result.stats.tree = result.tree->Stats();

  // Prune phase.
  Timer prune_timer;
  result.stats.nodes_pruned = PruneTree(result.tree.get(), options.prune);
  result.stats.prune_seconds = prune_timer.Seconds();

  result.stats.total_seconds = total.Seconds();
  result.stats.records_read = ctx.storage()->records_read();
  result.stats.records_written = ctx.storage()->records_written();
  FoldCounters(counters, &result.stats);
  result.stats.level_trace = ctx.LevelTrace();
  result.stats.build_stats = MakeBuildStats(
      AlgorithmName(options.build.algorithm), options.build.num_threads,
      static_cast<uint64_t>(result.stats.build_seconds * 1e9), counters,
      result.stats.level_trace, options.build.trace);

  SMPTREE_RETURN_IF_ERROR(ctx.env()->RemoveDirRecursive(ctx.scratch_dir()));
  return result;
}

}  // namespace smptree
