#include "core/tree_io.h"

#include <cstring>
#include <functional>
#include <map>
#include <sstream>

#include "util/string_util.h"

namespace smptree {

namespace {

uint32_t FloatBits(float f) {
  uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

float BitsFloat(uint32_t u) {
  float f;
  std::memcpy(&f, &u, sizeof(f));
  return f;
}

std::string CountsToString(const std::vector<int64_t>& counts) {
  std::string out;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i) out += ',';
    out += StringPrintf("%lld", static_cast<long long>(counts[i]));
  }
  return out;
}

Status ParseCounts(std::string_view text, int num_classes,
                   std::vector<int64_t>* out) {
  const auto parts = SplitString(text, ',');
  if (static_cast<int>(parts.size()) != num_classes) {
    return Status::Corruption("class-count arity mismatch");
  }
  out->clear();
  for (const auto& p : parts) {
    int64_t v = 0;
    if (!ParseInt64(p, &v)) return Status::Corruption("bad count: " + p);
    out->push_back(v);
  }
  return Status::OK();
}

// "key=value" tokens on a line -> map.
std::map<std::string, std::string> TokenMap(
    const std::vector<std::string>& tokens, size_t first) {
  std::map<std::string, std::string> kv;
  for (size_t i = first; i < tokens.size(); ++i) {
    const auto pos = tokens[i].find('=');
    if (pos == std::string::npos) continue;
    kv[tokens[i].substr(0, pos)] = tokens[i].substr(pos + 1);
  }
  return kv;
}

}  // namespace

std::string SerializeTree(const DecisionTree& tree) {
  std::ostringstream os;
  os << "tree v1 classes=" << tree.schema().num_classes()
     << " nodes=" << tree.num_nodes() << "\n";
  // Emitted ids are canonical preorder positions, NOT arena ids: parallel
  // builders create structurally identical trees whose arena order depends
  // on scheduling, and the serialized form must be identical for identical
  // trees.
  int64_t next_id = 0;
  std::function<void(NodeId)> emit = [&](NodeId id) {
    const TreeNode& n = tree.node(id);
    const int64_t out_id = next_id++;
    if (n.is_leaf()) {
      os << "L " << out_id << " class=" << n.majority
         << " counts=" << CountsToString(n.class_counts) << "\n";
      return;
    }
    os << "N " << out_id << " attr=" << n.split.attr
       << " cat=" << (n.split.categorical ? 1 : 0);
    if (!n.split.categorical) {
      os << " thr=" << FloatBits(n.split.threshold);
    } else if (n.split.big_subset != nullptr) {
      os << " bigsubset=";
      const auto& words = *n.split.big_subset;
      for (size_t w = 0; w < words.size(); ++w) {
        if (w) os << ":";
        os << words[w];
      }
    } else {
      os << " subset=" << n.split.subset;
    }
    os << " counts=" << CountsToString(n.class_counts) << "\n";
    emit(n.left);
    emit(n.right);
  };
  if (tree.num_nodes() > 0) emit(tree.root());
  return os.str();
}

Result<DecisionTree> DeserializeTree(const Schema& schema,
                                     const std::string& text) {
  std::istringstream is(text);
  std::string line;
  if (!std::getline(is, line) || line.rfind("tree v1 ", 0) != 0) {
    return Status::Corruption("missing tree header");
  }

  DecisionTree tree(schema);
  ClassHistogram hist(schema.num_classes());
  std::vector<int64_t> counts;

  // Preorder reconstruction with an explicit stack of nodes awaiting
  // children: (node id, which side comes next).
  struct Pending {
    NodeId id;
    int filled = 0;  // 0 -> expect left, 1 -> expect right
  };
  std::vector<Pending> stack;
  bool have_root = false;

  auto attach = [&](const ClassHistogram& h, bool* is_root,
                    NodeId* out) -> Status {
    if (!have_root) {
      *out = tree.CreateRoot(h);
      have_root = true;
      *is_root = true;
      return Status::OK();
    }
    if (stack.empty()) return Status::Corruption("dangling node");
    Pending& top = stack.back();
    *out = tree.AddChild(top.id, top.filled == 0, h);
    if (++top.filled == 2) stack.pop_back();
    *is_root = false;
    return Status::OK();
  };

  while (std::getline(is, line)) {
    const auto trimmed = TrimWhitespace(line);
    if (trimmed.empty()) continue;
    auto tokens = SplitString(trimmed, ' ');
    if (tokens.size() < 3) return Status::Corruption("short line: " + line);
    const auto kv = TokenMap(tokens, 2);
    const auto counts_it = kv.find("counts");
    if (counts_it == kv.end()) {
      return Status::Corruption("missing counts: " + line);
    }
    SMPTREE_RETURN_IF_ERROR(
        ParseCounts(counts_it->second, schema.num_classes(), &counts));
    hist.Reset(schema.num_classes());
    for (size_t c = 0; c < counts.size(); ++c) {
      hist.Add(static_cast<ClassLabel>(c), counts[c]);
    }

    bool is_root = false;
    NodeId id = kInvalidNode;
    SMPTREE_RETURN_IF_ERROR(attach(hist, &is_root, &id));

    if (tokens[0] == "L") {
      int64_t cls = 0;
      const auto cls_it = kv.find("class");
      if (cls_it == kv.end() || !ParseInt64(cls_it->second, &cls) || cls < 0 ||
          cls >= schema.num_classes()) {
        return Status::Corruption("bad leaf class: " + line);
      }
      tree.mutable_node(id).majority = static_cast<ClassLabel>(cls);
    } else if (tokens[0] == "N") {
      SplitTest test;
      int64_t attr = 0;
      int64_t cat = 0;
      const auto attr_it = kv.find("attr");
      const auto cat_it = kv.find("cat");
      if (attr_it == kv.end() || cat_it == kv.end() ||
          !ParseInt64(attr_it->second, &attr) ||
          !ParseInt64(cat_it->second, &cat) || attr < 0 ||
          attr >= schema.num_attrs()) {
        return Status::Corruption("bad node attrs: " + line);
      }
      test.attr = static_cast<int32_t>(attr);
      test.categorical = cat != 0;
      if (test.categorical) {
        const auto big_it = kv.find("bigsubset");
        if (big_it != kv.end()) {
          std::vector<uint64_t> words;
          for (const auto& part : SplitString(big_it->second, ':')) {
            uint64_t w = 0;
            if (!ParseUint64(part, &w)) {
              return Status::Corruption("bad bigsubset: " + line);
            }
            words.push_back(w);
          }
          if (words.empty()) {
            return Status::Corruption("empty bigsubset: " + line);
          }
          test.big_subset =
              std::make_shared<const std::vector<uint64_t>>(std::move(words));
        } else {
          uint64_t subset = 0;
          const auto it = kv.find("subset");
          if (it == kv.end() || !ParseUint64(it->second, &subset)) {
            return Status::Corruption("bad subset: " + line);
          }
          test.subset = subset;
        }
      } else {
        int64_t bits = 0;
        const auto it = kv.find("thr");
        if (it == kv.end() || !ParseInt64(it->second, &bits)) {
          return Status::Corruption("bad threshold: " + line);
        }
        test.threshold = BitsFloat(static_cast<uint32_t>(bits));
      }
      tree.SetSplit(id, test);
      stack.push_back(Pending{id, 0});
    } else {
      return Status::Corruption("unknown line kind: " + tokens[0]);
    }
  }
  if (!have_root) return Status::Corruption("empty tree body");
  if (!stack.empty()) return Status::Corruption("tree body truncated");
  return tree;
}

bool TreesEqual(const DecisionTree& a, const DecisionTree& b) {
  std::function<bool(NodeId, NodeId)> eq = [&](NodeId x, NodeId y) {
    const TreeNode& nx = a.node(x);
    const TreeNode& ny = b.node(y);
    if (nx.is_leaf() != ny.is_leaf()) return false;
    if (nx.class_counts != ny.class_counts) return false;
    if (nx.is_leaf()) return nx.majority == ny.majority;
    if (!(nx.split == ny.split)) return false;
    return eq(nx.left, ny.left) && eq(nx.right, ny.right);
  };
  if ((a.num_nodes() == 0) != (b.num_nodes() == 0)) return false;
  if (a.num_nodes() == 0) return true;
  return eq(a.root(), b.root());
}

}  // namespace smptree
