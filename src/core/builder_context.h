// BuildContext: the level-step engine every builder drives (paper section 3):
//
//   E  EvaluateAttrForLeaves / EvaluateLeafAttr -- gini split evaluation of
//      one attribute over leaves of the current level;
//   W  RunW -- pick the winning split of a leaf from the per-attribute
//      candidates, scan the winner's list to build the tid probe, tally the
//      child class histograms, apply the child-purity pre-test, and create
//      the child nodes;
//   S  SplitAttribute -- partition one attribute's lists of every leaf into
//      the children via the probe, appending into the next level's slot
//      files (records of finalized children are dropped);
//
// plus AssignChildSlots (the Figure 5 child relabelling) and AdvanceLevel.
//
// The engine is deliberately thread-agnostic: the serial builder calls these
// in a straight loop; BASIC/FWK/MWK/SUBTREE interleave the same calls under
// their own scheduling and synchronization. Safety contract per call is
// documented on each method.

#ifndef SMPTREE_CORE_BUILDER_CONTEXT_H_
#define SMPTREE_CORE_BUILDER_CONTEXT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/gini.h"
#include "core/presort.h"
#include "core/probe.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "storage/level_storage.h"
#include "util/mutex.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/trace.h"

namespace smptree {

/// Tree-building algorithm selector.
enum class Algorithm : unsigned char {
  kSerial,          ///< serial SPRINT (section 2)
  kBasic,           ///< attribute data parallelism, master W (section 3.2.1)
  kFwk,             ///< fixed-window-K pipelining (section 3.2.2)
  kMwk,             ///< moving-window-K (section 3.2.3)
  kSubtree,         ///< dynamic subtree task parallelism (section 3.3)
  kRecordParallel,  ///< record data parallelism (the SP/distributed scheme
                    ///< the paper argues is ill-suited to SMPs; ablation)
};

const char* AlgorithmName(Algorithm algorithm);

/// Training-engine selector: the SPRINT sorted-attribute-list machinery
/// (everything in Algorithm) or the binned engine (src/binned/), which
/// quantizes continuous attributes into at most BuildOptions::max_bins bins
/// once at load and evaluates splits over per-leaf histograms in O(bins)
/// per attribute instead of O(records).
enum class Engine : unsigned char {
  kSorted,  ///< exact sorted attribute lists (paper sections 2-3)
  kBinned,  ///< quantized per-leaf histograms with sibling subtraction
};

/// Returns "sorted" / "binned".
const char* EngineName(Engine engine);

/// One tree level's working-set shape: how many unfinalized leaves the
/// builders processed at that depth and how many attribute-list records
/// (per attribute) they held. The per-level record volume decays as pure
/// children are dropped -- the curve the paper's file-reuse scheme rides.
struct LevelTraceEntry {
  int level = 0;  ///< depth (root = 0)
  int64_t leaves = 0;
  int64_t records = 0;
};

/// Per-node feature subsampling (the random-forest ingredient): when
/// active, each tree node evaluates splits over a deterministic
/// pseudo-random subset of `features_per_node` attributes instead of all of
/// them. The subset is a pure function of (seed, node id), so a build is
/// reproducible given its seed and a deterministic node numbering (serial
/// builds always; parallel builders number nodes in scheduling order, so
/// across thread counts only the *distribution* is preserved).
struct FeatureSampling {
  /// Attributes evaluated per node; 0 (or >= num_attrs) evaluates all.
  int features_per_node = 0;
  uint64_t seed = 0;

  bool active(int num_attrs) const {
    return features_per_node > 0 && features_per_node < num_attrs;
  }

  /// True when `attr` is in the node's sampled attribute subset.
  bool Allows(NodeId node, int attr, int num_attrs) const;
};

/// Everything configurable about a build.
struct BuildOptions {
  Algorithm algorithm = Algorithm::kSerial;
  /// Training engine. kSorted runs `algorithm`; kBinned runs the breadth-
  /// first histogram builder of src/binned/ (which has one parallel scheme
  /// of its own and ignores `algorithm`/`window`/storage options). The
  /// binned engine is approximate: split thresholds come from the quantized
  /// bin boundaries, so accuracy deltas vs kSorted are measured and
  /// reported (bench/binned_vs_sorted), never hidden.
  Engine engine = Engine::kSorted;
  /// Bin budget per attribute for the binned engine (bins are uint8_t, so
  /// at most 256). Categorical attributes use one bin per value code and
  /// must fit the budget.
  int max_bins = 256;
  int num_threads = 1;
  /// Window size K for FWK/MWK (the paper finds 4 works well). Also the
  /// per-group window when SUBTREE runs with the MWK subroutine.
  int window = 4;
  /// Per-group level subroutine for SUBTREE: kBasic (the paper's default)
  /// or kMwk (the hybrid the paper suggests in section 3.4: "we can also
  /// use FWK or MWK as the subroutine").
  Algorithm subtree_subroutine = Algorithm::kBasic;
  /// Children with fewer records become leaves without further splitting.
  int64_t min_split = 2;
  /// Maximum number of tree levels (0 = unlimited).
  int max_levels = 0;
  /// Turn off the Figure 5 child relabelling (ablation only; leaves the
  /// "holes" of the simple assignment scheme in the slot schedule).
  bool relabel_children = true;
  /// Per-node feature subsampling (inactive by default; the ensemble
  /// builder switches it on for forest members).
  FeatureSampling feature_sampling;
  GiniOptions gini;
  /// Storage environment; nullptr selects the in-memory Env (Machine B).
  /// Pass Env::Posix() for the paper's local-disk configuration (Machine A).
  Env* env = nullptr;
  /// Scratch directory for attribute files; empty picks a unique directory
  /// under the system temp dir (PosixEnv) or a fixed namespace (MemEnv).
  std::string scratch_dir;
  /// Threads used for attribute-list setup and pre-sorting (setup
  /// parallelization, the paper's suggested improvement; 1 = paper-faithful
  /// sequential).
  int sort_threads = 1;
  /// Bound (in records) on each child's S-phase write buffer: once a
  /// child's pending records reach this many they are streamed into its
  /// alternate slot file mid-leaf, keeping the working set at
  /// O(split_buffer_records) instead of O(leaf). 0 buffers each child in
  /// full before writing (the pre-streaming behavior; kept selectable for
  /// the buffered-vs-direct equivalence tests). Either way the bytes
  /// written are identical.
  int64_t split_buffer_records = 4096;
  /// When set, every builder thread binds to this recorder and emits
  /// per-level E/W/S + wait spans (util/trace.h). The recorder must outlive
  /// the build; null (the default) disables tracing -- the builders then pay
  /// one thread_local load per span. Not owned.
  TraceRecorder* trace = nullptr;

  Status Validate() const;
};

/// Per-leaf state for the current tree level.
struct LeafTask {
  NodeId node = kInvalidNode;
  Segment seg;           ///< where this leaf's lists live (current set)
  ClassHistogram hist;   ///< class distribution of the leaf

  /// Filled during E: best candidate per attribute (index = attr).
  std::vector<SplitCandidate> candidates;

  /// Filled during W.
  SplitCandidate winner;
  NodeId child_node[2] = {kInvalidNode, kInvalidNode};
  bool child_active[2] = {false, false};  ///< false: finalized as leaf (or none)
  ClassHistogram child_hist[2];
  /// Filled by AssignChildSlots for active children.
  Segment child_seg[2];
};

/// The level-step engine. One instance per build (SUBTREE: per build, shared
/// by all groups; each group owns its own storage and leaf vectors).
class BuildContext {
 public:
  /// `tree` must be empty; `probe` is sized here. Storage is created inside
  /// (num_slots from the options/algorithm) unless a SUBTREE group supplies
  /// its own per-group storage to the per-call overloads.
  BuildContext(const Dataset& data, const BuildOptions& options,
               DecisionTree* tree, BuildCounters* counters);

  const Dataset& data() const { return *data_; }
  const BuildOptions& options() const { return options_; }
  DecisionTree* tree() { return tree_; }
  SplitProbe* probe() { return &probe_; }
  BuildCounters* counters() { return counters_; }
  /// The build's trace recorder, or null when tracing is off. Builder worker
  /// bodies pass it to a TraceThreadBinding.
  TraceRecorder* trace() { return options_.trace; }
  LevelStorage* storage() { return storage_.get(); }
  Env* env() { return env_; }
  const std::string& scratch_dir() const { return scratch_dir_; }

  /// Number of slot files per attribute for the configured algorithm
  /// (2 for serial/BASIC/SUBTREE groups, K for FWK/MWK).
  int num_slots() const;

  /// Creates the scratch dir + storage, loads the pre-sorted attribute
  /// lists (consuming them), creates the tree root, and returns the root
  /// LeafTask in `level`. Single-threaded.
  Status InitRoot(AttributeLists lists, std::vector<LeafTask>* level);

  /// E over one attribute for a contiguous run of leaves (BASIC-style
  /// scheduling unit). Safe concurrently for distinct attributes. The
  /// `storage` overloads serve SUBTREE groups with their own file sets.
  Status EvaluateAttrForLeaves(int attr, std::vector<LeafTask>* level,
                               size_t first_leaf, size_t leaf_limit,
                               GiniScratch* scratch, LevelStorage* storage);
  Status EvaluateAttrForLeaves(int attr, std::vector<LeafTask>* level,
                               size_t first_leaf, size_t leaf_limit,
                               GiniScratch* scratch) {
    return EvaluateAttrForLeaves(attr, level, first_leaf, leaf_limit, scratch,
                                 storage_.get());
  }

  /// E for one (leaf, attribute) pair (FWK/MWK scheduling unit). Safe
  /// concurrently for distinct (leaf, attr) pairs.
  Status EvaluateLeafAttr(LeafTask* leaf, int attr, GiniScratch* scratch,
                          LevelStorage* storage);
  Status EvaluateLeafAttr(LeafTask* leaf, int attr, GiniScratch* scratch) {
    return EvaluateLeafAttr(leaf, attr, scratch, storage_.get());
  }

  /// W for one leaf: requires all its candidates filled (happens-before via
  /// the caller's synchronization). Safe concurrently for distinct leaves.
  /// Uses `storage` (the group's own for SUBTREE) to read the winner list.
  Status RunW(LeafTask* leaf, LevelStorage* storage);
  Status RunW(LeafTask* leaf) { return RunW(leaf, storage_.get()); }

  /// Assigns slots/offsets to active children of the whole level in
  /// relabelled order. Single-threaded (between W and S).
  void AssignChildSlots(std::vector<LeafTask>* level, int num_slots) const;

  /// S over one attribute for all leaves of the level, in order. Safe
  /// concurrently for distinct attributes. Flushes the attribute's
  /// alternate files at the end.
  Status SplitAttribute(int attr, const std::vector<LeafTask>& level,
                        LevelStorage* storage);
  Status SplitAttribute(int attr, const std::vector<LeafTask>& level) {
    return SplitAttribute(attr, level, storage_.get());
  }

  /// Collects the next level's LeafTasks (active children, in relabelled
  /// order) and accumulates the processed level into the trace. Called once
  /// per level per (group-)master; safe across concurrent SUBTREE groups.
  std::vector<LeafTask> CollectNextLevel(const std::vector<LeafTask>& level);

  /// Frontier shape per depth, aggregated across SUBTREE groups; sorted by
  /// level. Call after the build completes.
  std::vector<LevelTraceEntry> LevelTrace() const;

  /// Levels grown so far (for max_levels enforcement and stats).
  int levels_built() const { return levels_built_; }
  void set_levels_built(int levels) { levels_built_ = levels; }

 private:
  // lint: unguarded(set at construction; read-only while the team runs)
  const Dataset* data_;
  // lint: unguarded(set at construction; read-only while the team runs)
  BuildOptions options_;
  // lint: unguarded(growth serializes on the tree's own grow_mutex_)
  DecisionTree* tree_;
  // lint: unguarded(BuildCounters is all-atomic)
  BuildCounters* counters_;
  // lint: unguarded(set at construction; read-only while the team runs)
  Env* env_;
  // lint: unguarded(set at construction; read-only while the team runs)
  std::unique_ptr<Env> owned_env_;  // when options.env == nullptr
  // lint: unguarded(set at construction; read-only while the team runs)
  std::string scratch_dir_;
  // Level-phase contract: mutated only between team barriers;
  // SharedExclusiveCheck asserts the quiescence in debug builds.
  // lint: unguarded(mutated only between team barriers, debug-checked)
  std::unique_ptr<LevelStorage> storage_;
  // W writes distinct tids; S reads only leaves whose W completed this
  // level (see probe.h).
  // lint: unguarded(per-tid W ownership; S reads post-W leaves only)
  SplitProbe probe_;
  // lint: unguarded(written between levels by the coordinator only)
  int levels_built_ = 0;

  mutable Mutex trace_mutex_;
  std::map<int, LevelTraceEntry> trace_ GUARDED_BY(trace_mutex_);  // by depth
};

/// Picks a unique scratch directory for a build ("<base>/smptree-<n>").
std::string MakeScratchDir(Env* env, const std::string& requested);

}  // namespace smptree

#endif  // SMPTREE_CORE_BUILDER_CONTEXT_H_
