// The decision tree produced by the builders: binary nodes with a SplitTest,
// leaves with a majority class. Nodes live in a chunked arena whose chunk
// pointers are published atomically, so readers index nodes with no lock
// while other threads append (the SMP builders create children from
// concurrent W phases). Node creation is internally synchronized; node
// *content* visibility across threads relies on the builders' barriers /
// gates, which is how the algorithms already order W before S.
//
// Concurrent reads (the serving contract): once building and pruning are
// done and the finished tree has been published to the reading threads with
// the usual release/acquire handoff (e.g. via shared_ptr<const DecisionTree>
// in serve/model_store.h), any number of threads may call the const reader
// surface -- Classify, node(), root(), num_nodes(), Stats(), Validate(),
// ToString() -- concurrently with no synchronization. This holds because
// the readers are physically const: an audit (enforced by the
// concurrent-reader tests in tree_test.cc) confirms none of them lazily
// mutate state -- no memoized stats, no cached traversals, and
// SplitTest::GoesLeft only reads the immutable subset/threshold. The only
// mutating entry points are CreateRoot/AddChild/SetSplit/MakeLeaf/
// CompactAfterPrune/mutable_node, none of which may run concurrently with
// readers outside the builders' own ordering protocols.

#ifndef SMPTREE_CORE_TREE_H_
#define SMPTREE_CORE_TREE_H_

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/histogram.h"
#include "core/split.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "util/mutex.h"

namespace smptree {

/// Index of a node within its DecisionTree; dense, root == 0.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// One decision-tree node.
struct TreeNode {
  SplitTest split;                 ///< valid iff internal node
  NodeId left = kInvalidNode;
  NodeId right = kInvalidNode;
  NodeId parent = kInvalidNode;
  int depth = 0;                   ///< root is depth 0
  ClassLabel majority = 0;         ///< predicted class when used as a leaf
  std::vector<int64_t> class_counts;  ///< training distribution at the node

  bool is_leaf() const { return left == kInvalidNode; }
  int64_t tuple_count() const {
    int64_t n = 0;
    for (int64_t c : class_counts) n += c;
    return n;
  }
};

/// Tree-shape statistics (the paper's Table 1 reports levels and max
/// leaves/level).
struct TreeStats {
  int64_t num_nodes = 0;
  int64_t num_leaves = 0;
  int levels = 0;               ///< number of levels (max depth + 1)
  int64_t max_leaves_per_level = 0;
};

/// A binary decision tree over a fixed schema.
class DecisionTree {
 public:
  explicit DecisionTree(Schema schema);

  /// Movable (not copyable). Never move a tree that builder threads are
  /// still growing -- a move transfers exclusive ownership of the arena,
  /// which is also why the moves are exempt from the thread-safety
  /// analysis (there is no lock to track).
  DecisionTree(DecisionTree&& other) noexcept NO_THREAD_SAFETY_ANALYSIS;
  DecisionTree& operator=(DecisionTree&& other) noexcept
      NO_THREAD_SAFETY_ANALYSIS;
  DecisionTree(const DecisionTree&) = delete;
  DecisionTree& operator=(const DecisionTree&) = delete;

  const Schema& schema() const { return schema_; }

  /// Creates the root node with the full training-set class distribution.
  /// Must be called exactly once, before any AddChild.
  NodeId CreateRoot(const ClassHistogram& counts);

  /// Adds a child under `parent` on the given side ("left" == the side the
  /// split test sends matching tuples to). Thread-safe.
  NodeId AddChild(NodeId parent, bool left_side, const ClassHistogram& counts);

  /// Installs the split test on an internal node (called by the W phase).
  void SetSplit(NodeId node, const SplitTest& test);

  /// Detaches a node's children, turning it back into a leaf (used by
  /// pruning). The orphaned descendants stay in the arena but are
  /// unreachable; CompactAfterPrune() removes them.
  void MakeLeaf(NodeId node);

  /// Rebuilds the arena keeping only reachable nodes (after pruning).
  void CompactAfterPrune();

  /// Lock-free node access (safe concurrently with AddChild by design).
  const TreeNode& node(NodeId id) const { return *Slot(id); }
  TreeNode& mutable_node(NodeId id) { return *Slot(id); }
  NodeId root() const { return num_nodes() == 0 ? kInvalidNode : 0; }
  int64_t num_nodes() const {
    return size_.load(std::memory_order_acquire);
  }

  /// Classifies one tuple by walking from the root. Safe for any number of
  /// concurrent callers on a published, fully-built tree (see the
  /// "Concurrent reads" contract above); touches no mutable state.
  ClassLabel Classify(const TupleValues& values) const;

  /// Classifies tuple `t` of `data` (columns must match the schema).
  /// Concurrent-reader safe, like the TupleValues overload.
  ClassLabel Classify(const Dataset& data, int64_t tuple) const;

  TreeStats Stats() const;

  /// Structural invariants check (for tests and model loading): parent /
  /// child links consistent, depths increment, every node reachable from
  /// the root exactly once, split tests reference schema attributes of the
  /// right kind, and every internal node's class counts equal the sum of
  /// its children's.
  Status Validate() const;

  /// Pretty multi-line rendering ("|--" indentation, split tests by name).
  std::string ToString() const;

 private:
  // Chunked arena: node id -> chunks_[id >> kChunkBits][id & kChunkMask].
  // Readers load the chunk pointer with acquire and never touch any mutable
  // map structure; AddChild allocates chunks under the mutex and publishes
  // them with release stores. Capacity: kMaxChunks * kChunkSize nodes.
  static constexpr int kChunkBits = 10;
  static constexpr int64_t kChunkSize = int64_t{1} << kChunkBits;
  static constexpr int64_t kChunkMask = kChunkSize - 1;
  static constexpr int64_t kMaxChunks = int64_t{1} << 14;  // 16M nodes

  TreeNode* Slot(NodeId id) const {
    assert(id >= 0 && id < num_nodes());
    TreeNode* chunk =
        (*chunks_)[static_cast<size_t>(id) >> kChunkBits].load(
            std::memory_order_acquire);
    return chunk + (id & kChunkMask);
  }

  /// Appends a node (arena slot + id) under grow_mutex_.
  NodeId Append(TreeNode node) REQUIRES(*grow_mutex_);

  /// Drops all nodes (used by CompactAfterPrune's rebuild).
  void ResetArena() REQUIRES(*grow_mutex_);

  // lint: unguarded(set at construction/load; immutable while shared)
  Schema schema_;
  // Heap-allocated so DecisionTree stays movable (builders never move a
  // tree while growing it).
  std::unique_ptr<std::array<std::atomic<TreeNode*>, kMaxChunks>> chunks_;
  std::vector<std::unique_ptr<TreeNode[]>> owned_chunks_
      GUARDED_BY(*grow_mutex_);
  std::atomic<int64_t> size_{0};
  std::unique_ptr<Mutex> grow_mutex_ = std::make_unique<Mutex>();
};

}  // namespace smptree

#endif  // SMPTREE_CORE_TREE_H_
