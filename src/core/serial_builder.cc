#include "core/serial_builder.h"

namespace smptree {

Status BuildTreeSerial(BuildContext* ctx, std::vector<LeafTask> level) {
  TraceThreadBinding trace(ctx->trace(), 0);
  GiniScratch scratch;
  const int num_attrs = ctx->data().num_attrs();
  int level_no = 0;
  while (!level.empty()) {
    // E: attribute lists are processed one after the other, so only one set
    // of histograms is live at any time (paper section 2.1).
    {
      TraceSpan span("E", "phase", level_no,
                     static_cast<int64_t>(level.size()));
      for (int attr = 0; attr < num_attrs; ++attr) {
        SMPTREE_RETURN_IF_ERROR(ctx->EvaluateAttrForLeaves(
            attr, &level, 0, level.size(), &scratch));
      }
    }
    // W: winner selection and probe construction per leaf.
    {
      TraceSpan span("W", "phase", level_no);
      for (LeafTask& leaf : level) {
        SMPTREE_RETURN_IF_ERROR(ctx->RunW(&leaf));
      }
      ctx->AssignChildSlots(&level, ctx->num_slots());
    }
    // S: split every attribute list using the probe.
    {
      TraceSpan span("S", "phase", level_no);
      for (int attr = 0; attr < num_attrs; ++attr) {
        SMPTREE_RETURN_IF_ERROR(ctx->SplitAttribute(attr, level));
      }
    }
    SMPTREE_RETURN_IF_ERROR(ctx->storage()->AdvanceLevel());
    level = ctx->CollectNextLevel(level);
    if (!level.empty()) ctx->set_levels_built(ctx->levels_built() + 1);
    ++level_no;
  }
  return Status::OK();
}

}  // namespace smptree
