#include "sliq/sliq_builder.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/presort.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace smptree {

namespace {

/// The memory-resident class list: SLIQ's central structure. `leaf` is a
/// dense index into the current level's leaf states, or kDone once the
/// tuple's path reached a finalized leaf.
struct ClassListEntry {
  ClassLabel label = 0;
  int32_t leaf = 0;
};
constexpr int32_t kDone = -1;

/// Per-leaf state for one level.
struct SliqLeaf {
  NodeId node = kInvalidNode;
  ClassHistogram hist;
  SplitCandidate best;

  // Continuous-scan state (reset per attribute).
  ClassHistogram below;
  ClassHistogram above;
  float prev_value = 0.0f;
  bool has_prev = false;

  // Categorical-scan state.
  CountMatrix matrix;
};

}  // namespace

Status SliqOptions::Validate() const {
  if (min_split < 1) return Status::InvalidArgument("min_split < 1");
  if (max_levels < 0) return Status::InvalidArgument("max_levels < 0");
  if (sort_threads < 1) return Status::InvalidArgument("sort_threads < 1");
  if (gini.max_exhaustive_cardinality < 1 ||
      gini.max_exhaustive_cardinality > 20) {
    return Status::InvalidArgument("max_exhaustive_cardinality outside [1,20]");
  }
  return Status::OK();
}

Result<SliqResult> TrainSliq(const Dataset& data, const SliqOptions& options) {
  SMPTREE_RETURN_IF_ERROR(options.Validate());
  SMPTREE_RETURN_IF_ERROR(data.schema().Validate());
  if (data.num_tuples() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  const Schema& schema = data.schema();
  for (int a = 0; a < schema.num_attrs(); ++a) {
    if (schema.attr(a).is_categorical() &&
        schema.attr(a).cardinality > kMaxCategoricalCardinality) {
      return Status::NotSupported(
          StringPrintf("categorical attribute '%s' cardinality %d too large",
                       schema.attr(a).name.c_str(),
                       schema.attr(a).cardinality));
    }
  }

  SliqResult result;
  result.tree = std::make_unique<DecisionTree>(schema);
  Timer total;

  // Setup + pre-sort: SLIQ needs sorted lists only for continuous
  // attributes (categorical evaluation scans the columns directly), but we
  // reuse the shared presort for the setup/sort timing parity with SPRINT.
  SMPTREE_ASSIGN_OR_RETURN(AttributeLists lists,
                           BuildAttributeLists(data, options.sort_threads));
  result.stats.setup_seconds = lists.setup_seconds;
  result.stats.sort_seconds = lists.sort_seconds;

  Timer build;
  const int64_t n = data.num_tuples();
  const int num_classes = data.num_classes();
  const int num_attrs = schema.num_attrs();

  // The class list.
  std::vector<ClassListEntry> class_list(n);
  {
    const auto labels = data.labels();
    for (int64_t t = 0; t < n; ++t) {
      class_list[t].label = labels[t];
      class_list[t].leaf = 0;
    }
  }
  result.stats.class_list_bytes = n * sizeof(ClassListEntry);

  // Root.
  ClassHistogram root_hist(num_classes);
  for (int64_t t = 0; t < n; ++t) root_hist.Add(class_list[t].label);
  result.tree->CreateRoot(root_hist);

  std::vector<SliqLeaf> leaves;
  const bool root_splittable =
      !root_hist.IsPure() && n >= options.min_split &&
      (options.max_levels == 0 || options.max_levels > 1);
  if (root_splittable) {
    SliqLeaf root;
    root.node = result.tree->root();
    root.hist = root_hist;
    leaves.push_back(std::move(root));
  } else {
    for (auto& entry : class_list) entry.leaf = kDone;
  }

  GiniScratch scratch;
  int depth = 0;
  while (!leaves.empty()) {
    // --- Evaluate: one pass per attribute over ALL leaves at once. ---
    for (int attr = 0; attr < num_attrs; ++attr) {
      const AttrInfo& info = schema.attr(attr);
      if (info.is_categorical()) {
        for (SliqLeaf& leaf : leaves) {
          leaf.matrix.Reset(info.cardinality, num_classes);
        }
        const auto column = data.column(attr);
        for (int64_t t = 0; t < n; ++t) {
          const int32_t li = class_list[t].leaf;
          if (li == kDone) continue;
          leaves[li].matrix.Add(column[t].cat, class_list[t].label);
        }
        for (SliqLeaf& leaf : leaves) {
          const SplitCandidate candidate = EvaluateCategoricalFromMatrix(
              attr, leaf.matrix, leaf.hist, options.gini, &scratch);
          if (candidate.BetterThan(leaf.best)) leaf.best = candidate;
        }
      } else {
        for (SliqLeaf& leaf : leaves) {
          leaf.below.Reset(num_classes);
          leaf.above = leaf.hist;
          leaf.has_prev = false;
        }
        // The sorted attribute list routes every record to its current
        // leaf through the class list; each leaf sees its own subsequence
        // in sorted order, exactly as SPRINT's partitioned lists would.
        for (const AttrRecord& rec : lists.lists[attr]) {
          const int32_t li = class_list[rec.tid].leaf;
          if (li == kDone) continue;
          SliqLeaf& leaf = leaves[li];
          const float v = rec.value.f;
          if (leaf.has_prev && v != leaf.prev_value) {
            SplitCandidate candidate;
            candidate.test.attr = attr;
            candidate.test.categorical = false;
            const float mid =
                leaf.prev_value + (v - leaf.prev_value) * 0.5f;
            candidate.test.threshold = mid > leaf.prev_value ? mid : v;
            candidate.gini = SplitImpurity(leaf.below, leaf.above, options.gini.criterion);
            candidate.left_count = leaf.below.Total();
            candidate.right_count = leaf.above.Total();
            if (candidate.gini <= 1.0 && candidate.left_count > 0 &&
                candidate.right_count > 0 &&
                candidate.BetterThan(leaf.best)) {
              leaf.best = candidate;
            }
          }
          leaf.below.Add(class_list[rec.tid].label);
          leaf.above.Remove(class_list[rec.tid].label);
          leaf.prev_value = v;
          leaf.has_prev = true;
        }
      }
    }

    // --- Split: install winners, create children. ---
    struct Child {
      NodeId node = kInvalidNode;
      ClassHistogram hist;
      int32_t next_index = kDone;  // dense index in the next level
    };
    std::vector<Child> children(2 * leaves.size());
    for (size_t li = 0; li < leaves.size(); ++li) {
      SliqLeaf& leaf = leaves[li];
      if (!leaf.best.valid()) continue;  // stays a majority leaf
      result.tree->SetSplit(leaf.node, leaf.best.test);
      children[2 * li].hist.Reset(num_classes);
      children[2 * li + 1].hist.Reset(num_classes);
    }

    // --- Update the class list (SLIQ moves no data, only these labels). ---
    for (int64_t t = 0; t < n; ++t) {
      ClassListEntry& entry = class_list[t];
      if (entry.leaf == kDone) continue;
      const SliqLeaf& leaf = leaves[entry.leaf];
      if (!leaf.best.valid()) {
        entry.leaf = kDone;
        continue;
      }
      const bool left =
          leaf.best.test.GoesLeft(data.value(t, leaf.best.test.attr));
      const int32_t slot =
          static_cast<int32_t>(2 * entry.leaf) + (left ? 0 : 1);
      children[slot].hist.Add(entry.label);
      entry.leaf = slot;  // provisional: remapped below
    }

    // --- Finalize children, build the next level. ---
    std::vector<SliqLeaf> next;
    const int child_depth = depth + 1;
    for (size_t li = 0; li < leaves.size(); ++li) {
      const SliqLeaf& leaf = leaves[li];
      if (!leaf.best.valid()) continue;
      for (int side = 0; side < 2; ++side) {
        Child& child = children[2 * li + side];
        assert(child.hist.Total() ==
               (side == 0 ? leaf.best.left_count : leaf.best.right_count));
        child.node =
            result.tree->AddChild(leaf.node, side == 0, child.hist);
        const bool finalized =
            child.hist.IsPure() || child.hist.Total() < options.min_split ||
            (options.max_levels > 0 && child_depth >= options.max_levels - 1);
        if (!finalized) {
          child.next_index = static_cast<int32_t>(next.size());
          SliqLeaf state;
          state.node = child.node;
          state.hist = child.hist;
          next.push_back(std::move(state));
        }
      }
    }
    // Remap provisional child slots to next-level indices (or kDone).
    for (int64_t t = 0; t < n; ++t) {
      ClassListEntry& entry = class_list[t];
      if (entry.leaf == kDone) continue;
      entry.leaf = children[entry.leaf].next_index;
    }

    leaves = std::move(next);
    ++depth;
  }
  result.stats.build_seconds = build.Seconds();
  result.stats.tree = result.tree->Stats();

  Timer prune_timer;
  result.stats.nodes_pruned = PruneTree(result.tree.get(), options.prune);
  result.stats.prune_seconds = prune_timer.Seconds();
  result.stats.total_seconds = total.Seconds();
  return result;
}

}  // namespace smptree
