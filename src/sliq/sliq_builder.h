// Serial SLIQ (Mehta, Agrawal & Rissanen, EDBT 1996): the decision-tree
// classifier SPRINT descends from, included as a second baseline (the paper
// discusses it throughout section 2 and takes its pruning economics and
// accuracy results from it).
//
// SLIQ's design, contrasted with SPRINT:
//   * one pre-sorted attribute list per attribute holding (value, tid) --
//     sorted ONCE and never partitioned; lists always cover the whole
//     training set;
//   * a memory-resident CLASS LIST mapping every tid to its class label and
//     the tree leaf it currently belongs to;
//   * split evaluation scans each attribute list once per level, routing
//     every entry through the class list to its leaf and updating that
//     leaf's histograms -- all leaves of a level are evaluated in a single
//     pass per attribute;
//   * splitting updates only the class list (no data movement at all),
//     which is why SLIQ needs the class list to fit in memory while SPRINT
//     does not.
//
// Both classifiers make the same greedy gini decisions over the same
// candidate splits, so with the library's deterministic tie-breaking SLIQ
// produces a tree bit-identical to serial SPRINT's -- the cross-validation
// the sliq tests rely on.

#ifndef SMPTREE_SLIQ_SLIQ_BUILDER_H_
#define SMPTREE_SLIQ_SLIQ_BUILDER_H_

#include <memory>

#include "core/classifier.h"
#include "core/gini.h"
#include "core/prune.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "util/status.h"

namespace smptree {

struct SliqOptions {
  int64_t min_split = 2;
  int max_levels = 0;  ///< 0 = unlimited
  GiniOptions gini;
  PruneOptions prune;
  /// Threads for the one-time pre-sort (the build itself is serial SLIQ).
  int sort_threads = 1;

  Status Validate() const;
};

struct SliqStats {
  double setup_seconds = 0.0;
  double sort_seconds = 0.0;
  double build_seconds = 0.0;
  double prune_seconds = 0.0;
  double total_seconds = 0.0;
  TreeStats tree;
  int64_t nodes_pruned = 0;
  /// Memory the resident class list occupies -- SLIQ's scalability limit.
  uint64_t class_list_bytes = 0;
};

struct SliqResult {
  std::unique_ptr<DecisionTree> tree;
  SliqStats stats;
};

/// Trains a SLIQ classifier on `data` (fully in-memory).
Result<SliqResult> TrainSliq(const Dataset& data, const SliqOptions& options);

}  // namespace smptree

#endif  // SMPTREE_SLIQ_SLIQ_BUILDER_H_
