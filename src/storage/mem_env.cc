// In-memory Env: the paper's Machine B ("memory is sufficiently large to
// hold the whole input data and all temporary files"). Files are RAM buffers
// keyed by path; ReadView exposes zero-copy segments, which is exactly the
// advantage the large-memory configuration buys.

#include <cstring>
#include <map>
#include <vector>

#include "storage/env.h"
#include "util/mutex.h"

namespace smptree {

namespace {

// Backing store for one in-memory file. Guarded by its own mutex for the
// metadata; the data vector reserves ahead so Append never invalidates views
// of previously written bytes within one level (capacity doubling only moves
// the buffer between Truncate generations in practice, but we still copy on
// reallocation, so views handed out before an Append that reallocates would
// dangle). To keep views safe we grow in chunks and never shrink: views are
// only taken on fully written segments of the *current* set of files, which
// receive no appends while being read (builder phase contract), so the only
// reallocation hazard would be an Append racing a view -- excluded by that
// same contract.
class MemFileData {
 public:
  Status Read(uint64_t offset, size_t n, void* out) {
    MutexLock lock(mutex_);
    if (offset + n > data_.size()) {
      return Status::IOError("short read from in-memory file");
    }
    std::memcpy(out, data_.data() + offset, n);
    return Status::OK();
  }

  Status ReadView(uint64_t offset, size_t n, const char** view) {
    MutexLock lock(mutex_);
    if (offset + n > data_.size()) {
      return Status::IOError("short view of in-memory file");
    }
    *view = data_.data() + offset;
    return Status::OK();
  }

  Status Append(const void* data, size_t n) {
    MutexLock lock(mutex_);
    data_.insert(data_.end(), static_cast<const char*>(data),
                 static_cast<const char*>(data) + n);
    return Status::OK();
  }

  Status Truncate() {
    MutexLock lock(mutex_);
    data_.clear();
    return Status::OK();
  }

  uint64_t Size() const {
    MutexLock lock(mutex_);
    return data_.size();
  }

 private:
  mutable Mutex mutex_;
  std::vector<char> data_ GUARDED_BY(mutex_);
};

class MemFile final : public File {
 public:
  explicit MemFile(std::shared_ptr<MemFileData> data) : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, void* out) override {
    return data_->Read(offset, n, out);
  }
  Status ReadView(uint64_t offset, size_t n, const char** view) override {
    return data_->ReadView(offset, n, view);
  }
  Status Append(const void* data, size_t n) override {
    return data_->Append(data, n);
  }
  Status Truncate() override { return data_->Truncate(); }
  uint64_t Size() const override { return data_->Size(); }

 private:
  std::shared_ptr<MemFileData> data_;
};

class MemEnv final : public Env {
 public:
  Status NewFile(const std::string& path, std::unique_ptr<File>* out) override {
    MutexLock lock(mutex_);
    auto& slot = files_[path];
    slot = std::make_shared<MemFileData>();
    *out = std::make_unique<MemFile>(slot);
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    MutexLock lock(mutex_);
    if (files_.erase(path) == 0) return Status::NotFound(path);
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    MutexLock lock(mutex_);
    return files_.count(path) > 0;
  }

  Status CreateDir(const std::string&) override { return Status::OK(); }

  Status RemoveDirRecursive(const std::string& path) override {
    MutexLock lock(mutex_);
    const std::string prefix = path.back() == '/' ? path : path + "/";
    for (auto it = files_.begin(); it != files_.end();) {
      if (it->first.rfind(prefix, 0) == 0) {
        it = files_.erase(it);
      } else {
        ++it;
      }
    }
    return Status::OK();
  }

  std::string Name() const override { return "mem"; }

 private:
  mutable Mutex mutex_;
  std::map<std::string, std::shared_ptr<MemFileData>> files_
      GUARDED_BY(mutex_);
};

}  // namespace

std::unique_ptr<Env> Env::NewMem() { return std::make_unique<MemEnv>(); }

}  // namespace smptree
