// CachedEnv: an LRU page cache layered over any Env, modelling the paper's
// Machine A memory constraint honestly -- the 1999 machine had 128 MB of RAM
// against >900 MB of attribute files, so most per-level reads went to disk.
// Wrapping PosixEnv with a cache capacity *smaller than the working set*
// reproduces that regime on a modern machine whose OS page cache would
// otherwise hide the I/O; capacity larger than the data reproduces
// Machine B behaviour through the same code path.
//
// Design notes:
//  * Pages are fixed-size slices of a file keyed by (file generation,
//    page index). Attribute files are append-only between truncations, so
//    a cached page's bytes never change: Append only has to drop the
//    (partial) tail page, and Truncate bumps the file's generation so all
//    old pages become unreachable and age out of the LRU.
//  * One mutex guards the whole cache; the builders' read concurrency is
//    modest (a handful of threads), and the paper's machines serialized on
//    the disk anyway.
//  * ReadView is NotSupported, forcing the copy path -- cached data lives
//    in evictable pages.

#ifndef SMPTREE_STORAGE_CACHED_ENV_H_
#define SMPTREE_STORAGE_CACHED_ENV_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/env.h"
#include "util/mutex.h"

namespace smptree {

/// Cache effectiveness counters (cumulative).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t bytes_from_base = 0;  ///< bytes actually read from the base Env

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

/// Shared LRU page store (internal; exposed for the File wrappers).
class PageCache {
 public:
  PageCache(size_t capacity_bytes, size_t page_size);

  size_t page_size() const { return page_size_; }

  /// Copies `n` bytes at `offset` of file `file_id`/`generation` into
  /// `out`, loading missing pages via `loader(page_offset, want, buf)`
  /// which must fill `buf` with up to `want` bytes from the base file and
  /// report how many were available.
  using PageLoader = std::function<Status(uint64_t offset, size_t want,
                                          std::vector<char>* buf)>;
  Status Read(uint64_t file_id, uint64_t generation, uint64_t file_size,
              uint64_t offset, size_t n, void* out, const PageLoader& loader);

  /// Drops one page (the appended-to tail page).
  void InvalidatePage(uint64_t file_id, uint64_t generation,
                      uint64_t page_index) EXCLUDES(mutex_);

  CacheStats GetStats() const EXCLUDES(mutex_);

 private:
  struct Key {
    uint64_t file_id;
    uint64_t generation;
    uint64_t page;
    bool operator==(const Key& other) const {
      return file_id == other.file_id && generation == other.generation &&
             page == other.page;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      uint64_t h = k.file_id * 0x9E3779B97F4A7C15ull;
      h ^= k.generation + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      h ^= k.page + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
      return static_cast<size_t>(h);
    }
  };
  struct Entry {
    Key key;
    std::vector<char> data;
  };

  void EvictIfNeeded() REQUIRES(mutex_);

  const size_t capacity_bytes_;
  const size_t page_size_;

  mutable Mutex mutex_;
  std::list<Entry> lru_ GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_
      GUARDED_BY(mutex_);
  size_t used_bytes_ GUARDED_BY(mutex_) = 0;
  CacheStats stats_ GUARDED_BY(mutex_);
};

/// The Env wrapper. Does not own `base`.
class CachedEnv : public Env {
 public:
  CachedEnv(Env* base, size_t capacity_bytes, size_t page_size = 1 << 16);

  Status NewFile(const std::string& path, std::unique_ptr<File>* out) override;
  Status DeleteFile(const std::string& path) override;
  bool FileExists(const std::string& path) const override;
  Status CreateDir(const std::string& path) override;
  Status RemoveDirRecursive(const std::string& path) override;
  std::string Name() const override;

  CacheStats GetStats() const { return cache_->GetStats(); }

 private:
  Env* base_;
  std::shared_ptr<PageCache> cache_;
  std::atomic<uint64_t> next_file_id_{1};
};

}  // namespace smptree

#endif  // SMPTREE_STORAGE_CACHED_ENV_H_
