// Real-filesystem Env: the paper's Machine A ("data is too large to fit in
// memory and must be paged from a local disk as needed"). Attribute lists
// round-trip through ordinary files using pread/write on O_RDWR descriptors.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

#include "storage/env.h"
#include "util/string_util.h"

namespace smptree {

namespace {

Status ErrnoStatus(const std::string& context) {
  return Status::IOError(context + ": " + std::strerror(errno));
}

class PosixFile final : public File {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Read(uint64_t offset, size_t n, void* out) override {
    char* dst = static_cast<char*>(out);
    size_t done = 0;
    while (done < n) {
      const ssize_t r = ::pread(fd_, dst + done, n - done,
                                static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pread " + path_);
      }
      if (r == 0) {
        return Status::IOError(StringPrintf(
            "short read of %zu bytes at %llu in %s (size %llu)", n,
            static_cast<unsigned long long>(offset), path_.c_str(),
            static_cast<unsigned long long>(size_)));
      }
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  Status ReadView(uint64_t, size_t, const char**) override {
    return Status::NotSupported("posix files have no stable in-memory view");
  }

  Status Append(const void* data, size_t n) override {
    const char* src = static_cast<const char*>(data);
    size_t done = 0;
    while (done < n) {
      const ssize_t w = ::pwrite(fd_, src + done, n - done,
                                 static_cast<off_t>(size_ + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("pwrite " + path_);
      }
      done += static_cast<size_t>(w);
    }
    size_ += n;
    return Status::OK();
  }

  Status Truncate() override {
    if (::ftruncate(fd_, 0) != 0) return ErrnoStatus("ftruncate " + path_);
    size_ = 0;
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  int fd_;
  std::string path_;
  uint64_t size_ = 0;  // we always open truncated, so we track size ourselves
};

class PosixEnv final : public Env {
 public:
  Status NewFile(const std::string& path, std::unique_ptr<File>* out) override {
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return ErrnoStatus("open " + path);
    *out = std::make_unique<PosixFile>(fd, path);
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      if (errno == ENOENT) return Status::NotFound(path);
      return ErrnoStatus("unlink " + path);
    }
    return Status::OK();
  }

  bool FileExists(const std::string& path) const override {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
  }

  Status CreateDir(const std::string& path) override {
    std::error_code ec;
    std::filesystem::create_directories(path, ec);
    if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& path) override {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
    if (ec) return Status::IOError("rm -r " + path + ": " + ec.message());
    return Status::OK();
  }

  std::string Name() const override { return "posix"; }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

}  // namespace smptree
