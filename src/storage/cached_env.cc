#include "storage/cached_env.h"

#include <cassert>
#include <cstring>
#include <functional>

namespace smptree {

PageCache::PageCache(size_t capacity_bytes, size_t page_size)
    : capacity_bytes_(capacity_bytes), page_size_(page_size) {
  assert(page_size > 0);
}

Status PageCache::Read(uint64_t file_id, uint64_t generation,
                       uint64_t file_size, uint64_t offset, size_t n,
                       void* out, const PageLoader& loader) {
  if (offset + n > file_size) {
    return Status::IOError("cached read past end of file");
  }
  char* dst = static_cast<char*>(out);
  uint64_t pos = offset;
  const uint64_t end = offset + n;
  while (pos < end) {
    const uint64_t page = pos / page_size_;
    const uint64_t page_offset = page * page_size_;
    const size_t in_page = static_cast<size_t>(pos - page_offset);
    const size_t take =
        std::min<uint64_t>(end - pos, page_size_ - in_page);

    const Key key{file_id, generation, page};
    bool hit = false;
    {
      MutexLock lock(mutex_);
      auto it = index_.find(key);
      if (it != index_.end()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);  // touch
        std::memcpy(dst, it->second->data.data() + in_page, take);
        hit = true;
      } else {
        ++stats_.misses;
      }
    }
    if (!hit) {
      // Load outside the lock: a page load is a real base-Env read and may
      // be slow. A racing loader for the same page just does duplicate
      // work; first insert wins (contents are identical -- append-only).
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(page_size_, file_size - page_offset));
      std::vector<char> buf;
      SMPTREE_RETURN_IF_ERROR(loader(page_offset, want, &buf));
      if (buf.size() < in_page + take) {
        return Status::IOError("page loader returned short page");
      }
      std::memcpy(dst, buf.data() + in_page, take);
      MutexLock lock(mutex_);
      stats_.bytes_from_base += buf.size();
      if (index_.find(key) == index_.end()) {
        lru_.push_front(Entry{key, std::move(buf)});
        index_[key] = lru_.begin();
        used_bytes_ += lru_.front().data.size();
        EvictIfNeeded();
      }
    }
    dst += take;
    pos += take;
  }
  return Status::OK();
}

void PageCache::EvictIfNeeded() {
  while (used_bytes_ > capacity_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_bytes_ -= victim.data.size();
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void PageCache::InvalidatePage(uint64_t file_id, uint64_t generation,
                               uint64_t page_index) {
  const Key key{file_id, generation, page_index};
  MutexLock lock(mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) return;
  used_bytes_ -= it->second->data.size();
  lru_.erase(it->second);
  index_.erase(it);
}

CacheStats PageCache::GetStats() const {
  MutexLock lock(mutex_);
  return stats_;
}

namespace {

class CachedFile final : public File {
 public:
  CachedFile(std::unique_ptr<File> base, std::shared_ptr<PageCache> cache,
             uint64_t file_id)
      : base_(std::move(base)), cache_(std::move(cache)), file_id_(file_id) {}

  Status Read(uint64_t offset, size_t n, void* out) override {
    if (n == 0) return Status::OK();
    File* base = base_.get();
    return cache_->Read(
        file_id_, generation_, base_->Size(), offset, n, out,
        [base](uint64_t page_offset, size_t want, std::vector<char>* buf) {
          buf->resize(want);
          return base->Read(page_offset, want, buf->data());
        });
  }

  Status ReadView(uint64_t, size_t, const char**) override {
    return Status::NotSupported("cached files have no stable view");
  }

  Status Append(const void* data, size_t n) override {
    // Appends never modify existing bytes, so full cached pages stay
    // valid; only the partial tail page (if cached) must be dropped.
    const uint64_t old_size = base_->Size();
    SMPTREE_RETURN_IF_ERROR(base_->Append(data, n));
    if (old_size % cache_->page_size() != 0) {
      cache_->InvalidatePage(file_id_, generation_,
                             old_size / cache_->page_size());
    }
    return Status::OK();
  }

  Status Truncate() override {
    // New generation: every cached page of the old content becomes
    // unreachable and ages out of the LRU.
    SMPTREE_RETURN_IF_ERROR(base_->Truncate());
    ++generation_;
    return Status::OK();
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<File> base_;
  std::shared_ptr<PageCache> cache_;
  const uint64_t file_id_;
  uint64_t generation_ = 0;
};

}  // namespace

CachedEnv::CachedEnv(Env* base, size_t capacity_bytes, size_t page_size)
    : base_(base),
      cache_(std::make_shared<PageCache>(capacity_bytes, page_size)) {}

Status CachedEnv::NewFile(const std::string& path,
                          std::unique_ptr<File>* out) {
  std::unique_ptr<File> file;
  SMPTREE_RETURN_IF_ERROR(base_->NewFile(path, &file));
  *out = std::make_unique<CachedFile>(
      std::move(file), cache_,
      next_file_id_.fetch_add(1, std::memory_order_relaxed));
  return Status::OK();
}

Status CachedEnv::DeleteFile(const std::string& path) {
  return base_->DeleteFile(path);
}

bool CachedEnv::FileExists(const std::string& path) const {
  return base_->FileExists(path);
}

Status CachedEnv::CreateDir(const std::string& path) {
  return base_->CreateDir(path);
}

Status CachedEnv::RemoveDirRecursive(const std::string& path) {
  return base_->RemoveDirRecursive(path);
}

std::string CachedEnv::Name() const { return "cached+" + base_->Name(); }

}  // namespace smptree
