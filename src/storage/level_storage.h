// LevelStorage: the paper's reusable physical attribute-file scheme
// (sections 2.3 and 3.2.2).
//
// Per attribute there are `num_slots` files for the current level plus
// `num_slots` alternates, i.e. 2K files per attribute:
//   * BASIC / serial SPRINT: K = 2 (the "left children" file and the "right
//     children" file, plus two alternates -- the paper's four files).
//   * FWK / MWK with window K: K slot files so all K leaves of a block have
//     distinct files and evaluation can overlap probe construction with no
//     read/write interference.
//   * SUBTREE: each processor group owns its own sets (up to ~2P files per
//     attribute across groups); a freshly split group *borrows* its parent
//     group's current set for its first level.
//
// Leaf lists are contiguous segments inside a slot file. A Segment is
// (slot, record offset, record count); the builders assign children to slots
// in *relabelled* order (pure children excluded -- paper Figure 5) and
// precompute offsets from per-slot running totals, so the split phase can
// append each attribute's records independently with no coordination.
//
// Concurrency contract (enforced by the builders' phase structure, and
// asserted at runtime by the debug invariant checker -- a violation aborts
// in debug builds):
//   * ReadSegment on the current set: any number of concurrent readers.
//   * AppendChild / FlushAlternate on the alternate set: one thread per
//     attribute at a time.
//   * AdvanceLevel: exclusive -- no concurrent reads or appends anywhere.

#ifndef SMPTREE_STORAGE_LEVEL_STORAGE_H_
#define SMPTREE_STORAGE_LEVEL_STORAGE_H_

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "storage/record_file.h"
#include "util/debug_checks.h"

namespace smptree {

/// Location of one leaf's attribute list inside a slot file. Offsets/counts
/// are in records and identical across attributes (every attribute list of a
/// leaf has the same length and children are appended in the same order).
struct Segment {
  int32_t slot = 0;
  uint64_t offset = 0;
  uint64_t count = 0;
};

/// A set of `num_attrs` x `num_slots` physical files.
class FileSet {
 public:
  /// Creates and opens all files under `dir` with names
  /// `<prefix>.a<attr>.s<slot>`. Files are deleted when the FileSet dies.
  static Status Create(Env* env, const std::string& dir,
                       const std::string& prefix, int num_attrs, int num_slots,
                       std::shared_ptr<FileSet>* out);

  ~FileSet();

  FileSet(const FileSet&) = delete;
  FileSet& operator=(const FileSet&) = delete;

  AttrRecordFile* file(int attr, int slot) {
    return &files_[static_cast<size_t>(attr) * num_slots_ + slot];
  }

  int num_attrs() const { return num_attrs_; }
  int num_slots() const { return num_slots_; }

  /// Flushes every file's append buffer.
  Status FlushAll();

  /// Truncates every file for reuse.
  Status TruncateAll();

 private:
  FileSet() = default;

  Env* env_ = nullptr;
  std::vector<std::string> paths_;
  std::vector<AttrRecordFile> files_;
  int num_attrs_ = 0;
  int num_slots_ = 0;
};

/// Double-buffered (current / alternate) file sets for one tree builder or
/// one SUBTREE processor group.
class LevelStorage {
 public:
  /// Standard storage: two owned sets. Used by the serial builder, BASIC,
  /// FWK, MWK, and the root SUBTREE group.
  static Status Create(Env* env, const std::string& dir,
                       const std::string& prefix, int num_attrs, int num_slots,
                       std::unique_ptr<LevelStorage>* out);

  /// SUBTREE child-group storage: the first level reads from `borrowed`
  /// (the parent group's current set, kept alive by the shared_ptr) and
  /// writes into an owned set. After the first AdvanceLevel the borrowed set
  /// is released.
  static Status CreateBorrowing(Env* env, const std::string& dir,
                                const std::string& prefix, int num_attrs,
                                int num_slots, std::shared_ptr<FileSet> borrowed,
                                std::unique_ptr<LevelStorage>* out);

  int num_slots() const { return num_slots_; }
  int num_attrs() const { return num_attrs_; }

  /// The set current reads come from; a splitting SUBTREE group hands this
  /// to its children.
  std::shared_ptr<FileSet> current_set() const { return current_; }

  /// Appends root-level records for `attr` into current-set slot 0 (initial
  /// attribute-list load after setup and pre-sort).
  Status AppendRoot(int attr, std::span<const AttrRecord> records);

  /// Flushes the current set after the root load.
  Status FinishRootLoad();

  /// Reads a leaf's attribute list from the current set.
  Status ReadSegment(int attr, const Segment& seg, SegmentBuffer* buf);

  /// Appends child records for `attr` into alternate-set slot `slot`
  /// (buffered). Single writer per attribute.
  Status AppendChild(int attr, int slot, std::span<const AttrRecord> records);
  Status AppendChild(int attr, int slot, const AttrRecord& record);

  /// Flushes all alternate files of `attr` (end of the split scan of one
  /// attribute; makes the writes visible before the level swap).
  Status FlushAlternate(int attr);

  /// Makes the alternates current for the next level: flushes them, releases
  /// a borrowed set (or truncates the owned previous current), and swaps.
  Status AdvanceLevel();

  /// Total records read / written through this storage (for the benchmarks).
  uint64_t records_read() const { return records_read_.load(std::memory_order_relaxed); }
  uint64_t records_written() const { return records_written_.load(std::memory_order_relaxed); }

 private:
  LevelStorage() = default;

  Env* env_ = nullptr;
  std::string dir_;
  std::string prefix_;
  int num_attrs_ = 0;
  int num_slots_ = 0;

  std::shared_ptr<FileSet> current_;    // read side
  std::shared_ptr<FileSet> alternate_;  // write side
  std::shared_ptr<FileSet> spare_;      // set to promote after a borrowed
                                        // first level (owned, empty)
  bool borrowing_ = false;

  std::atomic<uint64_t> records_read_{0};
  std::atomic<uint64_t> records_written_{0};

  // Debug invariant checker state (no-ops in release): AdvanceLevel must
  // not overlap any read or append, and each attribute has at most one
  // appender at a time.
  debug::SharedExclusiveCheck phase_check_{"LevelStorage AdvanceLevel vs I/O"};
  std::unique_ptr<debug::SharedExclusiveCheck[]> attr_writer_check_;
};

}  // namespace smptree

#endif  // SMPTREE_STORAGE_LEVEL_STORAGE_H_
