#include "storage/record_file.h"

#include <cassert>
#include <cstring>

#include "util/string_util.h"

namespace smptree {

Status AttrRecordFile::Open(Env* env, const std::string& path) {
  buffer_.clear();
  buffer_.reserve(kAppendBufferRecords);
  flushed_records_ = 0;
  return env->NewFile(path, &file_);
}

Status AttrRecordFile::Append(std::span<const AttrRecord> records) {
  assert(is_open());
  // Fast path: large batch with an empty buffer goes straight through.
  if (buffer_.empty() && records.size() >= kAppendBufferRecords) {
    SMPTREE_RETURN_IF_ERROR(
        file_->Append(records.data(), records.size_bytes()));
    flushed_records_ += records.size();
    return Status::OK();
  }
  buffer_.insert(buffer_.end(), records.begin(), records.end());
  if (buffer_.size() >= kAppendBufferRecords) return Flush();
  return Status::OK();
}

Status AttrRecordFile::Flush() {
  if (buffer_.empty()) return Status::OK();
  SMPTREE_RETURN_IF_ERROR(
      file_->Append(buffer_.data(), buffer_.size() * sizeof(AttrRecord)));
  flushed_records_ += buffer_.size();
  buffer_.clear();
  return Status::OK();
}

Status AttrRecordFile::ReadSegment(uint64_t offset, uint64_t count,
                                   SegmentBuffer* buf) {
  assert(is_open());
  if (count == 0) {
    buf->data_ = nullptr;
    buf->count_ = 0;
    return Status::OK();
  }
  if (offset + count > flushed_records_) {
    return Status::Internal(StringPrintf(
        "segment [%llu,+%llu) past flushed end %llu",
        static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(count),
        static_cast<unsigned long long>(flushed_records_)));
  }
  const uint64_t byte_offset = offset * sizeof(AttrRecord);
  const size_t byte_count = count * sizeof(AttrRecord);

  const char* view = nullptr;
  Status vs = file_->ReadView(byte_offset, byte_count, &view);
  if (vs.ok()) {
    buf->data_ = reinterpret_cast<const AttrRecord*>(view);
    buf->count_ = count;
    return Status::OK();
  }
  if (!vs.IsNotSupported()) return vs;

  buf->owned_.resize(count);
  SMPTREE_RETURN_IF_ERROR(
      file_->Read(byte_offset, byte_count, buf->owned_.data()));
  buf->data_ = buf->owned_.data();
  buf->count_ = count;
  return Status::OK();
}

Status AttrRecordFile::Truncate() {
  assert(is_open());
  buffer_.clear();
  flushed_records_ = 0;
  return file_->Truncate();
}

uint64_t AttrRecordFile::NumRecords() const {
  return flushed_records_ + buffer_.size();
}

}  // namespace smptree
