#include "storage/env.h"

namespace smptree {

// Env::Posix() and Env::NewMem() are defined in posix_env.cc / mem_env.cc.

}  // namespace smptree
