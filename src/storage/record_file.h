// AttrRecordFile: a physical attribute file holding a flat array of
// AttrRecord (paper section 2.3 "Avoiding multiple attribute lists").
// Appends are buffered so the split phase issues large sequential writes;
// reads fetch whole leaf segments (one positional read per segment) and use
// the Env's zero-copy view when available.

#ifndef SMPTREE_STORAGE_RECORD_FILE_H_
#define SMPTREE_STORAGE_RECORD_FILE_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/records.h"
#include "storage/env.h"
#include "util/status.h"

namespace smptree {

/// Read result for a leaf segment: either a zero-copy view into an in-memory
/// file or an owned buffer filled from disk. `records()` is valid until the
/// SegmentBuffer is reused or destroyed (and, for views, until the backing
/// file is appended to or truncated).
class SegmentBuffer {
 public:
  std::span<const AttrRecord> records() const {
    return {data_, count_};
  }

 private:
  friend class AttrRecordFile;
  const AttrRecord* data_ = nullptr;
  size_t count_ = 0;
  std::vector<AttrRecord> owned_;
};

/// One physical attribute file.
class AttrRecordFile {
 public:
  /// Buffered appends flush once this many records accumulate.
  static constexpr size_t kAppendBufferRecords = 8192;

  AttrRecordFile() = default;

  /// Opens (creating/truncating) the file at `path` in `env`.
  Status Open(Env* env, const std::string& path);

  /// Appends records behind the write buffer.
  Status Append(std::span<const AttrRecord> records);

  /// Appends a single record.
  Status Append(const AttrRecord& record) {
    return Append(std::span<const AttrRecord>(&record, 1));
  }

  /// Flushes the write buffer to the underlying file.
  Status Flush();

  /// Reads `count` records starting at record index `offset` into `buf`.
  /// All records must have been flushed (the storage layer flushes at phase
  /// boundaries before any reads).
  Status ReadSegment(uint64_t offset, uint64_t count, SegmentBuffer* buf);

  /// Empties the file and the write buffer for reuse by the next level.
  Status Truncate();

  /// Records written (including any still buffered).
  uint64_t NumRecords() const;

  bool is_open() const { return file_ != nullptr; }

 private:
  std::unique_ptr<File> file_;
  std::vector<AttrRecord> buffer_;
  uint64_t flushed_records_ = 0;
};

}  // namespace smptree

#endif  // SMPTREE_STORAGE_RECORD_FILE_H_
