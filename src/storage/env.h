// Environment abstraction over the place attribute-list files live (RocksDB
// idiom). The paper evaluates two machine configurations:
//
//   Machine A - data too large for memory, attribute lists paged from local
//               disk every level  -> PosixEnv (real files).
//   Machine B - memory large enough to cache everything  -> MemEnv
//               (files are RAM buffers).
//
// The builders only see this interface, so the disk/memory distinction -- the
// variable the paper's two experiment halves change -- is isolated here.
//
// File model: a File supports positional reads, appends, and truncation back
// to empty (the paper's *reusable* physical attribute files). Contract used
// by the builders: at most one appender per file at a time; reads only target
// byte ranges written before the reader started (enforced by the phase
// structure), so implementations need no internal locking beyond what their
// backing store requires.

#ifndef SMPTREE_STORAGE_ENV_H_
#define SMPTREE_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace smptree {

/// A reusable scratch file: append-write, positional read, truncate.
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `n` bytes at `offset` into `out`. Fails with IOError on a
  /// short read (the storage layer always knows segment sizes exactly).
  virtual Status Read(uint64_t offset, size_t n, void* out) = 0;

  /// Zero-copy read: points `*data` at `n` bytes at `offset` valid until the
  /// next Append/Truncate on this file. Returns NotSupported when the
  /// backing store cannot expose stable memory (e.g. real files); callers
  /// fall back to Read.
  virtual Status ReadView(uint64_t offset, size_t n, const char** data) = 0;

  /// Appends `n` bytes at the end of the file.
  virtual Status Append(const void* data, size_t n) = 0;

  /// Discards all contents; the file is reusable immediately.
  virtual Status Truncate() = 0;

  /// Current size in bytes.
  virtual uint64_t Size() const = 0;
};

/// Factory for files plus the few filesystem operations the library needs.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens (creating or truncating) a scratch file. Paths use '/' separators
  /// relative to whatever namespace the Env implements.
  virtual Status NewFile(const std::string& path, std::unique_ptr<File>* out) = 0;

  /// Removes a file; NotFound if absent.
  virtual Status DeleteFile(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) const = 0;

  /// Creates a directory (and parents). MemEnv treats this as a no-op.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Recursively removes a directory tree. MemEnv drops matching prefixes.
  virtual Status RemoveDirRecursive(const std::string& path) = 0;

  /// Human-readable name for logs and benchmark output ("posix", "mem").
  virtual std::string Name() const = 0;

  /// Process-wide POSIX environment (real files).
  static Env* Posix();

  /// Creates a fresh, isolated in-memory environment.
  static std::unique_ptr<Env> NewMem();
};

}  // namespace smptree

#endif  // SMPTREE_STORAGE_ENV_H_
