#include "storage/level_storage.h"

#include <cassert>

#include "util/string_util.h"

namespace smptree {

Status FileSet::Create(Env* env, const std::string& dir,
                       const std::string& prefix, int num_attrs, int num_slots,
                       std::shared_ptr<FileSet>* out) {
  assert(num_attrs > 0 && num_slots > 0);
  std::shared_ptr<FileSet> set(new FileSet());
  set->env_ = env;
  set->num_attrs_ = num_attrs;
  set->num_slots_ = num_slots;
  set->files_.resize(static_cast<size_t>(num_attrs) * num_slots);
  set->paths_.reserve(set->files_.size());
  for (int a = 0; a < num_attrs; ++a) {
    for (int s = 0; s < num_slots; ++s) {
      std::string path =
          dir + "/" + prefix + StringPrintf(".a%d.s%d", a, s);
      SMPTREE_RETURN_IF_ERROR(set->file(a, s)->Open(env, path));
      set->paths_.push_back(std::move(path));
    }
  }
  *out = std::move(set);
  return Status::OK();
}

FileSet::~FileSet() {
  if (env_ == nullptr) return;
  // Close handles before unlinking (file objects own the descriptors).
  files_.clear();
  for (const auto& path : paths_) {
    // lint: status-discard(best-effort scratch unlink in a destructor)
    env_->DeleteFile(path);
  }
}

Status FileSet::FlushAll() {
  for (auto& f : files_) SMPTREE_RETURN_IF_ERROR(f.Flush());
  return Status::OK();
}

Status FileSet::TruncateAll() {
  for (auto& f : files_) SMPTREE_RETURN_IF_ERROR(f.Truncate());
  return Status::OK();
}

Status LevelStorage::Create(Env* env, const std::string& dir,
                            const std::string& prefix, int num_attrs,
                            int num_slots, std::unique_ptr<LevelStorage>* out) {
  std::unique_ptr<LevelStorage> ls(new LevelStorage());
  ls->env_ = env;
  ls->dir_ = dir;
  ls->prefix_ = prefix;
  ls->num_attrs_ = num_attrs;
  ls->num_slots_ = num_slots;
  ls->attr_writer_check_ =
      std::make_unique<debug::SharedExclusiveCheck[]>(num_attrs);
  SMPTREE_RETURN_IF_ERROR(env->CreateDir(dir));
  SMPTREE_RETURN_IF_ERROR(FileSet::Create(env, dir, prefix + ".cur",
                                          num_attrs, num_slots, &ls->current_));
  SMPTREE_RETURN_IF_ERROR(FileSet::Create(env, dir, prefix + ".alt",
                                          num_attrs, num_slots, &ls->alternate_));
  *out = std::move(ls);
  return Status::OK();
}

Status LevelStorage::CreateBorrowing(Env* env, const std::string& dir,
                                     const std::string& prefix, int num_attrs,
                                     int num_slots,
                                     std::shared_ptr<FileSet> borrowed,
                                     std::unique_ptr<LevelStorage>* out) {
  assert(borrowed != nullptr);
  assert(borrowed->num_attrs() == num_attrs);
  std::unique_ptr<LevelStorage> ls(new LevelStorage());
  ls->env_ = env;
  ls->dir_ = dir;
  ls->prefix_ = prefix;
  ls->num_attrs_ = num_attrs;
  ls->num_slots_ = num_slots;
  ls->attr_writer_check_ =
      std::make_unique<debug::SharedExclusiveCheck[]>(num_attrs);
  ls->borrowing_ = true;
  SMPTREE_RETURN_IF_ERROR(env->CreateDir(dir));
  ls->current_ = std::move(borrowed);
  SMPTREE_RETURN_IF_ERROR(FileSet::Create(env, dir, prefix + ".own0",
                                          num_attrs, num_slots, &ls->alternate_));
  SMPTREE_RETURN_IF_ERROR(FileSet::Create(env, dir, prefix + ".own1",
                                          num_attrs, num_slots, &ls->spare_));
  *out = std::move(ls);
  return Status::OK();
}

Status LevelStorage::AppendRoot(int attr, std::span<const AttrRecord> records) {
  assert(!borrowing_);
  debug::SharedScope io(phase_check_);
  debug::ExclusiveScope writer(attr_writer_check_[attr]);
  records_written_.fetch_add(records.size(), std::memory_order_relaxed);
  return current_->file(attr, 0)->Append(records);
}

Status LevelStorage::FinishRootLoad() { return current_->FlushAll(); }

Status LevelStorage::ReadSegment(int attr, const Segment& seg,
                                 SegmentBuffer* buf) {
  debug::SharedScope io(phase_check_);
  records_read_.fetch_add(seg.count, std::memory_order_relaxed);
  return current_->file(attr, seg.slot)->ReadSegment(seg.offset, seg.count, buf);
}

Status LevelStorage::AppendChild(int attr, int slot,
                                 std::span<const AttrRecord> records) {
  debug::SharedScope io(phase_check_);
  debug::ExclusiveScope writer(attr_writer_check_[attr]);
  records_written_.fetch_add(records.size(), std::memory_order_relaxed);
  return alternate_->file(attr, slot)->Append(records);
}

Status LevelStorage::AppendChild(int attr, int slot, const AttrRecord& record) {
  debug::SharedScope io(phase_check_);
  debug::ExclusiveScope writer(attr_writer_check_[attr]);
  records_written_.fetch_add(1, std::memory_order_relaxed);
  return alternate_->file(attr, slot)->Append(record);
}

Status LevelStorage::FlushAlternate(int attr) {
  debug::SharedScope io(phase_check_);
  debug::ExclusiveScope writer(attr_writer_check_[attr]);
  for (int s = 0; s < num_slots_; ++s) {
    SMPTREE_RETURN_IF_ERROR(alternate_->file(attr, s)->Flush());
  }
  return Status::OK();
}

Status LevelStorage::AdvanceLevel() {
  debug::ExclusiveScope quiescent(phase_check_);
  SMPTREE_RETURN_IF_ERROR(alternate_->FlushAll());
  if (borrowing_) {
    // Release the parent group's set (siblings may still be reading it; the
    // shared_ptr keeps it alive for them) and promote the owned spare.
    current_ = std::move(alternate_);
    alternate_ = std::move(spare_);
    spare_.reset();
    borrowing_ = false;
    return Status::OK();
  }
  SMPTREE_RETURN_IF_ERROR(current_->TruncateAll());
  std::swap(current_, alternate_);
  return Status::OK();
}

}  // namespace smptree
