// Debug-only concurrency invariant checks. The static thread-safety
// analysis (util/thread_annotations.h) proves lock/field association; the
// checks here catch the *protocol* bugs it cannot see -- phase overlap on
// lock-free structures, barrier-epoch misuse, pipeline ordering violations.
//
// Everything in this header compiles to nothing in release builds
// (SMPTREE_DEBUG_CHECKS == 0). The default follows NDEBUG; the `tsan` and
// `asan-ubsan` CMake presets force the checks on so the sanitizer suites
// also exercise the protocol assertions.
//
// A failed check prints the violated invariant and aborts: these are
// programming errors in a builder's synchronization skeleton, never
// recoverable runtime conditions.

#ifndef SMPTREE_UTIL_DEBUG_CHECKS_H_
#define SMPTREE_UTIL_DEBUG_CHECKS_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if !defined(SMPTREE_DEBUG_CHECKS)
#if defined(NDEBUG)
#define SMPTREE_DEBUG_CHECKS 0
#else
#define SMPTREE_DEBUG_CHECKS 1
#endif
#endif

namespace smptree {
namespace debug {

[[noreturn]] inline void CheckFail(const char* file, int line,
                                   const char* expr, const char* msg) {
  std::fprintf(stderr, "%s:%d: invariant violated: %s (%s)\n", file, line,
               msg, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace debug
}  // namespace smptree

/// Asserts a concurrency invariant in debug builds; compiled out in release.
/// `msg` should name the violated protocol contract, not restate the
/// expression.
#if SMPTREE_DEBUG_CHECKS
#define SMPTREE_DCHECK(cond, msg)                                      \
  do {                                                                 \
    if (!(cond)) ::smptree::debug::CheckFail(__FILE__, __LINE__, #cond, msg); \
  } while (0)
#else
#define SMPTREE_DCHECK(cond, msg) ((void)0)
#endif

namespace smptree {
namespace debug {

#if SMPTREE_DEBUG_CHECKS

/// Detects overlap between "shared" operations (any number may run
/// concurrently) and "exclusive" operations (must be globally quiescent):
/// the between-barriers contracts of DynamicScheduler::Reset and
/// LevelStorage::AdvanceLevel, and the one-writer-per-attribute contract of
/// LevelStorage::AppendChild. One atomic word: low bits count shared
/// holders, the top bit marks an exclusive holder.
class SharedExclusiveCheck {
 public:
  constexpr SharedExclusiveCheck() = default;
  constexpr explicit SharedExclusiveCheck(const char* name) : name_(name) {}

  SharedExclusiveCheck(const SharedExclusiveCheck&) = delete;
  SharedExclusiveCheck& operator=(const SharedExclusiveCheck&) = delete;

  void EnterShared() {
    const uint64_t prev = word_.fetch_add(1, std::memory_order_acq_rel);
    if ((prev & kExclusiveBit) != 0) {
      Fail("shared operation entered while an exclusive operation runs");
    }
  }
  void ExitShared() { word_.fetch_sub(1, std::memory_order_acq_rel); }

  void EnterExclusive() {
    const uint64_t prev = word_.fetch_or(kExclusiveBit,
                                         std::memory_order_acq_rel);
    if (prev != 0) {
      Fail((prev & kExclusiveBit) != 0
               ? "two exclusive operations overlap"
               : "exclusive operation entered with shared holders in flight");
    }
  }
  void ExitExclusive() {
    word_.fetch_and(~kExclusiveBit, std::memory_order_acq_rel);
  }

 private:
  [[noreturn]] void Fail(const char* what) const {
    std::fprintf(stderr, "SharedExclusiveCheck(%s): %s\n", name_, what);
    std::fflush(stderr);
    std::abort();
  }

  static constexpr uint64_t kExclusiveBit = uint64_t{1} << 63;
  std::atomic<uint64_t> word_{0};
  const char* name_ = "region";
};

#else  // !SMPTREE_DEBUG_CHECKS

/// Release variant: every operation is a no-op the optimizer deletes.
class SharedExclusiveCheck {
 public:
  constexpr SharedExclusiveCheck() = default;
  constexpr explicit SharedExclusiveCheck(const char*) {}

  SharedExclusiveCheck(const SharedExclusiveCheck&) = delete;
  SharedExclusiveCheck& operator=(const SharedExclusiveCheck&) = delete;

  void EnterShared() {}
  void ExitShared() {}
  void EnterExclusive() {}
  void ExitExclusive() {}
};

#endif  // SMPTREE_DEBUG_CHECKS

/// RAII shared participation in a SharedExclusiveCheck region.
class SharedScope {
 public:
  explicit SharedScope(SharedExclusiveCheck& check) : check_(check) {
    check_.EnterShared();
  }
  ~SharedScope() { check_.ExitShared(); }

  SharedScope(const SharedScope&) = delete;
  SharedScope& operator=(const SharedScope&) = delete;

 private:
  SharedExclusiveCheck& check_;
};

/// RAII exclusive occupancy of a SharedExclusiveCheck region.
class ExclusiveScope {
 public:
  explicit ExclusiveScope(SharedExclusiveCheck& check) : check_(check) {
    check_.EnterExclusive();
  }
  ~ExclusiveScope() { check_.ExitExclusive(); }

  ExclusiveScope(const ExclusiveScope&) = delete;
  ExclusiveScope& operator=(const ExclusiveScope&) = delete;

 private:
  SharedExclusiveCheck& check_;
};

}  // namespace debug
}  // namespace smptree

#endif  // SMPTREE_UTIL_DEBUG_CHECKS_H_
