#include "util/random.h"

#include <cmath>

namespace smptree {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : s_) lane = SplitMix64(&sm);
}

uint64_t Random::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Random::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Random::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  have_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace smptree
