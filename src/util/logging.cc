#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "util/mutex.h"

namespace smptree {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_emit_mutex;  // serializes stderr lines; guards no data

const char* Tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?    ";
  }
}
}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << Tag(level_) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const auto now = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now().time_since_epoch())
                       .count();
  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "%lld %s\n", static_cast<long long>(now),
               stream_.str().c_str());
}

}  // namespace internal
}  // namespace smptree
