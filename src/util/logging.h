// Minimal leveled logger. Thread-safe; writes to stderr by default.
//
// Usage:
//   SMPTREE_LOG(kInfo) << "built level " << level << " with " << n << " leaves";
//
// The macro evaluates its stream expression only when the message level is
// at or above the global threshold, so verbose logging is free when disabled.

#ifndef SMPTREE_UTIL_LOGGING_H_
#define SMPTREE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace smptree {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Global log threshold; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (with level tag and timestamp) on
/// destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace smptree

#define SMPTREE_LOG(level)                                              \
  if (::smptree::LogLevel::level >= ::smptree::GetLogLevel())           \
  ::smptree::internal::LogMessage(::smptree::LogLevel::level, __FILE__, \
                                  __LINE__)                             \
      .stream()

#endif  // SMPTREE_UTIL_LOGGING_H_
