// Synchronization helpers used by the SMP builders.
//
// Barrier       - reusable counting barrier for a fixed participant count
//                 (the paper's per-phase and per-block barriers).
// CountdownGate - one-shot "N events then open" latch with waiters.
// SyncStats     - per-thread accounting of time spent blocked, used by the
//                 benchmarks to report synchronization overhead.

#ifndef SMPTREE_UTIL_BARRIER_H_
#define SMPTREE_UTIL_BARRIER_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace smptree {

/// Reusable counting barrier (sense-reversing via a generation counter).
/// All `participants` threads must call Wait(); the last one releases the
/// rest and the barrier is immediately reusable for the next phase.
class Barrier {
 public:
  explicit Barrier(int participants);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants arrive. Returns true for exactly one
  /// caller per phase (the "serial" thread, useful for master-only work).
  bool Wait();

  int participants() const { return participants_; }

 private:
  const int participants_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  std::mutex mutex_;
  std::condition_variable cv_;
};

/// One-shot latch: opens after `count` calls to CountDown(); Wait() blocks
/// until open.
class CountdownGate {
 public:
  explicit CountdownGate(int count);

  void CountDown();
  void Wait();
  bool IsOpen();

 private:
  int remaining_;
  std::mutex mutex_;
  std::condition_variable cv_;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_BARRIER_H_
