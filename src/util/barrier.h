// Synchronization helpers used by the SMP builders.
//
// Barrier       - reusable counting barrier for a fixed participant count
//                 (the paper's per-phase and per-block barriers).
// CountdownGate - one-shot "N events then open" latch with waiters.
//
// Both classes carry Clang thread-safety annotations (via the wrappers in
// util/mutex.h) and, in debug builds, barrier-epoch assertions: a barrier
// for P participants can never have more than P threads inside Wait() at
// once (a P+1st entry means a thread re-entered a phase its peers have not
// left -- a foreign thread, or a double Wait), and a released waiter must
// find itself exactly one generation ahead of where it went to sleep.

#ifndef SMPTREE_UTIL_BARRIER_H_
#define SMPTREE_UTIL_BARRIER_H_

#include <cstdint>

#include "util/debug_checks.h"
#include "util/mutex.h"

namespace smptree {

/// Reusable counting barrier (sense-reversing via a generation counter).
/// All `participants` threads must call Wait(); the last one releases the
/// rest and the barrier is immediately reusable for the next phase.
class Barrier {
 public:
  explicit Barrier(int participants);

  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  /// Blocks until all participants arrive. Returns true for exactly one
  /// caller per phase (the "serial" thread, useful for master-only work).
  bool Wait() EXCLUDES(mutex_);

  int participants() const { return participants_; }

 private:
  const int participants_;
  Mutex mutex_;
  CondVar cv_;
  int arrived_ GUARDED_BY(mutex_) = 0;
  uint64_t generation_ GUARDED_BY(mutex_) = 0;
#if SMPTREE_DEBUG_CHECKS
  int inside_ GUARDED_BY(mutex_) = 0;  ///< threads currently within Wait()
#endif
};

/// One-shot latch: opens after `count` calls to CountDown(); Wait() blocks
/// until open.
class CountdownGate {
 public:
  explicit CountdownGate(int count);

  void CountDown() EXCLUDES(mutex_);
  void Wait() EXCLUDES(mutex_);
  bool IsOpen() EXCLUDES(mutex_);

 private:
  Mutex mutex_;
  CondVar cv_;
  int remaining_ GUARDED_BY(mutex_);
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_BARRIER_H_
