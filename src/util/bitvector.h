// Fixed-size bit vector used as the global tid probe structure (paper
// section 3.2.1, option 2): one bit per training tuple, set while the
// winning attribute is scanned and consulted while the losing attribute
// lists are split.
//
// Concurrency contract: during the W phase distinct leaves own disjoint tid
// ranges, but two tids from different leaves can share a 64-bit word, so the
// setters use atomic RMW operations. Readers during the S phase run after
// the corresponding leaf's W completed (enforced by the builders), so plain
// loads are fine there; we still expose an atomic read used by MWK where W
// and S of different leaves overlap.

#ifndef SMPTREE_UTIL_BITVECTOR_H_
#define SMPTREE_UTIL_BITVECTOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace smptree {

/// Dense bit vector with atomic per-bit writes.
class BitVector {
 public:
  BitVector() = default;
  /// Creates a vector of `n` bits, all cleared.
  explicit BitVector(size_t n) { Resize(n); }

  /// Resizes to `n` bits; newly exposed bits are cleared.
  void Resize(size_t n);

  size_t size() const { return size_; }

  /// Sets bit `i` to `value` with a relaxed atomic RMW (safe for concurrent
  /// setters of different bits in the same word).
  void Set(size_t i, bool value);

  /// Non-atomic read (requires happens-before with the corresponding Set).
  bool Get(size_t i) const;

  /// Atomic (acquire) read for phases that overlap with setters of other
  /// leaves' bits.
  bool GetAtomic(size_t i) const;

  /// Hints the cache to load the word holding bit `i` (read intent, low
  /// temporal locality). Used by the split phase to prefetch probe bits a
  /// few records ahead of the lookup: tids arrive in attribute-value order,
  /// so consecutive lookups hit effectively random words.
  void Prefetch(size_t i) const {
    __builtin_prefetch(static_cast<const void*>(&words_[i >> 6]), 0, 1);
  }

  /// Clears all bits.
  void Clear();

  /// Number of set bits.
  size_t CountOnes() const;

 private:
  std::vector<std::atomic<uint64_t>> words_;
  size_t size_ = 0;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_BITVECTOR_H_
