// Annotated synchronization primitives: thin wrappers over std::mutex and
// std::condition_variable_any carrying the Clang thread-safety capability
// attributes (util/thread_annotations.h), so `-Wthread-safety` can verify
// the builders' locking protocols. libstdc++'s own types carry no
// annotations, which is the only reason these wrappers exist -- they add no
// behaviour.
//
// Usage pattern:
//   Mutex mu_;
//   int value_ GUARDED_BY(mu_);
//   CondVar cv_;
//   ...
//   MutexLock lock(mu_);            // scoped acquire
//   while (!ready_) cv_.Wait(mu_);  // releases+reacquires mu_
//
// CondVar wraps std::condition_variable_any so it can wait on the annotated
// Mutex directly (Mutex satisfies BasicLockable).

#ifndef SMPTREE_UTIL_MUTEX_H_
#define SMPTREE_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace smptree {

/// Annotated exclusive mutex. Lowercase lock/unlock/try_lock keep it a
/// standard Lockable so std::condition_variable_any can drive it.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for Mutex (the annotated counterpart of std::lock_guard).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable usable with the annotated Mutex. Wait() must be called
/// with the mutex held; it releases the mutex while blocked and reacquires
/// it before returning, like std::condition_variable::wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One bare wakeup-or-spurious wait; callers loop on their predicate.
  /// (The release+reacquire of `mu` happens inside condition_variable_any,
  /// which the analysis cannot see; to the caller the lock state is
  /// unchanged, which matches the REQUIRES contract.)
  void Wait(Mutex& mu) REQUIRES(mu) NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_MUTEX_H_
