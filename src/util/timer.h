// Wall-clock stopwatch used by the benchmark harnesses to reproduce the
// paper's build / setup / sort time breakdown.

#ifndef SMPTREE_UTIL_TIMER_H_
#define SMPTREE_UTIL_TIMER_H_

#include <chrono>

namespace smptree {

/// Monotonic stopwatch. Start() resets; Seconds() reads elapsed time without
/// stopping.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  /// Elapsed seconds since the last Start().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since the last Start().
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates elapsed time across multiple timed sections.
class AccumTimer {
 public:
  void Resume() { timer_.Start(); }
  void Pause() { total_ += timer_.Seconds(); }
  double Seconds() const { return total_; }
  void Reset() { total_ = 0.0; }

 private:
  Timer timer_;
  double total_ = 0.0;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_TIMER_H_
