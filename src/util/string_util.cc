#include "util/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace smptree {

std::string StringPrintf(const char* format, ...) {
  va_list ap;
  va_start(ap, format);
  va_list ap_copy;
  va_copy(ap_copy, ap);
  const int needed = std::vsnprintf(nullptr, 0, format, ap);
  va_end(ap);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, ap_copy);
  }
  va_end(ap_copy);
  return out;
}

std::vector<std::string> SplitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  s = TrimWhitespace(s);
  if (s.empty() || s[0] == '-') return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i) out.append(sep);
    out.append(items[i]);
  }
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return StringPrintf("%.1f %s", v, units[u]);
}

}  // namespace smptree
