// Deterministic, fast pseudo-random generator (xoshiro256**) used by the
// synthetic data generator and by tests. Not cryptographic.
//
// Determinism across platforms matters here: the benchmark datasets are
// reproduced from a seed, so the generator must not depend on libstdc++
// distribution internals. All sampling helpers are hand-rolled.

#ifndef SMPTREE_UTIL_RANDOM_H_
#define SMPTREE_UTIL_RANDOM_H_

#include <cstdint>

namespace smptree {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Random {
 public:
  /// Seeds the four 64-bit lanes from `seed` via splitmix64.
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform in [0, n) without modulo bias (n > 0).
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in the closed range [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Standard normal via Box-Muller (used for value perturbation).
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_RANDOM_H_
