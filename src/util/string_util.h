// String formatting / parsing helpers shared by CSV, tree serialization and
// the benchmark table printers.

#ifndef SMPTREE_UTIL_STRING_UTIL_H_
#define SMPTREE_UTIL_STRING_UTIL_H_

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace smptree {

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Splits `s` on `delim`; keeps empty fields.
std::vector<std::string> SplitString(std::string_view s, char delim);

/// Trims ASCII whitespace from both ends.
std::string_view TrimWhitespace(std::string_view s);

/// Parses a double; returns false on any trailing garbage.
bool ParseDouble(std::string_view s, double* out);

/// Parses a signed 64-bit integer; returns false on any trailing garbage.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses an unsigned 64-bit integer; returns false on sign or garbage.
bool ParseUint64(std::string_view s, uint64_t* out);

/// Joins items with `sep`.
std::string JoinStrings(const std::vector<std::string>& items,
                        std::string_view sep);

/// Human-readable byte count ("1.5 MB").
std::string HumanBytes(uint64_t bytes);

}  // namespace smptree

#endif  // SMPTREE_UTIL_STRING_UTIL_H_
