#include "util/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace smptree {

namespace trace_internal {
thread_local ThreadBuffer* t_buffer = nullptr;
}  // namespace trace_internal

trace_internal::ThreadBuffer* TraceRecorder::AttachThread(int tid) {
  auto buffer = std::make_unique<trace_internal::ThreadBuffer>();
  buffer->tid = tid;
  buffer->epoch = epoch_;
  trace_internal::ThreadBuffer* raw = buffer.get();
  MutexLock lock(mutex_);
  buffers_.push_back(std::move(buffer));
  return raw;
}

int TraceRecorder::num_threads() const {
  MutexLock lock(mutex_);
  return static_cast<int>(buffers_.size());
}

int TraceRecorder::thread_tid(int i) const {
  MutexLock lock(mutex_);
  return buffers_[static_cast<size_t>(i)]->tid;
}

const std::vector<TraceEvent>& TraceRecorder::thread_events(int i) const {
  MutexLock lock(mutex_);
  return buffers_[static_cast<size_t>(i)]->events;
}

size_t TraceRecorder::num_events() const {
  MutexLock lock(mutex_);
  size_t n = 0;
  for (const auto& b : buffers_) n += b->events.size();
  return n;
}

std::string TraceRecorder::ToChromeJson() const {
  MutexLock lock(mutex_);

  // Stable display order: sort buffers by builder tid so the Perfetto track
  // order matches thread ids regardless of attach order.
  std::vector<std::pair<int, size_t>> order;
  order.reserve(buffers_.size());
  size_t total_events = 0;
  for (size_t i = 0; i < buffers_.size(); ++i) {
    order.emplace_back(buffers_[i]->tid, i);
    total_events += buffers_[i]->events.size();
  }
  std::sort(order.begin(), order.end());

  std::string out;
  out.reserve(256 + 160 * total_events);

  char line[256];
  out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const auto& ord : order) {
    const trace_internal::ThreadBuffer& buf = *buffers_[ord.second];
    std::snprintf(line, sizeof(line),
                  "%s\n{\"ph\": \"M\", \"pid\": 1, \"tid\": %d, "
                  "\"name\": \"thread_name\", "
                  "\"args\": {\"name\": \"builder thread %d\"}}",
                  first ? "" : ",", buf.tid, buf.tid);
    first = false;
    out += line;
    for (const TraceEvent& ev : buf.events) {
      // Chrome trace timestamps are microseconds; keep ns resolution via the
      // fractional part.
      std::snprintf(line, sizeof(line),
                    ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": %d, "
                    "\"name\": \"%s\", \"cat\": \"%s\", "
                    "\"ts\": %.3f, \"dur\": %.3f, \"args\": {",
                    buf.tid, ev.name, ev.cat,
                    static_cast<double>(ev.ts_ns) / 1e3,
                    static_cast<double>(ev.dur_ns) / 1e3);
      out += line;
      if (ev.level >= 0) {
        std::snprintf(line, sizeof(line), "\"level\": %d%s", ev.level,
                      ev.arg >= 0 ? ", " : "");
        out += line;
      }
      if (ev.arg >= 0) {
        std::snprintf(line, sizeof(line), "\"arg\": %" PRId64, ev.arg);
        out += line;
      }
      out += "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

TraceThreadBinding::TraceThreadBinding(TraceRecorder* recorder, int tid)
    : saved_(trace_internal::t_buffer) {
  trace_internal::t_buffer =
      recorder != nullptr ? recorder->AttachThread(tid) : nullptr;
}

TraceThreadBinding::~TraceThreadBinding() {
  trace_internal::t_buffer = saved_;
}

}  // namespace smptree
