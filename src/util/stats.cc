#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace smptree {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

void BuildCounters::Reset() {
  // Quiescent-only (see header): the exclusive scope aborts a debug build if
  // any PhaseTimer / WaitTimer scope is in flight, and the relaxed stores
  // are safe exactly because the contract rules out concurrent fetch_adds.
  debug::ExclusiveScope quiescent(reset_check);
  barrier_waits.store(0, std::memory_order_relaxed);
  condvar_waits.store(0, std::memory_order_relaxed);
  records_scanned.store(0, std::memory_order_relaxed);
  records_split.store(0, std::memory_order_relaxed);
  attr_tasks.store(0, std::memory_order_relaxed);
  free_queue_rounds.store(0, std::memory_order_relaxed);
  wait_nanos.store(0, std::memory_order_relaxed);
  bins_scanned.store(0, std::memory_order_relaxed);
  e_nanos.store(0, std::memory_order_relaxed);
  w_nanos.store(0, std::memory_order_relaxed);
  s_nanos.store(0, std::memory_order_relaxed);
  h_nanos.store(0, std::memory_order_relaxed);
}

std::string BuildCounters::ToString() const {
  // Relaxed loads: ToString is a quiescent summary read (after the thread
  // team joined); the join provides the ordering, not the counters.
  const auto get = [](const std::atomic<uint64_t>& c) {
    return c.load(std::memory_order_relaxed);
  };
  std::ostringstream os;
  os << "barriers=" << get(barrier_waits) << " cv_waits=" << get(condvar_waits)
     << " scanned=" << get(records_scanned) << " split=" << get(records_split)
     << " tasks=" << get(attr_tasks) << " free_rounds=" << get(free_queue_rounds)
     << " bins=" << get(bins_scanned)
     << " wait_ms=" << static_cast<double>(get(wait_nanos)) / 1e6
     << " e_ms=" << static_cast<double>(get(e_nanos)) / 1e6
     << " w_ms=" << static_cast<double>(get(w_nanos)) / 1e6
     << " s_ms=" << static_cast<double>(get(s_nanos)) / 1e6
     << " h_ms=" << static_cast<double>(get(h_nanos)) / 1e6;
  return os.str();
}

namespace {
// Per-thread blocked-time ledger (monotone; never reset -- PhaseTimer only
// looks at deltas, so a fresh thread starting at an arbitrary base is fine).
thread_local uint64_t t_blocked_nanos = 0;
}  // namespace

uint64_t ThreadBlockedNanos() { return t_blocked_nanos; }

void AddThreadBlockedNanos(uint64_t nanos) { t_blocked_nanos += nanos; }

PhaseTimer::PhaseTimer(BuildCounters* counters, BuildPhase phase)
    : counters_(counters),
      phase_(phase),
      blocked_at_start_(ThreadBlockedNanos()),
      start_(std::chrono::steady_clock::now()) {
  counters_->reset_check.EnterShared();
}

PhaseTimer::~PhaseTimer() {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const uint64_t wall = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  // Blocked time this thread accrued inside the scope is already booked in
  // wait_nanos; subtract it so the phase counter is compute-only.
  const uint64_t blocked = ThreadBlockedNanos() - blocked_at_start_;
  const uint64_t compute = wall > blocked ? wall - blocked : 0;
  counters_->PhaseNanos(phase_).fetch_add(compute, std::memory_order_relaxed);
  counters_->reset_check.ExitShared();
}

}  // namespace smptree
