#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace smptree {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean() << " min=" << min()
     << " max=" << max() << " sd=" << stddev();
  return os.str();
}

void BuildCounters::Reset() {
  barrier_waits = 0;
  condvar_waits = 0;
  records_scanned = 0;
  records_split = 0;
  attr_tasks = 0;
  free_queue_rounds = 0;
  wait_nanos = 0;
  e_nanos = 0;
  w_nanos = 0;
  s_nanos = 0;
}

std::string BuildCounters::ToString() const {
  std::ostringstream os;
  os << "barriers=" << barrier_waits.load() << " cv_waits=" << condvar_waits.load()
     << " scanned=" << records_scanned.load() << " split=" << records_split.load()
     << " tasks=" << attr_tasks.load() << " free_rounds=" << free_queue_rounds.load()
     << " wait_ms=" << static_cast<double>(wait_nanos.load()) / 1e6;
  return os.str();
}

}  // namespace smptree
