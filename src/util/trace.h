// Lightweight per-thread event tracing for the parallel builders.
//
// The design goal is that tracing *off* costs one thread-local pointer load
// per span and tracing *on* costs one vector push_back per span -- no locks
// on the hot path, so a traced TSan run exercises the same interleavings as
// an untraced one. Each worker thread binds itself to a TraceRecorder with a
// TraceThreadBinding at the top of its body; TraceSpan then appends complete
// events ("X" phase in Chrome trace_event terms) to that thread's private
// buffer. The recorder only touches a mutex when a thread attaches and when
// the (quiescent) owner drains the buffers after the build.
//
// Consumers:
//   * TraceRecorder::ToChromeJson() -- a trace viewable in about:tracing or
//     https://ui.perfetto.dev (see docs/OBSERVABILITY.md).
//   * core/build_stats.h -- folds the same events into a per-thread
//     compute-vs-blocked summary.

#ifndef SMPTREE_UTIL_TRACE_H_
#define SMPTREE_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"

namespace smptree {

/// One completed span on one thread. `name` and `cat` must be string
/// literals (they are stored as pointers and serialized after the build).
struct TraceEvent {
  const char* name;  ///< e.g. "E", "W", "S", "barrier", "gate_wait".
  const char* cat;   ///< "phase" for compute spans, "wait" for blocked ones.
  int level;         ///< tree level the span belongs to, or -1.
  int64_t arg;       ///< optional payload (e.g. leaves processed), or -1.
  uint64_t ts_ns;    ///< start, nanoseconds since the recorder's epoch.
  uint64_t dur_ns;   ///< span duration in nanoseconds.
};

namespace trace_internal {

/// Private event buffer of one bound thread. Only the owning thread appends;
/// the recorder reads it after the thread team has joined.
struct ThreadBuffer {
  int tid = 0;
  std::chrono::steady_clock::time_point epoch;
  std::vector<TraceEvent> events;
};

/// Current thread's buffer; null when the thread is not bound to a recorder
/// (the common case -- every TraceSpan checks this first).
extern thread_local ThreadBuffer* t_buffer;

}  // namespace trace_internal

/// Collects the spans of one build. A recorder instance serves one build at
/// a time: bind the worker threads, run the build, join the team, then read.
///
/// Thread-compatibility contract: AttachThread() may be called concurrently
/// (it locks); the read accessors (num_threads / thread_tid / thread_events /
/// num_events / ToChromeJson) require quiescence -- call them only after
/// every TraceThreadBinding has been destroyed.
class TraceRecorder {
 public:
  TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Registers a new buffer for the calling thread and returns it. Called by
  /// TraceThreadBinding, not directly by builder code.
  trace_internal::ThreadBuffer* AttachThread(int tid) EXCLUDES(mutex_);

  /// Number of attached thread buffers (quiescent-only, see above).
  int num_threads() const EXCLUDES(mutex_);
  /// Builder thread id of the i-th buffer (quiescent-only).
  int thread_tid(int i) const EXCLUDES(mutex_);
  /// Events of the i-th buffer, in append (= start-time) order
  /// (quiescent-only).
  const std::vector<TraceEvent>& thread_events(int i) const EXCLUDES(mutex_);
  /// Total events across all buffers (quiescent-only).
  size_t num_events() const EXCLUDES(mutex_);

  /// Serializes every event as Chrome trace_event JSON ("X" complete events
  /// plus thread_name metadata), timestamps in microseconds relative to the
  /// recorder's construction (quiescent-only).
  std::string ToChromeJson() const EXCLUDES(mutex_);

 private:
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mutex_;
  std::vector<std::unique_ptr<trace_internal::ThreadBuffer>> buffers_
      GUARDED_BY(mutex_);
};

/// RAII binding of the calling thread to a recorder for the duration of a
/// builder body. A null recorder makes the binding (and every TraceSpan on
/// this thread) a no-op. Bindings nest: the destructor restores whatever
/// buffer was bound before, so a traced build can run inside another traced
/// scope without leaking the inner binding.
class TraceThreadBinding {
 public:
  TraceThreadBinding(TraceRecorder* recorder, int tid);
  ~TraceThreadBinding();

  TraceThreadBinding(const TraceThreadBinding&) = delete;
  TraceThreadBinding& operator=(const TraceThreadBinding&) = delete;

 private:
  trace_internal::ThreadBuffer* saved_;
};

/// RAII span: records [construction, destruction) on the bound thread's
/// buffer. `name` and `cat` must be string literals. Unbound threads pay one
/// thread_local load and nothing else.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat = "phase",
                     int level = -1, int64_t arg = -1)
      : buffer_(trace_internal::t_buffer) {
    if (buffer_ == nullptr) return;
    name_ = name;
    cat_ = cat;
    level_ = level;
    arg_ = arg;
    start_ = std::chrono::steady_clock::now();
  }

  ~TraceSpan() {
    if (buffer_ == nullptr) return;
    const auto end = std::chrono::steady_clock::now();
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.level = level_;
    ev.arg = arg_;
    ev.ts_ns = DeltaNanos(buffer_->epoch, start_);
    ev.dur_ns = DeltaNanos(start_, end);
    buffer_->events.push_back(ev);
  }

  /// Updates the span's payload before it closes (e.g. records scanned).
  void set_arg(int64_t arg) { arg_ = arg; }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static uint64_t DeltaNanos(std::chrono::steady_clock::time_point from,
                             std::chrono::steady_clock::time_point to) {
    if (to <= from) return 0;
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
            .count());
  }

  trace_internal::ThreadBuffer* buffer_;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  int level_ = -1;
  int64_t arg_ = -1;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_TRACE_H_
