// Status and Result<T>: exception-free error handling in the RocksDB style.
//
// Library functions that can fail return a Status (or a Result<T> when they
// also produce a value). A Status is cheap to copy in the OK case (no
// allocation) and carries a code plus a human-readable message otherwise.

#ifndef SMPTREE_UTIL_STATUS_H_
#define SMPTREE_UTIL_STATUS_H_

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace smptree {

/// Error category for a failed operation.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kCorruption,
  kNotSupported,
  kAborted,
  kInternal,
};

/// Outcome of an operation that can fail. OK statuses are free to create and
/// copy; error statuses allocate once for the message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }

  bool ok() const { return rep_ == nullptr; }
  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// Message attached at construction; empty for OK.
  std::string_view message() const {
    return rep_ ? std::string_view(rep_->message) : std::string_view();
  }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string_view msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::string(msg)})) {}

  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// A value or an error. Holds exactly one of the two; accessing the value of
/// an errored Result is a programming error (checked by assert).
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return 42;`.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status: `return Status::IOError(...)`.
  Result(Status status) : var_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(var_).ok() && "Result from OK status has no value");
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(var_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(var_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK Status to the caller.
#define SMPTREE_RETURN_IF_ERROR(expr)        \
  do {                                       \
    ::smptree::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns a Result's value to `lhs`, or propagates its error status.
#define SMPTREE_ASSIGN_OR_RETURN(lhs, expr)  \
  SMPTREE_ASSIGN_OR_RETURN_IMPL_(            \
      SMPTREE_CONCAT_(_res_, __LINE__), lhs, expr)

#define SMPTREE_CONCAT_INNER_(a, b) a##b
#define SMPTREE_CONCAT_(a, b) SMPTREE_CONCAT_INNER_(a, b)
#define SMPTREE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

}  // namespace smptree

#endif  // SMPTREE_UTIL_STATUS_H_
