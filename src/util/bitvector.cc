#include "util/bitvector.h"

#include <bit>

namespace smptree {

void BitVector::Resize(size_t n) {
  const size_t words = (n + 63) / 64;
  // std::atomic is not movable, so build a fresh array and copy word values.
  std::vector<std::atomic<uint64_t>> next(words);
  const size_t keep = std::min(words, words_.size());
  for (size_t i = 0; i < keep; ++i) {
    next[i].store(words_[i].load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  }
  words_ = std::move(next);
  size_ = n;
  // Mask stray bits past the new size in the last word.
  if (size_ % 64 != 0 && !words_.empty()) {
    const uint64_t mask = (uint64_t{1} << (size_ % 64)) - 1;
    words_.back().fetch_and(mask, std::memory_order_relaxed);
  }
}

void BitVector::Set(size_t i, bool value) {
  const uint64_t mask = uint64_t{1} << (i % 64);
  if (value) {
    words_[i / 64].fetch_or(mask, std::memory_order_relaxed);
  } else {
    words_[i / 64].fetch_and(~mask, std::memory_order_relaxed);
  }
}

bool BitVector::Get(size_t i) const {
  return (words_[i / 64].load(std::memory_order_relaxed) >> (i % 64)) & 1;
}

bool BitVector::GetAtomic(size_t i) const {
  return (words_[i / 64].load(std::memory_order_acquire) >> (i % 64)) & 1;
}

void BitVector::Clear() {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

size_t BitVector::CountOnes() const {
  size_t n = 0;
  for (const auto& w : words_) {
    n += static_cast<size_t>(
        std::popcount(w.load(std::memory_order_relaxed)));
  }
  return n;
}

}  // namespace smptree
