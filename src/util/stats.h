// Small statistics helpers for the benchmark harnesses: online accumulation
// of min/max/mean/stddev, and counters the builders export (synchronization
// waits, bytes moved through the storage layer, leaves processed).

#ifndef SMPTREE_UTIL_STATS_H_
#define SMPTREE_UTIL_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "util/debug_checks.h"

namespace smptree {

/// Welford online accumulator for a stream of doubles.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// The per-level build phases: the paper's E/W/S (evaluate splits, find
/// winners/build probe structures, split attribute lists) plus H, the
/// histogram-construction step of the binned engine (src/binned/), which
/// replaces the sorted engine's per-record E scans with per-leaf bin counts.
enum class BuildPhase : unsigned char { kEvaluate, kWinner, kSplit,
                                        kHistogram };

/// Counters a parallel build exports for the ablation benchmarks. All fields
/// are cumulative across threads and levels.
///
/// Accounting model: `wait_nanos` is the total *blocked* time booked by
/// WaitTimer / TimedBarrierWait; `e_nanos`/`w_nanos`/`s_nanos` are
/// *compute-only* -- PhaseTimer subtracts any blocked time its thread
/// accrued inside the phase scope, so the three phase counters and
/// wait_nanos partition a thread's busy time instead of double-counting it
/// (phase + wait <= wall x threads).
struct BuildCounters {
  std::atomic<uint64_t> barrier_waits{0};       ///< Barrier::Wait calls.
  std::atomic<uint64_t> condvar_waits{0};       ///< cond-var sleeps (MWK/SUBTREE).
  std::atomic<uint64_t> records_scanned{0};     ///< attribute records read in E.
  std::atomic<uint64_t> records_split{0};       ///< attribute records moved in S.
  std::atomic<uint64_t> attr_tasks{0};          ///< dynamic (leaf,attr) tasks taken.
  std::atomic<uint64_t> free_queue_rounds{0};   ///< SUBTREE FREE-queue cycles.
  std::atomic<uint64_t> wait_nanos{0};          ///< total blocked time (ns).
  /// Bin boundaries examined by the binned engine's split evaluation. This
  /// is the binned E-phase work unit: O(bins) per (leaf, attribute) instead
  /// of O(records), which the scan-counter assertions in binned_builder_test
  /// pin down. Always 0 for the sorted engine.
  std::atomic<uint64_t> bins_scanned{0};

  // Per-phase compute time across all threads (paper steps E, W, S plus the
  // binned engine's H), letting the benchmarks show e.g. how large a share
  // of BASIC's critical path the master-only W step is.
  std::atomic<uint64_t> e_nanos{0};
  std::atomic<uint64_t> w_nanos{0};
  std::atomic<uint64_t> s_nanos{0};
  std::atomic<uint64_t> h_nanos{0};

  /// Returns the counter for `phase`.
  std::atomic<uint64_t>& PhaseNanos(BuildPhase phase) {
    switch (phase) {
      case BuildPhase::kEvaluate: return e_nanos;
      case BuildPhase::kWinner: return w_nanos;
      case BuildPhase::kSplit: return s_nanos;
      case BuildPhase::kHistogram: return h_nanos;
    }
    return e_nanos;  // unreachable
  }

  /// Zeroes every counter. Quiescent-only, like DynamicScheduler::Reset:
  /// the caller must guarantee (typically via a barrier) that no thread is
  /// concurrently accumulating -- the stores are relaxed and would race with
  /// in-flight fetch_adds' expectations otherwise. Debug builds enforce the
  /// contract against PhaseTimer / WaitTimer / TimedBarrierWait scopes.
  void Reset();
  std::string ToString() const;

  /// Overlap detector for the Reset()-vs-accumulate contract. Accumulating
  /// RAII scopes (PhaseTimer, WaitTimer) hold it shared; Reset holds it
  /// exclusive. Compiled to nothing in release builds.
  debug::SharedExclusiveCheck reset_check{"BuildCounters::Reset"};
};

/// Blocked-time ledger of the calling thread: total nanoseconds this thread
/// has spent in WaitTimer / TimedBarrierWait scopes, ever. PhaseTimer diffs
/// it around a phase scope to subtract blocked time from the phase counter.
uint64_t ThreadBlockedNanos();

/// Adds `nanos` to the calling thread's blocked-time ledger. Called by the
/// wait primitives (WaitTimer, TimedBarrierWait); custom wait paths that
/// book into BuildCounters::wait_nanos directly must mirror the amount here,
/// or PhaseTimer will double-count their blocked time as compute.
void AddThreadBlockedNanos(uint64_t nanos);

/// RAII accumulator adding a scope's *compute* time to one phase counter:
/// wall time minus any blocked time the calling thread accrued inside the
/// scope (see the BuildCounters accounting model). Holds the counters'
/// reset_check shared for the duration of the scope.
class PhaseTimer {
 public:
  PhaseTimer(BuildCounters* counters, BuildPhase phase);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  BuildCounters* counters_;
  BuildPhase phase_;
  uint64_t blocked_at_start_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_STATS_H_
