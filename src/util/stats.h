// Small statistics helpers for the benchmark harnesses: online accumulation
// of min/max/mean/stddev, and counters the builders export (synchronization
// waits, bytes moved through the storage layer, leaves processed).

#ifndef SMPTREE_UTIL_STATS_H_
#define SMPTREE_UTIL_STATS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace smptree {

/// Welford online accumulator for a stream of doubles.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double min() const { return min_; }
  double max() const { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counters a parallel build exports for the ablation benchmarks. All fields
/// are cumulative across threads and levels.
struct BuildCounters {
  std::atomic<uint64_t> barrier_waits{0};       ///< Barrier::Wait calls.
  std::atomic<uint64_t> condvar_waits{0};       ///< cond-var sleeps (MWK/SUBTREE).
  std::atomic<uint64_t> records_scanned{0};     ///< attribute records read in E.
  std::atomic<uint64_t> records_split{0};       ///< attribute records moved in S.
  std::atomic<uint64_t> attr_tasks{0};          ///< dynamic (leaf,attr) tasks taken.
  std::atomic<uint64_t> free_queue_rounds{0};   ///< SUBTREE FREE-queue cycles.
  std::atomic<uint64_t> wait_nanos{0};          ///< total blocked time (ns).

  // Per-phase CPU time across all threads (paper steps E, W, S), letting
  // the benchmarks show e.g. how large a share of BASIC's critical path the
  // master-only W step is.
  std::atomic<uint64_t> e_nanos{0};
  std::atomic<uint64_t> w_nanos{0};
  std::atomic<uint64_t> s_nanos{0};

  void Reset();
  std::string ToString() const;
};

/// RAII accumulator adding a scope's wall time to one phase counter.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::atomic<uint64_t>* sink) : sink_(sink) {
    start_ = std::chrono::steady_clock::now();
  }
  ~PhaseTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()),
        std::memory_order_relaxed);
  }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::atomic<uint64_t>* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace smptree

#endif  // SMPTREE_UTIL_STATS_H_
