// Clang thread-safety-analysis macros (-Wthread-safety). Under Clang the
// annotations let the compiler statically verify the locking protocols the
// builders rely on (which field is protected by which mutex, which functions
// must -- or must not -- be called with a lock held). Under other compilers
// every macro expands to nothing.
//
// The std::mutex / std::condition_variable types shipped by libstdc++ carry
// no capability attributes, so the analysis cannot see through them; the
// annotated wrappers in util/mutex.h exist for exactly that reason and are
// what the lock-protected classes in this codebase use.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef SMPTREE_UTIL_THREAD_ANNOTATIONS_H_
#define SMPTREE_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define SMPTREE_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SMPTREE_THREAD_ANNOTATION_(x)
#endif

/// Marks a class as a lockable capability (e.g. a mutex type).
#define CAPABILITY(x) SMPTREE_THREAD_ANNOTATION_(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY SMPTREE_THREAD_ANNOTATION_(scoped_lockable)

/// Declares that a data member is protected by the given capability.
#define GUARDED_BY(x) SMPTREE_THREAD_ANNOTATION_(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member is protected by
/// the given capability (the pointer itself is not).
#define PT_GUARDED_BY(x) SMPTREE_THREAD_ANNOTATION_(pt_guarded_by(x))

/// The function may only be called while holding the capability exclusively.
#define REQUIRES(...) \
  SMPTREE_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the capability shared.
#define REQUIRES_SHARED(...) \
  SMPTREE_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) \
  SMPTREE_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  SMPTREE_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

/// The function releases the capability (which must be held on entry).
#define RELEASE(...) \
  SMPTREE_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  SMPTREE_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  SMPTREE_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the capability
/// (deadlock-prevention annotation for self-locking public methods).
#define EXCLUDES(...) SMPTREE_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function checks at runtime that the capability is held.
#define ASSERT_CAPABILITY(x) SMPTREE_THREAD_ANNOTATION_(assert_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) SMPTREE_THREAD_ANNOTATION_(lock_returned(x))

/// Opts a function out of the analysis (false-positive escape hatch; every
/// use should carry a comment explaining why the analysis cannot see the
/// synchronization).
#define NO_THREAD_SAFETY_ANALYSIS \
  SMPTREE_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // SMPTREE_UTIL_THREAD_ANNOTATIONS_H_
