#include "util/barrier.h"

#include <cassert>

namespace smptree {

Barrier::Barrier(int participants) : participants_(participants) {
  assert(participants > 0);
}

bool Barrier::Wait() {
  MutexLock lock(mutex_);
#if SMPTREE_DEBUG_CHECKS
  ++inside_;
  SMPTREE_DCHECK(inside_ <= participants_,
                 "barrier epoch violation: a thread entered a barrier phase "
                 "its peers have not left (more threads inside Wait than "
                 "participants)");
#endif
  const uint64_t my_generation = generation_;
  if (++arrived_ == participants_) {
    arrived_ = 0;
    ++generation_;
    cv_.NotifyAll();
#if SMPTREE_DEBUG_CHECKS
    --inside_;
#endif
    return true;
  }
  while (generation_ == my_generation) cv_.Wait(mutex_);
  SMPTREE_DCHECK(generation_ == my_generation + 1,
                 "barrier epoch violation: a waiter slept through more than "
                 "one phase (generation advanced twice before it woke)");
#if SMPTREE_DEBUG_CHECKS
  --inside_;
#endif
  return false;
}

CountdownGate::CountdownGate(int count) : remaining_(count) {
  assert(count >= 0);
}

void CountdownGate::CountDown() {
  MutexLock lock(mutex_);
  SMPTREE_DCHECK(remaining_ > 0,
                 "CountdownGate::CountDown called more times than the gate's "
                 "initial count");
  if (--remaining_ == 0) cv_.NotifyAll();
}

void CountdownGate::Wait() {
  MutexLock lock(mutex_);
  while (remaining_ != 0) cv_.Wait(mutex_);
}

bool CountdownGate::IsOpen() {
  MutexLock lock(mutex_);
  return remaining_ == 0;
}

}  // namespace smptree
