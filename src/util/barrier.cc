#include "util/barrier.h"

#include <cassert>

namespace smptree {

Barrier::Barrier(int participants) : participants_(participants) {
  assert(participants > 0);
}

bool Barrier::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  const uint64_t my_generation = generation_;
  if (++arrived_ == participants_) {
    arrived_ = 0;
    ++generation_;
    cv_.notify_all();
    return true;
  }
  cv_.wait(lock, [&] { return generation_ != my_generation; });
  return false;
}

CountdownGate::CountdownGate(int count) : remaining_(count) {
  assert(count >= 0);
}

void CountdownGate::CountDown() {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(remaining_ > 0);
  if (--remaining_ == 0) cv_.notify_all();
}

void CountdownGate::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return remaining_ == 0; });
}

bool CountdownGate::IsOpen() {
  std::lock_guard<std::mutex> lock(mutex_);
  return remaining_ == 0;
}

}  // namespace smptree
