// Online cut-point learning for the streaming builder: a bounded-memory
// counterpart of binned/quantizer.h. Each continuous attribute keeps a
// fixed-size uniform reservoir of observed values (algorithm R); once enough
// of the stream has been seen, Freeze() turns the reservoirs into
// quantile-spaced cut points and the quantizer becomes immutable -- from
// then on it exposes the exact surface the binned evaluators expect
// (num_bins / offset / cut / BinOf) under the same invariant:
//
//   bin(v) = #{ cuts c : c <= v }    so    bin(v) <= i  <=>  v < cuts[i]
//
// Cuts are real observed values, so the finished tree carries ordinary
// `value < threshold` SplitTests and the serving path never sees a bin.
// Categorical attributes map code -> bin exactly, as in the batch engine.
//
// Freezing the cuts once (rather than re-deriving them as the stream
// drifts) keeps every LeafHistogram comparable across the whole run; the
// cost is that cut placement reflects the warmup prefix, which the
// reservoir's uniform sampling makes representative for stationary streams.

#ifndef SMPTREE_STREAM_SKETCH_QUANTIZER_H_
#define SMPTREE_STREAM_SKETCH_QUANTIZER_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"
#include "util/random.h"
#include "util/status.h"

namespace smptree {

/// Reservoir-sketch quantizer. Not thread-safe; one owner thread observes
/// and freezes, after which the const surface is safe to share read-only.
class SketchQuantizer {
 public:
  struct Options {
    int max_bins = 64;        ///< bins per continuous attribute, in [2, 256]
    int reservoir_size = 2048;  ///< samples kept per continuous attribute
    uint64_t seed = 1;        ///< reservoir replacement randomness
  };

  /// Sizes the reservoirs for `schema`. Categorical cardinalities must fit
  /// the uint8 bin space (<= 256), as in the batch quantizer.
  Status Init(const Schema& schema, const Options& options);

  /// Feeds one tuple's values into the reservoirs. No-op once frozen.
  void Observe(const TupleValues& values);

  /// Derives cuts from the reservoirs and fixes the bin layout. Idempotent;
  /// fails if Init has not run. Attributes with an empty reservoir get a
  /// single bin (no cuts), which simply yields no split candidates.
  Status Freeze();

  bool frozen() const { return frozen_; }
  int64_t observed() const { return observed_; }

  /// Reservoir + cut storage actually held, for the /statz memory line.
  uint64_t MemoryBytes() const;

  // Quantizer-compatible surface (valid after Freeze).
  int num_attrs() const { return static_cast<int>(attrs_.size()); }
  bool categorical(int attr) const { return attrs_[attr].categorical; }
  int num_bins(int attr) const { return attrs_[attr].num_bins; }
  int num_cuts(int attr) const {
    return static_cast<int>(attrs_[attr].cuts.size());
  }
  float cut(int attr, int i) const { return attrs_[attr].cuts[i]; }
  int offset(int attr) const { return attrs_[attr].offset; }
  int total_bins() const { return total_bins_; }

  uint8_t BinOf(int attr, AttrValue v) const {
    const AttrSketch& a = attrs_[attr];
    if (a.categorical) return static_cast<uint8_t>(v.cat);
    return static_cast<uint8_t>(
        std::upper_bound(a.cuts.begin(), a.cuts.end(), v.f) - a.cuts.begin());
  }

 private:
  struct AttrSketch {
    bool categorical = false;
    int num_bins = 0;
    int offset = 0;
    std::vector<float> reservoir;  ///< cleared by Freeze
    std::vector<float> cuts;       ///< ascending; empty for categorical
  };

  std::vector<AttrSketch> attrs_;
  Options options_;
  Random rng_{1};
  int64_t observed_ = 0;
  int total_bins_ = 0;
  bool initialized_ = false;
  bool frozen_ = false;
};

}  // namespace smptree

#endif  // SMPTREE_STREAM_SKETCH_QUANTIZER_H_
