#include "stream/sketch_quantizer.h"

#include <algorithm>

#include "util/string_util.h"

namespace smptree {

Status SketchQuantizer::Init(const Schema& schema, const Options& options) {
  SMPTREE_RETURN_IF_ERROR(schema.Validate());
  if (options.max_bins < 2 || options.max_bins > 256) {
    return Status::InvalidArgument(StringPrintf(
        "max_bins %d outside [2, 256]", options.max_bins));
  }
  if (options.reservoir_size < options.max_bins) {
    return Status::InvalidArgument(StringPrintf(
        "reservoir_size %d below max_bins %d", options.reservoir_size,
        options.max_bins));
  }
  attrs_.assign(static_cast<size_t>(schema.num_attrs()), AttrSketch());
  for (int a = 0; a < schema.num_attrs(); ++a) {
    AttrSketch& sketch = attrs_[static_cast<size_t>(a)];
    if (schema.attr(a).is_categorical()) {
      if (schema.attr(a).cardinality > 256) {
        return Status::InvalidArgument(StringPrintf(
            "categorical attribute %d has cardinality %d > 256", a,
            schema.attr(a).cardinality));
      }
      sketch.categorical = true;
      sketch.num_bins = schema.attr(a).cardinality;
    } else {
      sketch.reservoir.reserve(static_cast<size_t>(options.reservoir_size));
    }
  }
  options_ = options;
  rng_ = Random(options.seed);
  observed_ = 0;
  total_bins_ = 0;
  initialized_ = true;
  frozen_ = false;
  return Status::OK();
}

void SketchQuantizer::Observe(const TupleValues& values) {
  if (!initialized_ || frozen_) return;
  const size_t cap = static_cast<size_t>(options_.reservoir_size);
  for (size_t a = 0; a < attrs_.size(); ++a) {
    AttrSketch& sketch = attrs_[a];
    if (sketch.categorical) continue;
    const float v = values[a].f;
    if (sketch.reservoir.size() < cap) {
      sketch.reservoir.push_back(v);
    } else {
      // Algorithm R: keep each of the n values seen with probability cap/n.
      const uint64_t j = rng_.Uniform(static_cast<uint64_t>(observed_) + 1);
      if (j < cap) sketch.reservoir[static_cast<size_t>(j)] = v;
    }
  }
  ++observed_;
}

Status SketchQuantizer::Freeze() {
  if (!initialized_) {
    return Status::InvalidArgument("SketchQuantizer::Freeze before Init");
  }
  if (frozen_) return Status::OK();
  int offset = 0;
  for (AttrSketch& sketch : attrs_) {
    sketch.offset = offset;
    if (sketch.categorical) {
      offset += sketch.num_bins;
      continue;
    }
    std::sort(sketch.reservoir.begin(), sketch.reservoir.end());
    sketch.cuts.clear();
    const int64_t n = static_cast<int64_t>(sketch.reservoir.size());
    if (n > 1) {
      // Quantile-spaced cuts at observed values; bin(v) counts cuts <= v,
      // so dedup keeps the invariant exact when quantiles collide.
      for (int i = 1; i < options_.max_bins; ++i) {
        const int64_t pos = i * n / options_.max_bins;
        if (pos <= 0 || pos >= n) continue;
        const float c = sketch.reservoir[static_cast<size_t>(pos)];
        if (sketch.cuts.empty() || c > sketch.cuts.back()) {
          sketch.cuts.push_back(c);
        }
      }
    }
    sketch.num_bins = static_cast<int>(sketch.cuts.size()) + 1;
    sketch.reservoir.clear();
    sketch.reservoir.shrink_to_fit();
    offset += sketch.num_bins;
  }
  total_bins_ = offset;
  frozen_ = true;
  return Status::OK();
}

uint64_t SketchQuantizer::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const AttrSketch& sketch : attrs_) {
    bytes += (sketch.reservoir.capacity() + sketch.cuts.capacity()) *
             sizeof(float);
  }
  return bytes;
}

}  // namespace smptree
