// Fixed-width binary shard format for streaming sources: a whole Dataset
// written column-major as raw little-endian-native bytes, so a disk stream
// can page shards in with one sequential read per column and no per-value
// parsing (the CSV path stays available for interchange; this format is
// scratch/throughput storage local to one machine, like the attribute-list
// files in core/).
//
// Layout: 8-byte magic "smpshrd1", int32 num_attrs, int32 num_classes,
// int64 num_tuples, then each attribute column as num_tuples * 4 raw
// AttrValue bytes, then the label column as num_tuples * 2 bytes.

#ifndef SMPTREE_STREAM_SHARD_IO_H_
#define SMPTREE_STREAM_SHARD_IO_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace smptree {

/// Writes `data` as one binary shard at `path` (real filesystem).
Status WriteBinaryShard(const Dataset& data, const std::string& path);

/// Reads a shard written by WriteBinaryShard. The header's attribute and
/// class counts are validated against `schema`; categorical codes and labels
/// are range-checked by Dataset::Append.
Result<Dataset> ReadBinaryShard(const Schema& schema, const std::string& path);

}  // namespace smptree

#endif  // SMPTREE_STREAM_SHARD_IO_H_
