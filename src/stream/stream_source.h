// Streaming input for the incremental builder: a StreamSource hands out
// bounded batches of (tuple, label) pairs from an unbounded or out-of-core
// input. Two implementations:
//
//  - SyntheticStreamSource wraps the Agrawal generator (data/synthetic.h)
//    tuple-for-tuple, so a stream and a materialized GenerateSynthetic
//    dataset with the same seed agree exactly -- the accuracy-vs-batch
//    comparisons in bench/stream_throughput depend on that.
//  - DiskStreamSource pages sharded CSV or binary (stream/shard_io.h) files
//    through a double buffer: a background reader thread loads shard k+1
//    while the consumer drains shard k, so the builder thread never blocks
//    on disk unless it outruns the reader.
//
// Contract for implementations: NextBatch runs on the builder thread and
// must not perform blocking I/O itself -- disk work belongs on the reader
// side of the double buffer (the ReaderLoop seam; smptree_lint's
// stream-source-blocking-io check enforces this convention).

#ifndef SMPTREE_STREAM_STREAM_SOURCE_H_
#define SMPTREE_STREAM_STREAM_SOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"

namespace smptree {

/// One delivered chunk of stream input, row-wise (the incremental builder
/// routes tuple by tuple, so there is no columnar rearrangement to pay for).
struct StreamBatch {
  std::vector<TupleValues> tuples;
  std::vector<ClassLabel> labels;

  void Clear() {
    tuples.clear();
    labels.clear();
  }
  int64_t size() const { return static_cast<int64_t>(tuples.size()); }
};

/// Pull interface over an ordered tuple stream. Not thread-safe: one
/// consumer thread calls NextBatch.
class StreamSource {
 public:
  virtual ~StreamSource() = default;

  virtual const Schema& schema() const = 0;

  /// Clears `batch` and refills it with up to `max_tuples` tuples. Returns
  /// the number delivered; 0 means the stream is exhausted. Must not block
  /// on I/O (see file comment).
  virtual Result<int64_t> NextBatch(int64_t max_tuples, StreamBatch* batch) = 0;
};

/// Unbounded (or limited) Agrawal generator stream.
class SyntheticStreamSource : public StreamSource {
 public:
  /// `config.num_tuples` is the stream length; 0 means unbounded (the
  /// caller stops by tuple budget).
  explicit SyntheticStreamSource(const SyntheticConfig& config);

  const Schema& schema() const override { return schema_; }
  Result<int64_t> NextBatch(int64_t max_tuples, StreamBatch* batch) override;

 private:
  const Schema schema_;
  const int function_;
  const double label_noise_;
  const int64_t limit_;  ///< 0 = unbounded
  Random rng_;
  int64_t emitted_ = 0;
  TupleValues scratch_;
};

/// Sharded on-disk stream with double-buffered read-ahead. Shards ending in
/// ".csv" parse as CSV; everything else reads as binary shards
/// (stream/shard_io.h). Shards are delivered in the order given.
class DiskStreamSource : public StreamSource {
 public:
  /// Validates inputs and starts the reader thread; does not wait for the
  /// first shard (the first NextBatch does).
  static Result<std::unique_ptr<DiskStreamSource>> Open(
      const Schema& schema, std::vector<std::string> shard_paths);

  ~DiskStreamSource() override;

  const Schema& schema() const override { return schema_; }
  Result<int64_t> NextBatch(int64_t max_tuples, StreamBatch* batch) override;

 private:
  DiskStreamSource(const Schema& schema,
                   std::vector<std::string> shard_paths);

  /// Background thread: loads shards one ahead of the consumer and parks
  /// them in the ready slot. This is the blocking-I/O seam -- all disk reads
  /// happen here, never on the consumer thread.
  void ReaderLoop();

  const Schema schema_;
  const std::vector<std::string> shards_;

  Mutex mu_;
  CondVar cv_;
  bool ready_valid_ GUARDED_BY(mu_) = false;
  Dataset ready_ GUARDED_BY(mu_);
  Status reader_status_ GUARDED_BY(mu_);  ///< first shard load failure
  bool reader_done_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;

  // Consumer-thread state: only NextBatch touches these, after the swap
  // under mu_ completes, so they need no lock of their own.
  Dataset current_;    // lint: unguarded(consumer-thread only, see above)
  int64_t current_pos_ = 0;  // lint: unguarded(consumer-thread only)

  std::thread reader_;  // lint: unguarded(set once in Open, joined in dtor)
};

}  // namespace smptree

#endif  // SMPTREE_STREAM_STREAM_SOURCE_H_
