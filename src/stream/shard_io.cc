#include "stream/shard_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/string_util.h"

namespace smptree {

namespace {

constexpr char kMagic[8] = {'s', 'm', 'p', 's', 'h', 'r', 'd', '1'};

}  // namespace

Status WriteBinaryShard(const Dataset& data, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IOError(StringPrintf("cannot open %s", path.c_str()));
  }
  const int32_t num_attrs = data.num_attrs();
  const int32_t num_classes = data.num_classes();
  const int64_t num_tuples = data.num_tuples();
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&num_attrs), sizeof(num_attrs));
  out.write(reinterpret_cast<const char*>(&num_classes), sizeof(num_classes));
  out.write(reinterpret_cast<const char*>(&num_tuples), sizeof(num_tuples));
  for (int a = 0; a < num_attrs; ++a) {
    const std::span<const AttrValue> col = data.column(a);
    out.write(reinterpret_cast<const char*>(col.data()),
              static_cast<std::streamsize>(col.size() * sizeof(AttrValue)));
  }
  const std::span<const ClassLabel> labels = data.labels();
  out.write(reinterpret_cast<const char*>(labels.data()),
            static_cast<std::streamsize>(labels.size() * sizeof(ClassLabel)));
  if (!out.flush()) {
    return Status::IOError(StringPrintf("write failed for %s", path.c_str()));
  }
  return Status::OK();
}

Result<Dataset> ReadBinaryShard(const Schema& schema,
                                const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError(StringPrintf("cannot open %s", path.c_str()));
  }
  char magic[8];
  int32_t num_attrs = 0;
  int32_t num_classes = 0;
  int64_t num_tuples = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&num_attrs), sizeof(num_attrs));
  in.read(reinterpret_cast<char*>(&num_classes), sizeof(num_classes));
  in.read(reinterpret_cast<char*>(&num_tuples), sizeof(num_tuples));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption(
        StringPrintf("%s is not a binary shard (bad magic)", path.c_str()));
  }
  if (num_attrs != schema.num_attrs() ||
      num_classes != schema.num_classes()) {
    return Status::InvalidArgument(StringPrintf(
        "%s has %d attrs x %d classes, schema expects %d x %d", path.c_str(),
        num_attrs, num_classes, schema.num_attrs(), schema.num_classes()));
  }
  if (num_tuples < 0) {
    return Status::Corruption(
        StringPrintf("%s has negative tuple count", path.c_str()));
  }

  std::vector<std::vector<AttrValue>> columns(
      static_cast<size_t>(num_attrs));
  for (int a = 0; a < num_attrs; ++a) {
    columns[static_cast<size_t>(a)].resize(static_cast<size_t>(num_tuples));
    in.read(reinterpret_cast<char*>(columns[static_cast<size_t>(a)].data()),
            static_cast<std::streamsize>(static_cast<size_t>(num_tuples) *
                                         sizeof(AttrValue)));
  }
  std::vector<ClassLabel> labels(static_cast<size_t>(num_tuples));
  in.read(reinterpret_cast<char*>(labels.data()),
          static_cast<std::streamsize>(static_cast<size_t>(num_tuples) *
                                       sizeof(ClassLabel)));
  if (!in) {
    return Status::Corruption(
        StringPrintf("%s is truncated", path.c_str()));
  }

  Dataset data(schema);
  data.Reserve(num_tuples);
  TupleValues values(static_cast<size_t>(num_attrs));
  for (int64_t t = 0; t < num_tuples; ++t) {
    for (int a = 0; a < num_attrs; ++a) {
      values[static_cast<size_t>(a)] =
          columns[static_cast<size_t>(a)][static_cast<size_t>(t)];
    }
    SMPTREE_RETURN_IF_ERROR(
        data.Append(values, labels[static_cast<size_t>(t)]));
  }
  return data;
}

}  // namespace smptree
