#include "stream/stream_source.h"

#include <utility>

#include "data/csv.h"
#include "stream/shard_io.h"
#include "util/string_util.h"

namespace smptree {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

// ------------------------------------------------------- SyntheticStream

SyntheticStreamSource::SyntheticStreamSource(const SyntheticConfig& config)
    : schema_(SyntheticSchema(config.num_attrs)),
      function_(config.function),
      label_noise_(config.label_noise),
      limit_(config.num_tuples),
      rng_(config.seed),
      scratch_(static_cast<size_t>(config.num_attrs)) {}

Result<int64_t> SyntheticStreamSource::NextBatch(int64_t max_tuples,
                                                 StreamBatch* batch) {
  batch->Clear();
  if (function_ < 1 || function_ > NumSyntheticFunctions()) {
    return Status::InvalidArgument(StringPrintf(
        "classification function %d outside 1..10", function_));
  }
  int64_t want = max_tuples;
  if (limit_ > 0) want = std::min(want, limit_ - emitted_);
  if (want <= 0) return int64_t{0};
  batch->tuples.reserve(static_cast<size_t>(want));
  batch->labels.reserve(static_cast<size_t>(want));
  for (int64_t i = 0; i < want; ++i) {
    const ClassLabel label = GenerateSyntheticTuple(
        schema_, function_, label_noise_, &rng_, &scratch_);
    batch->tuples.push_back(scratch_);
    batch->labels.push_back(label);
  }
  emitted_ += want;
  return want;
}

// ------------------------------------------------------------ DiskStream

Result<std::unique_ptr<DiskStreamSource>> DiskStreamSource::Open(
    const Schema& schema, std::vector<std::string> shard_paths) {
  SMPTREE_RETURN_IF_ERROR(schema.Validate());
  if (shard_paths.empty()) {
    return Status::InvalidArgument("no shard paths");
  }
  // No I/O here: missing files surface as a reader_status_ from the first
  // NextBatch, keeping Open non-blocking.
  return std::unique_ptr<DiskStreamSource>(
      new DiskStreamSource(schema, std::move(shard_paths)));
}

DiskStreamSource::DiskStreamSource(const Schema& schema,
                                   std::vector<std::string> shard_paths)
    : schema_(schema), shards_(std::move(shard_paths)) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

DiskStreamSource::~DiskStreamSource() {
  {
    MutexLock lock(mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  if (reader_.joinable()) reader_.join();
}

void DiskStreamSource::ReaderLoop() {
  for (const std::string& path : shards_) {
    {
      MutexLock lock(mu_);
      if (stop_) return;
    }
    // Blocking load, deliberately outside the lock: the consumer keeps
    // draining the previous shard while this one reads.
    Result<Dataset> shard = EndsWith(path, ".csv")
                                ? ReadCsv(schema_, path)
                                : ReadBinaryShard(schema_, path);
    MutexLock lock(mu_);
    if (!shard.ok()) {
      reader_status_ = shard.status();
      reader_done_ = true;
      cv_.NotifyAll();
      return;
    }
    while (ready_valid_ && !stop_) cv_.Wait(mu_);
    if (stop_) return;
    ready_ = std::move(*shard);
    ready_valid_ = true;
    cv_.NotifyAll();
  }
  MutexLock lock(mu_);
  reader_done_ = true;
  cv_.NotifyAll();
}

Result<int64_t> DiskStreamSource::NextBatch(int64_t max_tuples,
                                            StreamBatch* batch) {
  batch->Clear();
  int64_t delivered = 0;
  while (delivered < max_tuples) {
    if (current_pos_ >= current_.num_tuples()) {
      // Swap in the prefetched shard (waits only if the consumer outran the
      // reader).
      MutexLock lock(mu_);
      while (!ready_valid_ && !reader_done_) cv_.Wait(mu_);
      if (!ready_valid_) {
        // No more shards are coming. Surface the sticky reader error only
        // after everything already read has been delivered (the reader may
        // have failed on shard N+1 while shard N was still in flight), so
        // no tuples are silently dropped.
        if (reader_status_.ok() || delivered > 0) break;
        return reader_status_;
      }
      current_ = std::move(ready_);
      ready_ = Dataset();
      ready_valid_ = false;
      current_pos_ = 0;
      cv_.NotifyAll();  // free the slot for the next read-ahead
      continue;
    }
    const int64_t take = std::min(max_tuples - delivered,
                                  current_.num_tuples() - current_pos_);
    for (int64_t i = 0; i < take; ++i) {
      batch->tuples.push_back(current_.Tuple(current_pos_ + i));
      batch->labels.push_back(current_.label(current_pos_ + i));
    }
    current_pos_ += take;
    delivered += take;
  }
  return delivered;
}

}  // namespace smptree
