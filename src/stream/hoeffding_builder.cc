#include "stream/hoeffding_builder.h"

#include <cmath>
#include <span>
#include <utility>

#include "core/tree_io.h"
#include "util/string_util.h"

namespace smptree {

namespace {

/// E for one (leaf, attr) of the streaming frontier: the same sweep as the
/// batch engine's EvaluateBinnedLeafAttr, against the frozen sketch's cuts.
/// `n_total` is the leaf's observed tuple count (== hist.Total()).
void EvaluateStreamLeafAttr(const SketchQuantizer& sketch,
                            const LeafHistogram& bins,
                            const ClassHistogram& hist, int64_t n_total,
                            int attr, const GiniOptions& gini,
                            GiniScratch* scratch, SplitCandidate* out,
                            int* out_bin) {
  const int off = sketch.offset(attr);
  const int nbins = sketch.num_bins(attr);
  const int num_classes = hist.num_classes();
  *out = SplitCandidate();
  *out_bin = -1;

  if (sketch.categorical(attr)) {
    CountMatrix& matrix = scratch->matrix;
    matrix.Reset(nbins, num_classes);
    for (int b = 0; b < nbins; ++b) {
      const std::span<const int64_t> row = bins.row(off + b);
      for (int c = 0; c < num_classes; ++c) {
        if (row[c] != 0) matrix.AddCount(b, c, row[c]);
      }
    }
    *out = EvaluateCategoricalFromMatrix(attr, matrix, hist, gini, scratch);
    return;
  }

  ClassHistogram& below = scratch->below;
  ClassHistogram& above = scratch->above;
  below.Reset(num_classes);
  above = hist;
  int64_t nl = 0;
  SplitCandidate best;
  int best_bin = -1;
  for (int b = 0; b + 1 < nbins; ++b) {
    const std::span<const int64_t> row = bins.row(off + b);
    for (int c = 0; c < num_classes; ++c) {
      if (row[c] == 0) continue;
      below.Add(static_cast<ClassLabel>(c), row[c]);
      above.Remove(static_cast<ClassLabel>(c), row[c]);
      nl += row[c];
    }
    if (nl == 0) continue;     // nothing left of this cut yet
    if (nl == n_total) break;  // all records left: no proper split remains
    SplitCandidate candidate;
    candidate.test.attr = attr;
    candidate.test.threshold = sketch.cut(attr, b);
    candidate.gini = SplitImpurityWithTotals(below, above, nl, n_total - nl,
                                             gini.criterion);
    candidate.left_count = nl;
    candidate.right_count = n_total - nl;
    if (candidate.BetterThan(best)) {
      best = candidate;
      best_bin = b;
    }
  }
  *out = best;
  *out_bin = best_bin;
}

/// Majority with ClassHistogram::Majority's tie rule (lowest label wins).
ClassLabel MajorityOf(const std::vector<int64_t>& counts) {
  ClassLabel best = 0;
  int64_t best_count = counts.empty() ? 0 : counts[0];
  for (size_t c = 1; c < counts.size(); ++c) {
    if (counts[c] > best_count) {
      best_count = counts[c];
      best = static_cast<ClassLabel>(c);
    }
  }
  return best;
}

}  // namespace

HoeffdingTreeBuilder::HoeffdingTreeBuilder(const Schema& schema,
                                           HoeffdingOptions options)
    : schema_(schema), options_(std::move(options)), tree_(schema) {}

Status HoeffdingTreeBuilder::Init() {
  if (initialized_) return Status::InvalidArgument("Init called twice");
  if (options_.delta <= 0.0 || options_.delta >= 1.0) {
    return Status::InvalidArgument("delta outside (0, 1)");
  }
  if (options_.tau < 0.0) {
    return Status::InvalidArgument("negative tau");
  }
  if (options_.grace_period < 1) {
    return Status::InvalidArgument("grace_period must be >= 1");
  }
  if (options_.warmup_tuples < 0) {
    return Status::InvalidArgument("negative warmup_tuples");
  }
  SketchQuantizer::Options sketch_options;
  sketch_options.max_bins = options_.max_bins;
  sketch_options.reservoir_size = options_.reservoir_size;
  sketch_options.seed = options_.seed;
  SMPTREE_RETURN_IF_ERROR(sketch_.Init(schema_, sketch_options));

  tree_.CreateRoot(ClassHistogram(schema_.num_classes()));
  initialized_ = true;
  const int root_slot = NewLeafSlot(tree_.root());
  (void)root_slot;
  if (options_.warmup_tuples == 0) {
    SMPTREE_RETURN_IF_ERROR(FreezeAndReplay());
  }
  return Status::OK();
}

Status HoeffdingTreeBuilder::Ingest(const StreamBatch& batch) {
  if (!initialized_) {
    return Status::InvalidArgument("Ingest before Init");
  }
  if (batch.tuples.size() != batch.labels.size()) {
    return Status::InvalidArgument("batch tuple/label size mismatch");
  }
  for (size_t i = 0; i < batch.tuples.size(); ++i) {
    SMPTREE_RETURN_IF_ERROR(IngestOne(batch.tuples[i], batch.labels[i]));
  }
  return Status::OK();
}

Status HoeffdingTreeBuilder::IngestOne(const TupleValues& values,
                                       ClassLabel label) {
  if (!initialized_) {
    return Status::InvalidArgument("Ingest before Init");
  }
  if (static_cast<int>(values.size()) != schema_.num_attrs()) {
    return Status::InvalidArgument(StringPrintf(
        "tuple has %d values, schema has %d attrs",
        static_cast<int>(values.size()), schema_.num_attrs()));
  }
  if (label >= schema_.num_classes()) {
    return Status::InvalidArgument(
        StringPrintf("label %d out of range", int{label}));
  }

  if (!sketch_.frozen()) {
    sketch_.Observe(values);
    warmup_.emplace_back(values, label);
    counters_.tuples.fetch_add(1, std::memory_order_relaxed);
    if (sketch_.observed() >= options_.warmup_tuples) {
      SMPTREE_RETURN_IF_ERROR(FreezeAndReplay());
    }
  } else {
    SMPTREE_RETURN_IF_ERROR(Route(values, label));
    counters_.tuples.fetch_add(1, std::memory_order_relaxed);
  }

  if (options_.snapshot_every > 0 && options_.publish) {
    const int64_t t = counters_.tuples.load(std::memory_order_relaxed);
    if (t % options_.snapshot_every == 0) {
      SMPTREE_RETURN_IF_ERROR(Publish());
    }
  }
  return Status::OK();
}

Status HoeffdingTreeBuilder::FreezeAndReplay() {
  SMPTREE_RETURN_IF_ERROR(sketch_.Freeze());
  counters_.sketch_bytes.store(sketch_.MemoryBytes(),
                               std::memory_order_relaxed);
  counters_.frozen.store(true, std::memory_order_relaxed);
  // Size the histograms of the leaves that already exist (just the root
  // unless warmup was zero-length).
  uint64_t active_bytes = 0;
  for (StreamLeaf& leaf : leaves_) {
    if (leaf.node == kInvalidNode || !leaf.active) continue;
    leaf.bins.Reset(sketch_.total_bins(), schema_.num_classes());
    active_bytes += LeafBytes();
  }
  counters_.histogram_bytes.store(active_bytes, std::memory_order_relaxed);

  for (const auto& [values, label] : warmup_) {
    SMPTREE_RETURN_IF_ERROR(Route(values, label));
  }
  warmup_.clear();
  warmup_.shrink_to_fit();
  return Status::OK();
}

Status HoeffdingTreeBuilder::Route(const TupleValues& values,
                                   ClassLabel label) {
  NodeId id = tree_.root();
  while (true) {
    TreeNode& nd = tree_.mutable_node(id);
    ++nd.class_counts[label];
    if (nd.is_leaf()) break;
    id = nd.split.GoesLeft(values[static_cast<size_t>(nd.split.attr)])
             ? nd.left
             : nd.right;
  }
  TreeNode& nd = tree_.mutable_node(id);
  nd.majority = MajorityOf(nd.class_counts);

  const int32_t slot = static_cast<size_t>(id) < slot_of_node_.size()
                           ? slot_of_node_[static_cast<size_t>(id)]
                           : -1;
  if (slot < 0) {
    return Status::Internal(
        StringPrintf("leaf node %d has no stream slot", id));
  }
  StreamLeaf& leaf = leaves_[static_cast<size_t>(slot)];
  leaf.hist.Add(label);
  if (!leaf.active) return Status::OK();

  const int num_attrs = schema_.num_attrs();
  for (int a = 0; a < num_attrs; ++a) {
    leaf.bins.Add(sketch_.offset(a) +
                      sketch_.BinOf(a, values[static_cast<size_t>(a)]),
                  label);
  }
  if (++leaf.since_eval >= options_.grace_period) {
    return TrySplit(slot);
  }
  return Status::OK();
}

Status HoeffdingTreeBuilder::TrySplit(int slot) {
  StreamLeaf& leaf = leaves_[static_cast<size_t>(slot)];
  leaf.since_eval = 0;
  const int64_t n = leaf.hist.Total();
  if (n < 2 || leaf.hist.IsPure()) return Status::OK();

  SplitCandidate best;
  SplitCandidate second;
  int best_bin = -1;
  const int num_attrs = schema_.num_attrs();
  for (int a = 0; a < num_attrs; ++a) {
    SplitCandidate candidate;
    int bin = -1;
    EvaluateStreamLeafAttr(sketch_, leaf.bins, leaf.hist, n, a,
                           options_.gini, &scratch_, &candidate, &bin);
    if (candidate.BetterThan(best)) {
      second = best;
      best = candidate;
      best_bin = bin;
    } else if (candidate.BetterThan(second)) {
      second = candidate;
    }
  }
  if (!best.valid()) return Status::OK();

  const double g0 = Impurity(leaf.hist, options_.gini.criterion);
  const double gain = g0 - best.gini;
  if (gain <= 1e-12) return Status::OK();

  // Hoeffding bound on the impurity-difference estimate after n samples.
  const int num_classes = schema_.num_classes();
  const double range =
      options_.gini.criterion == SplitCriterion::kEntropy
          ? std::log2(static_cast<double>(num_classes))
          : 1.0;
  const double epsilon =
      range * std::sqrt(std::log(1.0 / options_.delta) /
                        (2.0 * static_cast<double>(n)));
  const double gap = second.valid() ? second.gini - best.gini : gain;
  if (gap > epsilon || epsilon < options_.tau) {
    return DoSplit(slot, best, best_bin);
  }
  return Status::OK();
}

Status HoeffdingTreeBuilder::DoSplit(int slot, const SplitCandidate& best,
                                     int best_bin) {
  const int num_classes = schema_.num_classes();

  // Observed partition of this leaf's tuples, from the winner's bin rows
  // (the same derivation as the batch W phase).
  ClassHistogram obs_left(num_classes);
  ClassHistogram obs_right;
  NodeId node = kInvalidNode;
  {
    const StreamLeaf& leaf = leaves_[static_cast<size_t>(slot)];
    const int attr = best.test.attr;
    const int off = sketch_.offset(attr);
    const int nbins = sketch_.num_bins(attr);
    for (int b = 0; b < nbins; ++b) {
      const bool left = best.test.categorical ? best.test.SubsetContains(b)
                                              : b <= best_bin;
      if (!left) continue;
      const std::span<const int64_t> row = leaf.bins.row(off + b);
      for (int c = 0; c < num_classes; ++c) {
        if (row[c] != 0) obs_left.Add(static_cast<ClassLabel>(c), row[c]);
      }
    }
    obs_right = leaf.hist;
    obs_right.Subtract(obs_left);
    if (obs_left.Total() != best.left_count ||
        obs_right.Total() != best.right_count) {
      return Status::Corruption(StringPrintf(
          "streaming split of node %d covers %lld/%lld observed tuples, "
          "expected %lld/%lld",
          leaf.node, static_cast<long long>(obs_left.Total()),
          static_cast<long long>(obs_right.Total()),
          static_cast<long long>(best.left_count),
          static_cast<long long>(best.right_count)));
    }
    node = leaf.node;
  }

  // Partition the node's full counts (observed + created-with) exactly:
  // created-with counts follow the observed ratio per class, and the right
  // child takes the remainder, so parent == left + right class by class --
  // the invariant DecisionTree::Validate() checks on every snapshot.
  ClassHistogram left_counts(num_classes);
  ClassHistogram right_counts(num_classes);
  {
    const TreeNode& nd = tree_.node(node);
    const StreamLeaf& leaf = leaves_[static_cast<size_t>(slot)];
    for (int c = 0; c < num_classes; ++c) {
      const int64_t total = nd.class_counts[static_cast<size_t>(c)];
      const int64_t observed = leaf.hist.count(c);
      const int64_t created = total - observed;
      const int64_t o0 = obs_left.count(c);
      const int64_t c0 = observed > 0 ? created * o0 / observed : created / 2;
      left_counts.Add(static_cast<ClassLabel>(c), o0 + c0);
      right_counts.Add(static_cast<ClassLabel>(c), total - (o0 + c0));
    }
  }

  tree_.SetSplit(node, best.test);
  const NodeId left_child = tree_.AddChild(node, true, left_counts);
  const NodeId right_child = tree_.AddChild(node, false, right_counts);

  // Retire the parent's slot (its histogram storage is recycled by the
  // children via the free list) and open two fresh leaves.
  {
    StreamLeaf& leaf = leaves_[static_cast<size_t>(slot)];
    leaf.node = kInvalidNode;
    leaf.hist.Clear();
    leaf.since_eval = 0;
    counters_.active_leaves.fetch_sub(1, std::memory_order_relaxed);
    counters_.histogram_bytes.fetch_sub(LeafBytes(),
                                        std::memory_order_relaxed);
  }
  slot_of_node_[static_cast<size_t>(node)] = -1;
  free_slots_.push_back(slot);
  (void)NewLeafSlot(left_child);
  (void)NewLeafSlot(right_child);

  counters_.splits.fetch_add(1, std::memory_order_relaxed);
  EnforceBudget();
  return Status::OK();
}

int HoeffdingTreeBuilder::NewLeafSlot(NodeId node) {
  int slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<int>(leaves_.size());
    leaves_.emplace_back();
  }
  StreamLeaf& leaf = leaves_[static_cast<size_t>(slot)];
  leaf.node = node;
  leaf.hist.Reset(schema_.num_classes());
  leaf.since_eval = 0;
  leaf.active = true;
  if (sketch_.frozen()) {
    leaf.bins.Reset(sketch_.total_bins(), schema_.num_classes());
    counters_.histogram_bytes.fetch_add(LeafBytes(),
                                        std::memory_order_relaxed);
  }
  if (static_cast<size_t>(node) >= slot_of_node_.size()) {
    slot_of_node_.resize(static_cast<size_t>(tree_.num_nodes()), -1);
  }
  slot_of_node_[static_cast<size_t>(node)] = slot;
  counters_.active_leaves.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

void HoeffdingTreeBuilder::EnforceBudget() {
  if (options_.memory_budget_bytes == 0) return;
  const uint64_t leaf_bytes = LeafBytes();
  if (leaf_bytes == 0) return;
  while (counters_.histogram_bytes.load(std::memory_order_relaxed) >
         options_.memory_budget_bytes) {
    // Deactivate the least promising active leaf: few observed tuples or
    // nearly pure means a split is far away, so its histogram earns the
    // least. Always keep at least one leaf splittable.
    int victim = -1;
    double victim_promise = 0.0;
    int active = 0;
    for (size_t i = 0; i < leaves_.size(); ++i) {
      const StreamLeaf& leaf = leaves_[i];
      if (leaf.node == kInvalidNode || !leaf.active) continue;
      ++active;
      const double promise =
          static_cast<double>(leaf.hist.Total()) *
          Impurity(leaf.hist, options_.gini.criterion);
      if (victim < 0 || promise < victim_promise) {
        victim = static_cast<int>(i);
        victim_promise = promise;
      }
    }
    if (active <= 1 || victim < 0) break;
    StreamLeaf& leaf = leaves_[static_cast<size_t>(victim)];
    leaf.active = false;
    leaf.bins = LeafHistogram();
    counters_.active_leaves.fetch_sub(1, std::memory_order_relaxed);
    counters_.deactivated_leaves.fetch_add(1, std::memory_order_relaxed);
    counters_.histogram_bytes.fetch_sub(leaf_bytes,
                                        std::memory_order_relaxed);
  }
}

uint64_t HoeffdingTreeBuilder::LeafBytes() const {
  return static_cast<uint64_t>(sketch_.total_bins()) *
         static_cast<uint64_t>(schema_.num_classes()) * sizeof(int64_t);
}

Status HoeffdingTreeBuilder::Finish() {
  if (!initialized_) {
    return Status::InvalidArgument("Finish before Init");
  }
  if (!sketch_.frozen()) {
    SMPTREE_RETURN_IF_ERROR(FreezeAndReplay());
  }
  return Publish();
}

Result<DecisionTree> HoeffdingTreeBuilder::Snapshot() const {
  return DeserializeTree(schema_, SerializeTree(tree_));
}

Status HoeffdingTreeBuilder::Publish() {
  if (!options_.publish) return Status::OK();
  SMPTREE_ASSIGN_OR_RETURN(DecisionTree snapshot, Snapshot());
  SMPTREE_RETURN_IF_ERROR(options_.publish(
      std::move(snapshot), counters_.tuples.load(std::memory_order_relaxed)));
  counters_.snapshots.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

StreamStats HoeffdingTreeBuilder::Stats() const {
  StreamStats s;
  s.tuples = counters_.tuples.load(std::memory_order_relaxed);
  s.splits = counters_.splits.load(std::memory_order_relaxed);
  s.active_leaves = counters_.active_leaves.load(std::memory_order_relaxed);
  s.deactivated_leaves =
      counters_.deactivated_leaves.load(std::memory_order_relaxed);
  s.snapshots = counters_.snapshots.load(std::memory_order_relaxed);
  s.nodes = tree_.num_nodes();
  s.sketch_bytes = counters_.sketch_bytes.load(std::memory_order_relaxed);
  s.histogram_bytes =
      counters_.histogram_bytes.load(std::memory_order_relaxed);
  s.frozen = counters_.frozen.load(std::memory_order_relaxed);
  return s;
}

std::string HoeffdingTreeBuilder::StatsJson() const {
  const StreamStats s = Stats();
  return StringPrintf(
      "{\"tuples\": %lld, \"splits\": %lld, \"active_leaves\": %lld, "
      "\"deactivated_leaves\": %lld, \"snapshots\": %lld, \"nodes\": %lld, "
      "\"sketch_bytes\": %llu, \"histogram_bytes\": %llu, \"frozen\": %s}",
      static_cast<long long>(s.tuples), static_cast<long long>(s.splits),
      static_cast<long long>(s.active_leaves),
      static_cast<long long>(s.deactivated_leaves),
      static_cast<long long>(s.snapshots), static_cast<long long>(s.nodes),
      static_cast<unsigned long long>(s.sketch_bytes),
      static_cast<unsigned long long>(s.histogram_bytes),
      s.frozen ? "true" : "false");
}

}  // namespace smptree
