// Incremental decision-tree induction over an unbounded stream (the VFDT
// scheme of Domingos & Hulten, grounded here in PAPERS.md "Constructing
// Decision Trees from Data Streams"): every arriving tuple is routed to its
// leaf and folded into that leaf's (bin x class) LeafHistogram -- the same
// sufficient statistic the batch binned engine scans -- and a leaf splits
// once the Hoeffding bound says the observed best split is, with confidence
// 1 - delta, the true best:
//
//   epsilon = R * sqrt(ln(1/delta) / 2n)      R = 1 for gini,
//                                             log2(k) for entropy
//
// Split when (second_best_impurity - best_impurity) > epsilon, or when
// epsilon < tau after the grace period (the tie-break: both candidates are
// so close that either is fine). Split evaluation reuses the exact integer
// sweep of the batch engine (same SplitImpurityWithTotals, same BetterThan
// tie rule), so a streaming split is bit-comparable to what the batch
// engine would pick from the same histogram.
//
// Bounded memory: cut points come from a frozen SketchQuantizer (warmup
// tuples are buffered and replayed through the tree once cuts freeze), and
// when active leaf histograms exceed the budget the least promising leaves
// (lowest observed_count x impurity) are deactivated -- they keep routing
// and keep their class counts (so predictions stay exact) but stop paying
// histogram memory and can no longer split.
//
// The tree maintains the serving invariant at every tuple boundary: each
// routed tuple increments the class counts of every node on its root-to-leaf
// path, and splits partition a node's counts exactly across its children, so
// DecisionTree::Validate() passes on any snapshot and ModelStore::Install
// accepts a hot-publish mid-stream.
//
// Threading: one builder thread calls Ingest/Finish/Snapshot; Stats() and
// StatsJson() read relaxed atomics and are safe from any thread (the /statz
// handler calls them while training runs).

#ifndef SMPTREE_STREAM_HOEFFDING_BUILDER_H_
#define SMPTREE_STREAM_HOEFFDING_BUILDER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "binned/leaf_histogram.h"
#include "core/gini.h"
#include "core/tree.h"
#include "stream/sketch_quantizer.h"
#include "stream/stream_source.h"

namespace smptree {

/// Knobs for the streaming builder.
struct HoeffdingOptions {
  int max_bins = 64;          ///< bins per continuous attribute
  int reservoir_size = 2048;  ///< sketch samples per continuous attribute
  /// Tuples buffered (and replayed) before cut points freeze.
  int64_t warmup_tuples = 2000;
  /// Minimum new tuples at a leaf between split attempts.
  int64_t grace_period = 200;
  double delta = 1e-6;  ///< Hoeffding confidence: P(wrong winner) < delta
  double tau = 0.05;    ///< tie-break: split anyway once epsilon < tau
  /// Budget for active leaf histograms; 0 = unbounded. Leaves are
  /// deactivated lowest-promise-first once the budget is exceeded.
  uint64_t memory_budget_bytes = uint64_t{64} << 20;
  /// Hot-publish period in tuples (0 = only on Finish/demand). Each period
  /// boundary snapshots the tree and calls `publish`.
  int64_t snapshot_every = 0;
  GiniOptions gini;
  uint64_t seed = 1;  ///< reservoir randomness
  /// Snapshot sink, typically bound to ModelStore::Install. A failure
  /// aborts the stream.
  std::function<Status(DecisionTree&& snapshot, int64_t tuples_ingested)>
      publish;
};

/// Point-in-time view of the builder's counters (all values read relaxed;
/// consistent enough for monitoring, not for invariant checks).
struct StreamStats {
  int64_t tuples = 0;
  int64_t splits = 0;
  int64_t active_leaves = 0;
  int64_t deactivated_leaves = 0;
  int64_t snapshots = 0;
  int64_t nodes = 0;
  uint64_t sketch_bytes = 0;
  uint64_t histogram_bytes = 0;
  bool frozen = false;
};

/// Single-writer incremental tree builder. See file comment for contracts.
class HoeffdingTreeBuilder {
 public:
  HoeffdingTreeBuilder(const Schema& schema, HoeffdingOptions options);

  /// Validates options, initializes the sketch, and creates the root leaf.
  /// Must be called (and succeed) before Ingest.
  Status Init();

  /// Routes every tuple of `batch` through the tree (or buffers it during
  /// warmup), splitting leaves and hot-publishing snapshots as configured.
  Status Ingest(const StreamBatch& batch);

  /// One-tuple Ingest.
  Status IngestOne(const TupleValues& values, ClassLabel label);

  /// Freezes the sketch if the stream ended inside warmup (replaying the
  /// buffer), then publishes a final snapshot when a publish hook is set.
  Status Finish();

  /// Independent copy of the current tree via the exact text round-trip
  /// (DecisionTree is move-only). Builder thread only.
  Result<DecisionTree> Snapshot() const;

  /// Snapshot + publish hook + snapshot counter. No-op without a hook.
  Status Publish();

  const DecisionTree& tree() const { return tree_; }
  const Schema& schema() const { return schema_; }
  const SketchQuantizer& quantizer() const { return sketch_; }

  /// Safe from any thread.
  StreamStats Stats() const;

  /// The /statz "stream" JSON object, e.g. {"tuples": 1000, ...}. Safe from
  /// any thread.
  std::string StatsJson() const;

 private:
  /// Live-leaf state; slots are reused when leaves split.
  struct StreamLeaf {
    NodeId node = kInvalidNode;
    ClassHistogram hist;  ///< observed at this leaf (excludes created-with)
    LeafHistogram bins;   ///< (bin x class) observed counts; empty if !active
    int64_t since_eval = 0;
    bool active = true;
  };

  /// Freezes cuts, sizes the root histogram, and replays the warmup buffer.
  Status FreezeAndReplay();

  /// Routes one tuple root-to-leaf, updating path counts and the leaf's
  /// statistics; attempts a split at grace-period boundaries.
  Status Route(const TupleValues& values, ClassLabel label);

  /// Hoeffding test at a leaf; splits when the bound (or tie-break) holds.
  Status TrySplit(int slot);

  /// Applies `best` at the leaf: exact count partition, two fresh leaves.
  Status DoSplit(int slot, const SplitCandidate& best, int best_bin);

  /// Deactivates lowest-promise leaves until histograms fit the budget.
  void EnforceBudget();

  int NewLeafSlot(NodeId node);
  uint64_t LeafBytes() const;

  const Schema schema_;
  const HoeffdingOptions options_;
  SketchQuantizer sketch_;
  DecisionTree tree_;
  GiniScratch scratch_;
  std::vector<StreamLeaf> leaves_;
  std::vector<int> free_slots_;
  std::vector<int32_t> slot_of_node_;  ///< NodeId -> leaves_ index or -1
  std::vector<std::pair<TupleValues, ClassLabel>> warmup_;
  bool initialized_ = false;

  struct Counters {
    std::atomic<int64_t> tuples{0};
    std::atomic<int64_t> splits{0};
    std::atomic<int64_t> active_leaves{0};
    std::atomic<int64_t> deactivated_leaves{0};
    std::atomic<int64_t> snapshots{0};
    std::atomic<uint64_t> sketch_bytes{0};
    std::atomic<uint64_t> histogram_bytes{0};
    std::atomic<bool> frozen{false};
  };
  Counters counters_;
};

}  // namespace smptree

#endif  // SMPTREE_STREAM_HOEFFDING_BUILDER_H_
