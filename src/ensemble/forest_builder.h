// ForestBuilder: trains a bagged forest with two-level parallelism. The
// outer level runs whole trees concurrently (classic task parallelism: each
// member is an independent SPRINT build over its own bootstrap resample);
// the inner level is the paper's within-tree machinery (BASIC / FWK / MWK /
// SUBTREE builder threads). A fixed thread budget P is split between the
// two levels by PlanThreadSplit:
//
//   kTreesFirst  -- spend threads on concurrent trees first: outer =
//                   min(T, P), the remainder (P / outer) goes to each
//                   member's inner builder. With T >= P every thread builds
//                   its own tree (embarrassingly parallel, no inner
//                   synchronization at all); with T < P the surplus flows
//                   inward.
//   kInnerFirst  -- build members one at a time, all P threads inside the
//                   paper's builder. This is the paper's regime measured
//                   end-to-end over an ensemble workload; it exists to let
//                   the bench compare outer vs inner scaling directly.
//
// `concurrent_trees` overrides the planner's outer width for sweeps.
//
// Determinism: the forest depends only on (options, data), never on the
// schedule. Every member i draws its seed from splitmix64(seed, i), its
// bootstrap resample and feature-sampling stream come from that seed alone,
// and members are installed in index order -- so trees-first and
// inner-first runs of the same options produce byte-identical forests when
// the inner builder is serial, and structurally identical distributions
// otherwise (parallel inner builders number nodes in scheduling order, which
// perturbs per-node feature draws; see FeatureSampling in
// core/builder_context.h).
//
// OOB: with bootstrap on, each member's resample leaves ~36.8% of the
// training tuples out of bag; those tuples are scored by that member only,
// and the majority vote over each tuple's out-of-bag members gives an
// unbiased generalization estimate without a held-out set.

#ifndef SMPTREE_ENSEMBLE_FOREST_BUILDER_H_
#define SMPTREE_ENSEMBLE_FOREST_BUILDER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/classifier.h"
#include "data/dataset.h"
#include "ensemble/forest.h"
#include "util/status.h"

namespace smptree {

/// How PlanThreadSplit spends the thread budget (header comment above).
enum class ForestSchedule : unsigned char {
  kTreesFirst,
  kInnerFirst,
};

/// Returns "trees-first" / "inner-first".
const char* ForestScheduleName(ForestSchedule schedule);

/// The planner's decision: how many trees build concurrently and how many
/// builder threads each of those gets. concurrent_trees * inner_threads is
/// at most num_threads (integer division truncates; threads are never
/// oversubscribed by plan).
struct ThreadSplit {
  int concurrent_trees = 1;
  int inner_threads = 1;
};

/// Splits `num_threads` between concurrent trees and within-tree builder
/// threads. `concurrent_trees_override` > 0 pins the outer width (clamped
/// to [1, min(num_trees, num_threads)]); 0 lets the schedule decide.
/// Exposed for the bench sweep and tests.
ThreadSplit PlanThreadSplit(int num_trees, int num_threads,
                            ForestSchedule schedule,
                            int concurrent_trees_override);

/// Forest training configuration.
struct ForestOptions {
  int num_trees = 10;
  /// Train each member on a bootstrap resample (with replacement, same size
  /// as the training set). Off: every member sees the full training set --
  /// with full feature sampling that makes every member identical, which is
  /// exactly what the single-tree parity tests want.
  bool bootstrap = true;
  /// Attributes considered per node (random-forest feature subsampling);
  /// 0 = all attributes at every node.
  int features_per_node = 0;
  /// Master seed: member i derives its bootstrap + feature-sampling seed
  /// as splitmix64(seed, i), so the forest is deterministic in (seed, data).
  uint64_t seed = 42;
  /// Total thread budget across both levels.
  int num_threads = 1;
  ForestSchedule schedule = ForestSchedule::kTreesFirst;
  /// Outer-width override for PlanThreadSplit (0 = derive from schedule).
  int concurrent_trees = 0;
  /// Compute out-of-bag accuracy after training (needs bootstrap).
  bool oob = true;
  /// Per-member training options. num_threads and feature_sampling are
  /// overwritten per member by the planner and the per-tree seed; with
  /// concurrent trees, build.trace is ignored (a shared recorder cannot be
  /// folded per member while other members still emit spans).
  ClassifierOptions tree;

  Status Validate() const;
};

/// Forest-level training accounting: the per-member TrainStats plus the
/// fold the observability tooling consumes.
struct ForestTrainStats {
  double total_seconds = 0.0;
  /// Majority-vote accuracy over each tuple's out-of-bag members;
  /// -1 when not computed (oob off, or bootstrap off).
  double oob_accuracy = -1.0;
  /// Tuples that were out of bag for at least one member.
  int64_t oob_tuples = 0;
  /// The planner's decision for this run.
  ThreadSplit split;
  /// Per-member stats, index-aligned with the forest's trees.
  std::vector<TrainStats> trees;
  /// Member BuildStats folded into one record (algorithm
  /// "FOREST(<inner>)", counters summed, per-level frontiers merged by
  /// depth) so --stats-out / /statz / bench_to_json work unchanged.
  BuildStats build_stats;
};

/// A trained forest.
struct ForestTrainResult {
  std::unique_ptr<Forest> forest;
  ForestTrainStats stats;
};

/// Trains a bagged forest on `data` (validates options, plans the thread
/// split, trains members, folds OOB + stats).
Result<ForestTrainResult> TrainForest(const Dataset& data,
                                      const ForestOptions& options);

}  // namespace smptree

#endif  // SMPTREE_ENSEMBLE_FOREST_BUILDER_H_
