#include "ensemble/forest.h"

#include <utility>

#include "util/string_util.h"

namespace smptree {

Forest::Forest(Schema schema) : schema_(std::move(schema)) {}

Status Forest::AddTree(DecisionTree tree) {
  if (!SchemasCompatible(schema_, tree.schema())) {
    return Status::InvalidArgument(
        "member tree schema is incompatible with the forest schema");
  }
  trees_.push_back(std::move(tree));
  return Status::OK();
}

int64_t Forest::total_nodes() const {
  int64_t n = 0;
  for (const DecisionTree& t : trees_) n += t.num_nodes();
  return n;
}

ClassLabel Forest::Classify(const TupleValues& values) const {
  std::vector<int64_t> votes;
  return Vote(values, &votes);
}

ClassLabel Forest::Classify(const Dataset& data, int64_t tuple) const {
  return Classify(data.Tuple(tuple));
}

ClassLabel Forest::Vote(const TupleValues& values,
                        std::vector<int64_t>* votes) const {
  votes->assign(static_cast<size_t>(schema_.num_classes()), 0);
  for (const DecisionTree& t : trees_) {
    ++(*votes)[static_cast<size_t>(t.Classify(values))];
  }
  ClassLabel best = 0;
  for (size_t c = 1; c < votes->size(); ++c) {
    if ((*votes)[c] > (*votes)[static_cast<size_t>(best)]) {
      best = static_cast<ClassLabel>(c);
    }
  }
  return best;
}

ClassLabel Forest::Probabilities(const TupleValues& values,
                                 std::vector<double>* probs) const {
  std::vector<int64_t> votes;
  const ClassLabel label = Vote(values, &votes);
  probs->resize(votes.size());
  const double n = trees_.empty() ? 1.0 : static_cast<double>(trees_.size());
  for (size_t c = 0; c < votes.size(); ++c) {
    (*probs)[c] = static_cast<double>(votes[c]) / n;
  }
  return label;
}

ForestStats Forest::Stats() const {
  ForestStats stats;
  stats.num_trees = num_trees();
  double levels_sum = 0;
  for (const DecisionTree& t : trees_) {
    const TreeStats ts = t.Stats();
    stats.total_nodes += ts.num_nodes;
    stats.total_leaves += ts.num_leaves;
    stats.max_levels = std::max(stats.max_levels, ts.levels);
    levels_sum += static_cast<double>(ts.levels);
  }
  if (stats.num_trees > 0) {
    stats.mean_levels = levels_sum / static_cast<double>(stats.num_trees);
  }
  return stats;
}

Status Forest::Validate() const {
  if (trees_.empty()) return Status::InvalidArgument("forest has no trees");
  for (size_t i = 0; i < trees_.size(); ++i) {
    if (!SchemasCompatible(schema_, trees_[i].schema())) {
      return Status::Corruption(
          StringPrintf("member %zu: schema mismatch", i));
    }
    const Status s = trees_[i].Validate();
    if (!s.ok()) {
      return Status::Corruption(
          StringPrintf("member %zu: %s", i, s.ToString().c_str()));
    }
  }
  return Status::OK();
}

std::string Forest::ToString() const {
  std::string out = StringPrintf("forest: %d trees, %lld nodes\n",
                                 num_trees(),
                                 static_cast<long long>(total_nodes()));
  for (size_t i = 0; i < trees_.size(); ++i) {
    const TreeStats ts = trees_[i].Stats();
    out += StringPrintf("  tree %zu: %lld nodes, %lld leaves, %d levels\n", i,
                        static_cast<long long>(ts.num_nodes),
                        static_cast<long long>(ts.num_leaves), ts.levels);
  }
  return out;
}

ConfusionMatrix EvaluateForest(const Forest& forest, const Dataset& data) {
  ConfusionMatrix cm(data.num_classes());
  TupleValues row;
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    row = data.Tuple(t);
    cm.Add(data.label(t), forest.Classify(row));
  }
  return cm;
}

double ForestAccuracy(const Forest& forest, const Dataset& data) {
  return EvaluateForest(forest, data).accuracy();
}

}  // namespace smptree
