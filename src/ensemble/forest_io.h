// Text serialization of forests: a versioned container over tree_io
// records. The container adds nothing per node -- each member section is
// byte-for-byte the output of SerializeTree -- so a forest file is greppable
// with the same eyes as a tree file and the member parser is tree_io's.
//
// Format:
//   forest v1 trees=<T>
//   <member 0: tree v1 header + node lines>
//   ...
//   <member T-1>
//   end forest
// The trailing `end forest` line is the truncation sentinel: a file cut off
// mid-member fails the member's own node-count check, and one cut off
// between members fails the trailer check. Every member must pass
// DecisionTree::Validate and be schema-compatible with its siblings.

#ifndef SMPTREE_ENSEMBLE_FOREST_IO_H_
#define SMPTREE_ENSEMBLE_FOREST_IO_H_

#include <string>

#include "ensemble/forest.h"
#include "util/status.h"

namespace smptree {

/// Serializes `forest` to the container format above. The forest must have
/// at least one member (Validate() is the caller's contract; Serialize does
/// not re-run it).
std::string SerializeForest(const Forest& forest);

/// Parses a forest serialized by SerializeForest. Each member is parsed with
/// DeserializeTree against `schema`, validated with DecisionTree::Validate,
/// and checked schema-compatible; the count in the header must match the
/// members present and the `end forest` trailer must be intact.
Result<Forest> DeserializeForest(const Schema& schema,
                                 const std::string& text);

/// Structural equality: same member count, every member TreesEqual.
bool ForestsEqual(const Forest& a, const Forest& b);

}  // namespace smptree

#endif  // SMPTREE_ENSEMBLE_FOREST_IO_H_
