#include "ensemble/forest_io.h"

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>

#include "core/tree_io.h"
#include "util/string_util.h"

namespace smptree {

namespace {

constexpr char kForestHeaderPrefix[] = "forest v1 trees=";
constexpr char kTreeHeaderPrefix[] = "tree v1 ";
constexpr char kForestTrailer[] = "end forest";

}  // namespace

std::string SerializeForest(const Forest& forest) {
  std::string out = StringPrintf("forest v1 trees=%d\n", forest.num_trees());
  for (int i = 0; i < forest.num_trees(); ++i) {
    out += SerializeTree(forest.tree(i));
  }
  out += kForestTrailer;
  out += '\n';
  return out;
}

Result<Forest> DeserializeForest(const Schema& schema,
                                 const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) ||
      line.rfind(kForestHeaderPrefix, 0) != 0) {
    return Status::InvalidArgument("not a forest file (bad header)");
  }
  int declared_trees = 0;
  if (std::sscanf(line.c_str() + sizeof(kForestHeaderPrefix) - 1, "%d",
                  &declared_trees) != 1 ||
      declared_trees < 1) {
    return Status::InvalidArgument(
        StringPrintf("bad forest tree count in header: '%s'", line.c_str()));
  }

  Forest forest(schema);
  for (int i = 0; i < declared_trees; ++i) {
    if (!std::getline(in, line)) {
      return Status::Corruption(StringPrintf(
          "forest truncated: header declares %d trees, found %d",
          declared_trees, i));
    }
    if (line.rfind(kTreeHeaderPrefix, 0) != 0) {
      return Status::Corruption(StringPrintf(
          "member %d: expected tree header, got '%s'", i, line.c_str()));
    }
    // The member's own header carries its node count; collect exactly that
    // many node lines so tree_io sees one complete record.
    const size_t nodes_at = line.find("nodes=");
    long long num_nodes = 0;
    if (nodes_at == std::string::npos ||
        std::sscanf(line.c_str() + nodes_at + 6, "%lld", &num_nodes) != 1 ||
        num_nodes < 1) {
      return Status::Corruption(StringPrintf(
          "member %d: bad node count in '%s'", i, line.c_str()));
    }
    std::string member = line;
    member += '\n';
    for (long long n = 0; n < num_nodes; ++n) {
      if (!std::getline(in, line)) {
        return Status::Corruption(StringPrintf(
            "member %d truncated: %lld of %lld node lines", i, n, num_nodes));
      }
      member += line;
      member += '\n';
    }
    Result<DecisionTree> tree = DeserializeTree(schema, member);
    if (!tree.ok()) {
      return Status::Corruption(StringPrintf(
          "member %d: %s", i, tree.status().ToString().c_str()));
    }
    SMPTREE_RETURN_IF_ERROR(tree->Validate());
    SMPTREE_RETURN_IF_ERROR(forest.AddTree(std::move(*tree)));
  }

  if (!std::getline(in, line) || line != kForestTrailer) {
    return Status::Corruption(
        "forest truncated: missing 'end forest' trailer");
  }
  SMPTREE_RETURN_IF_ERROR(forest.Validate());
  return forest;
}

bool ForestsEqual(const Forest& a, const Forest& b) {
  if (a.num_trees() != b.num_trees()) return false;
  for (int i = 0; i < a.num_trees(); ++i) {
    if (!TreesEqual(a.tree(i), b.tree(i))) return false;
  }
  return true;
}

}  // namespace smptree
