// Forest: a bagged ensemble of DecisionTrees over one schema, with
// majority-vote classification and vote-share class probabilities. The
// paper's four SMP schemes parallelize *inside* one SPRINT tree; the forest
// is the outer workload they feed -- see forest_builder.h for the two-level
// (trees x builder-threads) training scheduler.
//
// Concurrent reads: a Forest is immutable once built (AddTree is a
// build-time-only entry point) and every reader -- Classify, Vote,
// Probabilities, tree(), Stats(), Validate() -- only touches the members'
// const reader surface, so a published forest inherits the DecisionTree
// concurrent-reads contract (core/tree.h): any number of threads may score
// against it with no synchronization.

#ifndef SMPTREE_ENSEMBLE_FOREST_H_
#define SMPTREE_ENSEMBLE_FOREST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/tree.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "util/status.h"

namespace smptree {

/// Shape summary of a forest (per-member TreeStats folded together).
struct ForestStats {
  int num_trees = 0;
  int64_t total_nodes = 0;
  int64_t total_leaves = 0;
  int max_levels = 0;        ///< deepest member
  double mean_levels = 0.0;  ///< mean member depth
};

/// A bagged ensemble of decision trees. Movable, not copyable (members are
/// arena-owning DecisionTrees).
class Forest {
 public:
  explicit Forest(Schema schema);

  Forest(Forest&&) noexcept = default;
  Forest& operator=(Forest&&) noexcept = default;
  Forest(const Forest&) = delete;
  Forest& operator=(const Forest&) = delete;

  const Schema& schema() const { return schema_; }
  int num_trees() const { return static_cast<int>(trees_.size()); }
  const DecisionTree& tree(int i) const {
    return trees_[static_cast<size_t>(i)];
  }

  /// Appends a member. Build-time only (never concurrently with readers);
  /// fails unless the tree's schema scores identically to the forest's.
  Status AddTree(DecisionTree tree);

  /// Total nodes across all members.
  int64_t total_nodes() const;

  /// Majority-vote classification of one tuple (ties keep the lowest
  /// label, matching ClassHistogram::Majority). Concurrent-reader safe.
  ClassLabel Classify(const TupleValues& values) const;

  /// Classifies tuple `t` of `data` (columns must match the schema).
  ClassLabel Classify(const Dataset& data, int64_t tuple) const;

  /// Classify + per-class vote counts. `votes` is resized to num_classes
  /// and filled with how many members voted for each class; the returned
  /// label is the vote majority (lowest label on ties).
  ClassLabel Vote(const TupleValues& values,
                  std::vector<int64_t>* votes) const;

  /// Vote shares as probabilities: votes[c] / num_trees(). `probs` is
  /// resized to num_classes.
  ClassLabel Probabilities(const TupleValues& values,
                           std::vector<double>* probs) const;

  ForestStats Stats() const;

  /// Structural check: at least one member, every member passes
  /// DecisionTree::Validate, and every member's schema scores identically
  /// to the forest's (forest_io runs this per member on load).
  Status Validate() const;

  /// One line per member: index, node count, levels.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<DecisionTree> trees_;
};

/// Classifies every tuple of `data` with the forest's majority vote and
/// tallies the confusion matrix (the ensemble counterpart of EvaluateTree).
ConfusionMatrix EvaluateForest(const Forest& forest, const Dataset& data);

/// Convenience: EvaluateForest(...).accuracy().
double ForestAccuracy(const Forest& forest, const Dataset& data);

}  // namespace smptree

#endif  // SMPTREE_ENSEMBLE_FOREST_H_
