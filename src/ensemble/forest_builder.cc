#include "ensemble/forest_builder.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "core/build_stats.h"
#include "data/sampling.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace smptree {

namespace {

/// splitmix64 finalizer over (seed, member index): one well-mixed,
/// index-decorrelated seed per member regardless of build order.
uint64_t MemberSeed(uint64_t seed, int member) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(member) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Folds the members' BuildStats into one record the existing tooling
/// (--stats-out, /statz, bench_to_json) consumes unchanged: counters and
/// compute-time sums, frontier shapes merged by depth, wall time from the
/// forest clock (members overlap, so summing member walls would lie).
BuildStats FoldBuildStats(const std::vector<TrainStats>& members,
                          const ForestOptions& options, uint64_t wall_nanos) {
  BuildStats out;
  out.algorithm = StringPrintf(
      "FOREST(%s)",
      members.empty() ? "?" : members[0].build_stats.algorithm.c_str());
  if (!members.empty()) out.engine = members[0].build_stats.engine;
  out.num_threads = options.num_threads;
  out.wall_nanos = wall_nanos;
  for (const TrainStats& m : members) {
    const BuildStats& b = m.build_stats;
    out.e_nanos += b.e_nanos;
    out.w_nanos += b.w_nanos;
    out.s_nanos += b.s_nanos;
    out.h_nanos += b.h_nanos;
    out.wait_nanos += b.wait_nanos;
    out.barrier_waits += b.barrier_waits;
    out.condvar_waits += b.condvar_waits;
    out.attr_tasks += b.attr_tasks;
    out.free_queue_rounds += b.free_queue_rounds;
    out.records_scanned += b.records_scanned;
    out.records_split += b.records_split;
    out.bins_scanned += b.bins_scanned;
    for (size_t lvl = 0; lvl < b.levels.size(); ++lvl) {
      if (lvl >= out.levels.size()) out.levels.resize(lvl + 1);
      out.levels[lvl].level = static_cast<int>(lvl);
      out.levels[lvl].leaves += b.levels[lvl].leaves;
      out.levels[lvl].records += b.levels[lvl].records;
    }
  }
  return out;
}

}  // namespace

const char* ForestScheduleName(ForestSchedule schedule) {
  switch (schedule) {
    case ForestSchedule::kTreesFirst:
      return "trees-first";
    case ForestSchedule::kInnerFirst:
      return "inner-first";
  }
  return "unknown";
}

ThreadSplit PlanThreadSplit(int num_trees, int num_threads,
                            ForestSchedule schedule,
                            int concurrent_trees_override) {
  num_trees = std::max(1, num_trees);
  num_threads = std::max(1, num_threads);
  ThreadSplit split;
  if (concurrent_trees_override > 0) {
    split.concurrent_trees =
        std::min(concurrent_trees_override, std::min(num_trees, num_threads));
  } else if (schedule == ForestSchedule::kTreesFirst) {
    split.concurrent_trees = std::min(num_trees, num_threads);
  } else {
    split.concurrent_trees = 1;
  }
  split.inner_threads = std::max(1, num_threads / split.concurrent_trees);
  return split;
}

Status ForestOptions::Validate() const {
  if (num_trees < 1) {
    return Status::InvalidArgument(
        StringPrintf("num_trees must be >= 1, got %d", num_trees));
  }
  if (num_threads < 1) {
    return Status::InvalidArgument(
        StringPrintf("num_threads must be >= 1, got %d", num_threads));
  }
  if (concurrent_trees < 0) {
    return Status::InvalidArgument(
        StringPrintf("concurrent_trees must be >= 0, got %d",
                     concurrent_trees));
  }
  if (features_per_node < 0) {
    return Status::InvalidArgument(
        StringPrintf("features_per_node must be >= 0, got %d",
                     features_per_node));
  }
  if (tree.build.algorithm == Algorithm::kRecordParallel) {
    return Status::InvalidArgument(
        "record-parallel is not a forest inner builder (it bypasses the "
        "level engine; use serial/basic/fwk/mwk/subtree)");
  }
  // Member-level options are validated again by TrainClassifier with the
  // per-tree overrides applied; check here too so errors surface before any
  // thread is spawned.
  return tree.build.Validate();
}

Result<ForestTrainResult> TrainForest(const Dataset& data,
                                      const ForestOptions& options) {
  SMPTREE_RETURN_IF_ERROR(options.Validate());
  if (data.num_tuples() < 1) {
    return Status::InvalidArgument("cannot train a forest on an empty dataset");
  }

  const int T = options.num_trees;
  const ThreadSplit split = PlanThreadSplit(
      T, options.num_threads, options.schedule, options.concurrent_trees);

  Timer total_timer;

  // Per-member result slots: each worker writes only its own indices, and
  // the joins below order every write before the fold reads them.
  std::vector<std::unique_ptr<DecisionTree>> trees(static_cast<size_t>(T));
  std::vector<TrainStats> member_stats(static_cast<size_t>(T));
  std::vector<std::vector<bool>> oob_masks(static_cast<size_t>(T));
  std::vector<Status> errors(static_cast<size_t>(T));

  auto train_member = [&](int i) {
    const uint64_t member_seed = MemberSeed(options.seed, i);

    ClassifierOptions member_options = options.tree;
    member_options.build.num_threads = split.inner_threads;
    member_options.build.feature_sampling.features_per_node =
        options.features_per_node;
    member_options.build.feature_sampling.seed = member_seed;
    if (split.concurrent_trees > 1) {
      // A shared recorder cannot be folded per member while siblings still
      // emit spans (MakeBuildStats requires a quiescent trace).
      member_options.build.trace = nullptr;
    }

    Result<TrainResult> result = Status::Internal("unreached");
    if (options.bootstrap) {
      Result<BootstrapResult> sample = BootstrapSample(data, member_seed);
      if (!sample.ok()) {
        errors[static_cast<size_t>(i)] = sample.status();
        return;
      }
      oob_masks[static_cast<size_t>(i)] = std::move(sample->oob);
      result = TrainClassifier(sample->sample, member_options);
    } else {
      result = TrainClassifier(data, member_options);
    }
    if (!result.ok()) {
      errors[static_cast<size_t>(i)] = result.status();
      return;
    }
    trees[static_cast<size_t>(i)] = std::move(result->tree);
    member_stats[static_cast<size_t>(i)] = std::move(result->stats);
  };

  if (split.concurrent_trees <= 1) {
    for (int i = 0; i < T; ++i) train_member(i);
  } else {
    // Outer level: workers pull member indices from a shared counter, so a
    // fast tree frees its worker for the next member (no static striping).
    std::atomic<int> next{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(split.concurrent_trees));
    for (int w = 0; w < split.concurrent_trees; ++w) {
      workers.emplace_back([&] {
        for (int i = next.fetch_add(1, std::memory_order_relaxed); i < T;
             i = next.fetch_add(1, std::memory_order_relaxed)) {
          train_member(i);
        }
      });
    }
    for (std::thread& w : workers) w.join();
  }

  for (int i = 0; i < T; ++i) {
    if (!errors[static_cast<size_t>(i)].ok()) {
      return Status(errors[static_cast<size_t>(i)]);
    }
  }

  auto forest = std::make_unique<Forest>(data.schema());
  for (int i = 0; i < T; ++i) {
    SMPTREE_RETURN_IF_ERROR(
        forest->AddTree(std::move(*trees[static_cast<size_t>(i)])));
  }

  ForestTrainStats stats;
  stats.split = split;
  stats.trees = std::move(member_stats);

  // OOB fold: each member votes only on the tuples its resample left out;
  // the per-tuple majority over those votes estimates held-out accuracy.
  if (options.oob && options.bootstrap) {
    const int64_t n = data.num_tuples();
    const int k = data.num_classes();
    std::vector<int32_t> votes(static_cast<size_t>(n * k), 0);
    for (int i = 0; i < T; ++i) {
      const std::vector<bool>& oob = oob_masks[static_cast<size_t>(i)];
      for (int64_t t = 0; t < n; ++t) {
        if (!oob[static_cast<size_t>(t)]) continue;
        const ClassLabel y = forest->tree(i).Classify(data, t);
        ++votes[static_cast<size_t>(t * k + y)];
      }
    }
    int64_t counted = 0;
    int64_t correct = 0;
    for (int64_t t = 0; t < n; ++t) {
      const int32_t* row = &votes[static_cast<size_t>(t * k)];
      int32_t best_votes = 0;
      int best = -1;
      for (int c = 0; c < k; ++c) {
        if (row[c] > best_votes) {
          best_votes = row[c];
          best = c;  // strict > keeps the lowest label on ties
        }
      }
      if (best < 0) continue;  // in-bag for every member
      ++counted;
      if (static_cast<ClassLabel>(best) == data.label(t)) ++correct;
    }
    stats.oob_tuples = counted;
    if (counted > 0) {
      stats.oob_accuracy =
          static_cast<double>(correct) / static_cast<double>(counted);
    }
  }

  stats.total_seconds = total_timer.Seconds();
  stats.build_stats =
      FoldBuildStats(stats.trees, options,
                     static_cast<uint64_t>(stats.total_seconds * 1e9));

  ForestTrainResult out;
  out.forest = std::move(forest);
  out.stats = std::move(stats);
  return out;
}

}  // namespace smptree
