// The paper's Figure 1 worked example: the car-insurance training set with
// six tuples, two attributes (age, car type) and a high/low risk class.
// Shows the SPRINT mechanics the paper illustrates in Figures 1-2: the
// pre-sorted attribute lists, the gini evaluation at the root, and the
// resulting two-level decision tree.
//
//   $ ./build/examples/car_insurance

#include <cstdio>

#include "core/classifier.h"
#include "core/gini.h"
#include "core/presort.h"
#include "core/sql_export.h"
#include "data/csv.h"

int main() {
  using namespace smptree;

  Schema schema;
  schema.AddContinuous("age");
  schema.AddCategorical("cartype", 3, {"family", "sports", "truck"});
  schema.SetClassNames({"high", "low"});

  // The training set from the paper's Figure 1 (tid order).
  const char* csv =
      "age,cartype,class\n"
      "23,family,high\n"
      "17,sports,high\n"
      "43,sports,high\n"
      "68,family,low\n"
      "32,truck,low\n"
      "20,family,high\n";
  auto data = FromCsvString(schema, csv);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("training set (paper Figure 1):\n%s\n",
              ToCsvString(*data).c_str());

  // The initial attribute lists (paper Figure 2): continuous lists sorted
  // by value, categorical lists in tid order.
  auto lists = BuildAttributeLists(*data);
  if (!lists.ok()) return 1;
  for (int a = 0; a < data->num_attrs(); ++a) {
    std::printf("attribute list '%s' (%s):\n",
                schema.attr(a).name.c_str(),
                schema.attr(a).is_categorical() ? "unsorted" : "sorted");
    for (const AttrRecord& rec : lists->lists[a]) {
      if (schema.attr(a).is_categorical()) {
        std::printf("  %-7s %-5s tid=%u\n",
                    schema.attr(a).value_names[rec.value.cat].c_str(),
                    schema.class_name(rec.label).c_str(), rec.tid);
      } else {
        std::printf("  %-7.0f %-5s tid=%u\n",
                    static_cast<double>(rec.value.f),
                    schema.class_name(rec.label).c_str(), rec.tid);
      }
    }
  }

  // Root-level gini evaluation per attribute (step E of the paper).
  ClassHistogram root_hist(2);
  for (ClassLabel l : data->labels()) root_hist.Add(l);
  GiniScratch scratch;
  GiniOptions gini_options;
  std::printf("\nroot split candidates:\n");
  for (int a = 0; a < data->num_attrs(); ++a) {
    const SplitCandidate c = EvaluateAttr(schema, a, lists->lists[a],
                                          root_hist, gini_options, &scratch);
    std::printf("  %-24s gini = %.4f\n",
                c.valid() ? c.test.ToString(schema).c_str() : "(none)",
                c.gini);
  }

  // Full build (serial SPRINT) and the tree of the paper's Figure 1.
  ClassifierOptions options;
  auto result = TrainClassifier(*data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("\ndecision tree:\n%s\n", result->tree->ToString().c_str());
  std::printf("as SQL (one SELECT per class):\n");
  for (const std::string& q : TreeToSqlSelects(*result->tree)) {
    std::printf("%s\n", q.c_str());
  }
  return 0;
}
