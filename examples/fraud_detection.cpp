// Fraud detection scenario (one of the classification applications the
// paper's introduction names). Uses the hardest synthetic model -- function
// 9's disposable-income surface over salary, commission, education and loan
// -- with 10% label noise standing in for mislabeled historical cases, and
// shows the full production loop: train with pruning, evaluate on held-out
// data, compare every parallel algorithm on the same workload, and persist
// the model.
//
//   $ ./build/examples/fraud_detection

#include <cstdio>

#include "core/classifier.h"
#include "core/metrics.h"
#include "core/tree_io.h"
#include "data/sampling.h"
#include "data/synthetic.h"

int main() {
  using namespace smptree;

  SyntheticConfig cfg;
  cfg.function = 9;
  cfg.num_attrs = 16;  // nine predictive + noise attributes
  cfg.num_tuples = 30000;
  cfg.label_noise = 0.10;
  cfg.seed = 2024;
  auto generated = GenerateSynthetic(cfg);
  if (!generated.ok()) return 1;

  auto split = SplitTrainTest(*generated, 0.3, 5);
  if (!split.ok()) return 1;
  std::printf("fraud dataset %s: %lld train / %lld test tuples, 10%% noise\n",
              cfg.Name().c_str(),
              static_cast<long long>(split->train.num_tuples()),
              static_cast<long long>(split->test.num_tuples()));

  // Unpruned trees memorize the noise; pruning recovers generality.
  ClassifierOptions raw;
  raw.build.algorithm = Algorithm::kMwk;
  raw.build.num_threads = 4;
  auto unpruned = TrainClassifier(split->train, raw);
  if (!unpruned.ok()) return 1;

  ClassifierOptions with_prune = raw;
  with_prune.prune.method = PruneOptions::Method::kCostComplexity;
  with_prune.prune.split_penalty = 2.0;
  auto pruned = TrainClassifier(split->train, with_prune);
  if (!pruned.ok()) return 1;

  std::printf("\n%-10s %10s %12s %14s\n", "model", "nodes", "train acc",
              "test acc");
  std::printf("%-10s %10lld %12.4f %14.4f\n", "unpruned",
              static_cast<long long>(unpruned->tree->num_nodes()),
              TreeAccuracy(*unpruned->tree, split->train),
              TreeAccuracy(*unpruned->tree, split->test));
  std::printf("%-10s %10lld %12.4f %14.4f\n", "pruned",
              static_cast<long long>(pruned->tree->num_nodes()),
              TreeAccuracy(*pruned->tree, split->train),
              TreeAccuracy(*pruned->tree, split->test));

  // Same workload across the paper's algorithms: identical trees, different
  // build mechanics.
  std::printf("\n%-8s %10s %12s %12s\n", "algo", "build(s)", "barriers",
              "cv waits");
  for (Algorithm algorithm :
       {Algorithm::kSerial, Algorithm::kBasic, Algorithm::kFwk,
        Algorithm::kMwk, Algorithm::kSubtree}) {
    ClassifierOptions options = with_prune;
    options.build.algorithm = algorithm;
    options.build.num_threads = algorithm == Algorithm::kSerial ? 1 : 4;
    auto result = TrainClassifier(split->train, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", AlgorithmName(algorithm),
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8s %10.3f %12llu %12llu\n", AlgorithmName(algorithm),
                result->stats.build_seconds,
                static_cast<unsigned long long>(result->stats.barrier_waits),
                static_cast<unsigned long long>(result->stats.condvar_waits));
  }

  // Persist the pruned model; a scoring service would reload it with
  // DeserializeTree.
  const std::string serialized = SerializeTree(*pruned->tree);
  auto reloaded = DeserializeTree(generated->schema(), serialized);
  if (!reloaded.ok() || !TreesEqual(*pruned->tree, *reloaded)) {
    std::fprintf(stderr, "model round-trip failed\n");
    return 1;
  }
  std::printf("\nmodel serialized to %zu bytes and reloaded bit-exactly\n",
              serialized.size());

  const ConfusionMatrix cm = EvaluateTree(*pruned->tree, split->test);
  std::printf("\nheld-out confusion matrix:\n%s",
              cm.ToString(generated->schema()).c_str());
  return 0;
}
