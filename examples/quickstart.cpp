// Quickstart: generate a synthetic training set, build a decision tree with
// the MWK parallel algorithm, inspect it, evaluate it, and export it as SQL.
//
//   $ ./build/examples/quickstart
//
// This walks the whole public API surface in ~60 lines of user code.

#include <cstdio>

#include "core/classifier.h"
#include "core/metrics.h"
#include "core/sql_export.h"
#include "data/sampling.h"
#include "data/synthetic.h"

int main() {
  using namespace smptree;

  // 1. Data: function 2 of the classification benchmark the paper uses
  // (age bands with salary ranges), 20,000 tuples, nine attributes.
  SyntheticConfig data_cfg;
  data_cfg.function = 2;
  data_cfg.num_tuples = 20000;
  data_cfg.seed = 7;
  auto generated = GenerateSynthetic(data_cfg);
  if (!generated.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 generated.status().ToString().c_str());
    return 1;
  }

  // 2. Hold out a test set.
  auto split = SplitTrainTest(*generated, /*test_fraction=*/0.25, /*seed=*/1);
  if (!split.ok()) return 1;

  // 3. Train with the Moving-Window-K algorithm on 4 threads.
  ClassifierOptions options;
  options.build.algorithm = Algorithm::kMwk;
  options.build.num_threads = 4;
  options.build.window = 4;
  auto result = TrainClassifier(split->train, options);
  if (!result.ok()) {
    std::fprintf(stderr, "train: %s\n", result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the model and the build-phase breakdown.
  const TrainStats& stats = result->stats;
  std::printf("trained on %lld tuples in %.3fs "
              "(setup %.3fs, sort %.3fs, build %.3fs)\n",
              static_cast<long long>(split->train.num_tuples()),
              stats.total_seconds, stats.setup_seconds, stats.sort_seconds,
              stats.build_seconds);
  std::printf("tree: %lld nodes, %d levels, %lld leaves\n\n",
              static_cast<long long>(stats.tree.num_nodes), stats.tree.levels,
              static_cast<long long>(stats.tree.num_leaves));
  std::printf("%s\n", result->tree->ToString().c_str());

  // 5. Evaluate on the held-out tuples.
  const ConfusionMatrix cm = EvaluateTree(*result->tree, split->test);
  std::printf("%s\n", cm.ToString(generated->schema()).c_str());

  // 6. Classify a fresh tuple programmatically.
  TupleValues tuple = split->test.Tuple(0);
  const ClassLabel predicted = result->tree->Classify(tuple);
  std::printf("first test tuple -> %s\n\n",
              generated->schema().class_name(predicted).c_str());

  // 7. Ship the model to a database (paper section 1: trees convert to SQL).
  SqlOptions sql;
  sql.table = "customers";
  std::printf("-- classification as SQL:\n%s\n",
              TreeToSqlCase(*result->tree, sql).c_str());
  return 0;
}
