// Retail target-marketing scenario (the paper's first named application).
// The response model is categorical-heavy: education level, car make and
// zipcode drive the label (synthetic function 3 plus categorical noise
// columns), exercising subset splits -- including the greedy subsetting path
// for the 20-value "car" domain -- rather than numeric thresholds.
//
//   $ ./build/examples/target_marketing

#include <cstdio>

#include "core/classifier.h"
#include "core/metrics.h"
#include "core/sql_export.h"
#include "data/sampling.h"
#include "data/synthetic.h"

int main() {
  using namespace smptree;

  SyntheticConfig cfg;
  cfg.function = 3;  // age bands x education level
  cfg.num_attrs = 13;
  cfg.num_tuples = 25000;
  cfg.seed = 99;
  auto generated = GenerateSynthetic(cfg);
  if (!generated.ok()) return 1;
  auto split = SplitTrainTest(*generated, 0.2, 3);
  if (!split.ok()) return 1;

  std::printf("campaign dataset %s (%lld train tuples)\n", cfg.Name().c_str(),
              static_cast<long long>(split->train.num_tuples()));

  // Force greedy subsetting for every categorical domain above cardinality
  // 4 to show it matches the exhaustive default on this data.
  ClassifierOptions exhaustive;
  exhaustive.build.algorithm = Algorithm::kSubtree;
  exhaustive.build.num_threads = 4;
  ClassifierOptions greedy = exhaustive;
  greedy.build.gini.max_exhaustive_cardinality = 4;

  auto a = TrainClassifier(split->train, exhaustive);
  auto b = TrainClassifier(split->train, greedy);
  if (!a.ok() || !b.ok()) return 1;

  std::printf("\n%-26s %10s %12s\n", "categorical search", "nodes",
              "test acc");
  std::printf("%-26s %10lld %12.4f\n", "exhaustive (card <= 12)",
              static_cast<long long>(a->tree->num_nodes()),
              TreeAccuracy(*a->tree, split->test));
  std::printf("%-26s %10lld %12.4f\n", "greedy (card > 4)",
              static_cast<long long>(b->tree->num_nodes()),
              TreeAccuracy(*b->tree, split->test));

  std::printf("\nresponse model:\n%s\n", a->tree->ToString().c_str());

  // The marketing team pulls the "Group A" (responder) audience straight
  // from the warehouse with the exported SQL.
  SqlOptions sql;
  sql.table = "prospects";
  const auto selects = TreeToSqlSelects(*a->tree, sql);
  std::printf("audience query:\n%s\n", selects[0].c_str());

  const ConfusionMatrix cm = EvaluateTree(*a->tree, split->test);
  std::printf("\nhold-out confusion matrix:\n%s",
              cm.ToString(generated->schema()).c_str());
  return 0;
}
