// Out-of-core training: the paper's Machine A configuration, where the
// attribute lists do not fit in memory and every level's lists round-trip
// through physical files on local disk. The builders are identical -- only
// the storage Env changes -- and this example reports the file traffic the
// reusable four-files-per-attribute scheme generates.
//
//   $ ./build/examples/out_of_core [num_tuples]

#include <cstdio>
#include <cstdlib>

#include "core/classifier.h"
#include "core/metrics.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace smptree;

  SyntheticConfig cfg;
  cfg.function = 7;
  cfg.num_attrs = 32;
  cfg.num_tuples = argc > 1 ? std::atoll(argv[1]) : 20000;
  auto data = GenerateSynthetic(cfg);
  if (!data.ok()) return 1;
  std::printf("dataset %s, %s in memory\n", cfg.Name().c_str(),
              data->SizeBytes() > (1u << 20) ? "MBs" : "KBs");

  for (bool on_disk : {false, true}) {
    ClassifierOptions options;
    options.build.algorithm = Algorithm::kMwk;
    options.build.num_threads = 4;
    options.build.env = on_disk ? Env::Posix() : nullptr;
    auto result = TrainClassifier(*data, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const TrainStats& stats = result->stats;
    const uint64_t bytes_moved =
        (stats.records_read + stats.records_written) * sizeof(AttrRecord);
    std::printf(
        "\n[%s] build %.3fs, total %.3fs\n"
        "  attribute-file traffic: %llu records read, %llu written "
        "(~%.1f MB through the storage layer)\n"
        "  tree: %lld nodes, %d levels; training accuracy %.4f\n",
        on_disk ? "posix disk files (Machine A)" : "in-memory files (Machine B)",
        stats.build_seconds, stats.total_seconds,
        static_cast<unsigned long long>(stats.records_read),
        static_cast<unsigned long long>(stats.records_written),
        static_cast<double>(bytes_moved) / (1 << 20),
        static_cast<long long>(stats.tree.num_nodes), stats.tree.levels,
        TreeAccuracy(*result->tree, *data));
  }
  std::printf(
      "\nboth runs build the identical tree; only where the attribute\n"
      "lists live differs (paper sections 4.2 vs 4.3).\n");
  return 0;
}
