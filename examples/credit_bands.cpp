// Multiclass scenario: credit-scoring bands. The published benchmark is
// two-class; the library's multiclass generator quantizes the
// disposable-income surface into k bands, here standing in for credit
// grades A-E. Demonstrates k-way classification end-to-end: training with
// SUBTREE+MWK (the hybrid of paper section 3.4), per-band confusion, the
// entropy criterion as an alternative, and Graphviz export.
//
//   $ ./build/examples/credit_bands

#include <cstdio>

#include "core/classifier.h"
#include "core/dot_export.h"
#include "core/metrics.h"
#include "data/sampling.h"
#include "data/synthetic.h"

int main() {
  using namespace smptree;

  MulticlassConfig cfg;
  cfg.num_classes = 5;  // grades A..E
  cfg.num_attrs = 12;
  cfg.num_tuples = 25000;
  cfg.label_noise = 0.05;
  cfg.seed = 31337;
  auto generated = GenerateMulticlassSynthetic(cfg);
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  auto split = SplitTrainTest(*generated, 0.25, 9);
  if (!split.ok()) return 1;
  std::printf("credit dataset: %d grades, %lld train tuples, 5%% noise\n",
              cfg.num_classes,
              static_cast<long long>(split->train.num_tuples()));

  for (SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kEntropy}) {
    ClassifierOptions options;
    options.build.algorithm = Algorithm::kSubtree;
    options.build.subtree_subroutine = Algorithm::kMwk;
    options.build.num_threads = 4;
    options.build.gini.criterion = criterion;
    options.prune.method = PruneOptions::Method::kCostComplexity;
    options.prune.split_penalty = 2.0;
    auto result = TrainClassifier(split->train, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("\n[%s] %lld nodes, %d levels, built in %.3fs\n",
                criterion == SplitCriterion::kGini ? "gini" : "entropy",
                static_cast<long long>(result->tree->num_nodes()),
                result->tree->Stats().levels, result->stats.build_seconds);
    const ConfusionMatrix cm =
        EvaluateTreeParallel(*result->tree, split->test, 4);
    std::printf("%s", cm.ToString(generated->schema()).c_str());

    if (criterion == SplitCriterion::kGini) {
      DotOptions dot;
      dot.show_counts = false;
      const std::string graph = TreeToDot(*result->tree, dot);
      std::printf("\nGraphviz export: %zu bytes (pipe through `dot -Tpng`)\n",
                  graph.size());
    }
  }
  return 0;
}
