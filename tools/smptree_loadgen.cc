// smptree_loadgen: closed-loop load generator and swiss-army HTTP client
// for the inference server.
//
//   smptree_loadgen --port N --op predict --schema F --data F
//                   [--batch 32] [--concurrency 4] [--requests 200]
//                   [--model F]    # verify labels against the local model
//   smptree_loadgen --port N --op reload --model PATH
//   smptree_loadgen --port N --op healthz|statz
//
// predict: `concurrency` client threads each hold one keep-alive
// connection and replay batches of CSV rows until `requests` requests have
// been sent (closed loop: the next request leaves only when the previous
// response arrived). Prints throughput and a latency histogram. With
// --model, every response's label codes are checked against a local
// Tree::Classify of the same rows -- the end-to-end exactness check.
// Exit status: 0 iff every request succeeded (and verification passed).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/tree_io.h"
#include "data/csv.h"
#include "data/schema_io.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/latency_histogram.h"
#include "serve/model_store.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace smptree {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: smptree_loadgen --port N --op predict|reload|healthz|statz\n"
      "  [--host A] [--schema F] [--data F] [--batch N] [--concurrency N]\n"
      "  [--requests N] [--model F]\n");
  return 1;
}

/// Builds the predict request body for rows [begin, begin+count) of `data`.
std::string PredictBody(const Dataset& data, int64_t begin, int64_t count) {
  std::string body = "{\"tuples\": [";
  for (int64_t t = 0; t < count; ++t) {
    if (t > 0) body += ",";
    body += "[";
    const int64_t row = begin + t;
    for (int a = 0; a < data.num_attrs(); ++a) {
      if (a > 0) body += ",";
      const AttrValue v = data.value(row, a);
      if (data.schema().attr(a).is_categorical()) {
        body += StringPrintf("%d", v.cat);
      } else if (IsMissing(v.f)) {
        body += "null";
      } else {
        body += StringPrintf("%.9g", static_cast<double>(v.f));
      }
    }
    body += "]";
  }
  body += "]}";
  return body;
}

struct PredictShared {
  const Dataset* data = nullptr;
  // Local verification model (both null: skip verification). --model sniffs
  // the file's header line, so the same flag verifies tree and forest
  // servers alike.
  const DecisionTree* verify_tree = nullptr;
  const Forest* verify_forest = nullptr;
  std::string host;
  uint16_t port = 0;
  int64_t batch = 32;
  int64_t requests = 200;
  std::atomic<int64_t> next_request{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> tuples{0};
  LatencyHistogram latency;
};

void PredictClient(PredictShared* shared) {
  HttpClientConnection conn(shared->host, shared->port);
  const int64_t n = shared->data->num_tuples();
  for (;;) {
    const int64_t i = shared->next_request.fetch_add(1);
    if (i >= shared->requests) return;
    const int64_t count = std::min(shared->batch, n);
    const int64_t begin = (i * count) % (n - count + 1);
    const std::string body = PredictBody(*shared->data, begin, count);

    Timer timer;
    auto response = conn.Call("POST", "/v1/predict", body);
    shared->latency.Record(static_cast<uint64_t>(timer.Seconds() * 1e9));
    if (!response.ok() || response->status != 200) {
      shared->errors.fetch_add(1);
      if (!response.ok()) {
        std::fprintf(stderr, "request %lld: %s\n", static_cast<long long>(i),
                     response.status().ToString().c_str());
      } else {
        std::fprintf(stderr, "request %lld: HTTP %d: %s",
                     static_cast<long long>(i), response->status,
                     response->body.c_str());
      }
      continue;
    }
    shared->tuples.fetch_add(static_cast<uint64_t>(count));
    if (shared->verify_tree == nullptr && shared->verify_forest == nullptr) {
      continue;
    }

    auto doc = ParseJson(response->body);
    const JsonValue* codes = doc.ok() ? doc->Find("codes") : nullptr;
    if (codes == nullptr || !codes->is_array() ||
        static_cast<int64_t>(codes->array_items().size()) != count) {
      shared->mismatches.fetch_add(1);
      continue;
    }
    TupleValues row;
    for (int64_t t = 0; t < count; ++t) {
      row = shared->data->Tuple(begin + t);
      const ClassLabel expected = shared->verify_forest != nullptr
                                      ? shared->verify_forest->Classify(row)
                                      : shared->verify_tree->Classify(row);
      const double got = codes->array_items()[static_cast<size_t>(t)]
                             .number_value();
      if (static_cast<ClassLabel>(got) != expected) {
        shared->mismatches.fetch_add(1);
        std::fprintf(stderr,
                     "request %lld row %lld: server said %d, tree says %d\n",
                     static_cast<long long>(i), static_cast<long long>(t),
                     static_cast<int>(got), static_cast<int>(expected));
      }
    }
  }
}

int RunPredict(const std::map<std::string, std::string>& flags,
               const std::string& host, uint16_t port) {
  const auto get = [&](const std::string& name) {
    const auto it = flags.find(name);
    return it == flags.end() ? std::string() : it->second;
  };
  if (get("schema").empty() || get("data").empty()) {
    return Fail("predict needs --schema and --data");
  }
  auto schema = ReadSchemaFile(get("schema"));
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto data = ReadCsv(*schema, get("data"));
  if (!data.ok()) return Fail(data.status().ToString());
  if (data->num_tuples() == 0) return Fail("no tuples in --data");

  PredictShared shared;
  shared.data = &*data;
  shared.host = host;
  shared.port = port;

  int64_t concurrency = 4;
  const auto parse = [&](const std::string& name, int64_t* out) {
    return get(name).empty() || ParseInt64(get(name), out);
  };
  if (!parse("batch", &shared.batch) || !parse("requests", &shared.requests) ||
      !parse("concurrency", &concurrency) || shared.batch < 1 ||
      shared.requests < 1 || concurrency < 1) {
    return Fail("bad numeric flag");
  }

  Result<DecisionTree> verify_tree = Status::NotFound("unused");
  Result<Forest> verify_forest = Status::NotFound("unused");
  if (!get("model").empty()) {
    auto is_forest = ModelStore::IsForestFile(get("model"));
    if (!is_forest.ok()) return Fail(is_forest.status().ToString());
    if (*is_forest) {
      verify_forest = ModelStore::LoadForestFile(*schema, get("model"));
      if (!verify_forest.ok()) return Fail(verify_forest.status().ToString());
      shared.verify_forest = &*verify_forest;
    } else {
      verify_tree = ModelStore::LoadTreeFile(*schema, get("model"));
      if (!verify_tree.ok()) return Fail(verify_tree.status().ToString());
      shared.verify_tree = &*verify_tree;
    }
  }

  Timer elapsed;
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(concurrency));
  for (int64_t c = 0; c < concurrency; ++c) {
    clients.emplace_back(PredictClient, &shared);
  }
  for (std::thread& t : clients) t.join();
  const double seconds = elapsed.Seconds();

  const uint64_t errors = shared.errors.load();
  const uint64_t mismatches = shared.mismatches.load();
  std::printf(
      "op=predict requests=%lld concurrency=%lld batch=%lld errors=%llu "
      "mismatches=%llu\n"
      "elapsed=%.3fs throughput=%.1f req/s %.1f tuples/s\n"
      "latency: %s\n%s",
      static_cast<long long>(shared.requests),
      static_cast<long long>(concurrency),
      static_cast<long long>(shared.batch),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(mismatches), seconds,
      static_cast<double>(shared.requests) / seconds,
      static_cast<double>(shared.tuples.load()) / seconds,
      shared.latency.Summary().c_str(), shared.latency.ToAscii().c_str());
  return errors == 0 && mismatches == 0 ? 0 : 1;
}

int RunSimpleOp(const std::string& op,
                const std::map<std::string, std::string>& flags,
                const std::string& host, uint16_t port) {
  HttpClientConnection conn(host, port);
  Result<HttpClientResponse> response = Status::Internal("unreachable");
  if (op == "reload") {
    const auto it = flags.find("model");
    if (it == flags.end()) return Fail("reload needs --model");
    response =
        conn.Call("POST", "/v1/reload", "{\"model\": " + JsonQuote(it->second) + "}");
  } else if (op == "healthz" || op == "statz") {
    response = conn.Call("GET", "/" + op, "");
  } else {
    return Usage();
  }
  if (!response.ok()) return Fail(response.status().ToString());
  std::printf("%s", response->body.c_str());
  return response->status == 200 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) return Usage();
    flags[arg.substr(2)] = argv[++i];
  }
  const auto host_it = flags.find("host");
  const std::string host =
      host_it == flags.end() ? "127.0.0.1" : host_it->second;
  int64_t port = 0;
  const auto port_it = flags.find("port");
  if (port_it == flags.end() || !ParseInt64(port_it->second, &port) ||
      port < 1 || port > 65535) {
    return Fail("--port is required (1..65535)");
  }
  const auto op_it = flags.find("op");
  const std::string op = op_it == flags.end() ? "predict" : op_it->second;
  if (op == "predict") {
    return RunPredict(flags, host, static_cast<uint16_t>(port));
  }
  return RunSimpleOp(op, flags, host, static_cast<uint16_t>(port));
}

}  // namespace
}  // namespace smptree

int main(int argc, char** argv) { return smptree::Main(argc, argv); }
