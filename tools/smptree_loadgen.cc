// smptree_loadgen: load generator and swiss-army HTTP client for the
// inference server.
//
//   smptree_loadgen --port N --op predict --schema F --data F
//                   [--batch 32] [--concurrency 4] [--requests 200]
//                   [--rate R] [--timeout-ms T]
//                   [--model F]    # verify labels against the local model
//   smptree_loadgen --port N --op reload --model PATH
//   smptree_loadgen --port N --op healthz|statz
//
// predict: `concurrency` client threads each hold one keep-alive
// connection and replay batches of CSV rows until `requests` requests have
// been sent. Prints throughput and a latency histogram. With --model,
// every response's label codes are checked against a local Classify of the
// same rows -- the end-to-end exactness check.
//
// Two arrival disciplines:
//   - closed loop (default): the next request leaves only when the
//     previous response arrived. Measures service capacity, but under
//     overload the arrival rate collapses to the service rate, so tail
//     latency looks flat no matter how slow the server is (coordinated
//     omission).
//   - open loop (--rate R): request i is *scheduled* at start + i/R
//     seconds regardless of how the server is doing, and its latency is
//     measured from that scheduled time -- queueing delay the server
//     causes is charged to the server. A request whose turn comes more
//     than --timeout-ms past its schedule is counted `dropped` and never
//     sent (the client fleet has fallen hopelessly behind); a sent request
//     slower than --timeout-ms counts in `timeouts`. p99 under overload is
//     honest: drops and timeouts say the offered rate exceeded capacity.
//
// Exit status: 0 iff every sent request succeeded (and verification
// passed); drops/timeouts are reported but are measurement outcomes, not
// client failures.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/tree_io.h"
#include "data/csv.h"
#include "data/schema_io.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/latency_histogram.h"
#include "serve/model_store.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace smptree {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: smptree_loadgen --port N --op predict|reload|healthz|statz\n"
      "  [--host A] [--schema F] [--data F] [--batch N] [--concurrency N]\n"
      "  [--requests N] [--rate R] [--timeout-ms T] [--model F]\n");
  return 1;
}

/// Builds the predict request body for rows [begin, begin+count) of `data`.
std::string PredictBody(const Dataset& data, int64_t begin, int64_t count) {
  std::string body = "{\"tuples\": [";
  for (int64_t t = 0; t < count; ++t) {
    if (t > 0) body += ",";
    body += "[";
    const int64_t row = begin + t;
    for (int a = 0; a < data.num_attrs(); ++a) {
      if (a > 0) body += ",";
      const AttrValue v = data.value(row, a);
      if (data.schema().attr(a).is_categorical()) {
        body += StringPrintf("%d", v.cat);
      } else if (IsMissing(v.f)) {
        body += "null";
      } else {
        body += StringPrintf("%.9g", static_cast<double>(v.f));
      }
    }
    body += "]";
  }
  body += "]}";
  return body;
}

struct PredictShared {
  const Dataset* data = nullptr;
  // Local verification model (both null: skip verification). --model sniffs
  // the file's header line, so the same flag verifies tree and forest
  // servers alike.
  const DecisionTree* verify_tree = nullptr;
  const Forest* verify_forest = nullptr;
  std::string host;
  uint16_t port = 0;
  int64_t batch = 32;
  int64_t requests = 200;
  // Open-loop schedule: request i is due at start + i/rate. rate 0 keeps
  // the classic closed loop.
  double rate = 0.0;
  int64_t timeout_ms = 1000;
  std::chrono::steady_clock::time_point start;
  std::atomic<int64_t> next_request{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> tuples{0};
  std::atomic<uint64_t> dropped{0};   ///< open loop: never sent, too stale
  std::atomic<uint64_t> timeouts{0};  ///< open loop: sent, over timeout
  LatencyHistogram latency;
};

void PredictClient(PredictShared* shared) {
  HttpClientConnection conn(shared->host, shared->port);
  const int64_t n = shared->data->num_tuples();
  for (;;) {
    const int64_t i = shared->next_request.fetch_add(1);
    if (i >= shared->requests) return;
    const int64_t count = std::min(shared->batch, n);
    const int64_t begin = (i * count) % (n - count + 1);
    const std::string body = PredictBody(*shared->data, begin, count);

    // Open loop: wait for the request's scheduled send time; if that time
    // is already more than the timeout in the past, the fleet is hopelessly
    // behind the offered rate -- count a drop instead of measuring a
    // request no real client would still be waiting on.
    std::chrono::steady_clock::time_point scheduled;
    if (shared->rate > 0.0) {
      scheduled = shared->start +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(i) / shared->rate));
      const auto now = std::chrono::steady_clock::now();
      if (now < scheduled) {
        std::this_thread::sleep_until(scheduled);
      } else if (now - scheduled > std::chrono::milliseconds(
                                       shared->timeout_ms)) {
        shared->dropped.fetch_add(1);
        continue;
      }
    }

    Timer timer;
    auto response = conn.Call("POST", "/v1/predict", body);
    // Open loop measures from the *scheduled* time, so queueing delay the
    // server causes is charged to it (no coordinated omission).
    const uint64_t nanos =
        shared->rate > 0.0
            ? static_cast<uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - scheduled)
                      .count())
            : static_cast<uint64_t>(timer.Seconds() * 1e9);
    shared->latency.Record(nanos);
    if (shared->rate > 0.0 &&
        nanos > static_cast<uint64_t>(shared->timeout_ms) * 1000000ull) {
      shared->timeouts.fetch_add(1);
    }
    if (!response.ok() || response->status != 200) {
      shared->errors.fetch_add(1);
      if (!response.ok()) {
        std::fprintf(stderr, "request %lld: %s\n", static_cast<long long>(i),
                     response.status().ToString().c_str());
      } else {
        std::fprintf(stderr, "request %lld: HTTP %d: %s",
                     static_cast<long long>(i), response->status,
                     response->body.c_str());
      }
      continue;
    }
    shared->tuples.fetch_add(static_cast<uint64_t>(count));
    if (shared->verify_tree == nullptr && shared->verify_forest == nullptr) {
      continue;
    }

    auto doc = ParseJson(response->body);
    const JsonValue* codes = doc.ok() ? doc->Find("codes") : nullptr;
    if (codes == nullptr || !codes->is_array() ||
        static_cast<int64_t>(codes->array_items().size()) != count) {
      shared->mismatches.fetch_add(1);
      continue;
    }
    TupleValues row;
    for (int64_t t = 0; t < count; ++t) {
      row = shared->data->Tuple(begin + t);
      const ClassLabel expected = shared->verify_forest != nullptr
                                      ? shared->verify_forest->Classify(row)
                                      : shared->verify_tree->Classify(row);
      const double got = codes->array_items()[static_cast<size_t>(t)]
                             .number_value();
      if (static_cast<ClassLabel>(got) != expected) {
        shared->mismatches.fetch_add(1);
        std::fprintf(stderr,
                     "request %lld row %lld: server said %d, tree says %d\n",
                     static_cast<long long>(i), static_cast<long long>(t),
                     static_cast<int>(got), static_cast<int>(expected));
      }
    }
  }
}

int RunPredict(const std::map<std::string, std::string>& flags,
               const std::string& host, uint16_t port) {
  const auto get = [&](const std::string& name) {
    const auto it = flags.find(name);
    return it == flags.end() ? std::string() : it->second;
  };
  if (get("schema").empty() || get("data").empty()) {
    return Fail("predict needs --schema and --data");
  }
  auto schema = ReadSchemaFile(get("schema"));
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto data = ReadCsv(*schema, get("data"));
  if (!data.ok()) return Fail(data.status().ToString());
  if (data->num_tuples() == 0) return Fail("no tuples in --data");

  PredictShared shared;
  shared.data = &*data;
  shared.host = host;
  shared.port = port;

  int64_t concurrency = 4;
  const auto parse = [&](const std::string& name, int64_t* out) {
    return get(name).empty() || ParseInt64(get(name), out);
  };
  if (!parse("batch", &shared.batch) || !parse("requests", &shared.requests) ||
      !parse("concurrency", &concurrency) ||
      !parse("timeout-ms", &shared.timeout_ms) || shared.batch < 1 ||
      shared.requests < 1 || concurrency < 1 || shared.timeout_ms < 1) {
    return Fail("bad numeric flag");
  }
  if (!get("rate").empty() &&
      (!ParseDouble(get("rate"), &shared.rate) || shared.rate < 0.0)) {
    return Fail("bad --rate");
  }

  Result<DecisionTree> verify_tree = Status::NotFound("unused");
  Result<Forest> verify_forest = Status::NotFound("unused");
  if (!get("model").empty()) {
    auto is_forest = ModelStore::IsForestFile(get("model"));
    if (!is_forest.ok()) return Fail(is_forest.status().ToString());
    if (*is_forest) {
      verify_forest = ModelStore::LoadForestFile(*schema, get("model"));
      if (!verify_forest.ok()) return Fail(verify_forest.status().ToString());
      shared.verify_forest = &*verify_forest;
    } else {
      verify_tree = ModelStore::LoadTreeFile(*schema, get("model"));
      if (!verify_tree.ok()) return Fail(verify_tree.status().ToString());
      shared.verify_tree = &*verify_tree;
    }
  }

  Timer elapsed;
  shared.start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(concurrency));
  for (int64_t c = 0; c < concurrency; ++c) {
    clients.emplace_back(PredictClient, &shared);
  }
  for (std::thread& t : clients) t.join();
  const double seconds = elapsed.Seconds();

  const uint64_t errors = shared.errors.load();
  const uint64_t mismatches = shared.mismatches.load();
  const uint64_t dropped = shared.dropped.load();
  const uint64_t sent = static_cast<uint64_t>(shared.requests) - dropped;
  std::printf(
      "op=predict requests=%lld concurrency=%lld batch=%lld errors=%llu "
      "mismatches=%llu\n",
      static_cast<long long>(shared.requests),
      static_cast<long long>(concurrency),
      static_cast<long long>(shared.batch),
      static_cast<unsigned long long>(errors),
      static_cast<unsigned long long>(mismatches));
  if (shared.rate > 0.0) {
    std::printf(
        "open-loop: offered=%.1f req/s achieved=%.1f req/s sent=%llu "
        "dropped=%llu timeouts=%llu timeout-ms=%lld\n",
        shared.rate, static_cast<double>(sent) / seconds,
        static_cast<unsigned long long>(sent),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(shared.timeouts.load()),
        static_cast<long long>(shared.timeout_ms));
  }
  std::printf(
      "elapsed=%.3fs throughput=%.1f req/s %.1f tuples/s\n"
      "latency: %s\n%s",
      seconds, static_cast<double>(sent) / seconds,
      static_cast<double>(shared.tuples.load()) / seconds,
      shared.latency.Summary().c_str(), shared.latency.ToAscii().c_str());
  return errors == 0 && mismatches == 0 ? 0 : 1;
}

int RunSimpleOp(const std::string& op,
                const std::map<std::string, std::string>& flags,
                const std::string& host, uint16_t port) {
  HttpClientConnection conn(host, port);
  Result<HttpClientResponse> response = Status::Internal("unreachable");
  if (op == "reload") {
    const auto it = flags.find("model");
    if (it == flags.end()) return Fail("reload needs --model");
    response =
        conn.Call("POST", "/v1/reload", "{\"model\": " + JsonQuote(it->second) + "}");
  } else if (op == "healthz" || op == "statz") {
    response = conn.Call("GET", "/" + op, "");
  } else {
    return Usage();
  }
  if (!response.ok()) return Fail(response.status().ToString());
  std::printf("%s", response->body.c_str());
  return response->status == 200 ? 0 : 1;
}

int Main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) return Usage();
    flags[arg.substr(2)] = argv[++i];
  }
  const auto host_it = flags.find("host");
  const std::string host =
      host_it == flags.end() ? "127.0.0.1" : host_it->second;
  int64_t port = 0;
  const auto port_it = flags.find("port");
  if (port_it == flags.end() || !ParseInt64(port_it->second, &port) ||
      port < 1 || port > 65535) {
    return Fail("--port is required (1..65535)");
  }
  const auto op_it = flags.find("op");
  const std::string op = op_it == flags.end() ? "predict" : op_it->second;
  if (op == "predict") {
    return RunPredict(flags, host, static_cast<uint16_t>(port));
  }
  return RunSimpleOp(op, flags, host, static_cast<uint16_t>(port));
}

}  // namespace
}  // namespace smptree

int main(int argc, char** argv) { return smptree::Main(argc, argv); }
