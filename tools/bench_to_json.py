#!/usr/bin/env python3
"""Convert raw bench output to the checked-in BENCH_*.json artifacts.

Two input formats, detected automatically:

  * google-benchmark JSON from bench/micro_kernels -> BENCH_core.json
      ./build/bench/micro_kernels --benchmark_out=gbench.json \
          --benchmark_out_format=json
      python3 tools/bench_to_json.py gbench.json -o BENCH_core.json

  * "suite": "parallel_builders" JSON from bench/speedup_builders
    -> BENCH_parallel.json
      ./build/bench/speedup_builders --threads 1,2,4 --out runs.json
      python3 tools/bench_to_json.py runs.json -o BENCH_parallel.json

  * "suite": "forest_speedup" JSON from bench/forest_speedup
    -> BENCH_forest.json
      ./build/bench/forest_speedup --trees 2,8 --threads 1,2,4 \
          --out forest.json
      python3 tools/bench_to_json.py forest.json -o BENCH_forest.json

  * "suite": "binned_vs_sorted" JSON from bench/binned_vs_sorted
    -> BENCH_binned.json
      ./build/bench/binned_vs_sorted --out binned.json
      python3 tools/bench_to_json.py binned.json -o BENCH_binned.json

  * "suite": "infer_throughput" JSON from bench/infer_throughput
    -> BENCH_infer.json
      ./build/bench/infer_throughput --out infer.json
      python3 tools/bench_to_json.py infer.json -o BENCH_infer.json

  * "suite": "serve_scaling" JSON from bench/serve_scaling
    -> BENCH_serve.json
      ./build/bench/serve_scaling --out serve.json
      python3 tools/bench_to_json.py serve.json -o BENCH_serve.json

  * "suite": "stream_throughput" JSON from bench/stream_throughput
    -> BENCH_stream.json
      ./build/bench/stream_throughput --out stream.json
      python3 tools/bench_to_json.py stream.json -o BENCH_stream.json

Validation mode schema-checks checked-in artifacts instead of converting:

      python3 tools/bench_to_json.py --validate [BENCH_x.json ...]

With no files it globs BENCH_*.json in the current directory. Every file
must parse, carry its suite's required keys, and contain no NaN/Infinity
and no null in a required numeric field; any violation is a hard failure.
A file named like a checked-in artifact (basename BENCH_*.json) must also
carry the suite that belongs at that name -- BENCH_stream.json claiming
"suite": "serve_scaling" is rejected, so an artifact can never be silently
overwritten by the wrong bench's output.

For the kernel suite the output is per-benchmark ns/record (derived from
items_per_second) plus the AoS-vs-SoA / direct-vs-buffered speedup ratios.
Benchmark family names are a contract with bench/micro_kernels.cc -- see the
header comment there before renaming anything.

For the parallel suite the output groups runs by (function, algorithm) and
derives, per thread count, the build-time speedup relative to that
algorithm's threads=1 run plus the wait share
(wait_seconds / (threads * build_seconds)). A missing threads=1 baseline for
any series is an error: speedups would be meaningless.
"""

import argparse
import json
import os
import sys

# (json key, slow family, fast family) -> derived "slow/fast" speedup.
SPEEDUP_PAIRS = [
    ("e_scan_2class_speedup", "EScan/aos_2class", "EScan/soa_2class"),
    ("e_scan_8class_speedup", "EScan/aos_8class", "EScan/soa_8class"),
    ("categorical_tabulate_speedup", "CatTabulate/aos", "CatTabulate/soa"),
    ("split_phase_buffered_speedup", "SplitPhase/direct", "SplitPhase/buffered"),
]

CONTEXT_KEYS = ("date", "host_name", "num_cpus", "mhz_per_cpu",
                "library_build_type")


def ns_per_record(bench):
    ips = bench.get("items_per_second")
    if not ips:
        return None
    return 1e9 / ips


def family_of(name):
    """'EScan/aos_2class/131072/min_time:0.020' -> 'EScan/aos_2class'."""
    parts = name.split("/")
    keep = [parts[0]]
    for part in parts[1:]:
        if part.isdigit() or ":" in part:
            break
        keep.append(part)
    return "/".join(keep)


def convert_kernels(raw, output):
    benchmarks = []
    by_family = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {
            "name": bench["name"],
            "real_time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "items_per_second": bench.get("items_per_second"),
            "ns_per_record": ns_per_record(bench),
        }
        benchmarks.append(entry)
        # Last run of a family wins (largest Arg when sizes ascend).
        by_family[family_of(bench["name"])] = entry

    derived = {}
    for key, slow, fast in SPEEDUP_PAIRS:
        a = by_family.get(slow)
        b = by_family.get(fast)
        if a and b and a["ns_per_record"] and b["ns_per_record"]:
            derived[key] = round(a["ns_per_record"] / b["ns_per_record"], 3)
        else:
            derived[key] = None

    context = raw.get("context", {})
    out = {
        "schema_version": 1,
        "suite": "core_kernels",
        "context": {k: context.get(k) for k in CONTEXT_KEYS},
        "benchmarks": benchmarks,
        "derived": derived,
    }
    with open(output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(benchmarks)} benchmarks)")
    missing = [k for k, v in derived.items() if v is None]
    if missing:
        print(f"warning: missing inputs for: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    return 0


def convert_parallel(raw, output):
    series = {}  # (function, algorithm) -> {threads: run}
    for run in raw.get("runs", []):
        key = (run["function"], run["algorithm"])
        series.setdefault(key, {})[run["threads"]] = run

    out_series = []
    errors = []
    for (function, algorithm), by_threads in sorted(series.items()):
        base = by_threads.get(1)
        if base is None or not base.get("build_seconds"):
            errors.append(f"F{function}/{algorithm}: no threads=1 baseline")
            continue
        points = []
        for threads in sorted(by_threads):
            run = by_threads[threads]
            build = run["build_seconds"]
            wait = run.get("wait_seconds", 0.0)
            points.append({
                "threads": threads,
                "build_seconds": round(build, 6),
                "speedup": round(base["build_seconds"] / build, 3)
                if build else None,
                "wait_share": round(wait / (threads * build), 4)
                if build else None,
                "e_seconds": round(run.get("e_seconds", 0.0), 6),
                "w_seconds": round(run.get("w_seconds", 0.0), 6),
                "s_seconds": round(run.get("s_seconds", 0.0), 6),
                "barrier_waits": run.get("barrier_waits"),
                "condvar_waits": run.get("condvar_waits"),
            })
        out_series.append({
            "function": function,
            "algorithm": algorithm,
            "records_scanned": base.get("records_scanned"),
            "records_split": base.get("records_split"),
            "points": points,
        })

    out = {
        "schema_version": 1,
        "suite": "parallel_builders",
        "context": raw.get("context", {}),
        "series": out_series,
    }
    with open(output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(out_series)} series)")
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    if not out_series:
        print("error: no runs in input", file=sys.stderr)
        return 1
    return 0


def convert_forest(raw, output):
    """Groups the timed sweep by (trees, inner, schedule) and derives, per
    thread count, the speedup vs that series' threads=1 run. Runs with
    schedule == "oob" are the ensemble-size sweep and become a separate
    "oob_curve" section instead."""
    series = {}  # (trees, inner, schedule) -> {threads: run}
    oob_curve = []
    for run in raw.get("runs", []):
        if run.get("schedule") == "oob":
            oob_curve.append({
                "trees": run["trees"],
                "oob_accuracy": round(run["oob_accuracy"], 4),
                "train_seconds": round(run["train_seconds"], 6),
            })
            continue
        key = (run["trees"], run["inner"], run["schedule"])
        series.setdefault(key, {})[run["threads"]] = run

    out_series = []
    errors = []
    for (trees, inner, schedule), by_threads in sorted(series.items()):
        base = by_threads.get(1)
        if base is None or not base.get("train_seconds"):
            errors.append(f"T={trees}/{inner}/{schedule}: "
                          "no threads=1 baseline")
            continue
        points = []
        for threads in sorted(by_threads):
            run = by_threads[threads]
            train = run["train_seconds"]
            points.append({
                "threads": threads,
                "split": f'{run["concurrent_trees"]}x{run["inner_threads"]}',
                "train_seconds": round(train, 6),
                "speedup": round(base["train_seconds"] / train, 3)
                if train else None,
            })
        out_series.append({
            "trees": trees,
            "inner": inner,
            "schedule": schedule,
            "points": points,
        })

    out = {
        "schema_version": 1,
        "suite": "forest_speedup",
        "context": raw.get("context", {}),
        "series": out_series,
        "oob_curve": sorted(oob_curve, key=lambda r: r["trees"]),
    }
    with open(output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(out_series)} series, "
          f"{len(oob_curve)} oob points)")
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    if not out_series:
        print("error: no runs in input", file=sys.stderr)
        return 1
    return 0


def convert_binned(raw, output):
    """Passes the per-function engine comparison through (rounded) and
    derives the headline numbers the README/EXPERIMENTS tables quote: the
    worst-case |accuracy delta| and how many functions the binned engine's
    build is faster on. Deltas are reported as-is, never clipped."""
    runs = []
    errors = []
    for run in raw.get("runs", []):
        try:
            runs.append({
                "function": run["function"],
                "tuples": run["tuples"],
                "sorted_build_ns_per_record":
                    round(run["sorted_build_ns_per_record"], 1),
                "binned_build_ns_per_record":
                    round(run["binned_build_ns_per_record"], 1),
                "build_speedup": round(run["build_speedup"], 3),
                "sorted_total_ns_per_record":
                    round(run["sorted_total_ns_per_record"], 1),
                "binned_total_ns_per_record":
                    round(run["binned_total_ns_per_record"], 1),
                "sorted_train_accuracy": round(run["sorted_train_accuracy"], 6),
                "binned_train_accuracy": round(run["binned_train_accuracy"], 6),
                "train_accuracy_delta": round(run["train_accuracy_delta"], 6),
                "sorted_test_accuracy": round(run["sorted_test_accuracy"], 6),
                "binned_test_accuracy": round(run["binned_test_accuracy"], 6),
                "test_accuracy_delta": round(run["test_accuracy_delta"], 6),
                "sorted_nodes": run["sorted_nodes"],
                "binned_nodes": run["binned_nodes"],
                "bins_scanned": run["bins_scanned"],
            })
        except KeyError as e:
            errors.append(f"run F{run.get('function', '?')}: missing {e}")

    derived = None
    if runs:
        derived = {
            "max_abs_train_accuracy_delta":
                round(max(abs(r["train_accuracy_delta"]) for r in runs), 6),
            "max_abs_test_accuracy_delta":
                round(max(abs(r["test_accuracy_delta"]) for r in runs), 6),
            "functions_build_faster":
                sum(1 for r in runs if r["build_speedup"] > 1.0),
            "functions_total": len(runs),
        }

    out = {
        "schema_version": 1,
        "suite": "binned_vs_sorted",
        "context": raw.get("context", {}),
        "runs": runs,
        "derived": derived,
    }
    with open(output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(runs)} functions)")
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    if not runs:
        print("error: no runs in input", file=sys.stderr)
        return 1
    return 0


def convert_infer(raw, output):
    """Passes the per-function pointer-vs-flat scoring comparison through
    (rounded) and derives the headline tallies EXPERIMENTS.md quotes: how
    many functions clear 2x on the single tree, on the 15-member forest,
    and on at least one of the two. Speedups are recomputed from the ns
    columns so the artifact is internally consistent after rounding. The
    infer_throughput bench aborts on any parity divergence, so a run that
    produced this JSON already proved byte-identical labels and probs."""
    runs = []
    errors = []
    for run in raw.get("runs", []):
        try:
            tree_ptr = run["tree_pointer_ns_per_tuple"]
            tree_flat = run["tree_flat_ns_per_tuple"]
            forest_ptr = run["forest_pointer_ns_per_tuple"]
            forest_flat = run["forest_flat_ns_per_tuple"]
            runs.append({
                "function": run["function"],
                "tuples": run["tuples"],
                "tree_nodes": run["tree_nodes"],
                "forest_trees": run["forest_trees"],
                "tree_pointer_ns_per_tuple": round(tree_ptr, 2),
                "tree_flat_ns_per_tuple": round(tree_flat, 2),
                "tree_speedup": round(tree_ptr / tree_flat, 3),
                "forest_pointer_ns_per_tuple": round(forest_ptr, 2),
                "forest_flat_ns_per_tuple": round(forest_flat, 2),
                "forest_speedup": round(forest_ptr / forest_flat, 3),
            })
        except KeyError as e:
            errors.append(f"run F{run.get('function', '?')}: missing {e}")
        except ZeroDivisionError:
            errors.append(f"run F{run.get('function', '?')}: zero flat time")

    sweep = []
    for row in raw.get("batch_sweep", []):
        try:
            sweep.append({
                "batch": row["batch"],
                "tree_pointer_ns_per_tuple":
                    round(row["tree_pointer_ns_per_tuple"], 2),
                "tree_flat_ns_per_tuple":
                    round(row["tree_flat_ns_per_tuple"], 2),
                "forest_pointer_ns_per_tuple":
                    round(row["forest_pointer_ns_per_tuple"], 2),
                "forest_flat_ns_per_tuple":
                    round(row["forest_flat_ns_per_tuple"], 2),
            })
        except KeyError as e:
            errors.append(f"sweep batch {row.get('batch', '?')}: missing {e}")

    derived = None
    if runs:
        derived = {
            "tree_speedup_ge2_count":
                sum(1 for r in runs if r["tree_speedup"] >= 2.0),
            "forest_speedup_ge2_count":
                sum(1 for r in runs if r["forest_speedup"] >= 2.0),
            "either_speedup_ge2_count":
                sum(1 for r in runs
                    if r["tree_speedup"] >= 2.0 or r["forest_speedup"] >= 2.0),
            "functions_total": len(runs),
            "min_tree_speedup": min(r["tree_speedup"] for r in runs),
            "max_tree_speedup": max(r["tree_speedup"] for r in runs),
            "min_forest_speedup": min(r["forest_speedup"] for r in runs),
            "max_forest_speedup": max(r["forest_speedup"] for r in runs),
        }

    out = {
        "schema_version": 1,
        "suite": "infer_throughput",
        "context": raw.get("context", {}),
        "runs": runs,
        "sweep_function": raw.get("sweep_function"),
        "batch_sweep": sweep,
        "derived": derived,
    }
    with open(output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(runs)} functions, {len(sweep)} sweep rows)")
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    if not runs:
        print("error: no runs in input", file=sys.stderr)
        return 1
    return 0


def convert_serve(raw, output):
    """Passes the open-loop connection-scaling rows through (rounded) and
    derives the headline claim EXPERIMENTS.md quotes: the largest
    connection count the epoll front end served with zero errors and zero
    drops, and its ratio to the dispatch-thread count. An epoll row at
    <= dispatch_threads connections proves nothing about the event loop,
    so the derived ratio only counts rows past the thread count."""
    runs = []
    errors = []
    for run in raw.get("runs", []):
        try:
            runs.append({
                "front_end": run["front_end"],
                "connections": run["connections"],
                "dispatch_threads": run["dispatch_threads"],
                "offered_rps": round(run["offered_rps"], 1),
                "batch": run["batch"],
                "sent": run["sent"],
                "dropped": run["dropped"],
                "timeouts": run["timeouts"],
                "errors": run["errors"],
                "tuples_per_second": round(run["tuples_per_second"], 1),
                "p50_ms": round(run["p50_ms"], 3),
                "p99_ms": round(run["p99_ms"], 3),
            })
        except KeyError as e:
            errors.append(
                f"run {run.get('front_end', '?')}/"
                f"C{run.get('connections', '?')}: missing {e}")

    derived = None
    if runs:
        threads = runs[0]["dispatch_threads"]
        clean = [r["connections"] for r in runs
                 if r["front_end"] == "epoll" and r["errors"] == 0
                 and r["dropped"] == 0]
        max_clean = max(clean, default=0)
        derived = {
            "dispatch_threads": threads,
            "epoll_max_clean_connections": max_clean,
            "epoll_connections_per_thread":
                round(max_clean / threads, 2) if threads else None,
        }

    out = {
        "schema_version": 1,
        "suite": "serve_scaling",
        "context": raw.get("context", {}),
        "runs": runs,
        "derived": derived,
    }
    with open(output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(runs)} sweep points)")
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    if not runs:
        print("error: no runs in input", file=sys.stderr)
        return 1
    return 0


def convert_stream(raw, output):
    """Passes the per-function stream-vs-batch comparison through (rounded,
    accuracy curves intact) and derives the headline claim: on how many
    functions the one-pass streaming tree lands within 2% held-out accuracy
    of the batch binned engine, plus the worst delta, the slowest ingest
    rate, and the largest bounded builder state. Deltas are reported as-is,
    never clipped."""
    runs = []
    errors = []
    for run in raw.get("runs", []):
        try:
            runs.append({
                "function": run["function"],
                "tuples": run["tuples"],
                "stream_tuples_per_second":
                    round(run["stream_tuples_per_second"], 1),
                "stream_ns_per_tuple": round(run["stream_ns_per_tuple"], 1),
                "stream_test_accuracy":
                    round(run["stream_test_accuracy"], 6),
                "batch_test_accuracy": round(run["batch_test_accuracy"], 6),
                "accuracy_delta": round(run["accuracy_delta"], 6),
                "within_2pct": run["within_2pct"],
                "stream_nodes": run["stream_nodes"],
                "batch_nodes": run["batch_nodes"],
                "splits": run["splits"],
                "deactivated_leaves": run["deactivated_leaves"],
                "stream_state_bytes": run["stream_state_bytes"],
                "accuracy_curve": run["accuracy_curve"],
            })
        except KeyError as e:
            errors.append(f"run F{run.get('function', '?')}: missing {e}")

    derived = None
    if runs:
        context = raw.get("context", {})
        derived = {
            "functions_within_2pct":
                sum(1 for r in runs if r["within_2pct"]),
            "functions_total": len(runs),
            "worst_accuracy_delta":
                round(min(r["accuracy_delta"] for r in runs), 6),
            "min_stream_tuples_per_second":
                round(min(r["stream_tuples_per_second"] for r in runs), 1),
            "max_stream_state_bytes":
                max(r["stream_state_bytes"] for r in runs),
            "peak_rss_stream_only_kb":
                context.get("peak_rss_stream_only_kb"),
        }

    out = {
        "schema_version": 1,
        "suite": "stream_throughput",
        "context": raw.get("context", {}),
        "runs": runs,
        "derived": derived,
    }
    with open(output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {output} ({len(runs)} functions)")
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    if not runs:
        print("error: no runs in input", file=sys.stderr)
        return 1
    return 0


# Suite name -> (required top-level keys,
#                [(list key, required keys per item), ...]).
VALIDATE_SCHEMAS = {
    "core_kernels": (
        ["schema_version", "suite", "context", "benchmarks", "derived"],
        [("benchmarks", ["name", "ns_per_record"])],
    ),
    "parallel_builders": (
        ["schema_version", "suite", "context", "series"],
        [("series", ["function", "algorithm", "points"])],
    ),
    "forest_speedup": (
        ["schema_version", "suite", "context", "series", "oob_curve"],
        [("series", ["trees", "inner", "schedule", "points"])],
    ),
    "binned_vs_sorted": (
        ["schema_version", "suite", "context", "runs", "derived"],
        [("runs", ["function", "sorted_build_ns_per_record",
                   "binned_build_ns_per_record", "build_speedup",
                   "sorted_train_accuracy", "binned_train_accuracy",
                   "train_accuracy_delta", "sorted_test_accuracy",
                   "binned_test_accuracy", "test_accuracy_delta"])],
    ),
    "infer_throughput": (
        ["schema_version", "suite", "context", "runs", "batch_sweep",
         "derived"],
        [("runs", ["function", "tree_nodes", "tree_pointer_ns_per_tuple",
                   "tree_flat_ns_per_tuple", "tree_speedup",
                   "forest_pointer_ns_per_tuple", "forest_flat_ns_per_tuple",
                   "forest_speedup"]),
         ("batch_sweep", ["batch", "tree_pointer_ns_per_tuple",
                          "tree_flat_ns_per_tuple"])],
    ),
    "serve_scaling": (
        ["schema_version", "suite", "context", "runs", "derived"],
        [("runs", ["front_end", "connections", "dispatch_threads",
                   "offered_rps", "batch", "sent", "dropped", "timeouts",
                   "errors", "tuples_per_second", "p50_ms", "p99_ms"])],
    ),
    "stream_throughput": (
        ["schema_version", "suite", "context", "runs", "derived"],
        [("runs", ["function", "tuples", "stream_tuples_per_second",
                   "stream_ns_per_tuple", "stream_test_accuracy",
                   "batch_test_accuracy", "accuracy_delta", "within_2pct",
                   "stream_nodes", "batch_nodes", "splits",
                   "stream_state_bytes", "accuracy_curve"])],
    ),
}

# Suite name -> the checked-in artifact basename it belongs at. A file
# named BENCH_*.json whose suite maps to a different basename is invalid.
SUITE_ARTIFACTS = {
    "core_kernels": "BENCH_core.json",
    "parallel_builders": "BENCH_parallel.json",
    "forest_speedup": "BENCH_forest.json",
    "binned_vs_sorted": "BENCH_binned.json",
    "infer_throughput": "BENCH_infer.json",
    "serve_scaling": "BENCH_serve.json",
    "stream_throughput": "BENCH_stream.json",
}


def _reject_constant(value):
    raise ValueError(f"non-finite JSON constant: {value}")


def _find_nonfinite(node, path):
    """json.load with parse_constant catches literal NaN tokens; this walk
    catches floats that slipped in some other way (defense in depth)."""
    if isinstance(node, float) and (node != node or node in
                                    (float("inf"), float("-inf"))):
        return [f"{path}: non-finite value {node!r}"]
    if isinstance(node, dict):
        return [e for k, v in node.items()
                for e in _find_nonfinite(v, f"{path}.{k}")]
    if isinstance(node, list):
        return [e for i, v in enumerate(node)
                for e in _find_nonfinite(v, f"{path}[{i}]")]
    return []


def validate_file(path):
    """Returns a list of problems (empty = valid)."""
    try:
        with open(path) as f:
            doc = json.load(f, parse_constant=_reject_constant)
    except (OSError, ValueError) as e:
        return [f"unreadable: {e}"]

    problems = _find_nonfinite(doc, "$")
    if not isinstance(doc, dict):
        return problems + ["top level is not an object"]
    suite = doc.get("suite")
    schema = VALIDATE_SCHEMAS.get(suite)
    if schema is None:
        return problems + [f"unknown suite {suite!r}"]
    basename = os.path.basename(path)
    expected = SUITE_ARTIFACTS.get(suite)
    if basename.startswith("BENCH_") and expected and basename != expected:
        problems.append(
            f"suite {suite!r} belongs at {expected!r}, not {basename!r}")
    top_keys, list_specs = schema
    for key in top_keys:
        if key not in doc:
            problems.append(f"missing top-level key {key!r}")
    if doc.get("schema_version") != 1:
        problems.append(f"schema_version is {doc.get('schema_version')!r}, "
                        "want 1")
    for list_key, item_keys in list_specs:
        items = doc.get(list_key)
        if not isinstance(items, list) or not items:
            problems.append(f"{list_key!r} missing, not a list, or empty")
            continue
        for i, item in enumerate(items):
            for key in item_keys:
                if not isinstance(item, dict) or key not in item:
                    problems.append(f"{list_key}[{i}]: missing key {key!r}")
                elif item[key] is None:
                    problems.append(f"{list_key}[{i}].{key}: null")
    return problems


def run_validate(files):
    import glob
    if not files:
        files = sorted(glob.glob("BENCH_*.json"))
    if not files:
        print("error: --validate found no BENCH_*.json files",
              file=sys.stderr)
        return 1
    failed = 0
    for path in files:
        problems = validate_file(path)
        if problems:
            failed += 1
            for p in problems:
                print(f"{path}: {p}", file=sys.stderr)
        else:
            print(f"{path}: ok")
    if failed:
        print(f"error: {failed}/{len(files)} artifacts invalid",
              file=sys.stderr)
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", nargs="*",
                    help="bench JSON file ('-' = stdin); with --validate, "
                         "artifact files (default: glob BENCH_*.json)")
    ap.add_argument("-o", "--output", default=None,
                    help="output path (default BENCH_core.json, "
                         "BENCH_parallel.json, BENCH_forest.json, "
                         "BENCH_binned.json, BENCH_infer.json, or "
                         "BENCH_serve.json by detected suite)")
    ap.add_argument("--validate", action="store_true",
                    help="schema-check checked-in BENCH_*.json artifacts "
                         "instead of converting")
    args = ap.parse_args()

    if args.validate:
        return run_validate(args.input)

    if len(args.input) != 1:
        ap.error("convert mode takes exactly one input file")
    if args.input[0] == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.input[0]) as f:
            raw = json.load(f)

    if raw.get("suite") == "parallel_builders":
        return convert_parallel(raw, args.output or "BENCH_parallel.json")
    if raw.get("suite") == "forest_speedup":
        return convert_forest(raw, args.output or "BENCH_forest.json")
    if raw.get("suite") == "binned_vs_sorted":
        return convert_binned(raw, args.output or "BENCH_binned.json")
    if raw.get("suite") == "infer_throughput":
        return convert_infer(raw, args.output or "BENCH_infer.json")
    if raw.get("suite") == "serve_scaling":
        return convert_serve(raw, args.output or "BENCH_serve.json")
    if raw.get("suite") == "stream_throughput":
        return convert_stream(raw, args.output or "BENCH_stream.json")
    return convert_kernels(raw, args.output or "BENCH_core.json")


if __name__ == "__main__":
    sys.exit(main())
