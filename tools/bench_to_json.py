#!/usr/bin/env python3
"""Convert bench/micro_kernels google-benchmark JSON output to BENCH_core.json.

Usage:
  ./build/bench/micro_kernels --benchmark_out=gbench.json \
      --benchmark_out_format=json
  python3 tools/bench_to_json.py gbench.json -o BENCH_core.json

The output is a small machine-readable summary: per-benchmark ns/record
(derived from items_per_second) plus the speedup ratios the kernel layer is
judged by (AoS reference vs SoA kernel for the E-phase scans and categorical
tabulation, direct vs buffered for the S-phase split). Benchmark family
names are a contract with bench/micro_kernels.cc -- see the header comment
there before renaming anything.
"""

import argparse
import json
import sys

# (json key, slow family, fast family) -> derived "slow/fast" speedup.
SPEEDUP_PAIRS = [
    ("e_scan_2class_speedup", "EScan/aos_2class", "EScan/soa_2class"),
    ("e_scan_8class_speedup", "EScan/aos_8class", "EScan/soa_8class"),
    ("categorical_tabulate_speedup", "CatTabulate/aos", "CatTabulate/soa"),
    ("split_phase_buffered_speedup", "SplitPhase/direct", "SplitPhase/buffered"),
]

CONTEXT_KEYS = ("date", "host_name", "num_cpus", "mhz_per_cpu",
                "library_build_type")


def ns_per_record(bench):
    ips = bench.get("items_per_second")
    if not ips:
        return None
    return 1e9 / ips


def family_of(name):
    """'EScan/aos_2class/131072/min_time:0.020' -> 'EScan/aos_2class'."""
    parts = name.split("/")
    keep = [parts[0]]
    for part in parts[1:]:
        if part.isdigit() or ":" in part:
            break
        keep.append(part)
    return "/".join(keep)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("input", help="google-benchmark JSON file ('-' = stdin)")
    ap.add_argument("-o", "--output", default="BENCH_core.json")
    args = ap.parse_args()

    if args.input == "-":
        raw = json.load(sys.stdin)
    else:
        with open(args.input) as f:
            raw = json.load(f)

    benchmarks = []
    by_family = {}
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {
            "name": bench["name"],
            "real_time_ns": bench.get("real_time"),
            "cpu_time_ns": bench.get("cpu_time"),
            "items_per_second": bench.get("items_per_second"),
            "ns_per_record": ns_per_record(bench),
        }
        benchmarks.append(entry)
        # Last run of a family wins (largest Arg when sizes ascend).
        by_family[family_of(bench["name"])] = entry

    derived = {}
    for key, slow, fast in SPEEDUP_PAIRS:
        a = by_family.get(slow)
        b = by_family.get(fast)
        if a and b and a["ns_per_record"] and b["ns_per_record"]:
            derived[key] = round(a["ns_per_record"] / b["ns_per_record"], 3)
        else:
            derived[key] = None

    context = raw.get("context", {})
    out = {
        "schema_version": 1,
        "suite": "core_kernels",
        "context": {k: context.get(k) for k in CONTEXT_KEYS},
        "benchmarks": benchmarks,
        "derived": derived,
    }
    with open(args.output, "w") as f:
        json.dump(out, f, indent=2)
        f.write("\n")
    print(f"wrote {args.output} ({len(benchmarks)} benchmarks)")
    missing = [k for k, v in derived.items() if v is None]
    if missing:
        print(f"warning: missing inputs for: {', '.join(missing)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
