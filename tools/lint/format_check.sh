#!/bin/sh
# Check-only formatting gate. Runs `clang-format --dry-run -Werror` over the
# C++ files changed relative to a base ref, so the pre-existing tree is
# grandfathered and adopting .clang-format creates no reformat churn.
#
# Usage: format_check.sh <clang-format-binary> [base-ref]
#   base-ref defaults to $FORMAT_BASE_REF, then origin/main, then HEAD~1.
# With no git history at all, falls back to checking the full tree.
set -eu

CLANG_FORMAT="${1:?usage: format_check.sh <clang-format-binary> [base-ref]}"
BASE="${2:-${FORMAT_BASE_REF:-}}"

cd "$(dirname "$0")/../.."

changed_files() {
  if [ -n "$BASE" ]; then
    git diff --name-only --diff-filter=ACMR "$(git merge-base "$BASE" HEAD)"
  elif git rev-parse --verify -q origin/main >/dev/null 2>&1; then
    git diff --name-only --diff-filter=ACMR \
        "$(git merge-base origin/main HEAD)"
  elif git rev-parse --verify -q HEAD~1 >/dev/null 2>&1; then
    git diff --name-only --diff-filter=ACMR HEAD~1
  else
    git ls-files
  fi
}

FILES=$(changed_files | grep -E '\.(cc|h)$' \
        | grep -E '^(src|tests|tools|bench|examples)/' || true)

if [ -z "$FILES" ]; then
  echo "format-check: no changed C++ files to check"
  exit 0
fi

echo "format-check: checking $(echo "$FILES" | wc -l) file(s)"
STATUS=0
for f in $FILES; do
  [ -f "$f" ] || continue
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f"; then
    STATUS=1
  fi
done

if [ "$STATUS" -ne 0 ]; then
  echo "format-check: FAILED (run clang-format -i on the files above)" >&2
else
  echo "format-check: PASS"
fi
exit "$STATUS"
