#!/usr/bin/env python3
"""Self-test for smptree_lint.py driven by EXPECT markers in testdata/.

Each fixture under testdata/ declares its expected findings inline:

    code;  // EXPECT: <check-id>          one unwaived finding on this line
    code;  // EXPECT: <check-id> x2       two unwaived findings on this line
    code;  // EXPECT-WAIVED: <check-id>   one waived finding on this line
    // EXPECT-AT: <check-id>@<line>       unwaived finding at an explicit
                                          line (for findings on waiver
                                          comment lines themselves)
    // EXPECT-UNUSED-WAIVER: <tag>@<line> waiver reported unused in JSON

The runner lints every fixture with --json and compares the (check, line,
waived) multiset against the markers in both directions: a finding with no
marker is as fatal as a marker with no finding.  This pins the analyzer's
behavior without libclang: the fixtures ARE the spec.

Exit 0 when every fixture matches, 1 with a diff otherwise.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
LINTER = os.path.join(HERE, "smptree_lint.py")
TESTDATA = os.path.join(HERE, "testdata")

_EXPECT_RE = re.compile(r"//\s*EXPECT:\s*([a-z-]+)(?:\s+x(\d+))?")
_WAIVED_RE = re.compile(r"//\s*EXPECT-WAIVED:\s*([a-z-]+)")
_AT_RE = re.compile(r"//\s*EXPECT-AT:\s*([a-z-]+)@(\d+)")
_UNUSED_RE = re.compile(r"//\s*EXPECT-UNUSED-WAIVER:\s*([a-z-]+)@(\d+)")


def parse_markers(path):
    """Returns (expected findings multiset, expected unused-waiver set).

    Findings are keyed (check, line, waived) -> count.
    """
    expected = {}
    unused = set()
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = _EXPECT_RE.search(line)
            if m:
                count = int(m.group(2) or 1)
                key = (m.group(1), lineno, False)
                expected[key] = expected.get(key, 0) + count
            m = _WAIVED_RE.search(line)
            if m:
                key = (m.group(1), lineno, True)
                expected[key] = expected.get(key, 0) + 1
            for m in _AT_RE.finditer(line):
                key = (m.group(1), int(m.group(2)), False)
                expected[key] = expected.get(key, 0) + 1
            for m in _UNUSED_RE.finditer(line):
                unused.add((m.group(1), int(m.group(2))))
    return expected, unused


def lint_file(path):
    """Runs the linter on one fixture; returns the parsed JSON doc."""
    with tempfile.NamedTemporaryFile(
            mode="r", suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    try:
        subprocess.run(
            [sys.executable, LINTER, "--quiet", "--json", json_path, path],
            check=False, capture_output=True, text=True)
        with open(json_path, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(json_path)


def actual_multiset(doc):
    actual = {}
    for f in doc["findings"]:
        key = (f["check"], f["line"], f["waived"])
        actual[key] = actual.get(key, 0) + 1
    return actual


def describe(key, count):
    check, line, waived = key
    tag = "waived " if waived else ""
    suffix = f" x{count}" if count > 1 else ""
    return f"line {line}: {tag}{check}{suffix}"


def run_fixture(path):
    name = os.path.basename(path)
    expected, expected_unused = parse_markers(path)
    doc = lint_file(path)
    actual = actual_multiset(doc)
    actual_unused = {(w["tag"], w["line"])
                     for w in doc["summary"]["unused_waivers"]}

    errors = []
    for key in sorted(set(expected) | set(actual)):
        want, got = expected.get(key, 0), actual.get(key, 0)
        if want != got:
            errors.append(f"  expected {describe(key, want)} but linter "
                          f"reported {describe(key, got)}"
                          if want and got else
                          (f"  missing: {describe(key, want)}" if want
                           else f"  unexpected: {describe(key, got)}"))
    for tag, line in sorted(expected_unused - actual_unused):
        errors.append(f"  missing unused-waiver: {tag}@{line}")
    for tag, line in sorted(actual_unused - expected_unused):
        errors.append(f"  unexpected unused-waiver: {tag}@{line}")

    if errors:
        print(f"FAIL {name}")
        for e in errors:
            print(e)
        return False
    total = sum(expected.values())
    print(f"ok   {name} ({total} expected finding(s))")
    return True


def main():
    fixtures = sorted(
        os.path.join(TESTDATA, f) for f in os.listdir(TESTDATA)
        if f.endswith((".cc", ".h")))
    if not fixtures:
        print("selftest: no fixtures found under", TESTDATA, file=sys.stderr)
        return 2
    failures = sum(0 if run_fixture(p) else 1 for p in fixtures)
    if failures:
        print(f"selftest: {failures}/{len(fixtures)} fixture(s) failed",
              file=sys.stderr)
        return 1
    print(f"selftest: all {len(fixtures)} fixtures match")
    return 0


if __name__ == "__main__":
    sys.exit(main())
