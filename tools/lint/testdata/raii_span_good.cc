// Fixture: the RAII trace types are the sanctioned surface.
#include "util/trace.h"

namespace smptree {

void GoodSpans(TraceRecorder* recorder, int tid) {
  TraceThreadBinding binding(recorder, tid);
  {
    TraceSpan span("E", "phase", /*level=*/0);
    span.set_arg(128);
  }
  TraceSpan wait("barrier", "wait");
}

}  // namespace smptree
