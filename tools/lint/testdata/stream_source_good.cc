// Fixture: stream-source-blocking-io (clean cases). Disk-backed sources
// may block only inside ReaderLoop, the read-ahead seam that runs on the
// source's private reader thread; everything here follows that contract
// or carries a reasoned waiver.

namespace smptree {

class StreamSource;
struct Schema {};
struct Dataset {};
struct StreamBatch {};

class ReadAheadSource : public StreamSource {
 public:
  // The consumer-facing surface only swaps in prefetched shards.
  long NextBatch(long max_tuples, StreamBatch* batch) { return 0; }

 private:
  // All shard I/O happens on the reader thread.
  void ReaderLoop() {
    Dataset shard = ReadBinaryShard(schema_, path_);
  }
  Schema schema_;
  const char* path_ = "shard.bin";
};

class CheckpointSource : public StreamSource {
 public:
  void Checkpoint() {
    // lint: stream-io(one-shot recovery path, runs before streaming starts)
    auto s = WriteFile(path_, "state");  // EXPECT-WAIVED: stream-source-blocking-io
  }

 private:
  const char* path_ = "ckpt.bin";
};

// Not a StreamSource: free use of shard I/O is outside this contract.
class ShardRepacker {
 public:
  void Repack() { Dataset d = ReadBinaryShard(Schema{}, "in.bin"); }
};

}  // namespace smptree
