// Fixture: stream-source-blocking-io -- StreamSource implementations must
// not touch disk from the consumer-facing surface; the builder thread calls
// NextBatch on its critical path, so only the ReaderLoop read-ahead seam
// (which runs on the source's private reader thread) may block on I/O.

namespace smptree {

class StreamSource;
struct Schema {};
struct Dataset {};
struct StreamBatch {};

// In-class offender: NextBatch parses a shard on the builder thread.
class EagerCsvSource : public StreamSource {
 public:
  long NextBatch(long max_tuples, StreamBatch* batch) {
    auto rows = ReadCsv(schema_, path_);  // EXPECT: stream-source-blocking-io
    return 0;
  }

 private:
  Schema schema_;
  const char* path_ = "data.csv";
};

// Out-of-line offender: the class body looks clean but the definition in
// the .cc opens a file on every call.
class LazyShardSource : public StreamSource {
 public:
  long NextBatch(long max_tuples, StreamBatch* batch);

 private:
  const char* path_ = "shard.bin";
};

long LazyShardSource::NextBatch(long max_tuples, StreamBatch* batch) {
  std::ifstream in(path_);  // EXPECT: stream-source-blocking-io
  return 0;
}

// Second-level subclass: the contract follows the hierarchy.
class RetryingSource : public LazyShardSource {
 public:
  void Reload() {
    auto d = ReadBinaryShard(Schema{}, "a.bin");  // EXPECT: stream-source-blocking-io
  }
};

}  // namespace smptree
