// Fixture: predicate-looped waits, unlocked I/O, and scope-bounded locks
// stay silent.
#include <chrono>
#include <thread>

#include "storage/env.h"
#include "util/mutex.h"

namespace smptree {

class Store {
 public:
  void GoodLoopedWait() {
    MutexLock lock(mu_);
    while (!ready_) cv_.Wait(mu_);
  }

  void GoodBracedLoopedWait() {
    MutexLock lock(mu_);
    while (!ready_) {
      cv_.Wait(mu_);
    }
  }

  void GoodIoOutsideLock(Env* env) {
    {
      MutexLock lock(mu_);
      ready_ = false;
    }
    env->DeleteFile("scratch");  // lock already released by scope exit
  }

  void GoodSleepOutsideLock() {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    MutexLock lock(mu_);
    ready_ = true;
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool ready_ GUARDED_BY(mu_) = false;
};

}  // namespace smptree
