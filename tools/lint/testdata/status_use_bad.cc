// Fixture: silently dropped util::Status results fire.
#include <string>

#include "util/status.h"

namespace smptree {

Status FlushSideEffects(const std::string& path);

class Sink {
 public:
  Status Commit();
  void Run();

 private:
  Sink* next_ = nullptr;
};

void Sloppy(Sink* sink) {
  FlushSideEffects("wal");   // EXPECT: status-must-use
  sink->Commit();            // EXPECT: status-must-use
  sink();
}

void Chained(Sink* sink) {
  sink->next_->Commit();     // EXPECT: status-must-use
}

}  // namespace smptree
