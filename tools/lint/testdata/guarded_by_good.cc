// Fixture: annotated, exempt (const/static/atomic/self-sync/reference),
// waived, and mutex-free classes stay silent.
#include <atomic>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smptree {

class Registry {
 public:
  void Add(int v);
  int count() const EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::vector<int> values_ GUARDED_BY(mu_);
  int count_ GUARDED_BY(mu_) = 0;
  std::atomic<int> hits_{0};         // atomics need no guard
  const int capacity_ = 8;           // top-level const is immutable
  static constexpr int kLimit = 16;  // per-class constant
  CondVar cv_;                       // self-synchronizing
  // lint: unguarded(set at construction; read-only afterwards)
  std::string name_;  // EXPECT-WAIVED: guarded-by-coverage
};

// No Mutex owned: the check does not apply at all.
class Plain {
 private:
  std::vector<int> values_;
  int count_ = 0;
};

// A reference member cannot be reseated; the binding itself is immutable.
class Borrower {
 private:
  Mutex mu_;
  Mutex& parent_mu_;
  int held_ GUARDED_BY(mu_) = 0;

 public:
  explicit Borrower(Mutex& m) : parent_mu_(m) {}
};

}  // namespace smptree
