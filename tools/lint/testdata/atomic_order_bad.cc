// Fixture: every defaulted-memory_order atomic operation must fire.
#include <atomic>

namespace smptree {

struct Counters {
  std::atomic<unsigned long> scanned{0};
  std::atomic<bool> done{false};
  std::atomic<int> slots{0};
};

void Bad(Counters& c) {
  c.scanned.fetch_add(1);                 // EXPECT: atomic-explicit-order
  c.done.store(true);                     // EXPECT: atomic-explicit-order
  unsigned long v = c.scanned.load();     // EXPECT: atomic-explicit-order
  (void)v;
  c.slots.exchange(3);                    // EXPECT: atomic-explicit-order
  int expect = 3;
  c.slots.compare_exchange_strong(expect, 4);  // EXPECT: atomic-explicit-order
}

void BadOperators(Counters& c) {
  c.scanned++;                            // EXPECT: atomic-explicit-order
  c.slots += 2;                           // EXPECT: atomic-explicit-order
  c.done = true;                          // EXPECT: atomic-explicit-order
}

}  // namespace smptree
