// Fixture: explicit memory orders (and non-atomic lookalikes) stay silent.
#include <atomic>
#include <string>
#include <vector>

namespace smptree {

struct Counters {
  std::atomic<unsigned long> scanned{0};
  std::atomic<bool> done{false};
};

void Good(Counters& c) {
  c.scanned.fetch_add(1, std::memory_order_relaxed);
  c.done.store(true, std::memory_order_release);
  while (!c.done.load(std::memory_order_acquire)) {
  }
  unsigned long v = c.scanned.load(std::memory_order_relaxed);
  (void)v;
}

void NotAtomics(std::vector<int>& v, std::string& s) {
  // Container clear() is not atomic_flag::clear().
  v.clear();
  s.clear();
}

}  // namespace smptree
