// Fixture: malformed waivers are themselves (unwaivable) findings, and a
// waiver that matches nothing is reported as unused in the JSON summary.
#include <atomic>

namespace smptree {

struct Counters {
  std::atomic<int> hits{0};
};

void Bad(Counters& c) {
  // lint: atomic-order()
  c.hits.fetch_add(1);  // EXPECT: atomic-explicit-order

  // lint: not-a-real-tag(some reason)
  c.hits.store(2);  // EXPECT: atomic-explicit-order

  // lint: blocking(nothing blocking here, so this waiver is unused)
  int x = 0;
  (void)x;
}
// The two malformed waivers above also yield findings on their own lines
// (the marker cannot sit on the waiver line without changing its parse):
// EXPECT-AT: bad-waiver@12
// EXPECT-AT: bad-waiver@15
// EXPECT-UNUSED-WAIVER: blocking@18

}  // namespace smptree
