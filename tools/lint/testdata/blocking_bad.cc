// Fixture: blocking calls in a lock-holding scope fire.
#include <chrono>
#include <thread>

#include "storage/env.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smptree {

class Store {
 public:
  void BadSleepUnderLock() {
    MutexLock lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));  // EXPECT: no-blocking-under-lock
  }

  void BadIoUnderLock(Env* env) {
    MutexLock lock(mu_);
    env->DeleteFile("scratch");  // EXPECT: no-blocking-under-lock
  }

  void BadNonLoopedWait() {
    MutexLock lock(mu_);
    cv_.Wait(mu_);  // EXPECT: no-blocking-under-lock
  }

  void BadBarrierUnderLock() {
    MutexLock lock(mu_);
    barrier_.Wait();  // EXPECT: no-blocking-under-lock
  }

 private:
  struct Rendezvous {
    void Wait();
  };
  Mutex mu_;
  CondVar cv_;
  Rendezvous barrier_ GUARDED_BY(mu_);
};

}  // namespace smptree
