// Fixture: consumed, propagated, or explicitly discarded Status results
// stay silent.
#include <string>

#include "util/status.h"

namespace smptree {

Status FlushSideEffects(const std::string& path);

class Sink {
 public:
  Status Commit();
};

Status Careful(Sink* sink) {
  Status s = FlushSideEffects("wal");
  if (!s.ok()) return s;
  if (!sink->Commit().ok()) {
    return Status::Internal("commit failed");
  }
  return sink->Commit();
}

void ExplicitDiscard(Sink* sink) {
  (void)sink->Commit();  // visible intent: allowed without a waiver
}

}  // namespace smptree
