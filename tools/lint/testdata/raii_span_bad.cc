// Fixture: raw trace-layer access outside util/trace.{h,cc} fires.
#include "util/trace.h"

namespace smptree {

void BadBinding(TraceRecorder* recorder, int tid) {
  auto* buffer = recorder->AttachThread(tid);  // EXPECT: raii-span-pairing
  (void)buffer;
}

void BadBufferPoke() {
  trace_internal::t_buffer = nullptr;  // EXPECT: raii-span-pairing x2
}

}  // namespace smptree
