// Fixture: mutable members of a Mutex-owning class without GUARDED_BY fire.
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace smptree {

class Registry {
 public:
  void Add(int v);

 private:
  Mutex mu_;
  std::vector<int> values_;      // EXPECT: guarded-by-coverage
  int count_ = 0;                // EXPECT: guarded-by-coverage
  const char* label_ = nullptr;  // EXPECT: guarded-by-coverage
};

struct Handshake {
  Mutex mu;
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;
  std::string payload;           // EXPECT: guarded-by-coverage
};

}  // namespace smptree
