// Fixture: every check can be waived with a reasoned waiver; the file is
// clean (exit 0) but each finding below is reported as waived.
#include <atomic>
#include <chrono>
#include <thread>

#include "storage/env.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/trace.h"

namespace smptree {

Status FlushSideEffects();

class Waived {
 public:
  void Run(Env* env, TraceRecorder* recorder) {
    // lint: atomic-order(single-threaded test harness; ordering is moot)
    hits_.fetch_add(1);  // EXPECT-WAIVED: atomic-explicit-order
    MutexLock lock(mu_);
    // lint: blocking(fixture exercises the waiver path itself)
    env->DeleteFile("x");  // EXPECT-WAIVED: no-blocking-under-lock
    // lint: raw-span(fixture exercises the waiver path itself)
    recorder->AttachThread(0);  // EXPECT-WAIVED: raii-span-pairing
    // lint: status-discard(fire-and-forget flush; failure handled on read)
    FlushSideEffects();  // EXPECT-WAIVED: status-must-use
  }

 private:
  Mutex mu_;
  std::atomic<int> hits_{0};
  // lint: unguarded(written before the worker thread starts)
  int warmup_ = 0;  // EXPECT-WAIVED: guarded-by-coverage
};

}  // namespace smptree
