#!/usr/bin/env python3
"""smptree-lint: project-specific static checks for the smptree codebase.

The generic layers (clang-tidy, -Wthread-safety, TSan) catch generic bugs;
this pass enforces the contracts that are specific to *this* repository's
concurrency design (docs/STATIC_ANALYSIS.md has the full rationale):

  atomic-explicit-order   every std::atomic operation names its
                          std::memory_order at the call site
  guarded-by-coverage     mutable members of Mutex-owning classes carry
                          GUARDED_BY/PT_GUARDED_BY or a reasoned waiver
  raii-span-pairing       TraceRecorder binding/span APIs only via the
                          TraceSpan / TraceThreadBinding RAII types
  no-blocking-under-lock  no sleeps, Env/LevelStorage I/O, barrier waits,
                          or non-predicate-loop CondVar waits while a
                          MutexLock-style scope holds a lock
  status-must-use         util::Status results are never silently dropped
                          at statement level outside tests/
  stream-source-blocking-io
                          StreamSource implementations keep blocking I/O
                          (shard reads, ifstream, fopen) inside the
                          ReaderLoop read-ahead seam; the consumer-facing
                          surface (NextBatch et al.) must never touch disk

The tool is dependency-free on purpose: it runs on the stock python3 of any
dev container or CI runner, with no LLVM/libclang install. It carries its
own C++ lexer and a lightweight scope/class model -- enough syntax to state
the five contracts above precisely, pinned by the fixture suite under
tools/lint/testdata/ (tests/lint_selftest.sh runs it under ctest).

Waivers: a finding is silenced by a comment on the same line or the line
directly above:

    // lint: <tag>(<reason>)

where <tag> is one of: atomic-order, unguarded, raw-span, blocking,
status-discard, stream-io. The reason string is mandatory; an empty reason is itself
an (unwaivable) finding. Unused waivers are reported in the JSON summary.

Usage:
    smptree_lint.py [paths...]              # default: <repo>/src
    smptree_lint.py --compdb build/compile_commands.json
    smptree_lint.py --json findings.json --check atomic-explicit-order src

Exit status: 0 clean, 1 unwaivered findings, 2 usage/internal error.
"""

import argparse
import json
import os
import re
import sys

TOOL_VERSION = 1

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))

# ---------------------------------------------------------------------------
# Check configuration (the project-specific knowledge lives here).
# ---------------------------------------------------------------------------

# Waiver tag -> check id.
WAIVER_TAGS = {
    "atomic-order": "atomic-explicit-order",
    "unguarded": "guarded-by-coverage",
    "raw-span": "raii-span-pairing",
    "blocking": "no-blocking-under-lock",
    "status-discard": "status-must-use",
    "stream-io": "stream-source-blocking-io",
}

# std::atomic member functions that take a std::memory_order parameter.
# `clear` and `wait` are deliberately absent: they collide with the
# std::string/std::vector/CondVar surface and the project does not use
# atomic_flag::clear or atomic::wait.
ATOMIC_ORDERED_METHODS = {
    "load", "store", "exchange",
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "compare_exchange_weak", "compare_exchange_strong",
    "test_and_set",
}

# Compound-assignment / increment operators on a declared atomic lvalue are
# sequentially-consistent RMWs in disguise.
ATOMIC_OPERATOR_TOKENS = {"++", "--", "+=", "-=", "|=", "&=", "^="}

# Thread-safety attribute macros (util/thread_annotations.h). Used to tell
# annotated function declarations from data members.
ATTR_MACROS = {
    "GUARDED_BY", "PT_GUARDED_BY", "ACQUIRE", "RELEASE", "TRY_ACQUIRE",
    "REQUIRES", "REQUIRES_SHARED", "EXCLUDES", "CAPABILITY",
    "SCOPED_CAPABILITY", "NO_THREAD_SAFETY_ANALYSIS", "RETURN_CAPABILITY",
    "ACQUIRE_SHARED", "RELEASE_SHARED", "ASSERT_CAPABILITY",
}

# Types that synchronize internally; members of these types need no
# GUARDED_BY even inside a Mutex-owning class. The project entries are the
# classes whose headers document an internal lock or all-atomic state:
# Barrier, DynamicScheduler (atomic cursor), WorkQueue (bounded MPMC),
# MwkLevelState (own mu_/cv_), ErrorSink (first-error latch),
# TraceRecorder (locked attach, quiescent reads), LatencyHistogram
# (atomic buckets).
SELF_SYNC_TYPES = {
    "Mutex", "CondVar", "SharedExclusiveCheck",
    "Barrier", "DynamicScheduler", "WorkQueue", "MwkLevelState",
    "ErrorSink", "TraceRecorder", "LatencyHistogram",
}

# RAII lock types: a declaration `<LockType> name(...)` (or with template
# args) marks the rest of the enclosing scope as lock-holding.
LOCK_TYPES = {"MutexLock", "lock_guard", "unique_lock", "scoped_lock",
              "shared_lock"}

# Calls that block the calling thread. Flagged whenever they happen in a
# scope that holds a lock. Method names are the project's Env / File /
# LevelStorage blocking surface; bare names are std/posix sleeps and
# socket syscalls.
BLOCKING_METHODS = {
    # storage/env.h File + Env surface (disk I/O on PosixEnv)
    "Read", "ReadView", "Append", "Truncate", "NewFile", "DeleteFile",
    "CreateDir", "RemoveDirRecursive",
    # storage/level_storage.h phase surface (fans out to File I/O)
    "AdvanceLevel", "AppendChild", "FlushAll", "FlushAlternate",
    "ReadSegment", "InitRoot", "FinishRootLoad", "Flush",
}
BLOCKING_BARE_CALLS = {
    "sleep_for", "sleep_until", "usleep", "nanosleep",
    "accept", "recv", "send", "connect", "poll", "select",
}

# Raw trace APIs (util/trace.h): builder code must go through the RAII
# types, never bind or touch thread buffers directly.
RAW_TRACE_IDENTS = {"AttachThread", "t_buffer", "trace_internal"}
# Files implementing the trace layer itself (relative to repo root).
TRACE_IMPL_FILES = {"src/util/trace.h", "src/util/trace.cc"}

# Return types whose results must be consumed. Result<T> carries a Status.
STATUS_RETURN_TYPES = {"Status"}

# Streaming ingest contract (src/stream/stream_source.h): classes derived
# from StreamSource feed the Hoeffding builder on its own thread, so the
# consumer-facing surface (NextBatch and friends) must never block on disk.
# Blocking shard loads belong in the ReaderLoop read-ahead seam, which runs
# on the source's private reader thread.
STREAM_SOURCE_ROOT = "StreamSource"
STREAM_READAHEAD_METHODS = {"ReaderLoop"}
STREAM_BLOCKING_IO = {
    # Project shard/file I/O (src/stream/shard_io.h, util file helpers).
    "ReadCsv", "ReadBinaryShard", "WriteBinaryShard",
    "ReadFile", "WriteFile",
    # Standard library / posix file surface.
    "ifstream", "ofstream", "fstream",
    "fopen", "fread", "fwrite", "fgets", "fclose", "getline",
}

ALL_CHECKS = [
    "atomic-explicit-order",
    "guarded-by-coverage",
    "raii-span-pairing",
    "no-blocking-under-lock",
    "status-must-use",
    "stream-source-blocking-io",
]

# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind    # 'id' | 'num' | 'str' | 'chr' | 'punct'
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("->", "::", "++", "--", "+=", "-=", "*=", "/=", "%=", "|=", "&=",
           "^=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>")

_ID_RE = re.compile(r"[A-Za-z_]\w*")
_NUM_RE = re.compile(r"\.?\d(?:[\w.']|[eEpP][+-])*")


def lex(text):
    """Tokenizes C++ source. Returns (tokens, comments) where comments is a
    list of (line, comment_text) with the leading // or /* stripped.
    Preprocessor directives are consumed whole (with continuations) and
    produce no tokens."""
    toks = []
    comments = []
    i, n = 0, len(text)
    line = 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\v\f":
            i += 1
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            comments.append((line, text[i + 2:j].strip()))
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            if j == -1:
                j = n
            body = text[i + 2:j]
            comments.append((line, body.strip()))
            line += body.count("\n")
            i = j + 2
            continue
        if c == "#" and at_line_start:
            # Skip the directive including backslash continuations.
            while i < n:
                j = text.find("\n", i)
                if j == -1:
                    i = n
                    break
                if text[j - 1] == "\\" or (j >= 2 and text[j - 2:j] == "\\\r"):
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        at_line_start = False
        if c == '"':
            j = None
            # Raw string: the previous token ends in R (R"", u8R"", LR"").
            if i > 0 and text[i - 1] == "R" and toks and \
                    toks[-1].kind == "id" and toks[-1].text.endswith("R"):
                m2 = re.match(r'"([^()\\ ]{0,16})\(', text[i:])
                if m2:
                    delim = ")" + m2.group(1) + '"'
                    j = text.find(delim, i + m2.end())
                    j = n if j == -1 else j + len(delim)
                    toks.pop()  # drop the prefix identifier
            if j is None:
                j = i + 1
                while j < n and text[j] != '"':
                    if text[j] == "\\":
                        j += 1
                    j += 1
                j = min(j + 1, n)
            seg = text[i:j]
            toks.append(Tok("str", '""', line))
            line += seg.count("\n")
            i = j
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                if text[j] == "\\":
                    j += 1
                j += 1
            toks.append(Tok("chr", "''", line))
            i = min(j + 1, n)
            continue
        m = _ID_RE.match(text, i)
        if m:
            toks.append(Tok("id", m.group(0), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            toks.append(Tok("num", m.group(0), line))
            i = m.end()
            continue
        three = text[i:i + 3]
        if three in _PUNCT3:
            toks.append(Tok("punct", three, line))
            i += 3
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            toks.append(Tok("punct", two, line))
            i += 2
            continue
        toks.append(Tok("punct", c, line))
        i += 1
    return toks, comments


# ---------------------------------------------------------------------------
# Findings and waivers
# ---------------------------------------------------------------------------

class Finding:
    def __init__(self, check, path, line, message):
        self.check = check
        self.path = path
        self.line = line
        self.message = message
        self.waived = False
        self.waiver_reason = None

    def to_json(self):
        d = {"check": self.check, "file": self.path, "line": self.line,
             "message": self.message, "waived": self.waived}
        if self.waiver_reason is not None:
            d["reason"] = self.waiver_reason
        return d


_WAIVER_RE = re.compile(r"lint:\s*([a-z-]+)\s*\(\s*(.*?)\s*\)\s*$")
_WAIVER_LOOSE_RE = re.compile(r"lint:\s*([a-z-]+)")


class Waiver:
    def __init__(self, tag, reason, line, path):
        self.tag = tag
        self.reason = reason
        self.line = line
        self.path = path
        self.used = False


def parse_waivers(comments, path, findings):
    """Extracts waivers from comments. Malformed waivers (unknown tag or
    empty reason) become unwaivable `bad-waiver` findings."""
    waivers = []
    for line, body in comments:
        if "lint:" not in body:
            continue
        m = _WAIVER_RE.search(body)
        if not m:
            lm = _WAIVER_LOOSE_RE.search(body)
            tag = lm.group(1) if lm else "?"
            findings.append(Finding(
                "bad-waiver", path, line,
                f"malformed lint waiver (tag '{tag}'): expected "
                "'// lint: <tag>(<reason>)' with a non-empty reason"))
            continue
        tag, reason = m.group(1), m.group(2)
        if tag not in WAIVER_TAGS:
            findings.append(Finding(
                "bad-waiver", path, line,
                f"unknown lint waiver tag '{tag}' (valid: "
                + ", ".join(sorted(WAIVER_TAGS)) + ")"))
            continue
        if not reason:
            findings.append(Finding(
                "bad-waiver", path, line,
                f"lint waiver '{tag}' has an empty reason; every waiver "
                "must say why the contract does not apply"))
            continue
        waivers.append(Waiver(tag, reason, line, path))
    return waivers


def apply_waivers(findings, waivers):
    """A waiver on line L covers matching findings on L and L+1 (i.e. a
    comment line directly above the flagged code)."""
    by_line = {}
    for w in waivers:
        by_line.setdefault((WAIVER_TAGS[w.tag], w.line), []).append(w)
        by_line.setdefault((WAIVER_TAGS[w.tag], w.line + 1), []).append(w)
    for f in findings:
        if f.check == "bad-waiver":
            continue
        # Prefer a waiver on the finding's own line over one on the line
        # above, so adjacent per-line waivers each bind their own finding.
        candidates = sorted(by_line.get((f.check, f.line), ()),
                           key=lambda w: w.line != f.line)
        for w in candidates:
            f.waived = True
            f.waiver_reason = w.reason
            w.used = True
            break


# ---------------------------------------------------------------------------
# Token helpers
# ---------------------------------------------------------------------------

_OPEN = {"(": ")", "[": "]", "{": "}"}


def match_bracket(toks, i):
    """Index of the bracket matching toks[i], or len(toks)."""
    close = _OPEN[toks[i].text]
    opened = toks[i].text
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == opened:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


def match_template_args(toks, i, limit):
    """If toks[i] is '<' opening a plausible template argument list, returns
    the index of the matching '>'; else None. Conservative: gives up at ';',
    '{', '&&', '||', or statement end."""
    if toks[i].text != "<":
        return None
    depth = 0
    j = i
    while j < limit:
        t = toks[j].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j
        elif t in (";", "{", "&&", "||") :
            return None
        j += 1
    return None


# ---------------------------------------------------------------------------
# Check 1: atomic-explicit-order
# ---------------------------------------------------------------------------

def collect_atomic_names(toks):
    """Identifiers declared as std::atomic<...> / atomic_flag variables or
    members anywhere in this file."""
    names = set()
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("atomic", "atomic_flag",
                                            "atomic_bool", "atomic_int",
                                            "atomic_uint64_t"):
            continue
        j = i + 1
        if j < len(toks) and toks[j].text == "<":
            end = match_template_args(toks, j, min(len(toks), j + 64))
            if end is None:
                continue
            j = end + 1
        # Optional declarator qualifiers, then the declared name.
        while j < len(toks) and toks[j].text in ("*", "&", "const"):
            j += 1
        if j < len(toks) and toks[j].kind == "id":
            names.add(toks[j].text)
    return names


def check_atomic_explicit_order(path, toks, findings):
    atomics = collect_atomic_names(toks)
    n = len(toks)
    for i, t in enumerate(toks):
        # Method form: `.load(...)` / `->fetch_add(...)`.
        if t.kind == "id" and t.text in ATOMIC_ORDERED_METHODS and i >= 1 \
                and toks[i - 1].text in (".", "->") \
                and i + 1 < n and toks[i + 1].text == "(":
            close = match_bracket(toks, i + 1)
            has_order = any(
                toks[k].kind == "id" and toks[k].text.startswith("memory_order")
                for k in range(i + 2, close))
            # `.load(...)` on a non-atomic (e.g. a Tok in this very file)
            # is possible in principle; the project's method style is
            # CamelCase, so lowercase atomic verbs are atomics in practice.
            if not has_order:
                findings.append(Finding(
                    "atomic-explicit-order", path, t.line,
                    f"atomic {t.text}() without an explicit std::memory_order "
                    "(defaulted seq_cst hides the intended pairing; name the "
                    "order at the call site)"))
            continue
        # Operator form on a declared atomic: ++ / -- / |= / compound ops,
        # and plain assignment `a = x`.
        if t.kind == "id" and t.text in atomics:
            prev = toks[i - 1].text if i > 0 else ""
            nxt = toks[i + 1].text if i + 1 < n else ""
            if nxt in ATOMIC_OPERATOR_TOKENS or prev in ("++", "--"):
                findings.append(Finding(
                    "atomic-explicit-order", path, t.line,
                    f"operator {nxt or prev} on std::atomic '{t.text}' is an "
                    "implicit seq_cst RMW; use an explicit fetch_* with a "
                    "named std::memory_order"))
            elif nxt == "=" and i + 2 < n and toks[i + 2].text != "=":
                # Assignment through operator= (not ==). Skip declarations:
                # `std::atomic<T> x = ...` has the type right before.
                if prev in (">", "*", "&") or \
                        (i > 0 and toks[i - 1].kind == "id"):
                    continue
                findings.append(Finding(
                    "atomic-explicit-order", path, t.line,
                    f"assignment to std::atomic '{t.text}' is an implicit "
                    "seq_cst store; use store() with a named "
                    "std::memory_order"))


# ---------------------------------------------------------------------------
# Check 2: guarded-by-coverage
# ---------------------------------------------------------------------------

_MEMBER_SKIP_LEADS = {
    "public", "private", "protected", "using", "typedef", "friend",
    "static_assert", "template", "enum", "operator", "explicit",
}


def _is_all_caps_macro(name):
    return name.isupper() and len(name) > 1


def _scan_class_bodies(toks):
    """Yields (class_name, base_names, body_start, body_end) for every
    class/struct with a body, including nested ones. base_names is the set
    of identifiers from the base clause (access specifiers and template
    argument lists stripped)."""
    i, n = 0, len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "id" and t.text in ("class", "struct"):
            # Skip elaborated-type uses: `class Foo;`, `class Foo*`, etc.
            j = i + 1
            # Attribute macro e.g. `class CAPABILITY("mutex") Mutex {`.
            while j < n and toks[j].kind == "id" and \
                    _is_all_caps_macro(toks[j].text):
                if j + 1 < n and toks[j + 1].text == "(":
                    j = match_bracket(toks, j + 1) + 1
                else:
                    j += 1
            if j < n and toks[j].kind == "id":
                name = toks[j].text
                j += 1
                if j < n and toks[j].kind == "id" and toks[j].text == "final":
                    j += 1
                # Base clause.
                bases = set()
                if j < n and toks[j].text == ":":
                    j += 1
                    while j < n and toks[j].text not in ("{", ";"):
                        tj = toks[j]
                        if tj.text == "<":
                            endt = match_template_args(toks, j,
                                                       min(n, j + 64))
                            if endt is not None:
                                j = endt + 1
                                continue
                        if tj.kind == "id" and tj.text not in (
                                "public", "protected", "private", "virtual"):
                            bases.add(tj.text)
                        j += 1
                if j < n and toks[j].text == "{":
                    end = match_bracket(toks, j)
                    yield (name, bases, j + 1, end)
        i += 1


def _split_member_statements(toks, start, end):
    """Splits a class body [start, end) into top-level statements, skipping
    nested class/struct bodies and function bodies. Yields token-slice
    (list of Tok) per statement."""
    stmts = []
    i = start
    cur = []
    while i < end:
        t = toks[i]
        if t.text == ";":
            if cur:
                stmts.append(cur)
            cur = []
            i += 1
            continue
        if t.text == ":" and cur and len(cur) == 1 and \
                cur[0].text in ("public", "private", "protected"):
            cur = []
            i += 1
            continue
        if t.text == "{":
            close = match_bracket(toks, i)
            prev = cur[-1] if cur else None
            is_body = prev is not None and (
                prev.text in (")", "const", "override", "noexcept", "try")
                or (prev.kind == "id" and _is_all_caps_macro(prev.text)))
            leads_class = any(x.kind == "id" and x.text in ("class", "struct",
                                                            "enum", "union")
                              for x in cur)
            if is_body and not leads_class:
                # Function definition: drop the whole statement.
                cur = []
                i = close + 1
                continue
            if leads_class:
                # Nested type: handled by the outer class scan; drop.
                cur = []
                i = close + 1
                if i < end and toks[i].text == ";":
                    i += 1
                continue
            # Brace initializer on a member: keep a placeholder and go on.
            cur.append(t)
            i = close + 1
            continue
        if t.text in ("(", "["):
            close = match_bracket(toks, i)
            cur.extend(toks[i:close + 1])
            i = close + 1
            continue
        cur.append(t)
        i += 1
    if cur:
        stmts.append(cur)
    return stmts


def _statement_is_function(stmt):
    """True if a class-scope statement declares a function (vs. a data
    member). The discriminator: a top-level '(' directly preceded by an
    identifier that is not an annotation macro, with template argument
    lists skipped."""
    i, n = 0, len(stmt)
    while i < n:
        t = stmt[i]
        if t.text == "<":
            end = match_template_args(stmt, i, n)
            if end is not None:
                i = end + 1
                continue
        if t.text == "(":
            prev = stmt[i - 1] if i > 0 else None
            if prev is not None and prev.kind == "id" and \
                    prev.text not in ("GUARDED_BY", "PT_GUARDED_BY") and \
                    not _is_all_caps_macro(prev.text):
                return True
            # Not a function opener: skip the group.
            depth = 0
            while i < n:
                if stmt[i].text == "(":
                    depth += 1
                elif stmt[i].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
        i += 1
    return False


def _member_info(stmt):
    """For a data-member statement, returns (name_token, is_exempt).
    Exempt: static/constexpr, top-level const, reference members,
    self-synchronizing and atomic types."""
    texts = [t.text for t in stmt]
    if any(x in ("static", "constexpr") for x in texts):
        return None, True
    if any(t.kind == "id" and t.text in SELF_SYNC_TYPES for t in stmt):
        return None, True
    if any(t.kind == "id" and t.text in ("atomic", "atomic_flag",
                                         "atomic_bool") for t in stmt):
        return None, True
    # Find the declared name: last identifier before an initializer ('=' or
    # '{') or annotation macro, at top level.
    name_tok = None
    i, n = 0, len(stmt)
    while i < n:
        t = stmt[i]
        if t.text == "<":
            end = match_template_args(stmt, i, n)
            if end is not None:
                i = end + 1
                continue
        if t.text in ("=", "{"):
            break
        if t.kind == "id" and t.text in ("GUARDED_BY", "PT_GUARDED_BY"):
            break
        if t.text == "(":
            depth = 0
            while i < n:
                if stmt[i].text == "(":
                    depth += 1
                elif stmt[i].text == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            i += 1
            continue
        if t.kind == "id" and not _is_all_caps_macro(t.text):
            name_tok = t
        i += 1
    if name_tok is None:
        return None, True
    # Top-level const: a 'const' with no '*' or '&' after it (before the
    # name). `const char* p_` is a mutable pointer; `T* const p_` and
    # `const T x_` are immutable.
    last_const = -1
    last_ptr = -1
    for k, t in enumerate(stmt):
        if t is name_tok:
            break
        if t.text == "const":
            last_const = k
        if t.text in ("*", "&", "&&"):
            last_ptr = k
    if last_const >= 0 and last_const > last_ptr:
        return name_tok, True
    if last_ptr >= 0 and stmt[last_ptr].text in ("&", "&&") and \
            last_const < 0:
        # Reference member: the binding itself is immutable.
        return name_tok, True
    return name_tok, False


def check_guarded_by_coverage(path, toks, findings):
    for cls, _bases, start, end in _scan_class_bodies(toks):
        stmts = _split_member_statements(toks, start, end)
        # Does this class own a Mutex directly?
        owns_mutex = False
        for stmt in stmts:
            texts = [t.text for t in stmt]
            if "Mutex" in texts and not _statement_is_function(stmt) and \
                    "&" not in texts and "*" not in texts:
                owns_mutex = True
                break
        if not owns_mutex:
            continue
        for stmt in stmts:
            if not stmt:
                continue
            lead = stmt[0]
            if lead.kind == "id" and lead.text in _MEMBER_SKIP_LEADS:
                continue
            if lead.kind == "id" and _is_all_caps_macro(lead.text):
                continue  # macro invocation at class scope
            if _statement_is_function(stmt):
                continue
            texts = [t.text for t in stmt]
            if "GUARDED_BY" in texts or "PT_GUARDED_BY" in texts:
                continue
            name_tok, exempt = _member_info(stmt)
            if exempt or name_tok is None:
                continue
            findings.append(Finding(
                "guarded-by-coverage", path, name_tok.line,
                f"member '{cls}::{name_tok.text}' of a Mutex-owning class "
                "has no GUARDED_BY/PT_GUARDED_BY annotation; annotate it or "
                "waive with '// lint: unguarded(<why it needs no lock>)'"))


# ---------------------------------------------------------------------------
# Check 3: raii-span-pairing
# ---------------------------------------------------------------------------

def check_raii_span_pairing(path, toks, findings, relpath):
    if relpath in TRACE_IMPL_FILES:
        return
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in RAW_TRACE_IDENTS:
            continue
        if t.text == "AttachThread":
            findings.append(Finding(
                "raii-span-pairing", path, t.line,
                "raw TraceRecorder::AttachThread call: thread binding must "
                "go through the TraceThreadBinding RAII type so the previous "
                "buffer is always restored"))
        else:
            findings.append(Finding(
                "raii-span-pairing", path, t.line,
                f"direct use of trace-internal symbol '{t.text}': span and "
                "binding state may only be touched via TraceSpan / "
                "TraceThreadBinding"))


# ---------------------------------------------------------------------------
# Check 4: no-blocking-under-lock
# ---------------------------------------------------------------------------

class _Scope:
    __slots__ = ("kind", "locked")

    def __init__(self, kind, locked):
        self.kind = kind      # 'plain' | 'loop' | 'class'
        self.locked = locked


def check_no_blocking_under_lock(path, toks, findings, relpath):
    if relpath in TRACE_IMPL_FILES or relpath == "src/util/mutex.h":
        return
    n = len(toks)
    scopes = [_Scope("plain", False)]
    # Kind to assign to the next '{' (loop bodies) and whether the next
    # *unbraced* statement is a loop body.
    pending_kind = "plain"
    unbraced_loop_depth = 0   # >0 while inside `while (...) <stmt>;`
    i = 0
    while i < n:
        t = toks[i]
        tx = t.text
        if t.kind == "id" and tx in ("while", "for", "do"):
            # Consume the condition group (a wait inside it is re-evaluated
            # per iteration, i.e. looped by construction), then decide
            # whether the body is braced.
            j = i + 1
            if j < n and toks[j].text == "(":
                j = match_bracket(toks, j) + 1
            if j < n and toks[j].text == "{":
                pending_kind = "loop"
            elif j < n and toks[j].text != ";":
                unbraced_loop_depth += 1  # `while (...) stmt;`
            i = j
            continue
        if tx == "{":
            kind = pending_kind
            pending_kind = "plain"
            scopes.append(_Scope(kind, scopes[-1].locked))
            i += 1
            continue
        if tx == "}":
            if len(scopes) > 1:
                scopes.pop()
            i += 1
            continue
        if tx == ";":
            if unbraced_loop_depth > 0:
                unbraced_loop_depth -= 1
            i += 1
            continue
        # Lock acquisition: `MutexLock l(mu);` / `std::lock_guard<...> l(m);`
        if t.kind == "id" and tx in LOCK_TYPES:
            j = i + 1
            if j < n and toks[j].text == "<":
                endt = match_template_args(toks, j, min(n, j + 32))
                if endt is not None:
                    j = endt + 1
            if j < n and toks[j].kind == "id" and j + 1 < n and \
                    toks[j + 1].text in ("(", "{"):
                scopes[-1].locked = True
                i = match_bracket(toks, j + 1) + 1
                continue
        locked = scopes[-1].locked
        in_loop = (unbraced_loop_depth > 0 or
                   any(s.kind == "loop" for s in scopes))
        # CondVar wait: `x.Wait(mu)` (>=1 arg). Needs a predicate loop.
        if t.kind == "id" and tx == "Wait" and i > 0 and \
                toks[i - 1].text in (".", "->") and i + 1 < n and \
                toks[i + 1].text == "(":
            close = match_bracket(toks, i + 1)
            has_args = close > i + 2
            if has_args:
                if locked and not in_loop:
                    findings.append(Finding(
                        "no-blocking-under-lock", path, t.line,
                        "CondVar Wait() outside a predicate loop: spurious "
                        "wakeups make a non-looped wait a protocol bug "
                        "(write `while (!pred) cv.Wait(mu);`)"))
                i = close + 1
                continue
            # Zero-arg Wait(): barrier-style rendezvous -- blocking.
            if locked:
                findings.append(Finding(
                    "no-blocking-under-lock", path, t.line,
                    "barrier-style Wait() while holding a lock: a "
                    "rendezvous under a mutex deadlocks as soon as another "
                    "participant needs the same lock"))
            i = close + 1
            continue
        if locked and t.kind == "id" and i + 1 < n and \
                toks[i + 1].text == "(":
            is_method = i > 0 and toks[i - 1].text in (".", "->")
            if is_method and tx in BLOCKING_METHODS:
                findings.append(Finding(
                    "no-blocking-under-lock", path, t.line,
                    f"blocking I/O call {tx}() while holding a lock: "
                    "Env/LevelStorage operations can touch disk; stage the "
                    "data and drop the lock first"))
            elif tx in BLOCKING_BARE_CALLS:
                findings.append(Finding(
                    "no-blocking-under-lock", path, t.line,
                    f"blocking call {tx}() while holding a lock"))
        i += 1


# ---------------------------------------------------------------------------
# Check 5: status-must-use
# ---------------------------------------------------------------------------

def collect_status_functions(file_tokens):
    """Two-pass registry: names declared with a util::Status return type in
    any scanned file, minus names that are also declared with a different
    return type somewhere (conservative de-ambiguation)."""
    status_names = set()
    other_names = set()
    for toks in file_tokens.values():
        n = len(toks)
        for i in range(n - 2):
            a, b, c = toks[i], toks[i + 1], toks[i + 2]
            if b.kind != "id" or c.text != "(":
                continue
            if a.kind != "id":
                continue
            if b.text in ("if", "while", "for", "switch", "return", "sizeof",
                          "operator"):
                continue
            if a.text in STATUS_RETURN_TYPES:
                status_names.add(b.text)
            elif a.text in ("const", "virtual", "inline", "explicit",
                            "static", "friend", "return", "new", "case",
                            "else", "do", "co_return", "throw"):
                continue
            elif a.text[0].isupper() or a.text in (
                    "void", "bool", "int", "double", "float", "auto",
                    "size_t", "uint64_t", "int64_t", "uint32_t", "int32_t",
                    "char", "unsigned", "long", "short", "string"):
                # Looks like a declaration (or a variable construction)
                # with a non-Status type.
                other_names.add(b.text)
    return status_names - other_names


def check_status_must_use(path, toks, findings, status_names):
    n = len(toks)
    i = 0
    stmt_start = True
    while i < n:
        t = toks[i]
        if t.text in (";", "{", "}"):
            stmt_start = True
            i += 1
            continue
        if stmt_start and t.text == "(" and i + 2 < n and \
                toks[i + 1].text == "void" and toks[i + 2].text == ")":
            # `(void)Call();` -- explicit, visible discard: allowed.
            i += 3
            stmt_start = False
            # Skip to end of statement.
            while i < n and toks[i].text != ";":
                i += 1
            continue
        if stmt_start and t.kind == "id":
            # Try to parse: name (::|.|-> name)* '(' ... ')' ';'
            j = i
            last_name = None
            while j < n and toks[j].kind == "id":
                last_name = toks[j]
                j += 1
                if j < n and toks[j].text in ("::", ".", "->"):
                    j += 1
                    continue
                break
            if j < n and toks[j].text == "(" and last_name is not None:
                close = match_bracket(toks, j)
                if close + 1 < n and toks[close + 1].text == ";":
                    if last_name.text in status_names:
                        findings.append(Finding(
                            "status-must-use", path, last_name.line,
                            f"result of Status-returning {last_name.text}() "
                            "is discarded; handle it, propagate it, or make "
                            "the discard explicit"))
                    i = close + 2
                    stmt_start = True
                    continue
        stmt_start = False
        i += 1


# ---------------------------------------------------------------------------
# Check 6: stream-source-blocking-io
# ---------------------------------------------------------------------------

def collect_stream_source_classes(file_tokens):
    """Names of classes deriving (transitively) from StreamSource across
    all scanned files. Cross-file so out-of-line method definitions in a
    .cc are matched against the hierarchy declared in the header."""
    bases_by_class = {}
    for toks in file_tokens.values():
        for name, bases, _, _ in _scan_class_bodies(toks):
            bases_by_class.setdefault(name, set()).update(bases)
    derived = {STREAM_SOURCE_ROOT}
    changed = True
    while changed:
        changed = False
        for name, bases in bases_by_class.items():
            if name not in derived and bases & derived:
                derived.add(name)
                changed = True
    derived.discard(STREAM_SOURCE_ROOT)
    return derived


def _method_bodies(toks, start, end):
    """Yields (method_name, body_start, body_end) for in-class method
    definitions inside a class body [start, end)."""
    i = start
    while i < end:
        t = toks[i]
        if t.kind == "id" and i + 1 < end and toks[i + 1].text == "(":
            close = match_bracket(toks, i + 1)
            j = close + 1
            # Trailing qualifiers and annotation macros.
            while j < end and toks[j].kind == "id" and \
                    (toks[j].text in ("const", "override", "final",
                                      "noexcept", "try")
                     or _is_all_caps_macro(toks[j].text)):
                if j + 1 < end and toks[j + 1].text == "(":
                    j = match_bracket(toks, j + 1) + 1
                else:
                    j += 1
            # Constructor member-initializer list.
            if j < end and toks[j].text == ":":
                while j < end and toks[j].text not in ("{", ";"):
                    if toks[j].text == "(":
                        j = match_bracket(toks, j) + 1
                    else:
                        j += 1
            if j < end and toks[j].text == "{":
                bclose = match_bracket(toks, j)
                yield (t.text, j + 1, bclose)
                i = bclose + 1
                continue
            i = close + 1
            continue
        i += 1


def check_stream_source_blocking_io(path, toks, findings, stream_classes):
    if not stream_classes:
        return
    n = len(toks)
    regions = []  # (class, method, body_start, body_end) to scan

    # In-class method definitions of StreamSource-derived classes.
    for cls, _bases, start, end in _scan_class_bodies(toks):
        if cls not in stream_classes:
            continue
        for meth, bstart, bend in _method_bodies(toks, start, end):
            if meth not in STREAM_READAHEAD_METHODS:
                regions.append((cls, meth, bstart, bend))

    # Out-of-line definitions: `Type Class::Method(...) [quals] [: init] {`.
    i = 0
    while i < n:
        t = toks[i]
        if t.text == "::" and i >= 1 and toks[i - 1].kind == "id" and \
                toks[i - 1].text in stream_classes and i + 1 < n and \
                toks[i + 1].kind == "id" and i + 2 < n and \
                toks[i + 2].text == "(":
            cls, meth = toks[i - 1].text, toks[i + 1].text
            close = match_bracket(toks, i + 2)
            j = close + 1
            while j < n and toks[j].kind == "id" and \
                    (toks[j].text in ("const", "override", "noexcept")
                     or _is_all_caps_macro(toks[j].text)):
                j += 1
            if j < n and toks[j].text == ":":
                while j < n and toks[j].text not in ("{", ";"):
                    if toks[j].text == "(":
                        j = match_bracket(toks, j) + 1
                    else:
                        j += 1
            if j < n and toks[j].text == "{":
                bend = match_bracket(toks, j)
                if meth not in STREAM_READAHEAD_METHODS:
                    regions.append((cls, meth, j + 1, bend))
                i = bend + 1
                continue
            i = close + 1
            continue
        i += 1

    for cls, meth, bstart, bend in regions:
        for k in range(bstart, bend):
            tk = toks[k]
            if tk.kind == "id" and tk.text in STREAM_BLOCKING_IO:
                findings.append(Finding(
                    "stream-source-blocking-io", path, tk.line,
                    f"blocking I/O ({tk.text}) in StreamSource method "
                    f"'{cls}::{meth}': the consumer-facing surface feeds "
                    "the builder thread and must stay non-blocking; move "
                    "the I/O into the ReaderLoop read-ahead seam or waive "
                    "with '// lint: stream-io(<why>)'"))


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def gather_files(args):
    files = []
    seen = set()

    def add(p):
        p = os.path.abspath(p)
        if p in seen:
            return
        if p.endswith((".cc", ".h", ".cpp", ".hpp", ".cxx")):
            seen.add(p)
            files.append(p)

    if args.compdb:
        try:
            with open(args.compdb, encoding="utf-8") as f:
                entries = json.load(f)
        except (OSError, ValueError) as e:
            print(f"smptree-lint: cannot read compdb {args.compdb}: {e}",
                  file=sys.stderr)
            sys.exit(2)
        src_root = os.path.join(REPO_ROOT, "src")
        for e in entries:
            p = os.path.normpath(os.path.join(e.get("directory", ""),
                                              e.get("file", "")))
            if p.startswith(src_root):
                add(p)
        # compile_commands.json lists TUs only; headers carry the class
        # definitions the guarded-by check needs.
        for root, _, names in os.walk(src_root):
            for nm in names:
                add(os.path.join(root, nm))
    for path in args.paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                for nm in names:
                    add(os.path.join(root, nm))
        else:
            add(path)
    if not args.compdb and not args.paths:
        default = os.path.join(REPO_ROOT, "src")
        for root, _, names in os.walk(default):
            for nm in names:
                add(os.path.join(root, nm))
    return sorted(files)


def relpath_for(path):
    try:
        return os.path.relpath(path, REPO_ROOT)
    except ValueError:
        return path


def main():
    ap = argparse.ArgumentParser(
        prog="smptree-lint",
        description="project-specific static checks for smptree")
    ap.add_argument("paths", nargs="*", help="files or directories to scan "
                    "(default: <repo>/src)")
    ap.add_argument("--compdb", help="compile_commands.json; scans its src/ "
                    "translation units plus all src/ headers")
    ap.add_argument("--json", dest="json_out", help="write machine-readable "
                    "findings to this path")
    ap.add_argument("--check", action="append", default=[],
                    choices=ALL_CHECKS, help="run only these checks "
                    "(repeatable; default: all)")
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress per-finding output")
    args = ap.parse_args()

    if args.list_checks:
        for c in ALL_CHECKS:
            print(c)
        return 0

    checks = args.check or ALL_CHECKS
    files = gather_files(args)
    if not files:
        print("smptree-lint: no input files", file=sys.stderr)
        return 2

    file_tokens = {}
    file_comments = {}
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"smptree-lint: cannot read {path}: {e}", file=sys.stderr)
            return 2
        toks, comments = lex(text)
        file_tokens[path] = toks
        file_comments[path] = comments

    status_names = collect_status_functions(file_tokens) \
        if "status-must-use" in checks else set()
    stream_classes = collect_stream_source_classes(file_tokens) \
        if "stream-source-blocking-io" in checks else set()

    findings = []
    all_waivers = []
    for path in files:
        toks = file_tokens[path]
        rel = relpath_for(path)
        per_file = []
        if "atomic-explicit-order" in checks:
            check_atomic_explicit_order(rel, toks, per_file)
        if "guarded-by-coverage" in checks:
            check_guarded_by_coverage(rel, toks, per_file)
        if "raii-span-pairing" in checks:
            check_raii_span_pairing(rel, toks, per_file, rel)
        if "no-blocking-under-lock" in checks:
            check_no_blocking_under_lock(rel, toks, per_file, rel)
        if "status-must-use" in checks and "tests/" not in rel and \
                not rel.startswith("tests"):
            check_status_must_use(rel, toks, per_file, status_names)
        if "stream-source-blocking-io" in checks:
            check_stream_source_blocking_io(rel, toks, per_file,
                                            stream_classes)
        waivers = parse_waivers(file_comments[path], rel, per_file)
        apply_waivers(per_file, waivers)
        findings.extend(per_file)
        all_waivers.extend(waivers)

    unwaivered = [f for f in findings if not f.waived]
    waived = [f for f in findings if f.waived]
    unused_waivers = [w for w in all_waivers if not w.used]

    if not args.quiet:
        for f in sorted(unwaivered, key=lambda f: (f.path, f.line)):
            print(f"{f.path}:{f.line}: [{f.check}] {f.message}")
        if waived:
            print(f"smptree-lint: {len(waived)} finding(s) waived",
                  file=sys.stderr)
        for w in unused_waivers:
            print(f"{w.path}:{w.line}: warning: unused lint waiver "
                  f"'{w.tag}'", file=sys.stderr)

    if args.json_out:
        doc = {
            "tool": "smptree-lint",
            "version": TOOL_VERSION,
            "checks": checks,
            "files_scanned": len(files),
            "findings": [f.to_json() for f in
                         sorted(findings, key=lambda f: (f.path, f.line))],
            "summary": {
                "total": len(findings),
                "unwaivered": len(unwaivered),
                "waived": len(waived),
                "unused_waivers": [
                    {"file": w.path, "line": w.line, "tag": w.tag}
                    for w in unused_waivers
                ],
            },
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")

    if unwaivered:
        print(f"smptree-lint: {len(unwaivered)} unwaivered finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    if not args.quiet:
        print(f"smptree-lint: clean ({len(files)} files, "
              f"{len(waived)} waived)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
