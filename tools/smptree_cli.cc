// smptree command-line tool: generate benchmark data, train classifiers,
// evaluate models, and export trees -- the full library workflow without
// writing C++.
//
//   smptree_cli gen   --function 7 --attrs 32 --tuples 100000
//                     --out data.csv --schema-out schema.txt
//   smptree_cli train --schema schema.txt --data data.csv --algorithm mwk
//                     --threads 4 --model model.tree [--prune cost] [--env disk]
//                     [--eval test.csv]
//   smptree_cli train-forest --schema schema.txt --data data.csv
//                     --trees 8 --threads 4 --model model.forest
//                     [--schedule trees-first|inner-first] [--eval test.csv]
//   smptree_cli train-stream --function 7 --tuples 1000000 --model model.tree
//                     [--warmup 2000] [--grace 200] [--delta 1e-6] [--tau 0.05]
//                     [--memory-budget BYTES] [--snapshot-every N]
//                     [--serve-port P] [--eval test.csv]
//   smptree_cli eval  --schema schema.txt --model model.tree --data test.csv
//   smptree_cli show  --schema schema.txt --model model.tree --format dot
//   smptree_cli predict --schema schema.txt --model model.tree
//                     --data tuples.csv --out labels.csv
//
// eval/predict accept tree and forest model files alike (the file's header
// line says which); `--eval test.csv` after train/train-forest scores the
// freshly written model on a held-out CSV.
//
// Exit status is 0 on success, 1 on any error (message on stderr).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/classifier.h"
#include "core/dot_export.h"
#include "serve/batch.h"
#include "serve/model_store.h"
#include "core/metrics.h"
#include "core/sql_export.h"
#include "core/tree_io.h"
#include "data/csv.h"
#include "data/schema_io.h"
#include "data/synthetic.h"
#include "ensemble/forest_builder.h"
#include "ensemble/forest_io.h"
#include "infer/batch_scorer.h"
#include "infer/flat_tree.h"
#include "serve/service.h"
#include "stream/hoeffding_builder.h"
#include "stream/stream_source.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace smptree {
namespace {

using Flags = std::map<std::string, std::string>;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// Like SMPTREE_ASSIGN_OR_RETURN but for the int-returning CLI handlers:
/// prints the error and returns exit code 1.
#define SMPTREE_ASSIGN_OR_RETURN_CLI(lhs, expr)                        \
  SMPTREE_ASSIGN_OR_RETURN_CLI_IMPL_(SMPTREE_CONCAT_(_cli_, __LINE__), \
                                     lhs, expr)
#define SMPTREE_ASSIGN_OR_RETURN_CLI_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                       \
  if (!tmp.ok()) return Fail(tmp.status().ToString());     \
  lhs = std::move(tmp).value()

int Usage() {
  std::fprintf(stderr,
               "usage: smptree_cli <gen|train|train-forest|train-stream|"
               "eval|show|predict> [--flag value]...\n"
               "  gen:   --function N [--classes K] [--attrs A] [--tuples N]\n"
               "         [--seed S] [--noise P] --out DATA.csv [--schema-out F]\n"
               "  train: --schema F --data F --model F [--algorithm serial|\n"
               "         basic|fwk|mwk|subtree|rec] [--threads P] [--window K]\n"
               "         [--engine sorted|binned] [--max-bins B]\n"
               "         [--subroutine basic|mwk] [--prune none|pessimistic|cost]\n"
               "         [--env mem|disk] [--min-split N] [--max-levels N]\n"
               "         [--criterion gini|entropy]\n"
               "         [--trace-out F.json] [--stats-out F.json]\n"
               "         [--eval TEST.csv]\n"
               "  train-forest: train flags (minus rec/--trace-out) plus\n"
               "         [--trees T] [--schedule trees-first|inner-first]\n"
               "         [--concurrent-trees N] [--features-per-node M]\n"
               "         [--bootstrap 0|1] [--oob 0|1] [--forest-seed S]\n"
               "  train-stream: --model F, input from --schema F --data\n"
               "         SHARD[,SHARD...] (csv or binary shards) or the\n"
               "         generator (--function N [--attrs A] [--tuples N]\n"
               "         [--seed S] [--noise P]); knobs: [--max-bins B]\n"
               "         [--reservoir N] [--warmup N] [--grace N] [--delta D]\n"
               "         [--tau T] [--memory-budget BYTES] [--snapshot-every N]\n"
               "         [--criterion gini|entropy] [--batch N]\n"
               "         [--serve-port P (0 = ephemeral)] [--eval TEST.csv]\n"
               "  eval:  --schema F --model F --data F\n"
               "  show:  --schema F --model F [--format text|sql|dot]\n"
               "  predict: --schema F --model F --data F [--out F]\n");
  return 1;
}

Result<Flags> ParseFlags(int argc, char** argv, int first) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("expected --flag, got '" + arg + "'");
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag " + arg + " needs a value");
    }
    flags[arg.substr(2)] = argv[++i];
  }
  return flags;
}

std::string GetFlag(const Flags& flags, const std::string& name,
                    const std::string& fallback = "") {
  const auto it = flags.find(name);
  return it == flags.end() ? fallback : it->second;
}

Result<int64_t> IntFlag(const Flags& flags, const std::string& name,
                        int64_t fallback) {
  const std::string raw = GetFlag(flags, name);
  if (raw.empty()) return fallback;
  int64_t v = 0;
  if (!ParseInt64(raw, &v)) {
    return Status::InvalidArgument("flag --" + name + ": bad integer '" +
                                   raw + "'");
  }
  return v;
}

Result<double> DoubleFlag(const Flags& flags, const std::string& name,
                          double fallback) {
  const std::string raw = GetFlag(flags, name);
  if (raw.empty()) return fallback;
  double v = 0.0;
  if (!ParseDouble(raw, &v)) {
    return Status::InvalidArgument("flag --" + name + ": bad number '" +
                                   raw + "'");
  }
  return v;
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "serial") return Algorithm::kSerial;
  if (name == "basic") return Algorithm::kBasic;
  if (name == "fwk") return Algorithm::kFwk;
  if (name == "mwk") return Algorithm::kMwk;
  if (name == "subtree") return Algorithm::kSubtree;
  if (name == "rec") return Algorithm::kRecordParallel;
  return Status::InvalidArgument("unknown algorithm '" + name + "'");
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << content;
  out.flush();
  if (!out) return Status::IOError("write failed for " + path);
  return Status::OK();
}

int RunGen(const Flags& flags) {
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t function,
                               IntFlag(flags, "function", 1));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t classes, IntFlag(flags, "classes", 2));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t attrs, IntFlag(flags, "attrs", 9));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t tuples, IntFlag(flags, "tuples", 1000));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t seed, IntFlag(flags, "seed", 42));
  const std::string out_path = GetFlag(flags, "out");
  if (out_path.empty()) return Fail("gen needs --out");
  double noise = 0.0;
  if (!GetFlag(flags, "noise").empty() &&
      !ParseDouble(GetFlag(flags, "noise"), &noise)) {
    return Fail("bad --noise");
  }

  Result<Dataset> data = [&]() -> Result<Dataset> {
    if (classes > 2) {
      MulticlassConfig cfg;
      cfg.num_classes = static_cast<int>(classes);
      cfg.num_attrs = static_cast<int>(attrs);
      cfg.num_tuples = tuples;
      cfg.seed = static_cast<uint64_t>(seed);
      cfg.label_noise = noise;
      return GenerateMulticlassSynthetic(cfg);
    }
    SyntheticConfig cfg;
    cfg.function = static_cast<int>(function);
    cfg.num_attrs = static_cast<int>(attrs);
    cfg.num_tuples = tuples;
    cfg.seed = static_cast<uint64_t>(seed);
    cfg.label_noise = noise;
    return GenerateSynthetic(cfg);
  }();
  if (!data.ok()) return Fail(data.status().ToString());

  Status s = WriteCsv(*data, out_path);
  if (!s.ok()) return Fail(s.ToString());
  const std::string schema_out = GetFlag(flags, "schema-out");
  if (!schema_out.empty()) {
    s = WriteSchemaFile(data->schema(), schema_out);
    if (!s.ok()) return Fail(s.ToString());
  }
  std::printf("wrote %lld tuples to %s\n",
              static_cast<long long>(data->num_tuples()), out_path.c_str());
  return 0;
}

Result<Dataset> LoadData(const Flags& flags) {
  const std::string schema_path = GetFlag(flags, "schema");
  const std::string data_path = GetFlag(flags, "data");
  if (schema_path.empty() || data_path.empty()) {
    return Status::InvalidArgument("--schema and --data are required");
  }
  SMPTREE_ASSIGN_OR_RETURN(Schema schema, ReadSchemaFile(schema_path));
  return ReadCsv(schema, data_path);
}

/// Parses the training flags shared by `train` and `train-forest` into
/// ClassifierOptions (algorithm, threads, window, pruning, env, criterion).
Result<ClassifierOptions> ParseTrainOptions(const Flags& flags) {
  ClassifierOptions options;
  SMPTREE_ASSIGN_OR_RETURN(
      options.build.algorithm,
      ParseAlgorithm(GetFlag(flags, "algorithm", "mwk")));
  SMPTREE_ASSIGN_OR_RETURN(
      options.build.subtree_subroutine,
      ParseAlgorithm(GetFlag(flags, "subroutine", "basic")));
  SMPTREE_ASSIGN_OR_RETURN(int64_t threads, IntFlag(flags, "threads", 1));
  SMPTREE_ASSIGN_OR_RETURN(int64_t window, IntFlag(flags, "window", 4));
  SMPTREE_ASSIGN_OR_RETURN(int64_t min_split, IntFlag(flags, "min-split", 2));
  SMPTREE_ASSIGN_OR_RETURN(int64_t max_levels,
                           IntFlag(flags, "max-levels", 0));
  options.build.num_threads = static_cast<int>(threads);
  options.build.window = static_cast<int>(window);
  options.build.min_split = min_split;
  options.build.max_levels = static_cast<int>(max_levels);
  const std::string engine = GetFlag(flags, "engine", "sorted");
  if (engine == "binned") {
    options.build.engine = Engine::kBinned;
  } else if (engine != "sorted") {
    return Status::InvalidArgument("--engine must be sorted or binned");
  }
  SMPTREE_ASSIGN_OR_RETURN(int64_t max_bins, IntFlag(flags, "max-bins", 256));
  options.build.max_bins = static_cast<int>(max_bins);
  const std::string env_name = GetFlag(flags, "env", "mem");
  if (env_name == "disk") {
    options.build.env = Env::Posix();
  } else if (env_name != "mem") {
    return Status::InvalidArgument("--env must be mem or disk");
  }
  const std::string criterion = GetFlag(flags, "criterion", "gini");
  if (criterion == "entropy") {
    options.build.gini.criterion = SplitCriterion::kEntropy;
  } else if (criterion != "gini") {
    return Status::InvalidArgument("--criterion must be gini or entropy");
  }
  const std::string prune = GetFlag(flags, "prune", "none");
  if (prune == "pessimistic") {
    options.prune.method = PruneOptions::Method::kPessimistic;
  } else if (prune == "cost") {
    options.prune.method = PruneOptions::Method::kCostComplexity;
  } else if (prune != "none") {
    return Status::InvalidArgument(
        "--prune must be none, pessimistic or cost");
  }
  return options;
}

/// Scores every tuple of `data` against the model file through the
/// flattened inference engine -- the same compile + BatchScorer path the
/// serving workers use, so CLI numbers and served numbers come off one
/// code path. `*num_trees` gets the member count (1 for a tree).
Result<std::vector<ClassLabel>> FlatScoreDataset(
    const Schema& schema, const std::string& model_path, const Dataset& data,
    int* num_trees) {
  SMPTREE_ASSIGN_OR_RETURN(bool is_forest,
                           ModelStore::IsForestFile(model_path));
  const Batch batch = Batch::FromDataset(data, 0, data.num_tuples());
  std::vector<ClassLabel> labels(static_cast<size_t>(data.num_tuples()));
  BatchScorer scorer;
  if (is_forest) {
    SMPTREE_ASSIGN_OR_RETURN(Forest forest,
                             ModelStore::LoadForestFile(schema, model_path));
    *num_trees = forest.num_trees();
    scorer.ScoreForest(FlatForest::Compile(forest), batch, labels.data(),
                       /*probs=*/nullptr);
  } else {
    SMPTREE_ASSIGN_OR_RETURN(DecisionTree tree,
                             ModelStore::LoadTreeFile(schema, model_path));
    *num_trees = 1;
    scorer.ScoreTree(FlatTree::Compile(tree), batch, labels.data());
  }
  return labels;
}

/// `--eval test.csv` after train/train-forest (and the `eval` subcommand):
/// scores the model file on a labelled CSV -- accuracy + confusion matrix
/// through core/metrics, with the model kind sniffed from the file and the
/// scoring done by the flattened batch path.
int EvalModelOnData(const Schema& schema, const std::string& model_path,
                    const Dataset& test, const std::string& display_name) {
  int num_trees = 0;
  SMPTREE_ASSIGN_OR_RETURN_CLI(
      std::vector<ClassLabel> labels,
      FlatScoreDataset(schema, model_path, test, &num_trees));
  ConfusionMatrix cm(schema.num_classes());
  for (int64_t t = 0; t < test.num_tuples(); ++t) {
    cm.Add(test.label(t), labels[static_cast<size_t>(t)]);
  }
  if (num_trees > 1) {
    std::printf("eval %s (forest, %d trees): %lld tuples\n%s",
                display_name.c_str(), num_trees,
                static_cast<long long>(test.num_tuples()),
                cm.ToString(schema).c_str());
  } else {
    std::printf("eval %s (tree): %lld tuples\n%s", display_name.c_str(),
                static_cast<long long>(test.num_tuples()),
                cm.ToString(schema).c_str());
  }
  return 0;
}

int EvalModelOnCsv(const Schema& schema, const std::string& model_path,
                   const std::string& eval_path) {
  SMPTREE_ASSIGN_OR_RETURN_CLI(Dataset test, ReadCsv(schema, eval_path));
  return EvalModelOnData(schema, model_path, test, eval_path);
}

int RunTrain(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string model_path = GetFlag(flags, "model");
  if (model_path.empty()) return Fail("train needs --model");

  SMPTREE_ASSIGN_OR_RETURN_CLI(ClassifierOptions options,
                               ParseTrainOptions(flags));

  // Optional observability outputs: a Chrome trace of the build and/or the
  // BuildStats JSON summary (docs/OBSERVABILITY.md).
  const std::string trace_out = GetFlag(flags, "trace-out");
  const std::string stats_out = GetFlag(flags, "stats-out");
  TraceRecorder recorder;
  if (!trace_out.empty() || !stats_out.empty()) {
    options.build.trace = &recorder;
  }

  auto result = TrainClassifier(*data, options);
  if (!result.ok()) return Fail(result.status().ToString());
  Status s = WriteFile(model_path, SerializeTree(*result->tree));
  if (!s.ok()) return Fail(s.ToString());

  const TrainStats& stats = result->stats;
  std::printf(
      "trained %s on %lld tuples: %.3fs total "
      "(setup %.3f, sort %.3f, build %.3f, prune %.3f)\n"
      "tree: %lld nodes, %d levels; %lld pruned; training accuracy %.4f\n"
      "model written to %s\n",
      options.build.engine == Engine::kBinned
          ? "BINNED"
          : AlgorithmName(options.build.algorithm),
      static_cast<long long>(data->num_tuples()), stats.total_seconds,
      stats.setup_seconds, stats.sort_seconds, stats.build_seconds,
      stats.prune_seconds, static_cast<long long>(result->tree->num_nodes()),
      result->tree->Stats().levels,
      static_cast<long long>(stats.nodes_pruned),
      TreeAccuracy(*result->tree, *data), model_path.c_str());
  if (options.build.num_threads > 1 || !trace_out.empty() ||
      !stats_out.empty()) {
    std::printf(
        "phases (compute, summed over %d threads): E %.3fs, W %.3fs, "
        "S %.3fs, H %.3fs; blocked %.3fs (wait share %.1f%%)\n",
        options.build.num_threads, stats.e_phase_seconds,
        stats.w_phase_seconds, stats.s_phase_seconds, stats.h_phase_seconds,
        stats.wait_seconds, 100.0 * stats.build_stats.WaitShare());
  }
  if (!trace_out.empty()) {
    s = WriteFile(trace_out, recorder.ToChromeJson());
    if (!s.ok()) return Fail(s.ToString());
    std::printf("trace written to %s (open in chrome://tracing or "
                "https://ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  if (!stats_out.empty()) {
    s = WriteFile(stats_out, stats.build_stats.ToJson() + "\n");
    if (!s.ok()) return Fail(s.ToString());
    std::printf("build stats written to %s\n", stats_out.c_str());
  }
  const std::string eval_path = GetFlag(flags, "eval");
  if (!eval_path.empty()) {
    return EvalModelOnCsv(data->schema(), model_path, eval_path);
  }
  return 0;
}

/// `train-stream`: incremental Hoeffding-tree training (stream/) from either
/// the Agrawal generator or sharded on-disk data, with optional live serving
/// -- `--serve-port P` starts the full InferenceService and hot-publishes a
/// snapshot into its ModelStore every `--snapshot-every` tuples, so /v1/predict
/// answers with the current tree while training is still running and /statz
/// carries a live "stream" section.
int RunTrainStream(const Flags& flags) {
  const std::string model_path = GetFlag(flags, "model");
  if (model_path.empty()) return Fail("train-stream needs --model");

  // Input: disk shards when --schema is given, the generator otherwise.
  std::unique_ptr<StreamSource> source;
  const std::string schema_path = GetFlag(flags, "schema");
  if (!schema_path.empty()) {
    SMPTREE_ASSIGN_OR_RETURN_CLI(Schema schema, ReadSchemaFile(schema_path));
    const std::string data = GetFlag(flags, "data");
    if (data.empty()) return Fail("train-stream with --schema needs --data");
    SMPTREE_ASSIGN_OR_RETURN_CLI(
        std::unique_ptr<DiskStreamSource> disk,
        DiskStreamSource::Open(schema, SplitString(data, ',')));
    source = std::move(disk);
  } else {
    SyntheticConfig cfg;
    SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t function,
                                 IntFlag(flags, "function", 1));
    SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t attrs, IntFlag(flags, "attrs", 9));
    SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t tuples,
                                 IntFlag(flags, "tuples", 100000));
    SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t seed, IntFlag(flags, "seed", 42));
    SMPTREE_ASSIGN_OR_RETURN_CLI(double noise, DoubleFlag(flags, "noise", 0));
    cfg.function = static_cast<int>(function);
    cfg.num_attrs = static_cast<int>(attrs);
    cfg.num_tuples = tuples;
    cfg.seed = static_cast<uint64_t>(seed);
    cfg.label_noise = noise;
    source = std::make_unique<SyntheticStreamSource>(cfg);
  }

  HoeffdingOptions options;
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t max_bins,
                               IntFlag(flags, "max-bins", 64));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t reservoir,
                               IntFlag(flags, "reservoir", 2048));
  SMPTREE_ASSIGN_OR_RETURN_CLI(options.warmup_tuples,
                               IntFlag(flags, "warmup", 2000));
  SMPTREE_ASSIGN_OR_RETURN_CLI(options.grace_period,
                               IntFlag(flags, "grace", 200));
  SMPTREE_ASSIGN_OR_RETURN_CLI(options.delta,
                               DoubleFlag(flags, "delta", 1e-6));
  SMPTREE_ASSIGN_OR_RETURN_CLI(options.tau, DoubleFlag(flags, "tau", 0.05));
  SMPTREE_ASSIGN_OR_RETURN_CLI(
      int64_t budget,
      IntFlag(flags, "memory-budget", int64_t{64} << 20));
  SMPTREE_ASSIGN_OR_RETURN_CLI(options.snapshot_every,
                               IntFlag(flags, "snapshot-every", 0));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t sketch_seed,
                               IntFlag(flags, "sketch-seed", 1));
  options.max_bins = static_cast<int>(max_bins);
  options.reservoir_size = static_cast<int>(reservoir);
  options.memory_budget_bytes = static_cast<uint64_t>(budget);
  options.seed = static_cast<uint64_t>(sketch_seed);
  const std::string criterion = GetFlag(flags, "criterion", "gini");
  if (criterion == "entropy") {
    options.gini.criterion = SplitCriterion::kEntropy;
  } else if (criterion != "gini") {
    return Fail("--criterion must be gini or entropy");
  }
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t serve_port,
                               IntFlag(flags, "serve-port", -1));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t batch_size, IntFlag(flags, "batch",
                                                           1024));
  if (batch_size < 1) return Fail("--batch must be >= 1");

  // Declared before the builder so the publish hook (which captures it by
  // reference) stays valid for the builder's whole life; filled in below,
  // after Init, once there is a tree to seed the store with. Until then the
  // hook is a no-op.
  std::unique_ptr<InferenceService> service;
  const bool serving = serve_port >= 0;
  if (serving) {
    if (options.snapshot_every == 0) options.snapshot_every = 10000;
    options.publish = [&service](DecisionTree&& snapshot, int64_t tuples) {
      if (service == nullptr) return Status::OK();
      return service->store().Install(
          std::move(snapshot),
          StringPrintf("train-stream@%lld",
                       static_cast<long long>(tuples)));
    };
  }

  HoeffdingTreeBuilder builder(source->schema(), options);
  Status s = builder.Init();
  if (!s.ok()) return Fail(s.ToString());

  if (serving) {
    SMPTREE_ASSIGN_OR_RETURN_CLI(DecisionTree initial, builder.Snapshot());
    SMPTREE_ASSIGN_OR_RETURN_CLI(std::unique_ptr<ModelStore> store,
                                 ModelStore::Create(std::move(initial)));
    ServiceOptions service_options;
    service_options.http.port = static_cast<uint16_t>(serve_port);
    service_options.stream_stats = [&builder] { return builder.StatsJson(); };
    service = std::make_unique<InferenceService>(std::move(store),
                                                 std::move(service_options));
    s = service->Start();
    if (!s.ok()) return Fail(s.ToString());
    std::printf("serving on port %u while training "
                "(hot-publish every %lld tuples)\n",
                service->port(),
                static_cast<long long>(options.snapshot_every));
    // Scripts parse the port from redirected output while training runs.
    std::fflush(stdout);
  }

  Timer timer;
  StreamBatch batch;
  while (true) {
    auto delivered = source->NextBatch(batch_size, &batch);
    if (!delivered.ok()) return Fail(delivered.status().ToString());
    if (*delivered == 0) break;
    s = builder.Ingest(batch);
    if (!s.ok()) return Fail(s.ToString());
  }
  s = builder.Finish();
  if (!s.ok()) return Fail(s.ToString());
  const double seconds = timer.Seconds();

  s = WriteFile(model_path, SerializeTree(builder.tree()));
  if (!s.ok()) return Fail(s.ToString());

  const StreamStats stats = builder.Stats();
  std::printf(
      "streamed %lld tuples in %.3fs (%.0f tuples/s)\n"
      "tree: %lld nodes, %lld splits; %lld active + %lld deactivated "
      "leaves\n"
      "memory: %s sketch, %s leaf histograms; %lld snapshots published\n"
      "model written to %s\n",
      static_cast<long long>(stats.tuples), seconds,
      seconds > 0 ? static_cast<double>(stats.tuples) / seconds : 0.0,
      static_cast<long long>(stats.nodes),
      static_cast<long long>(stats.splits),
      static_cast<long long>(stats.active_leaves),
      static_cast<long long>(stats.deactivated_leaves),
      HumanBytes(stats.sketch_bytes).c_str(),
      HumanBytes(stats.histogram_bytes).c_str(),
      static_cast<long long>(stats.snapshots), model_path.c_str());
  if (service != nullptr) service->Stop();

  const std::string eval_path = GetFlag(flags, "eval");
  if (!eval_path.empty()) {
    return EvalModelOnCsv(source->schema(), model_path, eval_path);
  }
  return 0;
}

int RunTrainForest(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string model_path = GetFlag(flags, "model");
  if (model_path.empty()) return Fail("train-forest needs --model");

  ForestOptions options;
  SMPTREE_ASSIGN_OR_RETURN_CLI(options.tree, ParseTrainOptions(flags));
  // --threads is the forest-wide budget; the planner decides how much of it
  // each member build gets.
  options.num_threads = options.tree.build.num_threads;
  options.tree.build.num_threads = 1;
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t trees, IntFlag(flags, "trees", 10));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t features,
                               IntFlag(flags, "features-per-node", 0));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t bootstrap,
                               IntFlag(flags, "bootstrap", 1));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t oob, IntFlag(flags, "oob", 1));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t seed,
                               IntFlag(flags, "forest-seed", 42));
  SMPTREE_ASSIGN_OR_RETURN_CLI(int64_t concurrent,
                               IntFlag(flags, "concurrent-trees", 0));
  options.num_trees = static_cast<int>(trees);
  options.features_per_node = static_cast<int>(features);
  options.bootstrap = bootstrap != 0;
  options.oob = oob != 0;
  options.seed = static_cast<uint64_t>(seed);
  options.concurrent_trees = static_cast<int>(concurrent);
  const std::string schedule = GetFlag(flags, "schedule", "trees-first");
  if (schedule == "trees-first") {
    options.schedule = ForestSchedule::kTreesFirst;
  } else if (schedule == "inner-first") {
    options.schedule = ForestSchedule::kInnerFirst;
  } else {
    return Fail("--schedule must be trees-first or inner-first");
  }

  auto result = TrainForest(*data, options);
  if (!result.ok()) return Fail(result.status().ToString());
  Status s = WriteFile(model_path, SerializeForest(*result->forest));
  if (!s.ok()) return Fail(s.ToString());

  const ForestTrainStats& stats = result->stats;
  const ForestStats shape = result->forest->Stats();
  std::printf(
      "trained forest of %d trees (%s inner, schedule %s: %d concurrent x "
      "%d inner threads) on %lld tuples in %.3fs\n"
      "forest: %lld nodes, mean depth %.1f, max depth %d\n",
      result->forest->num_trees(),
      AlgorithmName(options.tree.build.algorithm),
      ForestScheduleName(options.schedule), stats.split.concurrent_trees,
      stats.split.inner_threads, static_cast<long long>(data->num_tuples()),
      stats.total_seconds, static_cast<long long>(shape.total_nodes),
      shape.mean_levels, shape.max_levels);
  if (stats.oob_accuracy >= 0.0) {
    std::printf("oob accuracy: %.4f over %lld out-of-bag tuples\n",
                stats.oob_accuracy,
                static_cast<long long>(stats.oob_tuples));
  }
  std::printf("model written to %s\n", model_path.c_str());

  const std::string stats_out = GetFlag(flags, "stats-out");
  if (!stats_out.empty()) {
    s = WriteFile(stats_out, stats.build_stats.ToJson() + "\n");
    if (!s.ok()) return Fail(s.ToString());
    std::printf("build stats written to %s\n", stats_out.c_str());
  }
  const std::string eval_path = GetFlag(flags, "eval");
  if (!eval_path.empty()) {
    return EvalModelOnCsv(data->schema(), model_path, eval_path);
  }
  return 0;
}

Result<DecisionTree> LoadModel(const Flags& flags, const Schema& schema) {
  const std::string model_path = GetFlag(flags, "model");
  if (model_path.empty()) {
    return Status::InvalidArgument("--model is required");
  }
  SMPTREE_ASSIGN_OR_RETURN(std::string text, ReadFile(model_path));
  return DeserializeTree(schema, text);
}

int RunEval(const Flags& flags) {
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string model_path = GetFlag(flags, "model");
  if (model_path.empty()) return Fail("eval needs --model");
  return EvalModelOnData(data->schema(), model_path, *data, model_path);
}

int RunShow(const Flags& flags) {
  const std::string schema_path = GetFlag(flags, "schema");
  if (schema_path.empty()) return Fail("show needs --schema");
  auto schema = ReadSchemaFile(schema_path);
  if (!schema.ok()) return Fail(schema.status().ToString());
  auto tree = LoadModel(flags, *schema);
  if (!tree.ok()) return Fail(tree.status().ToString());

  const std::string format = GetFlag(flags, "format", "text");
  if (format == "text") {
    std::printf("%s", tree->ToString().c_str());
  } else if (format == "sql") {
    std::printf("%s\n", TreeToSqlCase(*tree).c_str());
  } else if (format == "dot") {
    std::printf("%s", TreeToDot(*tree).c_str());
  } else {
    return Fail("--format must be text, sql or dot");
  }
  return 0;
}

int RunPredict(const Flags& flags) {
  // Scores a CSV with the model and writes one predicted class name per
  // line. Loads the model through ModelStore (the same validated load path
  // the inference server uses) and scores it through the same flattened
  // BatchScorer the serving workers run, so a model that serves is exactly
  // a model this subcommand accepts and predicts identically. The input
  // uses the standard CSV layout; its label column is ignored.
  auto data = LoadData(flags);
  if (!data.ok()) return Fail(data.status().ToString());
  const std::string model_path = GetFlag(flags, "model");
  if (model_path.empty()) return Fail("predict needs --model");
  int num_trees = 0;
  SMPTREE_ASSIGN_OR_RETURN_CLI(
      std::vector<ClassLabel> labels,
      FlatScoreDataset(data->schema(), model_path, *data, &num_trees));

  std::string out = "class\n";
  for (int64_t t = 0; t < data->num_tuples(); ++t) {
    out += data->schema().class_name(labels[static_cast<size_t>(t)]);
    out += "\n";
  }
  const std::string out_path = GetFlag(flags, "out");
  if (out_path.empty()) {
    std::printf("%s", out.c_str());
    return 0;
  }
  Status s = WriteFile(out_path, out);
  if (!s.ok()) return Fail(s.ToString());
  std::printf("wrote %lld predictions to %s\n",
              static_cast<long long>(data->num_tuples()), out_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv, 2);
  if (!flags.ok()) {
    Fail(flags.status().ToString());
    return Usage();
  }
  if (command == "gen") return RunGen(*flags);
  if (command == "train") return RunTrain(*flags);
  if (command == "train-forest") return RunTrainForest(*flags);
  if (command == "train-stream") return RunTrainStream(*flags);
  if (command == "eval") return RunEval(*flags);
  if (command == "show") return RunShow(*flags);
  if (command == "predict") return RunPredict(*flags);
  return Usage();
}

}  // namespace
}  // namespace smptree

int main(int argc, char** argv) { return smptree::Main(argc, argv); }
