// smptree_serve: long-lived inference server over a trained model.
//
//   smptree_serve --schema schema.txt --model model.tree
//                 [--port 8080] [--address 127.0.0.1] [--workers 0]
//                 [--http-threads 4] [--queue 128] [--no-reload]
//                 [--front-end epoll|threaded] [--build-stats stats.json]
//
// --front-end picks the connection path: "epoll" (default) multiplexes
// every connection over one event loop with --http-threads dispatch
// workers; "threaded" is the legacy blocking pool where --http-threads
// also caps live connections (kept as the parity oracle).
//
// Endpoints (see docs/SERVING.md): POST /v1/predict, POST /v1/reload,
// GET /healthz, GET /statz. Prints "listening on <port>" once ready (port 0
// picks an ephemeral port and prints the real one, which is how the test
// harness finds it). Runs until SIGINT/SIGTERM, then drains in-flight
// requests and exits 0.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "serve/json.h"
#include "serve/service.h"
#include "util/string_util.h"

namespace smptree {
namespace {

// Self-pipe for signal-safe shutdown: the handler writes one byte, main
// blocks on read. (CondVar notify is not async-signal-safe; write is.)
int g_shutdown_pipe[2] = {-1, -1};

void HandleSignal(int) {
  const char byte = 1;
  // Best effort; if the pipe is full a shutdown is already pending.
  [[maybe_unused]] ssize_t n = ::write(g_shutdown_pipe[1], &byte, 1);
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: smptree_serve --schema F --model F [--port N]\n"
               "         [--address A] [--workers N] [--http-threads N]\n"
               "         [--queue N] [--no-reload] [--build-stats F.json]\n"
               "         [--front-end epoll|threaded]\n");
  return 1;
}

int Main(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage();
    if (arg == "--no-reload") {
      flags["no-reload"] = "1";
      continue;
    }
    if (i + 1 >= argc) return Usage();
    flags[arg.substr(2)] = argv[++i];
  }
  const auto get = [&](const std::string& name,
                       const std::string& fallback = "") {
    const auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second;
  };
  const auto get_int = [&](const std::string& name, int64_t fallback,
                           int64_t* out) {
    const std::string raw = get(name);
    if (raw.empty()) {
      *out = fallback;
      return true;
    }
    return ParseInt64(raw, out);
  };

  const std::string schema_path = get("schema");
  const std::string model_path = get("model");
  if (schema_path.empty() || model_path.empty()) return Usage();

  int64_t port = 0, workers = 0, http_threads = 4, queue = 128;
  if (!get_int("port", 8080, &port) || port < 0 || port > 65535 ||
      !get_int("workers", 0, &workers) ||
      !get_int("http-threads", 4, &http_threads) || http_threads < 1 ||
      !get_int("queue", 128, &queue) || queue < 1) {
    return Fail("bad numeric flag");
  }

  auto store = ModelStore::Open(schema_path, model_path);
  if (!store.ok()) return Fail(store.status().ToString());

  ServiceOptions options;
  options.engine.num_workers = static_cast<int>(workers);
  options.engine.queue_capacity = static_cast<size_t>(queue);
  options.http.bind_address = get("address", "127.0.0.1");
  options.http.port = static_cast<uint16_t>(port);
  options.http.num_threads = static_cast<int>(http_threads);
  const std::string front_end = get("front-end", "epoll");
  if (front_end == "epoll") {
    options.http.front_end = HttpServer::FrontEnd::kEpoll;
  } else if (front_end == "threaded") {
    options.http.front_end = HttpServer::FrontEnd::kThreaded;
  } else {
    return Fail("bad --front-end (want epoll or threaded): " + front_end);
  }
  options.allow_reload = get("no-reload").empty();

  // Training-run BuildStats to embed in /statz ("build" section). Validate
  // up front: a malformed file would corrupt every /statz response body.
  const std::string build_stats_path = get("build-stats");
  if (!build_stats_path.empty()) {
    std::ifstream in(build_stats_path);
    if (!in) return Fail("cannot open " + build_stats_path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw(TrimWhitespace(buffer.str()));
    auto parsed = ParseJson(raw);
    if (!parsed.ok()) {
      return Fail("--build-stats " + build_stats_path + ": " +
                  parsed.status().ToString());
    }
    options.build_stats_json = raw;
  }

  InferenceService service(std::move(*store), options);
  const Status started = service.Start();
  if (!started.ok()) return Fail(started.ToString());

  const ServingModelPtr model = service.store().Current();
  std::printf(
      "smptree_serve: %s model %s (epoch %lld, %d trees, %lld nodes, "
      "%d workers, %s front end)\n",
      model->kind_name(), model->source.c_str(),
      static_cast<long long>(model->epoch), model->num_trees(),
      static_cast<long long>(model->total_nodes()),
      service.engine().num_workers(), front_end.c_str());
  std::printf("listening on %u\n", static_cast<unsigned>(service.port()));
  std::fflush(stdout);

  if (::pipe(g_shutdown_pipe) != 0) return Fail("pipe failed");
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  char byte = 0;
  while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("smptree_serve: shutting down\n");
  service.Stop();
  return 0;
}

}  // namespace
}  // namespace smptree

int main(int argc, char** argv) { return smptree::Main(argc, argv); }
