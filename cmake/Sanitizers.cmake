# First-class sanitizer build modes. SMPTREE_SANITIZE selects a comma- (or
# semicolon-) separated subset of {thread, address, undefined}; thread and
# address are mutually exclusive. The `tsan` and `asan-ubsan` presets in
# CMakePresets.json are the intended entry points; runtime options and
# suppression files live under tools/sanitizers/.
#
# -fno-sanitize-recover=all turns every UBSan diagnostic into a hard
# failure, so a ctest run cannot pass while printing reports.

set(SMPTREE_SANITIZE "" CACHE STRING
    "Sanitizers to compile and link with: comma-separated subset of thread,address,undefined")

if(SMPTREE_SANITIZE)
  string(REPLACE "," ";" _smptree_san_list "${SMPTREE_SANITIZE}")
  set(_smptree_san_known thread address undefined)
  foreach(_san IN LISTS _smptree_san_list)
    if(NOT _san IN_LIST _smptree_san_known)
      message(FATAL_ERROR
          "SMPTREE_SANITIZE: unknown sanitizer '${_san}' "
          "(expected a subset of: thread, address, undefined)")
    endif()
  endforeach()
  if("thread" IN_LIST _smptree_san_list AND "address" IN_LIST _smptree_san_list)
    message(FATAL_ERROR
        "SMPTREE_SANITIZE: thread and address sanitizers cannot be combined")
  endif()

  list(REMOVE_DUPLICATES _smptree_san_list)
  list(JOIN _smptree_san_list "," _smptree_san_arg)
  add_compile_options(
      -fsanitize=${_smptree_san_arg}
      -fno-omit-frame-pointer
      -fno-sanitize-recover=all
      -g)
  add_link_options(-fsanitize=${_smptree_san_arg})
  message(STATUS "smptree: building with -fsanitize=${_smptree_san_arg}")
endif()
