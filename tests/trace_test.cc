#include "util/trace.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/classifier.h"
#include "data/synthetic.h"
#include "serve/json.h"

namespace smptree {
namespace {

TEST(TraceSpanTest, UnboundThreadRecordsNothing) {
  TraceRecorder recorder;
  {
    TraceSpan span("E", "phase", 0);
  }
  EXPECT_EQ(recorder.num_events(), 0u);
  EXPECT_EQ(recorder.num_threads(), 0);
}

TEST(TraceSpanTest, NullRecorderBindingIsNoop) {
  TraceThreadBinding binding(nullptr, 0);
  TraceSpan span("E", "phase", 0);
  // Nothing to assert beyond "does not crash": no buffer exists.
}

TEST(TraceSpanTest, BoundThreadRecordsSpans) {
  TraceRecorder recorder;
  {
    TraceThreadBinding binding(&recorder, 3);
    { TraceSpan span("E", "phase", 0, 7); }
    { TraceSpan span("barrier", "wait"); }
  }
  ASSERT_EQ(recorder.num_threads(), 1);
  EXPECT_EQ(recorder.thread_tid(0), 3);
  const std::vector<TraceEvent>& events = recorder.thread_events(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "E");
  EXPECT_STREQ(events[0].cat, "phase");
  EXPECT_EQ(events[0].level, 0);
  EXPECT_EQ(events[0].arg, 7);
  EXPECT_STREQ(events[1].name, "barrier");
  EXPECT_STREQ(events[1].cat, "wait");
  EXPECT_EQ(events[1].level, -1);
}

TEST(TraceSpanTest, BindingRestoresPreviousBuffer) {
  TraceRecorder outer;
  TraceRecorder inner;
  TraceThreadBinding outer_binding(&outer, 0);
  {
    TraceThreadBinding inner_binding(&inner, 0);
    TraceSpan span("inner", "phase");
  }
  { TraceSpan span("outer", "phase"); }
  ASSERT_EQ(inner.num_events(), 1u);
  ASSERT_EQ(outer.num_events(), 1u);
  EXPECT_STREQ(outer.thread_events(0)[0].name, "outer");
}

TEST(TraceSpanTest, TimestampsAreMonotonicPerThread) {
  TraceRecorder recorder;
  {
    TraceThreadBinding binding(&recorder, 0);
    for (int i = 0; i < 100; ++i) {
      TraceSpan span("E", "phase", i);
    }
  }
  const std::vector<TraceEvent>& events = recorder.thread_events(0);
  ASSERT_EQ(events.size(), 100u);
  for (size_t i = 1; i < events.size(); ++i) {
    // Sequential RAII scopes: each span starts no earlier than the previous
    // one started, and no earlier than the previous one ended.
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns + events[i - 1].dur_ns);
  }
}

TEST(TraceRecorderTest, ConcurrentAttachIsSafe) {
  TraceRecorder recorder;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&recorder, t] {
      TraceThreadBinding binding(&recorder, t);
      for (int i = 0; i < 50; ++i) {
        TraceSpan span("S", "phase", i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(recorder.num_threads(), 8);
  EXPECT_EQ(recorder.num_events(), 8u * 50u);
}

// The Chrome JSON must parse and contain one "X" object per span plus one
// thread_name metadata object per thread.
TEST(TraceRecorderTest, ChromeJsonIsWellFormed) {
  TraceRecorder recorder;
  {
    TraceThreadBinding binding(&recorder, 1);
    { TraceSpan span("E", "phase", 0, 42); }
    { TraceSpan span("gate_wait", "wait", 2); }
  }
  {
    TraceThreadBinding binding(&recorder, 0);
    TraceSpan span("S", "phase", 1);
  }
  const std::string json = recorder.ToChromeJson();
  auto parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << json;
  const JsonValue& root = *parsed;
  ASSERT_TRUE(root.is_object());
  const JsonValue* events = root.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  int metadata = 0, complete = 0;
  for (const JsonValue& ev : events->array_items()) {
    const JsonValue* ph = ev.Find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string_value() == "M") {
      ++metadata;
    } else if (ph->string_value() == "X") {
      ++complete;
      EXPECT_NE(ev.Find("ts"), nullptr);
      EXPECT_NE(ev.Find("dur"), nullptr);
      EXPECT_NE(ev.Find("name"), nullptr);
      EXPECT_GE(ev.Find("dur")->number_value(), 0.0);
    } else {
      FAIL() << "unexpected event phase " << ph->string_value();
    }
  }
  EXPECT_EQ(metadata, 2);
  EXPECT_EQ(complete, 3);
}

TEST(TraceRecorderTest, EmptyRecorderStillEmitsValidJson) {
  TraceRecorder recorder;
  auto parsed = ParseJson(recorder.ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->Find("traceEvents")->is_array());
}

// End to end: a traced 2-thread MWK build produces parseable Chrome JSON
// with per-level phase spans on every thread.
TEST(TraceBuildTest, TracedMwkBuildEmitsPhaseSpans) {
  SyntheticConfig cfg;
  cfg.function = 5;
  cfg.num_tuples = 2000;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());

  TraceRecorder recorder;
  ClassifierOptions options;
  options.build.algorithm = Algorithm::kMwk;
  options.build.num_threads = 2;
  options.build.trace = &recorder;
  auto result = TrainClassifier(*data, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  EXPECT_EQ(recorder.num_threads(), 2);
  EXPECT_GT(recorder.num_events(), 0u);
  bool saw_phase = false;
  for (int i = 0; i < recorder.num_threads(); ++i) {
    for (const TraceEvent& ev : recorder.thread_events(i)) {
      if (std::string(ev.cat) == "phase") {
        saw_phase = true;
        EXPECT_GE(ev.level, 0);
      }
    }
  }
  EXPECT_TRUE(saw_phase);

  auto parsed = ParseJson(recorder.ToChromeJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
}

}  // namespace
}  // namespace smptree
