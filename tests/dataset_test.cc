#include "data/dataset.h"

#include <gtest/gtest.h>

namespace smptree {
namespace {

Schema MakeSchema() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("color", 3);
  s.SetClassNames({"A", "B"});
  return s;
}

TupleValues MakeTuple(float age, int32_t color) {
  TupleValues v(2);
  v[0].f = age;
  v[1].cat = color;
  return v;
}

TEST(DatasetTest, AppendAndAccess) {
  Dataset d(MakeSchema());
  ASSERT_TRUE(d.Append(MakeTuple(30.0f, 1), 0).ok());
  ASSERT_TRUE(d.Append(MakeTuple(55.5f, 2), 1).ok());
  EXPECT_EQ(d.num_tuples(), 2);
  EXPECT_EQ(d.value(0, 0).f, 30.0f);
  EXPECT_EQ(d.value(1, 1).cat, 2);
  EXPECT_EQ(d.label(0), 0);
  EXPECT_EQ(d.label(1), 1);
}

TEST(DatasetTest, AppendRejectsWrongArity) {
  Dataset d(MakeSchema());
  TupleValues v(1);
  EXPECT_TRUE(d.Append(v, 0).IsInvalidArgument());
}

TEST(DatasetTest, AppendRejectsBadLabel) {
  Dataset d(MakeSchema());
  EXPECT_TRUE(d.Append(MakeTuple(1.0f, 0), 2).IsInvalidArgument());
}

TEST(DatasetTest, TupleGathersRow) {
  Dataset d(MakeSchema());
  ASSERT_TRUE(d.Append(MakeTuple(42.0f, 2), 1).ok());
  const TupleValues row = d.Tuple(0);
  EXPECT_EQ(row[0].f, 42.0f);
  EXPECT_EQ(row[1].cat, 2);
}

TEST(DatasetTest, ColumnSpanIsColumnar) {
  Dataset d(MakeSchema());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(d.Append(MakeTuple(static_cast<float>(i), i % 3), 0).ok());
  }
  auto col = d.column(0);
  ASSERT_EQ(col.size(), 5u);
  EXPECT_EQ(col[3].f, 3.0f);
}

TEST(DatasetTest, ClassCounts) {
  Dataset d(MakeSchema());
  ASSERT_TRUE(d.Append(MakeTuple(1, 0), 0).ok());
  ASSERT_TRUE(d.Append(MakeTuple(2, 0), 1).ok());
  ASSERT_TRUE(d.Append(MakeTuple(3, 0), 1).ok());
  const auto counts = d.ClassCounts();
  EXPECT_EQ(counts[0], 1);
  EXPECT_EQ(counts[1], 2);
}

TEST(DatasetTest, SizeBytesScalesWithTuples) {
  Dataset d(MakeSchema());
  const uint64_t empty = d.SizeBytes();
  ASSERT_TRUE(d.Append(MakeTuple(1, 0), 0).ok());
  EXPECT_GT(d.SizeBytes(), empty);
}

TEST(DatasetTest, ValidateCatchesBadCode) {
  Dataset d(MakeSchema());
  ASSERT_TRUE(d.Append(MakeTuple(1.0f, 7), 0).ok());  // 7 >= cardinality 3
  EXPECT_TRUE(d.Validate().IsCorruption());
}

TEST(DatasetTest, ValidateAcceptsGood) {
  Dataset d(MakeSchema());
  ASSERT_TRUE(d.Append(MakeTuple(1.0f, 2), 1).ok());
  EXPECT_TRUE(d.Validate().ok());
}

}  // namespace
}  // namespace smptree
