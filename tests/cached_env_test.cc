#include "storage/cached_env.h"

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/tree_io.h"
#include "data/synthetic.h"

namespace smptree {
namespace {

class CachedEnvTest : public ::testing::Test {
 protected:
  void Make(size_t capacity, size_t page_size = 64) {
    base_ = Env::NewMem();
    cached_ = std::make_unique<CachedEnv>(base_.get(), capacity, page_size);
  }

  std::unique_ptr<Env> base_;
  std::unique_ptr<CachedEnv> cached_;
};

TEST_F(CachedEnvTest, ReadThroughAndHit) {
  Make(1024);
  std::unique_ptr<File> f;
  ASSERT_TRUE(cached_->NewFile("/f", &f).ok());
  std::string payload(100, 'x');
  for (size_t i = 0; i < payload.size(); ++i) payload[i] = 'a' + i % 26;
  ASSERT_TRUE(f->Append(payload.data(), payload.size()).ok());

  char buf[100];
  ASSERT_TRUE(f->Read(0, 100, buf).ok());
  EXPECT_EQ(std::string(buf, 100), payload);
  const CacheStats after_first = cached_->GetStats();
  EXPECT_GT(after_first.misses, 0u);

  ASSERT_TRUE(f->Read(0, 100, buf).ok());
  EXPECT_EQ(std::string(buf, 100), payload);
  const CacheStats after_second = cached_->GetStats();
  EXPECT_EQ(after_second.misses, after_first.misses);  // all hits now
  EXPECT_GT(after_second.hits, after_first.hits);
}

TEST_F(CachedEnvTest, SubPageAndCrossPageReads) {
  Make(4096, /*page_size=*/16);
  std::unique_ptr<File> f;
  ASSERT_TRUE(cached_->NewFile("/f", &f).ok());
  std::string payload;
  for (int i = 0; i < 100; ++i) payload.push_back(static_cast<char>(i));
  ASSERT_TRUE(f->Append(payload.data(), payload.size()).ok());

  char buf[100];
  // Crosses several 16-byte pages at an odd offset.
  ASSERT_TRUE(f->Read(7, 50, buf).ok());
  EXPECT_EQ(std::string(buf, 50), payload.substr(7, 50));
  // Entirely inside one page.
  ASSERT_TRUE(f->Read(17, 10, buf).ok());
  EXPECT_EQ(std::string(buf, 10), payload.substr(17, 10));
}

TEST_F(CachedEnvTest, ReadPastEndFails) {
  Make(1024);
  std::unique_ptr<File> f;
  ASSERT_TRUE(cached_->NewFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("abc", 3).ok());
  char buf[8];
  EXPECT_FALSE(f->Read(0, 8, buf).ok());
}

TEST_F(CachedEnvTest, EvictionUnderCapacity) {
  Make(/*capacity=*/128, /*page_size=*/64);  // two pages max
  std::unique_ptr<File> f;
  ASSERT_TRUE(cached_->NewFile("/f", &f).ok());
  std::string payload(64 * 8, 'z');
  ASSERT_TRUE(f->Append(payload.data(), payload.size()).ok());
  char buf[64];
  for (uint64_t page = 0; page < 8; ++page) {
    ASSERT_TRUE(f->Read(page * 64, 64, buf).ok());
  }
  const CacheStats stats = cached_->GetStats();
  EXPECT_EQ(stats.misses, 8u);
  EXPECT_GE(stats.evictions, 6u);
  // Re-reading the first page misses again (it was evicted).
  ASSERT_TRUE(f->Read(0, 64, buf).ok());
  EXPECT_EQ(cached_->GetStats().misses, 9u);
}

TEST_F(CachedEnvTest, AppendInvalidatesOnlyTailPage) {
  Make(4096, /*page_size=*/64);
  std::unique_ptr<File> f;
  ASSERT_TRUE(cached_->NewFile("/f", &f).ok());
  std::string first(100, 'a');  // page 0 full, page 1 partial
  ASSERT_TRUE(f->Append(first.data(), first.size()).ok());
  char buf[160];
  ASSERT_TRUE(f->Read(0, 100, buf).ok());  // caches pages 0 and 1

  std::string more(60, 'b');
  ASSERT_TRUE(f->Append(more.data(), more.size()).ok());
  ASSERT_TRUE(f->Read(0, 160, buf).ok());
  EXPECT_EQ(std::string(buf, 100), first);
  EXPECT_EQ(std::string(buf + 100, 60), more);
}

TEST_F(CachedEnvTest, TruncateInvalidatesAllPages) {
  Make(4096, /*page_size=*/64);
  std::unique_ptr<File> f;
  ASSERT_TRUE(cached_->NewFile("/f", &f).ok());
  std::string old_content(128, 'o');
  ASSERT_TRUE(f->Append(old_content.data(), old_content.size()).ok());
  char buf[128];
  ASSERT_TRUE(f->Read(0, 128, buf).ok());

  ASSERT_TRUE(f->Truncate().ok());
  std::string new_content(128, 'n');
  ASSERT_TRUE(f->Append(new_content.data(), new_content.size()).ok());
  ASSERT_TRUE(f->Read(0, 128, buf).ok());
  EXPECT_EQ(std::string(buf, 128), new_content);  // no stale 'o' bytes
}

TEST_F(CachedEnvTest, ReadViewNotSupported) {
  Make(1024);
  std::unique_ptr<File> f;
  ASSERT_TRUE(cached_->NewFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("data", 4).ok());
  const char* view = nullptr;
  EXPECT_TRUE(f->ReadView(0, 4, &view).IsNotSupported());
}

TEST_F(CachedEnvTest, DistinctFilesDoNotCollide) {
  Make(4096, 64);
  std::unique_ptr<File> a;
  std::unique_ptr<File> b;
  ASSERT_TRUE(cached_->NewFile("/a", &a).ok());
  ASSERT_TRUE(cached_->NewFile("/b", &b).ok());
  ASSERT_TRUE(a->Append("AAAA", 4).ok());
  ASSERT_TRUE(b->Append("BBBB", 4).ok());
  char buf[4];
  ASSERT_TRUE(a->Read(0, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "AAAA");
  ASSERT_TRUE(b->Read(0, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "BBBB");
}

// End-to-end: training through a tiny cache must produce the identical
// tree (only slower), for a sample of algorithms.
TEST(CachedEnvTrainingTest, TinyCacheMatchesUncached) {
  SyntheticConfig cfg;
  cfg.function = 7;
  cfg.num_tuples = 1500;
  cfg.num_attrs = 12;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());

  ClassifierOptions serial;
  auto expected = TrainClassifier(*data, serial);
  ASSERT_TRUE(expected.ok());

  auto base = Env::NewMem();
  // 16 KB cache vs ~200 KB of attribute lists: heavy eviction.
  CachedEnv cached(base.get(), 16 << 10, 4 << 10);
  for (Algorithm algorithm : {Algorithm::kSerial, Algorithm::kMwk,
                              Algorithm::kSubtree}) {
    ClassifierOptions options;
    options.build.algorithm = algorithm;
    options.build.num_threads = algorithm == Algorithm::kSerial ? 1 : 3;
    options.build.env = &cached;
    auto actual = TrainClassifier(*data, options);
    ASSERT_TRUE(actual.ok()) << AlgorithmName(algorithm) << ": "
                             << actual.status().ToString();
    EXPECT_TRUE(TreesEqual(*expected->tree, *actual->tree))
        << AlgorithmName(algorithm);
  }
  const CacheStats stats = cached.GetStats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.misses, 0u);
}

}  // namespace
}  // namespace smptree
