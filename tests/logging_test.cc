#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/timer.h"

namespace smptree {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, LevelRoundTrips) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, SuppressedLevelsDoNotEvaluate) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  SMPTREE_LOG(kDebug) << "value " << expensive();
  SMPTREE_LOG(kError) << "value " << expensive();
  EXPECT_EQ(evaluations, 0);
}

TEST(LoggingTest, EnabledLevelsEvaluate) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  int evaluations = 0;
  auto counted = [&] {
    ++evaluations;
    return 1;
  };
  SMPTREE_LOG(kDebug) << counted();
  SMPTREE_LOG(kWarn) << counted();
  EXPECT_EQ(evaluations, 2);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  Timer busy;
  while (busy.Millis() < 5.0) {
  }
  EXPECT_GE(timer.Millis(), 5.0);
  EXPECT_LT(timer.Seconds(), 5.0);
}

TEST(TimerTest, StartResets) {
  Timer timer;
  Timer busy;
  while (busy.Millis() < 5.0) {
  }
  timer.Start();
  EXPECT_LT(timer.Millis(), 5.0);
}

TEST(AccumTimerTest, AccumulatesAcrossSections) {
  AccumTimer acc;
  for (int i = 0; i < 3; ++i) {
    acc.Resume();
    Timer busy;
    while (busy.Millis() < 2.0) {
    }
    acc.Pause();
  }
  EXPECT_GE(acc.Seconds(), 0.006);
  acc.Reset();
  EXPECT_DOUBLE_EQ(acc.Seconds(), 0.0);
}

}  // namespace
}  // namespace smptree
