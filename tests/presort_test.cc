#include "core/presort.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/synthetic.h"

namespace smptree {
namespace {

Dataset MakeData(int n, int attrs = 9) {
  SyntheticConfig cfg;
  cfg.function = 2;
  cfg.num_tuples = n;
  cfg.num_attrs = attrs;
  auto data = GenerateSynthetic(cfg);
  EXPECT_TRUE(data.ok());
  return std::move(data).value();
}

TEST(PresortTest, OneListPerAttribute) {
  const Dataset data = MakeData(100);
  auto lists = BuildAttributeLists(data);
  ASSERT_TRUE(lists.ok());
  ASSERT_EQ(lists->lists.size(), 9u);
  for (const auto& list : lists->lists) {
    EXPECT_EQ(list.size(), 100u);
  }
}

TEST(PresortTest, ContinuousListsSortedCategoricalInTidOrder) {
  const Dataset data = MakeData(500);
  auto lists = BuildAttributeLists(data);
  ASSERT_TRUE(lists.ok());
  for (int a = 0; a < data.num_attrs(); ++a) {
    const auto& list = lists->lists[a];
    if (data.schema().attr(a).is_categorical()) {
      // Categorical lists stay in unsorted (original tid) order.
      for (size_t i = 0; i < list.size(); ++i) {
        EXPECT_EQ(list[i].tid, static_cast<Tid>(i));
      }
    } else {
      EXPECT_TRUE(std::is_sorted(list.begin(), list.end(),
                                 ContinuousRecordLess()));
    }
  }
}

TEST(PresortTest, RecordsCarryCorrectValueAndLabel) {
  const Dataset data = MakeData(200);
  auto lists = BuildAttributeLists(data);
  ASSERT_TRUE(lists.ok());
  for (int a = 0; a < data.num_attrs(); ++a) {
    for (const AttrRecord& rec : lists->lists[a]) {
      EXPECT_EQ(rec.label, data.label(rec.tid));
      if (data.schema().attr(a).is_categorical()) {
        EXPECT_EQ(rec.value.cat, data.value(rec.tid, a).cat);
      } else {
        EXPECT_EQ(rec.value.f, data.value(rec.tid, a).f);
      }
    }
  }
}

TEST(PresortTest, ParallelSortMatchesSequential) {
  const Dataset data = MakeData(1000, 16);
  auto seq = BuildAttributeLists(data, 1);
  auto par = BuildAttributeLists(data, 4);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  for (int a = 0; a < data.num_attrs(); ++a) {
    const auto& s = seq->lists[a];
    const auto& p = par->lists[a];
    ASSERT_EQ(s.size(), p.size());
    for (size_t i = 0; i < s.size(); ++i) {
      EXPECT_EQ(s[i].tid, p[i].tid) << "attr " << a << " index " << i;
    }
  }
}

TEST(PresortTest, TimersPopulated) {
  const Dataset data = MakeData(100);
  auto lists = BuildAttributeLists(data);
  ASSERT_TRUE(lists.ok());
  EXPECT_GE(lists->setup_seconds, 0.0);
  EXPECT_GE(lists->sort_seconds, 0.0);
}

TEST(PresortTest, RejectsEmptyDataset) {
  Dataset empty(SyntheticSchema(9));
  EXPECT_TRUE(BuildAttributeLists(empty).status().IsInvalidArgument());
}

TEST(PresortTest, DeterministicTieBreakByTid) {
  // Equal values must order by tid so every build sees identical lists.
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 50; ++i) {
    v[0].f = static_cast<float>(i % 3);  // many duplicates
    ASSERT_TRUE(data.Append(v, i % 2).ok());
  }
  auto lists = BuildAttributeLists(data);
  ASSERT_TRUE(lists.ok());
  const auto& list = lists->lists[0];
  for (size_t i = 0; i + 1 < list.size(); ++i) {
    if (list[i].value.f == list[i + 1].value.f) {
      EXPECT_LT(list[i].tid, list[i + 1].tid);
    }
  }
}

}  // namespace
}  // namespace smptree
