// Env contract tests run against both implementations (the paper's two
// machine configurations) through a parameterized suite.

#include "storage/env.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

namespace smptree {
namespace {

enum class EnvKind { kMem, kPosix };

class EnvTest : public ::testing::TestWithParam<EnvKind> {
 protected:
  void SetUp() override {
    if (GetParam() == EnvKind::kPosix) {
      env_ = Env::Posix();
      dir_ = std::filesystem::temp_directory_path() /
             ("smptree_env_test_" + std::to_string(::getpid()));
      ASSERT_TRUE(env_->CreateDir(dir_.string()).ok());
    } else {
      owned_ = Env::NewMem();
      env_ = owned_.get();
      dir_ = "/testdir";
    }
  }

  void TearDown() override {
    if (env_ != nullptr) env_->RemoveDirRecursive(dir_.string());
  }

  std::string Path(const std::string& name) {
    return (dir_ / name).string();
  }

  Env* env_ = nullptr;
  std::unique_ptr<Env> owned_;
  std::filesystem::path dir_;
};

TEST_P(EnvTest, NewFileStartsEmpty) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("a"), &f).ok());
  EXPECT_EQ(f->Size(), 0u);
}

TEST_P(EnvTest, AppendThenReadBack) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("a"), &f).ok());
  const std::string payload = "hello attribute lists";
  ASSERT_TRUE(f->Append(payload.data(), payload.size()).ok());
  EXPECT_EQ(f->Size(), payload.size());

  std::string out(payload.size(), '\0');
  ASSERT_TRUE(f->Read(0, payload.size(), out.data()).ok());
  EXPECT_EQ(out, payload);
}

TEST_P(EnvTest, PositionalRead) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("0123456789", 10).ok());
  char buf[4];
  ASSERT_TRUE(f->Read(3, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "3456");
}

TEST_P(EnvTest, ShortReadFails) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("abc", 3).ok());
  char buf[8];
  EXPECT_FALSE(f->Read(0, 8, buf).ok());
  EXPECT_FALSE(f->Read(5, 1, buf).ok());
}

TEST_P(EnvTest, TruncateEmptiesAndAllowsReuse) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("abcdef", 6).ok());
  ASSERT_TRUE(f->Truncate().ok());
  EXPECT_EQ(f->Size(), 0u);
  ASSERT_TRUE(f->Append("xy", 2).ok());
  char buf[2];
  ASSERT_TRUE(f->Read(0, 2, buf).ok());
  EXPECT_EQ(std::string(buf, 2), "xy");
}

TEST_P(EnvTest, MultipleAppendsAccumulate) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("a"), &f).ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(f->Append("ab", 2).ok());
  }
  EXPECT_EQ(f->Size(), 200u);
  char buf[2];
  ASSERT_TRUE(f->Read(198, 2, buf).ok());
  EXPECT_EQ(std::string(buf, 2), "ab");
}

TEST_P(EnvTest, FileExistsAndDelete) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("victim"), &f).ok());
  EXPECT_TRUE(env_->FileExists(Path("victim")));
  EXPECT_TRUE(env_->DeleteFile(Path("victim")).ok());
  EXPECT_FALSE(env_->FileExists(Path("victim")));
  EXPECT_TRUE(env_->DeleteFile(Path("victim")).IsNotFound());
}

TEST_P(EnvTest, RemoveDirRecursiveDropsFiles) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("x"), &f).ok());
  f.reset();
  ASSERT_TRUE(env_->RemoveDirRecursive(dir_.string()).ok());
  EXPECT_FALSE(env_->FileExists(Path("x")));
  // Re-create for TearDown symmetry.
  ASSERT_TRUE(env_->CreateDir(dir_.string()).ok());
}

TEST_P(EnvTest, ReadViewContract) {
  std::unique_ptr<File> f;
  ASSERT_TRUE(env_->NewFile(Path("a"), &f).ok());
  ASSERT_TRUE(f->Append("viewdata", 8).ok());
  const char* view = nullptr;
  Status s = f->ReadView(2, 4, &view);
  if (GetParam() == EnvKind::kMem) {
    ASSERT_TRUE(s.ok()) << s.ToString();
    EXPECT_EQ(std::string(view, 4), "ewda");
  } else {
    EXPECT_TRUE(s.IsNotSupported());
  }
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvTest,
                         ::testing::Values(EnvKind::kMem, EnvKind::kPosix),
                         [](const auto& info) {
                           return info.param == EnvKind::kMem ? "Mem" : "Posix";
                         });

TEST(MemEnvTest, InstancesAreIsolated) {
  auto a = Env::NewMem();
  auto b = Env::NewMem();
  std::unique_ptr<File> f;
  ASSERT_TRUE(a->NewFile("/shared/name", &f).ok());
  EXPECT_TRUE(a->FileExists("/shared/name"));
  EXPECT_FALSE(b->FileExists("/shared/name"));
}

TEST(MemEnvTest, NewFileTruncatesExisting) {
  auto env = Env::NewMem();
  std::unique_ptr<File> f;
  ASSERT_TRUE(env->NewFile("/f", &f).ok());
  ASSERT_TRUE(f->Append("data", 4).ok());
  std::unique_ptr<File> g;
  ASSERT_TRUE(env->NewFile("/f", &g).ok());
  EXPECT_EQ(g->Size(), 0u);
}

}  // namespace
}  // namespace smptree
