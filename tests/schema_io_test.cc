#include "data/schema_io.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace smptree {
namespace {

Schema Mixed() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("car", 3, {"family", "sports car", "truck"});
  s.AddCategorical("zip", 4);
  s.SetClassNames({"Group A", "Group B"});
  return s;
}

TEST(SchemaIoTest, RoundTripMixedSchema) {
  const Schema original = Mixed();
  auto parsed = ParseSchemaText(FormatSchemaText(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_attrs(), 3);
  EXPECT_EQ(parsed->attr(0).name, "age");
  EXPECT_FALSE(parsed->attr(0).is_categorical());
  EXPECT_EQ(parsed->attr(1).cardinality, 3);
  EXPECT_EQ(parsed->attr(1).value_names[1], "sports car");  // quoted token
  EXPECT_TRUE(parsed->attr(2).value_names.empty());
  EXPECT_EQ(parsed->class_name(0), "Group A");
  EXPECT_EQ(parsed->class_name(1), "Group B");
}

TEST(SchemaIoTest, RoundTripSyntheticSchemas) {
  for (int attrs : {9, 32, 64}) {
    const Schema original = SyntheticSchema(attrs);
    auto parsed = ParseSchemaText(FormatSchemaText(original));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    ASSERT_EQ(parsed->num_attrs(), attrs);
    for (int a = 0; a < attrs; ++a) {
      EXPECT_EQ(parsed->attr(a).name, original.attr(a).name);
      EXPECT_EQ(parsed->attr(a).type, original.attr(a).type);
      EXPECT_EQ(parsed->attr(a).cardinality, original.attr(a).cardinality);
    }
  }
}

TEST(SchemaIoTest, ParsesCommentsAndBlankLines) {
  auto parsed = ParseSchemaText(
      "# header comment\n"
      "\n"
      "attr x continuous\n"
      "   # indented comment\n"
      "classes yes no\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_attrs(), 1);
}

TEST(SchemaIoTest, RejectsBadInput) {
  EXPECT_FALSE(ParseSchemaText("").ok());  // fails Validate (no attrs)
  EXPECT_FALSE(ParseSchemaText("attr x continuous\n").ok());  // no classes
  EXPECT_FALSE(
      ParseSchemaText("attr x wobbly\nclasses a b\n").ok());  // bad type
  EXPECT_FALSE(
      ParseSchemaText("attr x categorical zero\nclasses a b\n").ok());
  EXPECT_FALSE(
      ParseSchemaText("attr x categorical 5000\nclasses a b\n").ok());
  EXPECT_FALSE(ParseSchemaText("attr x categorical 3 a b\nclasses a b\n")
                   .ok());  // 2 names for card 3
  EXPECT_FALSE(ParseSchemaText(
                   "attr x continuous\nattr x continuous\nclasses a b\n")
                   .ok());  // duplicate attr
  EXPECT_FALSE(ParseSchemaText(
                   "attr x continuous\nclasses a b\nclasses c d\n")
                   .ok());  // duplicate classes
  EXPECT_FALSE(
      ParseSchemaText("frobnicate y\nclasses a b\n").ok());  // directive
}

TEST(SchemaIoTest, FileRoundTrip) {
  const std::string path =
      "/tmp/smptree_schema_test_" + std::to_string(::getpid()) + ".txt";
  ASSERT_TRUE(WriteSchemaFile(Mixed(), path).ok());
  auto parsed = ReadSchemaFile(path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_attrs(), 3);
  ::unlink(path.c_str());
  EXPECT_TRUE(ReadSchemaFile(path).status().IsIOError());
}

}  // namespace
}  // namespace smptree
