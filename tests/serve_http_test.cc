// In-process end-to-end test of the HTTP serving surface: a real
// InferenceService on an ephemeral loopback port, exercised through the
// real HttpClientConnection -- actual sockets, actual wire format. The
// whole suite runs twice, once per HTTP front end (epoll event loop and
// threaded pool), which keeps the two serving paths behaviorally
// interchangeable at the service level.

#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <string>

#include "core/tree_io.h"
#include "serve/http_client.h"
#include "serve/json.h"
#include "serve/model_store.h"
#include "serve/service.h"

namespace smptree {
namespace {

Schema CarSchema() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("car", 3, {"sedan", "sports", "truck"});
  s.SetClassNames({"high", "low"});
  return s;
}

ClassHistogram Hist(int64_t a, int64_t b) {
  ClassHistogram h(2);
  h.Add(0, a);
  h.Add(1, b);
  return h;
}

/// age < 27.5 ? high : (car in {sports} ? high : low)
DecisionTree CarTree() {
  DecisionTree tree(CarSchema());
  const NodeId root = tree.CreateRoot(Hist(3, 3));
  SplitTest age_test;
  age_test.attr = 0;
  age_test.threshold = 27.5f;
  tree.SetSplit(root, age_test);
  tree.AddChild(root, true, Hist(2, 0));
  const NodeId right = tree.AddChild(root, false, Hist(1, 3));
  SplitTest car_test;
  car_test.attr = 1;
  car_test.categorical = true;
  car_test.subset = 0b010;
  tree.SetSplit(right, car_test);
  tree.AddChild(right, true, Hist(1, 0));
  tree.AddChild(right, false, Hist(0, 3));
  return tree;
}

DecisionTree LeafTree(ClassLabel label) {
  DecisionTree tree(CarSchema());
  tree.CreateRoot(label == 0 ? Hist(5, 1) : Hist(1, 5));
  return tree;
}

class ServeHttpTest : public testing::TestWithParam<HttpServer::FrontEnd> {
 protected:
  void SetUp() override {
    auto store = ModelStore::Create(CarTree());
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ServiceOptions options;
    options.engine.num_workers = 2;
    options.http.port = 0;  // ephemeral
    options.http.num_threads = 2;
    options.http.front_end = GetParam();
    service_ = std::make_unique<InferenceService>(std::move(*store), options);
    ASSERT_TRUE(service_->Start().ok());
    client_ = std::make_unique<HttpClientConnection>("127.0.0.1",
                                                     service_->port());
  }

  void TearDown() override {
    client_.reset();
    if (service_ != nullptr) service_->Stop();
  }

  HttpClientResponse Call(const std::string& method, const std::string& path,
                          const std::string& body = "") {
    auto response = client_->Call(method, path, body);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : HttpClientResponse{};
  }

  std::unique_ptr<InferenceService> service_;
  std::unique_ptr<HttpClientConnection> client_;
};

TEST_P(ServeHttpTest, PredictMatchesTreeClassify) {
  const HttpClientResponse response = Call(
      "POST", "/v1/predict",
      R"({"tuples": [[20, "sedan"], [40, "sports"], [40, 0], [null, "sedan"]]})");
  ASSERT_EQ(response.status, 200) << response.body;
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok()) << response.body;
  EXPECT_EQ(doc->Find("epoch")->number_value(), 1.0);

  // Mirror the wire tuples locally; missing categorical values are not a
  // thing, but a null continuous age must take the missing-goes-left path.
  const DecisionTree reference = CarTree();
  const float ages[] = {20, 40, 40, kMissingValue};
  const int32_t cars[] = {0, 1, 0, 0};
  const auto& codes = doc->Find("codes")->array_items();
  const auto& labels = doc->Find("labels")->array_items();
  ASSERT_EQ(codes.size(), 4u);
  ASSERT_EQ(labels.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    TupleValues v(2);
    v[0].f = ages[i];
    v[1].cat = cars[i];
    const ClassLabel want = reference.Classify(v);
    EXPECT_EQ(static_cast<ClassLabel>(codes[i].number_value()), want);
    EXPECT_EQ(labels[i].string_value(), want == 0 ? "high" : "low");
  }
}

TEST_P(ServeHttpTest, PredictRejectsBadRequests) {
  EXPECT_EQ(Call("POST", "/v1/predict", "{not json").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", R"({"rows": []})").status, 400);
  EXPECT_EQ(Call("POST", "/v1/predict", R"({"tuples": []})").status, 400);
  // Wrong arity.
  EXPECT_EQ(Call("POST", "/v1/predict", R"({"tuples": [[20]]})").status, 400);
  // Unknown categorical value name, out-of-range code.
  EXPECT_EQ(
      Call("POST", "/v1/predict", R"({"tuples": [[20, "jetpack"]]})").status,
      400);
  EXPECT_EQ(Call("POST", "/v1/predict", R"({"tuples": [[20, 7]]})").status,
            400);
}

TEST_P(ServeHttpTest, RoutingErrors) {
  EXPECT_EQ(Call("GET", "/v1/nope").status, 404);
  EXPECT_EQ(Call("GET", "/v1/predict").status, 405);  // POST-only path
  EXPECT_EQ(Call("POST", "/healthz", "{}").status, 405);
}

TEST_P(ServeHttpTest, HealthzReportsEpoch) {
  const HttpClientResponse response = Call("GET", "/healthz");
  ASSERT_EQ(response.status, 200);
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("status")->string_value(), "ok");
  EXPECT_EQ(doc->Find("epoch")->number_value(), 1.0);
}

TEST_P(ServeHttpTest, ReloadSwapsModelAndBumpsEpoch) {
  const std::string path = testing::TempDir() + "/http_reload.tree";
  {
    std::ofstream out(path);
    out << SerializeTree(LeafTree(0));  // everything classifies "high"
  }
  const HttpClientResponse reload =
      Call("POST", "/v1/reload", "{\"model\": " + JsonQuote(path) + "}");
  ASSERT_EQ(reload.status, 200) << reload.body;
  auto doc = ParseJson(reload.body);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Find("epoch")->number_value(), 2.0);
  EXPECT_EQ(doc->Find("nodes")->number_value(), 1.0);

  // Predictions now come from the new model at the new epoch.
  const HttpClientResponse predict =
      Call("POST", "/v1/predict", R"({"tuples": [[60, "sedan"]]})");
  ASSERT_EQ(predict.status, 200);
  auto pdoc = ParseJson(predict.body);
  ASSERT_TRUE(pdoc.ok());
  EXPECT_EQ(pdoc->Find("epoch")->number_value(), 2.0);
  EXPECT_EQ(pdoc->Find("labels")->array_items()[0].string_value(), "high");
}

TEST_P(ServeHttpTest, ReloadFailureKeepsServing) {
  EXPECT_EQ(Call("POST", "/v1/reload",
                 R"({"model": "/nonexistent/model.tree"})")
                .status,
            404);
  EXPECT_EQ(Call("POST", "/v1/reload", R"({"nope": 1})").status, 400);
  // Still epoch 1, still answering.
  const HttpClientResponse predict =
      Call("POST", "/v1/predict", R"({"tuples": [[60, "sedan"]]})");
  ASSERT_EQ(predict.status, 200);
  EXPECT_EQ(ParseJson(predict.body)->Find("epoch")->number_value(), 1.0);
}

TEST_P(ServeHttpTest, StatzCountsTraffic) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(
        Call("POST", "/v1/predict", R"({"tuples": [[20, 0], [40, 1]]})")
            .status,
        200);
  }
  const HttpClientResponse response = Call("GET", "/statz");
  ASSERT_EQ(response.status, 200);
  auto doc = ParseJson(response.body);
  ASSERT_TRUE(doc.ok()) << response.body;
  EXPECT_EQ(doc->Find("model_epoch")->number_value(), 1.0);
  EXPECT_EQ(doc->Find("batches")->number_value(), 3.0);
  EXPECT_EQ(doc->Find("tuples")->number_value(), 6.0);
  EXPECT_EQ(doc->Find("workers")->number_value(), 2.0);
  ASSERT_NE(doc->Find("latency"), nullptr);
  EXPECT_GE(doc->Find("latency")->Find("p99_ms")->number_value(), 0.0);
  // Connection-path counters from whichever front end is serving.
  const JsonValue* http = doc->Find("http");
  ASSERT_NE(http, nullptr) << response.body;
  EXPECT_EQ(http->Find("front_end")->string_value(),
            GetParam() == HttpServer::FrontEnd::kEpoll ? "epoll"
                                                       : "threaded");
  EXPECT_GE(http->Find("accepted")->number_value(), 1.0);
  EXPECT_GE(http->Find("requests")->number_value(), 4.0);
  EXPECT_EQ(http->Find("open_connections")->number_value(), 1.0);
  EXPECT_EQ(http->Find("protocol_errors")->number_value(), 0.0);
}

TEST_P(ServeHttpTest, KeepAliveServesSequentialRequests) {
  // Same connection, many requests -- exercises the keep-alive loop.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(Call("GET", "/healthz").status, 200);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothFrontEnds, ServeHttpTest,
    testing::Values(HttpServer::FrontEnd::kEpoll,
                    HttpServer::FrontEnd::kThreaded),
    [](const testing::TestParamInfo<HttpServer::FrontEnd>& info) {
      return info.param == HttpServer::FrontEnd::kEpoll ? "Epoll"
                                                        : "Threaded";
    });

TEST(ServeHttpReloadDisabledTest, ReloadAnswers403) {
  auto store = ModelStore::Create(CarTree());
  ASSERT_TRUE(store.ok());
  ServiceOptions options;
  options.engine.num_workers = 1;
  options.http.port = 0;
  options.allow_reload = false;
  InferenceService service(std::move(*store), options);
  ASSERT_TRUE(service.Start().ok());
  HttpClientConnection client("127.0.0.1", service.port());
  auto response = client.Call("POST", "/v1/reload", R"({"model": "x"})");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 403);
  service.Stop();
}

}  // namespace
}  // namespace smptree
