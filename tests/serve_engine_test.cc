#include "serve/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "data/synthetic.h"
#include "serve/batch.h"
#include "serve/model_store.h"

namespace smptree {
namespace {

Schema CarSchema() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("car", 3, {"sedan", "sports", "truck"});
  s.SetClassNames({"high", "low"});
  return s;
}

ClassHistogram Hist(int64_t a, int64_t b) {
  ClassHistogram h(2);
  h.Add(0, a);
  h.Add(1, b);
  return h;
}

/// age < 27.5 ? high : (car in {sports} ? high : low)
DecisionTree CarTree() {
  DecisionTree tree(CarSchema());
  const NodeId root = tree.CreateRoot(Hist(3, 3));
  SplitTest age_test;
  age_test.attr = 0;
  age_test.threshold = 27.5f;
  tree.SetSplit(root, age_test);
  tree.AddChild(root, true, Hist(2, 0));
  const NodeId right = tree.AddChild(root, false, Hist(1, 3));
  SplitTest car_test;
  car_test.attr = 1;
  car_test.categorical = true;
  car_test.subset = 0b010;
  tree.SetSplit(right, car_test);
  tree.AddChild(right, true, Hist(1, 0));
  tree.AddChild(right, false, Hist(0, 3));
  return tree;
}

DecisionTree LeafTree(ClassLabel label) {
  DecisionTree tree(CarSchema());
  tree.CreateRoot(label == 0 ? Hist(5, 1) : Hist(1, 5));
  return tree;
}

Dataset CarRows() {
  Dataset data(CarSchema());
  const float ages[] = {20, 25, 27.5f, 30, 45, 60};
  for (int i = 0; i < 6; ++i) {
    TupleValues v(2);
    v[0].f = ages[i];
    v[1].cat = i % 3;
    EXPECT_TRUE(data.Append(v, 0).ok());  // labels ignored by Batch
  }
  return data;
}

TEST(PredictionEngineTest, LabelsMatchTreeClassify) {
  auto store = ModelStore::Create(CarTree());
  ASSERT_TRUE(store.ok());
  EngineOptions options;
  options.num_workers = 2;
  PredictionEngine engine(store->get(), options);

  const Dataset data = CarRows();
  auto outcome =
      engine.Predict(Batch::FromDataset(data, 0, data.num_tuples()));
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->model_epoch, 1);
  ASSERT_EQ(static_cast<int64_t>(outcome->labels.size()), data.num_tuples());
  const DecisionTree reference = CarTree();
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    EXPECT_EQ(outcome->labels[t], reference.Classify(data, t)) << "tuple " << t;
  }
}

TEST(PredictionEngineTest, MatchesTrainedClassifierOnSyntheticData) {
  SyntheticConfig cfg;
  cfg.function = 2;
  cfg.num_tuples = 1200;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  auto trained = TrainClassifier(*data, ClassifierOptions());
  ASSERT_TRUE(trained.ok());
  std::vector<ClassLabel> expected;
  for (int64_t t = 100; t < 400; ++t) {
    expected.push_back(trained->tree->Classify(*data, t));
  }

  auto store = ModelStore::Create(std::move(*trained->tree));
  ASSERT_TRUE(store.ok());
  PredictionEngine engine(store->get(), EngineOptions());

  auto outcome = engine.Predict(Batch::FromDataset(*data, 100, 400));
  ASSERT_TRUE(outcome.ok());
  for (int64_t t = 100; t < 400; ++t) {
    ASSERT_EQ(outcome->labels[t - 100], expected[t - 100]);
  }
}

TEST(PredictionEngineTest, RejectsEmptyAndMisshapenBatches) {
  auto store = ModelStore::Create(CarTree());
  ASSERT_TRUE(store.ok());
  PredictionEngine engine(store->get(), EngineOptions());

  EXPECT_FALSE(engine.Predict(Batch()).ok());

  Schema narrow;
  narrow.AddContinuous("age");
  narrow.SetClassNames({"high", "low"});
  Dataset skinny(narrow);
  TupleValues one(1);
  one[0].f = 40.0f;
  ASSERT_TRUE(skinny.Append(one, 0).ok());
  EXPECT_FALSE(engine.Predict(Batch::FromDataset(skinny, 0, 1)).ok());

  EXPECT_EQ(engine.Stats().rejected, 2u);
  EXPECT_EQ(engine.Stats().batches, 0u);
}

TEST(PredictionEngineTest, PredictFailsAfterShutdown) {
  auto store = ModelStore::Create(CarTree());
  ASSERT_TRUE(store.ok());
  PredictionEngine engine(store->get(), EngineOptions());
  engine.Shutdown();
  const Dataset data = CarRows();
  EXPECT_FALSE(engine.Predict(Batch::FromDataset(data, 0, 2)).ok());
}

TEST(PredictionEngineTest, ConcurrentPredictsFromManyThreads) {
  auto store = ModelStore::Create(CarTree());
  ASSERT_TRUE(store.ok());
  EngineOptions options;
  options.num_workers = 3;
  options.queue_capacity = 4;  // force producer backpressure too
  PredictionEngine engine(store->get(), options);

  const Dataset data = CarRows();
  const DecisionTree reference = CarTree();
  constexpr int kThreads = 6, kBatchesPerThread = 50;
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < kThreads; ++t) {
    callers.emplace_back([&] {
      for (int i = 0; i < kBatchesPerThread; ++i) {
        auto outcome =
            engine.Predict(Batch::FromDataset(data, 0, data.num_tuples()));
        if (!outcome.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (int64_t r = 0; r < data.num_tuples(); ++r) {
          if (outcome->labels[r] != reference.Classify(data, r)) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : callers) th.join();
  EXPECT_EQ(failures.load(), 0);
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.batches, uint64_t{kThreads} * kBatchesPerThread);
  EXPECT_EQ(stats.tuples,
            uint64_t{kThreads} * kBatchesPerThread * data.num_tuples());
}

// The acceptance test for hot reload: a batch held in flight across the
// swap must (a) not block the swap, and (b) finish against the model it
// snapshotted, at that model's epoch.
TEST(PredictionEngineTest, InFlightBatchSurvivesReload) {
  auto created = ModelStore::Create(LeafTree(0));  // epoch 1 -> class 0
  ASSERT_TRUE(created.ok());
  ModelStore* store = created->get();

  std::atomic<bool> batch_started{false};
  std::atomic<bool> release_batch{false};
  std::atomic<int> hooked_batches{0};
  EngineOptions options;
  options.num_workers = 1;
  options.test_batch_hook = [&](int64_t) {
    // Hold only the first batch; later batches run unimpeded.
    if (hooked_batches.fetch_add(1) == 0) {
      batch_started.store(true, std::memory_order_release);
      while (!release_batch.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  };
  PredictionEngine engine(store, options);

  const Dataset data = CarRows();
  Result<PredictOutcome> held = Status::Internal("not run");
  std::thread caller([&] {
    held = engine.Predict(Batch::FromDataset(data, 0, data.num_tuples()));
  });
  while (!batch_started.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The batch is in flight (snapshot taken, not yet scored). The swap must
  // complete *now*, while the old model is still pinned by the batch.
  ASSERT_TRUE(store->Install(LeafTree(1), "v2").ok());  // epoch 2 -> class 1
  EXPECT_EQ(store->epoch(), 2);
  EXPECT_TRUE(batch_started.load());  // the held batch did not block Install

  release_batch.store(true, std::memory_order_release);
  caller.join();

  // The held batch finished on the model it snapshotted: epoch 1 labels.
  ASSERT_TRUE(held.ok()) << held.status().ToString();
  EXPECT_EQ(held->model_epoch, 1);
  for (const ClassLabel label : held->labels) EXPECT_EQ(label, 0);

  // A fresh batch scores against the new model.
  auto after = engine.Predict(Batch::FromDataset(data, 0, data.num_tuples()));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->model_epoch, 2);
  for (const ClassLabel label : after->labels) EXPECT_EQ(label, 1);
}

TEST(PredictionEngineTest, StatsReportLatencyQuantiles) {
  auto store = ModelStore::Create(CarTree());
  ASSERT_TRUE(store.ok());
  PredictionEngine engine(store->get(), EngineOptions());
  const Dataset data = CarRows();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Predict(Batch::FromDataset(data, 0, 6)).ok());
  }
  const EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.batches, 20u);
  EXPECT_EQ(stats.tuples, 120u);
  EXPECT_GT(stats.mean_nanos, 0.0);
  EXPECT_GE(stats.p99_nanos, stats.p50_nanos);
  EXPECT_GT(stats.workers, 0);
}

}  // namespace
}  // namespace smptree
