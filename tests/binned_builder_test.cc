// The binned engine end to end: quantizer boundary properties, histogram
// subtraction identities, exact winner parity with the sorted engine where
// the bin budget covers every distinct value, O(bins) split-evaluation cost,
// determinism across thread counts, and a measured (never hidden) accuracy
// bound against the exact engine on the synthetic functions.

#include "binned/binned_builder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "binned/leaf_histogram.h"
#include "binned/quantizer.h"
#include "core/classifier.h"
#include "core/metrics.h"
#include "core/tree_io.h"
#include "data/synthetic.h"

namespace smptree {
namespace {

Result<TrainResult> Train(const Dataset& data, Engine engine,
                          ClassifierOptions options = {}) {
  options.build.engine = engine;
  options.build.algorithm = Algorithm::kSerial;
  return TrainClassifier(data, options);
}

Dataset MakeAgrawal(int function, int64_t tuples, uint64_t seed) {
  SyntheticConfig cfg;
  cfg.function = function;
  cfg.num_tuples = tuples;
  cfg.seed = seed;
  auto data = GenerateSynthetic(cfg);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(*data);
}

/// Copy of `data` with every continuous attribute snapped to a per-attribute
/// grid of at most `levels`+1 distinct values, so the quantizer's exact mode
/// covers every attribute and the binned candidate set equals the sorted
/// engine's.
Dataset CoarsenContinuous(const Dataset& data, int levels) {
  const int num_attrs = data.num_attrs();
  std::vector<float> lo(static_cast<size_t>(num_attrs), 0.0f);
  std::vector<float> hi(static_cast<size_t>(num_attrs), 0.0f);
  for (int a = 0; a < num_attrs; ++a) {
    if (data.schema().attr(a).is_categorical()) continue;
    lo[static_cast<size_t>(a)] = hi[static_cast<size_t>(a)] =
        data.value(0, a).f;
    for (int64_t t = 1; t < data.num_tuples(); ++t) {
      const float f = data.value(t, a).f;
      lo[static_cast<size_t>(a)] = std::min(lo[static_cast<size_t>(a)], f);
      hi[static_cast<size_t>(a)] = std::max(hi[static_cast<size_t>(a)], f);
    }
  }
  Dataset out(data.schema());
  TupleValues v(static_cast<size_t>(num_attrs));
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    for (int a = 0; a < num_attrs; ++a) {
      v[static_cast<size_t>(a)] = data.value(t, a);
      if (!data.schema().attr(a).is_categorical()) {
        const float span =
            hi[static_cast<size_t>(a)] - lo[static_cast<size_t>(a)];
        if (span > 0) {
          const float step = span / static_cast<float>(levels);
          v[static_cast<size_t>(a)].f =
              lo[static_cast<size_t>(a)] +
              std::round((v[static_cast<size_t>(a)].f -
                          lo[static_cast<size_t>(a)]) / step) * step;
        }
      }
    }
    EXPECT_TRUE(out.Append(v, data.label(t)).ok());
  }
  return out;
}

// ---------------------------------------------------------------- histogram

TEST(LeafHistogramTest, SubtractionRecoversTheSibling) {
  // parent = left + right bin-for-bin; deriving right as parent - left must
  // reproduce it exactly (the H-phase subtraction trick).
  LeafHistogram parent, left, expect_right;
  parent.Reset(6, 3);
  left.Reset(6, 3);
  expect_right.Reset(6, 3);
  for (int b = 0; b < 6; ++b) {
    for (int c = 0; c < 3; ++c) {
      const int total = (b * 7 + c * 3) % 11;
      const int to_left = total / 2;
      for (int i = 0; i < to_left; ++i) left.Add(b, static_cast<ClassLabel>(c));
      for (int i = 0; i < total - to_left; ++i) {
        expect_right.Add(b, static_cast<ClassLabel>(c));
      }
      for (int i = 0; i < total; ++i) parent.Add(b, static_cast<ClassLabel>(c));
    }
  }
  LeafHistogram right = parent;
  ASSERT_TRUE(right.Subtract(left).ok());
  for (int b = 0; b < 6; ++b) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(right.count(b, c), expect_right.count(b, c))
          << "bin " << b << " class " << c;
    }
    EXPECT_EQ(right.RowTotal(b), expect_right.RowTotal(b));
  }
  // And merging the halves rebuilds the parent.
  LeafHistogram rebuilt = left;
  ASSERT_TRUE(rebuilt.Merge(expect_right).ok());
  for (int b = 0; b < 6; ++b) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_EQ(rebuilt.count(b, c), parent.count(b, c));
    }
  }
}

TEST(LeafHistogramTest, ResetReusesShapeAndZeroes) {
  LeafHistogram h;
  h.Reset(4, 2);
  h.Add(3, 1);
  EXPECT_EQ(h.count(3, 1), 1);
  h.Reset(4, 2);
  EXPECT_EQ(h.count(3, 1), 0);
  EXPECT_EQ(h.total_bins(), 4);
  EXPECT_EQ(h.num_classes(), 2);
  h.Clear();
  EXPECT_FALSE(h.empty());
  EXPECT_EQ(h.RowTotal(0), 0);
}

TEST(LeafHistogramTest, MergeAndSubtractRejectShapeMismatch) {
  // Regression: a mismatched shape must come back as InvalidArgument and
  // leave the destination untouched instead of corrupting counts.
  LeafHistogram a, wrong_bins, wrong_classes;
  a.Reset(4, 2);
  a.Add(1, 1);
  wrong_bins.Reset(5, 2);
  wrong_bins.Add(0, 0);
  wrong_classes.Reset(4, 3);
  wrong_classes.Add(0, 0);

  Status s = a.Merge(wrong_bins);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  s = a.Subtract(wrong_classes);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << s.ToString();
  EXPECT_EQ(a.count(1, 1), 1);
  EXPECT_EQ(a.count(0, 0), 0);

  // Matching shapes still work.
  LeafHistogram b;
  b.Reset(4, 2);
  b.Add(1, 1);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.count(1, 1), 2);
  ASSERT_TRUE(a.Subtract(b).ok());
  EXPECT_EQ(a.count(1, 1), 1);
}

// ---------------------------------------------------------------- quantizer

TEST(QuantizerTest, ExactModeCutsAtEveryAdjacentDistinctMidpoint) {
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (float x : {1.0f, 2.0f, 2.0f, 4.0f, 8.0f}) {
    v[0].f = x;
    ASSERT_TRUE(data.Append(v, 0).ok());
  }
  Quantizer q;
  ASSERT_TRUE(q.Build(data, 256).ok());
  ASSERT_EQ(q.num_cuts(0), 3);  // 4 distinct values
  EXPECT_EQ(q.num_bins(0), 4);
  EXPECT_FLOAT_EQ(q.cut(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(q.cut(0, 1), 3.0f);
  EXPECT_FLOAT_EQ(q.cut(0, 2), 6.0f);
}

TEST(QuantizerTest, BinMappingInvariantHoldsOnSkewedData) {
  // 999 copies of 0.0 and one 1.0: quantile positions all land inside the
  // run of zeros; cut placement must still produce strictly ascending cuts
  // and respect  bin(v) <= i  <=>  v < cut(i)  for every value and cut.
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 999; ++i) {
    v[0].f = 0.0f;
    ASSERT_TRUE(data.Append(v, 0).ok());
  }
  v[0].f = 1.0f;
  ASSERT_TRUE(data.Append(v, 1).ok());
  Quantizer q;
  ASSERT_TRUE(q.Build(data, 8).ok());
  ASSERT_EQ(q.num_cuts(0), 1);  // two distinct values, one boundary
  for (int i = 1; i < q.num_cuts(0); ++i) {
    EXPECT_LT(q.cut(0, i - 1), q.cut(0, i));
  }
  for (float value : {0.0f, 0.5f, 1.0f}) {
    AttrValue av;
    av.f = value;
    const int bin = q.BinOf(0, av);
    for (int i = 0; i < q.num_cuts(0); ++i) {
      EXPECT_EQ(bin <= i, value < q.cut(0, i))
          << "value " << value << " cut " << i;
    }
  }
}

TEST(QuantizerTest, QuantileModeIsDeterministicAndOrdered) {
  const Dataset data = MakeAgrawal(5, 3000, 77);
  Quantizer a, b;
  ASSERT_TRUE(a.Build(data, 64).ok());
  ASSERT_TRUE(b.Build(data, 64).ok());
  ASSERT_EQ(a.num_attrs(), b.num_attrs());
  for (int attr = 0; attr < a.num_attrs(); ++attr) {
    ASSERT_EQ(a.num_bins(attr), b.num_bins(attr));
    ASSERT_EQ(a.num_cuts(attr), b.num_cuts(attr));
    if (!a.categorical(attr)) {
      EXPECT_LE(a.num_bins(attr), 64);
      for (int i = 0; i < a.num_cuts(attr); ++i) {
        EXPECT_EQ(a.cut(attr, i), b.cut(attr, i));
        if (i > 0) {
          EXPECT_LT(a.cut(attr, i - 1), a.cut(attr, i));
        }
      }
    }
  }
}

TEST(QuantizerTest, CategoricalBinsAreValueCodes) {
  Schema s;
  s.AddCategorical("c", 5);
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 20; ++i) {
    v[0].cat = i % 5;
    ASSERT_TRUE(data.Append(v, i % 2).ok());
  }
  Quantizer q;
  ASSERT_TRUE(q.Build(data, 256).ok());
  EXPECT_TRUE(q.categorical(0));
  EXPECT_EQ(q.num_bins(0), 5);
  for (int code = 0; code < 5; ++code) {
    AttrValue av;
    av.cat = code;
    EXPECT_EQ(q.BinOf(0, av), code);
  }
}

TEST(QuantizerTest, CategoricalCardinalityOverBudgetIsRejected) {
  Schema s;
  s.AddCategorical("c", 300);
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  v[0].cat = 0;
  ASSERT_TRUE(data.Append(v, 0).ok());
  Quantizer q;
  EXPECT_FALSE(q.Build(data, 256).ok());
}

// ------------------------------------------------------------ binned engine

TEST(BinnedBuilderTest, LearnsSimpleThresholdExactly) {
  // 100 distinct values fit the bin budget, so the binned tree must equal
  // the sorted engine's: split at 59.5, pure children.
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"neg", "pos"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 100; ++i) {
    v[0].f = static_cast<float>(i);
    ASSERT_TRUE(data.Append(v, i < 60 ? 0 : 1).ok());
  }
  auto result = Train(data, Engine::kBinned);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DecisionTree& tree = *result->tree;
  EXPECT_EQ(tree.num_nodes(), 3);
  EXPECT_EQ(tree.node(tree.root()).split.attr, 0);
  EXPECT_EQ(tree.node(tree.root()).split.threshold, 59.5f);
  EXPECT_EQ(result->stats.build_stats.engine, std::string("binned"));
  EXPECT_GT(result->stats.build_stats.bins_scanned, 0u);
}

TEST(BinnedBuilderTest, PureRootStaysLeaf) {
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 10; ++i) {
    v[0].f = static_cast<float>(i);
    ASSERT_TRUE(data.Append(v, 0).ok());
  }
  auto result = Train(data, Engine::kBinned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree->num_nodes(), 1);
  EXPECT_EQ(result->stats.build_stats.bins_scanned, 0u);
}

TEST(BinnedBuilderTest, AllValuesInOneBinWithMixedClassesStayLeaf) {
  // A constant attribute maps every record to one bin: no boundary has
  // records on both sides, so no valid split exists.
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  v[0].f = 3.0f;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(data.Append(v, i % 3 == 0 ? 0 : 1).ok());
  }
  auto result = Train(data, Engine::kBinned);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree->num_nodes(), 1);
  EXPECT_EQ(result->tree->node(0).majority, 1);
}

TEST(BinnedBuilderTest, MinSplitStopsGrowth) {
  const Dataset data = MakeAgrawal(7, 2000, 42);
  ClassifierOptions loose;
  loose.build.min_split = 2;
  ClassifierOptions tight;
  tight.build.min_split = 200;
  auto big = Train(data, Engine::kBinned, loose);
  auto small = Train(data, Engine::kBinned, tight);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_LT(small->tree->num_nodes(), big->tree->num_nodes());
}

TEST(BinnedBuilderTest, EPhaseCostIsBinsNotRecords) {
  // One continuous attribute with 100 distinct values over 100 records, a
  // split into two pure children: exactly one E pass over the root's 99
  // boundaries, regardless of record count per bin.
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"neg", "pos"});
  Dataset data(s);
  TupleValues v(1);
  for (int rep = 0; rep < 5; ++rep) {
    for (int i = 0; i < 100; ++i) {
      v[0].f = static_cast<float>(i);
      ASSERT_TRUE(data.Append(v, i < 60 ? 0 : 1).ok());
    }
  }
  auto result = Train(data, Engine::kBinned);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->tree->num_nodes(), 3);  // pure children: only root ran E
  EXPECT_EQ(result->stats.build_stats.bins_scanned, 99u);
}

TEST(BinnedBuilderTest, BinsScannedIsFarBelowRecordCost) {
  // On a real dataset the E phase must touch O(nodes x attrs x bins)
  // boundaries -- far fewer than the O(records) per (leaf, attr) the sorted
  // engine scans. The sorted engine's root E alone costs ~attrs x records.
  const int64_t n = 20000;
  const Dataset data = MakeAgrawal(5, n, 42);
  ClassifierOptions options;
  options.build.max_levels = 4;
  auto result = Train(data, Engine::kBinned, options);
  ASSERT_TRUE(result.ok());
  const uint64_t bins_scanned = result->stats.build_stats.bins_scanned;
  const uint64_t nodes =
      static_cast<uint64_t>(result->tree->num_nodes());
  EXPECT_GT(bins_scanned, 0u);
  EXPECT_LE(bins_scanned, nodes * 9 * 256);
  EXPECT_LT(bins_scanned, static_cast<uint64_t>(9 * (n - 1)));
}

TEST(BinnedBuilderTest, WinnerParityWithSortedEngineOnCoveredData) {
  // Snap the continuous attributes to a coarse grid so every attribute has
  // far fewer than max_bins distinct values: the quantizer's candidate set
  // then equals the exact engine's, and the two trees must agree on
  // structure, split attributes, and every training prediction. Thresholds
  // are not compared: at leaves whose local values leave gaps the engines
  // may place the (equivalent) cut at different midpoints.
  const Dataset data = CoarsenContinuous(MakeAgrawal(5, 3000, 7), 200);
  auto sorted = Train(data, Engine::kSorted);
  auto binned = Train(data, Engine::kBinned);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  ASSERT_TRUE(binned.ok()) << binned.status().ToString();
  ASSERT_EQ(sorted->tree->num_nodes(), binned->tree->num_nodes());
  for (int i = 0; i < sorted->tree->num_nodes(); ++i) {
    const TreeNode& a = sorted->tree->node(i);
    const TreeNode& b = binned->tree->node(i);
    ASSERT_EQ(a.is_leaf(), b.is_leaf()) << "node " << i;
    EXPECT_EQ(a.majority, b.majority) << "node " << i;
    if (!a.is_leaf()) {
      EXPECT_EQ(a.split.attr, b.split.attr) << "node " << i;
      EXPECT_EQ(a.split.categorical, b.split.categorical) << "node " << i;
      if (a.split.categorical) {
        EXPECT_EQ(a.split.subset, b.split.subset) << "node " << i;
      }
    }
  }
  for (int64_t t = 0; t < data.num_tuples(); ++t) {
    ASSERT_EQ(sorted->tree->Classify(data, t), binned->tree->Classify(data, t))
        << "tuple " << t;
  }
}

TEST(BinnedBuilderTest, TreesAreIdenticalAcrossThreadCounts) {
  const Dataset data = MakeAgrawal(5, 3000, 42);
  ClassifierOptions p1;
  p1.build.num_threads = 1;
  ClassifierOptions p4;
  p4.build.num_threads = 4;
  auto a = Train(data, Engine::kBinned, p1);
  auto b = Train(data, Engine::kBinned, p4);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(TreesEqual(*a->tree, *b->tree));
  EXPECT_EQ(SerializeTree(*a->tree), SerializeTree(*b->tree));
}

TEST(BinnedBuilderTest, AccuracyStaysCloseToExactEngine) {
  // Quantile mode (far more distinct values than bins): the binned tree is
  // approximate. Measure the delta against the exact engine on held-out
  // data and bound it -- the engine's accuracy contract, asserted, not
  // assumed.
  for (int function : {1, 5, 7}) {
    const Dataset train = MakeAgrawal(function, 8000, 42);
    const Dataset test = MakeAgrawal(function, 4000, 977);
    auto sorted = Train(train, Engine::kSorted);
    auto binned = Train(train, Engine::kBinned);
    ASSERT_TRUE(sorted.ok());
    ASSERT_TRUE(binned.ok());
    const double train_delta = TreeAccuracy(*binned->tree, train) -
                               TreeAccuracy(*sorted->tree, train);
    const double test_delta = TreeAccuracy(*binned->tree, test) -
                              TreeAccuracy(*sorted->tree, test);
    EXPECT_LE(std::abs(train_delta), 0.01)
        << "F" << function << " train delta " << train_delta;
    EXPECT_LE(std::abs(test_delta), 0.02)
        << "F" << function << " test delta " << test_delta;
  }
}

TEST(BinnedBuilderTest, SmallBinBudgetStillLearns) {
  // 32 is the smallest power of two that still fits the Agrawal 'car'
  // attribute's 20 value codes (categorical bins are exact, never merged).
  const Dataset train = MakeAgrawal(1, 4000, 42);
  ClassifierOptions options;
  options.build.max_bins = 32;
  auto result = Train(train, Engine::kBinned, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(TreeAccuracy(*result->tree, train), 0.9);
}

TEST(BinnedBuilderTest, FeatureSamplingGatesEvaluationOnly) {
  const Dataset data = MakeAgrawal(5, 3000, 42);
  ClassifierOptions options;
  options.build.feature_sampling.features_per_node = 3;
  options.build.feature_sampling.seed = 17;
  options.build.num_threads = 2;
  auto result = Train(data, Engine::kBinned, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(TreeAccuracy(*result->tree, data), 0.7);
}

TEST(BinnedBuilderTest, MaxBinsOutOfRangeIsRejected) {
  const Dataset data = MakeAgrawal(1, 200, 42);
  for (int bad : {0, 1, 257, 1000}) {
    ClassifierOptions options;
    options.build.max_bins = bad;
    auto result = Train(data, Engine::kBinned, options);
    EXPECT_FALSE(result.ok()) << "max_bins " << bad;
  }
}

TEST(BinnedBuilderTest, MulticlassBinnedBuildWorks) {
  MulticlassConfig cfg;
  cfg.num_classes = 4;
  cfg.num_tuples = 3000;
  auto data = GenerateMulticlassSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  auto binned = Train(*data, Engine::kBinned);
  auto sorted = Train(*data, Engine::kSorted);
  ASSERT_TRUE(binned.ok()) << binned.status().ToString();
  ASSERT_TRUE(sorted.ok());
  const double delta =
      TreeAccuracy(*binned->tree, *data) - TreeAccuracy(*sorted->tree, *data);
  EXPECT_LE(std::abs(delta), 0.02) << "train delta " << delta;
}

}  // namespace
}  // namespace smptree
