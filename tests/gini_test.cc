// Split-evaluation tests: exact expectations on hand-built lists plus a
// brute-force cross-check property sweep over random data.

#include "core/gini.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/random.h"

namespace smptree {
namespace {

AttrRecord Cont(float v, ClassLabel label, Tid tid = 0) {
  AttrRecord r;
  r.value.f = v;
  r.tid = tid;
  r.label = label;
  r.unused = 0;
  return r;
}

AttrRecord Cat(int32_t v, ClassLabel label, Tid tid = 0) {
  AttrRecord r;
  r.value.cat = v;
  r.tid = tid;
  r.label = label;
  r.unused = 0;
  return r;
}

ClassHistogram HistOf(const std::vector<AttrRecord>& recs, int num_classes) {
  ClassHistogram h(num_classes);
  for (const auto& r : recs) h.Add(r.label);
  return h;
}

TEST(ContinuousSplitTest, PerfectSeparationFound) {
  std::vector<AttrRecord> recs = {Cont(1, 0), Cont(2, 0), Cont(3, 0),
                                  Cont(10, 1), Cont(11, 1)};
  GiniScratch scratch;
  const auto best =
      EvaluateContinuousAttr(5, recs, HistOf(recs, 2), GiniOptions{}, &scratch);
  ASSERT_TRUE(best.valid());
  EXPECT_EQ(best.test.attr, 5);
  EXPECT_FALSE(best.test.categorical);
  EXPECT_DOUBLE_EQ(best.gini, 0.0);
  EXPECT_GT(best.test.threshold, 3.0f);
  EXPECT_LE(best.test.threshold, 10.0f);
  EXPECT_EQ(best.left_count, 3);
  EXPECT_EQ(best.right_count, 2);
}

TEST(ContinuousSplitTest, AllValuesEqualGivesInvalid) {
  std::vector<AttrRecord> recs = {Cont(4, 0), Cont(4, 1), Cont(4, 0)};
  GiniScratch scratch;
  EXPECT_FALSE(
      EvaluateContinuousAttr(0, recs, HistOf(recs, 2), GiniOptions{}, &scratch).valid());
}

TEST(ContinuousSplitTest, SingleRecordGivesInvalid) {
  std::vector<AttrRecord> recs = {Cont(4, 0)};
  GiniScratch scratch;
  EXPECT_FALSE(
      EvaluateContinuousAttr(0, recs, HistOf(recs, 2), GiniOptions{}, &scratch).valid());
}

TEST(ContinuousSplitTest, ThresholdSeparatesAdjacentFloats) {
  // Adjacent representable floats: the midpoint must still send the lower
  // value left and the upper right.
  const float lo = 1.0f;
  const float hi = std::nextafter(lo, 2.0f);
  std::vector<AttrRecord> recs = {Cont(lo, 0), Cont(hi, 1)};
  GiniScratch scratch;
  const auto best =
      EvaluateContinuousAttr(0, recs, HistOf(recs, 2), GiniOptions{}, &scratch);
  ASSERT_TRUE(best.valid());
  AttrValue v;
  v.f = lo;
  EXPECT_TRUE(best.test.GoesLeft(v));
  v.f = hi;
  EXPECT_FALSE(best.test.GoesLeft(v));
}

TEST(ContinuousSplitTest, NoCandidateBetweenEqualValues) {
  // Split points exist only between distinct values; classes alternating
  // inside a run of equal values cannot be separated.
  std::vector<AttrRecord> recs = {Cont(1, 0), Cont(2, 0), Cont(2, 1),
                                  Cont(2, 1), Cont(3, 1)};
  GiniScratch scratch;
  const auto best =
      EvaluateContinuousAttr(0, recs, HistOf(recs, 2), GiniOptions{}, &scratch);
  ASSERT_TRUE(best.valid());
  // Best achievable: {1,2,2,2} vs {3} or {1} vs rest.
  EXPECT_TRUE(best.left_count == 1 || best.left_count == 4);
}

TEST(CategoricalSplitTest, PerfectSubsetFound) {
  std::vector<AttrRecord> recs = {Cat(0, 0), Cat(0, 0), Cat(1, 1),
                                  Cat(2, 0), Cat(1, 1)};
  GiniScratch scratch;
  GiniOptions options;
  const auto best = EvaluateCategoricalAttr(3, recs, HistOf(recs, 2), 3,
                                            options, &scratch);
  ASSERT_TRUE(best.valid());
  EXPECT_TRUE(best.test.categorical);
  EXPECT_DOUBLE_EQ(best.gini, 0.0);
  // {0,2} vs {1} (or complement; ascending mask order keeps the smaller).
  EXPECT_EQ(best.test.subset, 0b010u);
  EXPECT_EQ(best.left_count, 2);
}

TEST(CategoricalSplitTest, SingleValueGivesInvalid) {
  std::vector<AttrRecord> recs = {Cat(1, 0), Cat(1, 1)};
  GiniScratch scratch;
  GiniOptions options;
  EXPECT_FALSE(EvaluateCategoricalAttr(0, recs, HistOf(recs, 2), 4, options,
                                       &scratch)
                   .valid());
}

TEST(CategoricalSplitTest, GreedyMatchesExhaustiveOnSeparableData) {
  // Perfectly separable by value parity; greedy must find a 0-gini subset
  // just like the exhaustive search.
  std::vector<AttrRecord> recs;
  Random rng(4);
  for (int i = 0; i < 400; ++i) {
    const int v = static_cast<int>(rng.Uniform(14));
    recs.push_back(Cat(v, v % 2));
  }
  GiniScratch scratch;
  GiniOptions exhaustive;
  exhaustive.max_exhaustive_cardinality = 14;
  GiniOptions greedy;
  greedy.max_exhaustive_cardinality = 4;  // force the greedy path
  const auto a = EvaluateCategoricalAttr(0, recs, HistOf(recs, 2), 14,
                                         exhaustive, &scratch);
  const auto b =
      EvaluateCategoricalAttr(0, recs, HistOf(recs, 2), 14, greedy, &scratch);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  EXPECT_DOUBLE_EQ(a.gini, 0.0);
  EXPECT_DOUBLE_EQ(b.gini, 0.0);
}

TEST(CategoricalSplitTest, GreedyNeverWorseThanSingletons) {
  Random rng(11);
  std::vector<AttrRecord> recs;
  for (int i = 0; i < 300; ++i) {
    const int v = static_cast<int>(rng.Uniform(20));
    recs.push_back(Cat(v, rng.Uniform(2) == 0 ? (v < 10 ? 0 : 1)
                                              : static_cast<int>(rng.Uniform(2))));
  }
  const ClassHistogram total = HistOf(recs, 2);
  GiniScratch scratch;
  GiniOptions greedy;
  greedy.max_exhaustive_cardinality = 4;
  const auto best =
      EvaluateCategoricalAttr(0, recs, total, 20, greedy, &scratch);
  ASSERT_TRUE(best.valid());
  // Hill-climbing starts from singletons, so it is at least as good as the
  // best single-value subset.
  GiniOptions probe_opts;
  CountMatrix matrix(20, 2);
  for (const auto& r : recs) matrix.Add(r.value.cat, r.label);
  for (int v = 0; v < 20; ++v) {
    ClassHistogram left;
    matrix.SubsetHistogram(uint64_t{1} << v, &left);
    if (left.Total() == 0 || left.Total() == total.Total()) continue;
    ClassHistogram right = total;
    right.Subtract(left);
    EXPECT_LE(best.gini, GiniSplit(left, right) + 1e-12);
  }
}

TEST(LargeCategoricalTest, SeparableDomainReachesZeroGini) {
  // Cardinality 200: classes split by code < 120 vs >= 120.
  std::vector<AttrRecord> recs;
  Random rng(21);
  for (int i = 0; i < 2000; ++i) {
    const int v = static_cast<int>(rng.Uniform(200));
    recs.push_back(Cat(v, v < 120 ? 0 : 1, static_cast<Tid>(i)));
  }
  GiniScratch scratch;
  const auto best =
      EvaluateCategoricalLargeAttr(0, recs, HistOf(recs, 2), 200, &scratch);
  ASSERT_TRUE(best.valid());
  ASSERT_NE(best.test.big_subset, nullptr);
  EXPECT_DOUBLE_EQ(best.gini, 0.0);
  int64_t left = 0;
  for (const auto& r : recs) left += best.test.GoesLeft(r.value);
  EXPECT_EQ(left, best.left_count);
  EXPECT_EQ(best.left_count + best.right_count,
            static_cast<int64_t>(recs.size()));
}

TEST(LargeCategoricalTest, SingleValueInvalid) {
  std::vector<AttrRecord> recs = {Cat(70, 0), Cat(70, 1)};
  GiniScratch scratch;
  EXPECT_FALSE(
      EvaluateCategoricalLargeAttr(0, recs, HistOf(recs, 2), 100, &scratch)
          .valid());
}

TEST(LargeCategoricalTest, MatchesSmallGreedyAtBoundary) {
  // Same data evaluated as a 64-value domain (small greedy, uint64 mask)
  // and as if it were a 65-value domain (large path): identical gini.
  std::vector<AttrRecord> recs;
  Random rng(33);
  for (int i = 0; i < 800; ++i) {
    const int v = static_cast<int>(rng.Uniform(64));
    recs.push_back(Cat(v, (v * 7) % 3 == 0 ? 0 : 1, static_cast<Tid>(i)));
  }
  GiniScratch scratch;
  GiniOptions options;
  options.max_exhaustive_cardinality = 4;  // force greedy on the small path
  const auto small =
      EvaluateCategoricalAttr(0, recs, HistOf(recs, 2), 64, options, &scratch);
  const auto large =
      EvaluateCategoricalLargeAttr(0, recs, HistOf(recs, 2), 65, &scratch);
  ASSERT_TRUE(small.valid());
  ASSERT_TRUE(large.valid());
  EXPECT_NEAR(small.gini, large.gini, 1e-12);
  EXPECT_EQ(small.left_count, large.left_count);
}

// Brute-force cross-check: the sweep must find the same optimum a quadratic
// scan finds, across random instances of both attribute kinds.
class GiniPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GiniPropertyTest, ContinuousMatchesBruteForce) {
  Random rng(1000 + GetParam());
  const int n = 2 + static_cast<int>(rng.Uniform(60));
  const int num_classes = 2 + static_cast<int>(rng.Uniform(3));
  std::vector<AttrRecord> recs;
  for (int i = 0; i < n; ++i) {
    recs.push_back(Cont(static_cast<float>(rng.Uniform(12)),
                        static_cast<ClassLabel>(rng.Uniform(num_classes)),
                        static_cast<Tid>(i)));
  }
  std::sort(recs.begin(), recs.end(), ContinuousRecordLess());
  const ClassHistogram total = HistOf(recs, num_classes);
  GiniScratch scratch;
  const auto best = EvaluateContinuousAttr(0, recs, total, GiniOptions{}, &scratch);

  // Brute force over all value boundaries.
  double brute = 2.0;
  for (int i = 0; i + 1 < n; ++i) {
    if (recs[i].value.f == recs[i + 1].value.f) continue;
    ClassHistogram left(num_classes), right(num_classes);
    for (int j = 0; j < n; ++j) {
      (j <= i ? left : right).Add(recs[j].label);
    }
    brute = std::min(brute, GiniSplit(left, right));
  }
  if (brute > 1.5) {
    EXPECT_FALSE(best.valid());
  } else {
    ASSERT_TRUE(best.valid());
    EXPECT_NEAR(best.gini, brute, 1e-12);
    // The returned counts must match applying the returned test.
    int64_t left_count = 0;
    for (const auto& r : recs) left_count += best.test.GoesLeft(r.value);
    EXPECT_EQ(left_count, best.left_count);
  }
}

TEST_P(GiniPropertyTest, CategoricalMatchesBruteForce) {
  Random rng(2000 + GetParam());
  const int cardinality = 2 + static_cast<int>(rng.Uniform(7));  // <= 8
  const int n = 2 + static_cast<int>(rng.Uniform(80));
  std::vector<AttrRecord> recs;
  for (int i = 0; i < n; ++i) {
    recs.push_back(Cat(static_cast<int32_t>(rng.Uniform(cardinality)),
                       static_cast<ClassLabel>(rng.Uniform(2)),
                       static_cast<Tid>(i)));
  }
  const ClassHistogram total = HistOf(recs, 2);
  GiniScratch scratch;
  GiniOptions options;  // cardinality <= 8 <= exhaustive limit
  const auto best =
      EvaluateCategoricalAttr(0, recs, total, cardinality, options, &scratch);

  double brute = 2.0;
  for (uint64_t mask = 1; mask + 1 < (uint64_t{1} << cardinality); ++mask) {
    ClassHistogram left(2), right(2);
    for (const auto& r : recs) {
      (((mask >> r.value.cat) & 1) ? left : right).Add(r.label);
    }
    if (left.Total() == 0 || right.Total() == 0) continue;
    brute = std::min(brute, GiniSplit(left, right));
  }
  if (brute > 1.5) {
    EXPECT_FALSE(best.valid());
  } else {
    ASSERT_TRUE(best.valid());
    EXPECT_NEAR(best.gini, brute, 1e-12);
    int64_t left_count = 0;
    for (const auto& r : recs) left_count += best.test.GoesLeft(r.value);
    EXPECT_EQ(left_count, best.left_count);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GiniPropertyTest,
                         ::testing::Range(0, 25));

}  // namespace
}  // namespace smptree
