#include "storage/record_file.h"

#include <gtest/gtest.h>

#include <vector>

namespace smptree {
namespace {

AttrRecord MakeRec(float v, Tid tid, ClassLabel label) {
  AttrRecord r;
  r.value.f = v;
  r.tid = tid;
  r.label = label;
  r.unused = 0;
  return r;
}

class RecordFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::NewMem();
    ASSERT_TRUE(file_.Open(env_.get(), "/f").ok());
  }

  std::unique_ptr<Env> env_;
  AttrRecordFile file_;
};

TEST_F(RecordFileTest, RoundTripSmallBatch) {
  std::vector<AttrRecord> recs;
  for (int i = 0; i < 10; ++i) {
    recs.push_back(MakeRec(static_cast<float>(i), i, i % 2));
  }
  ASSERT_TRUE(file_.Append(recs).ok());
  ASSERT_TRUE(file_.Flush().ok());
  EXPECT_EQ(file_.NumRecords(), 10u);

  SegmentBuffer buf;
  ASSERT_TRUE(file_.ReadSegment(0, 10, &buf).ok());
  auto span = buf.records();
  ASSERT_EQ(span.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(span[i].value.f, static_cast<float>(i));
    EXPECT_EQ(span[i].tid, static_cast<Tid>(i));
    EXPECT_EQ(span[i].label, i % 2);
  }
}

TEST_F(RecordFileTest, SubSegmentRead) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(file_.Append(MakeRec(static_cast<float>(i), i, 0)).ok());
  }
  ASSERT_TRUE(file_.Flush().ok());
  SegmentBuffer buf;
  ASSERT_TRUE(file_.ReadSegment(40, 20, &buf).ok());
  ASSERT_EQ(buf.records().size(), 20u);
  EXPECT_EQ(buf.records()[0].tid, 40u);
  EXPECT_EQ(buf.records()[19].tid, 59u);
}

TEST_F(RecordFileTest, EmptySegment) {
  SegmentBuffer buf;
  ASSERT_TRUE(file_.ReadSegment(0, 0, &buf).ok());
  EXPECT_TRUE(buf.records().empty());
}

TEST_F(RecordFileTest, ReadPastFlushedEndFails) {
  ASSERT_TRUE(file_.Append(MakeRec(1.0f, 0, 0)).ok());
  // Still buffered, not flushed.
  SegmentBuffer buf;
  EXPECT_FALSE(file_.ReadSegment(0, 1, &buf).ok());
  ASSERT_TRUE(file_.Flush().ok());
  EXPECT_TRUE(file_.ReadSegment(0, 1, &buf).ok());
  EXPECT_FALSE(file_.ReadSegment(0, 2, &buf).ok());
}

TEST_F(RecordFileTest, LargeBatchBypassesBuffer) {
  std::vector<AttrRecord> big(AttrRecordFile::kAppendBufferRecords * 2);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = MakeRec(static_cast<float>(i), static_cast<Tid>(i), 1);
  }
  ASSERT_TRUE(file_.Append(big).ok());
  EXPECT_EQ(file_.NumRecords(), big.size());
  SegmentBuffer buf;
  ASSERT_TRUE(file_.ReadSegment(big.size() - 1, 1, &buf).ok());
  EXPECT_EQ(buf.records()[0].tid, big.size() - 1);
}

TEST_F(RecordFileTest, AutoFlushAtThreshold) {
  for (size_t i = 0; i < AttrRecordFile::kAppendBufferRecords; ++i) {
    ASSERT_TRUE(file_.Append(MakeRec(0.0f, static_cast<Tid>(i), 0)).ok());
  }
  // The buffer hit its threshold and flushed without an explicit call.
  SegmentBuffer buf;
  EXPECT_TRUE(
      file_.ReadSegment(0, AttrRecordFile::kAppendBufferRecords, &buf).ok());
}

TEST_F(RecordFileTest, TruncateResetsCounts) {
  ASSERT_TRUE(file_.Append(MakeRec(1.0f, 1, 1)).ok());
  ASSERT_TRUE(file_.Flush().ok());
  ASSERT_TRUE(file_.Truncate().ok());
  EXPECT_EQ(file_.NumRecords(), 0u);
  ASSERT_TRUE(file_.Append(MakeRec(2.0f, 2, 0)).ok());
  ASSERT_TRUE(file_.Flush().ok());
  SegmentBuffer buf;
  ASSERT_TRUE(file_.ReadSegment(0, 1, &buf).ok());
  EXPECT_EQ(buf.records()[0].tid, 2u);
}

TEST_F(RecordFileTest, CategoricalValuesRoundTrip) {
  AttrRecord r;
  r.value.cat = -7;  // negative codes must survive the union round trip
  r.tid = 3;
  r.label = 1;
  r.unused = 0;
  ASSERT_TRUE(file_.Append(r).ok());
  ASSERT_TRUE(file_.Flush().ok());
  SegmentBuffer buf;
  ASSERT_TRUE(file_.ReadSegment(0, 1, &buf).ok());
  EXPECT_EQ(buf.records()[0].value.cat, -7);
}

}  // namespace
}  // namespace smptree
