#include "serve/work_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace smptree {
namespace {

TEST(WorkQueueTest, FifoSingleThread) {
  WorkQueue<int> q(4);
  EXPECT_TRUE(q.Push(1));
  EXPECT_TRUE(q.Push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
}

TEST(WorkQueueTest, CloseDrainsThenReportsShutdown) {
  WorkQueue<int> q(4);
  q.Push(7);
  q.Close();
  EXPECT_FALSE(q.Push(8));  // rejected after close
  EXPECT_EQ(q.Pop(), 7);    // queued item still handed out
  EXPECT_EQ(q.Pop(), std::nullopt);
}

TEST(WorkQueueTest, CloseUnblocksWaitingConsumer) {
  WorkQueue<int> q(4);
  std::thread consumer([&q] { EXPECT_EQ(q.Pop(), std::nullopt); });
  q.Close();
  consumer.join();
}

TEST(WorkQueueTest, BoundedPushBlocksUntilPop) {
  WorkQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
}

TEST(WorkQueueTest, ManyProducersManyConsumers) {
  constexpr int kProducers = 4, kConsumers = 4, kPerProducer = 500;
  WorkQueue<int> q(8);
  std::atomic<int64_t> sum{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        std::optional<int> v = q.Pop();
        if (!v.has_value()) return;
        sum.fetch_add(*v);
        popped.fetch_add(1);
      }
    });
  }
  // Join the producers, then close so the consumers drain and exit.
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  q.Close();
  for (size_t t = kProducers; t < threads.size(); ++t) threads[t].join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), n);
  EXPECT_EQ(sum.load(), int64_t{n} * (n - 1) / 2);
}

}  // namespace
}  // namespace smptree
