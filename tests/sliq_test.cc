// SLIQ baseline tests. The strongest property: SLIQ and serial SPRINT make
// identical greedy gini decisions over identical candidate sets, so with
// the shared deterministic tie-breaking their trees must be bit-identical
// -- two independently-implemented classifiers cross-validating each other.

#include "sliq/sliq_builder.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/tree_io.h"
#include "data/synthetic.h"
#include "util/random.h"

namespace smptree {
namespace {

TEST(SliqTest, LearnsSimpleThreshold) {
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"neg", "pos"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 100; ++i) {
    v[0].f = static_cast<float>(i);
    ASSERT_TRUE(data.Append(v, i < 60 ? 0 : 1).ok());
  }
  auto result = TrainSliq(data, SliqOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->tree->num_nodes(), 3);
  EXPECT_EQ(result->tree->node(0).split.threshold, 59.5f);
}

TEST(SliqTest, PureRootStaysLeaf) {
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 10; ++i) {
    v[0].f = static_cast<float>(i);
    ASSERT_TRUE(data.Append(v, 1).ok());
  }
  auto result = TrainSliq(data, SliqOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree->num_nodes(), 1);
  EXPECT_EQ(result->tree->node(0).majority, 1);
}

TEST(SliqTest, StatsPopulated) {
  SyntheticConfig cfg;
  cfg.function = 2;
  cfg.num_tuples = 2000;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  auto result = TrainSliq(*data, SliqOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.total_seconds, 0.0);
  EXPECT_EQ(result->stats.class_list_bytes, 2000u * 8u);
  EXPECT_GT(result->stats.tree.num_nodes, 1);
}

TEST(SliqTest, ValidatesOptions) {
  SyntheticConfig cfg;
  cfg.num_tuples = 10;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  SliqOptions options;
  options.min_split = 0;
  EXPECT_TRUE(TrainSliq(*data, options).status().IsInvalidArgument());
}

class SliqEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SliqEquivalenceTest, MatchesSprintOnEveryFunction) {
  SyntheticConfig cfg;
  cfg.function = GetParam();
  cfg.num_tuples = 900;
  cfg.num_attrs = 12;
  cfg.seed = 4001 * GetParam();
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());

  ClassifierOptions sprint;
  auto expected = TrainClassifier(*data, sprint);
  ASSERT_TRUE(expected.ok());

  auto actual = TrainSliq(*data, SliqOptions{});
  ASSERT_TRUE(actual.ok()) << actual.status().ToString();
  EXPECT_TRUE(TreesEqual(*expected->tree, *actual->tree))
      << "SPRINT:\n"
      << expected->tree->ToString() << "\nSLIQ:\n"
      << actual->tree->ToString();
}

INSTANTIATE_TEST_SUITE_P(Functions, SliqEquivalenceTest,
                         ::testing::Range(1, 11));

TEST(SliqEquivalenceTest, MatchesSprintWithStoppingRules) {
  SyntheticConfig cfg;
  cfg.function = 7;
  cfg.num_tuples = 1500;
  cfg.label_noise = 0.05;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());

  ClassifierOptions sprint;
  sprint.build.min_split = 25;
  sprint.build.max_levels = 6;
  auto expected = TrainClassifier(*data, sprint);
  ASSERT_TRUE(expected.ok());

  SliqOptions sliq;
  sliq.min_split = 25;
  sliq.max_levels = 6;
  auto actual = TrainSliq(*data, sliq);
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(TreesEqual(*expected->tree, *actual->tree));
}

TEST(SliqEquivalenceTest, MatchesSprintOnMulticlass) {
  MulticlassConfig cfg;
  cfg.num_classes = 5;
  cfg.num_tuples = 1200;
  auto data = GenerateMulticlassSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  ClassifierOptions sprint;
  auto expected = TrainClassifier(*data, sprint);
  ASSERT_TRUE(expected.ok());
  auto actual = TrainSliq(*data, SliqOptions{});
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(TreesEqual(*expected->tree, *actual->tree));
}

TEST(SliqEquivalenceTest, MatchesSprintOnLargeCardinality) {
  Schema s;
  s.AddCategorical("sku", 120);
  s.AddContinuous("price");
  s.SetClassNames({"a", "b"});
  Dataset data(s);
  Random rng(5150);
  TupleValues v(2);
  for (int i = 0; i < 1000; ++i) {
    v[0].cat = static_cast<int32_t>(rng.Uniform(120));
    v[1].f = static_cast<float>(rng.UniformDouble(0, 10));
    ASSERT_TRUE(
        data.Append(v, (v[0].cat % 5 < 2) != rng.Bernoulli(0.05) ? 0 : 1)
            .ok());
  }
  ClassifierOptions sprint;
  sprint.build.min_split = 10;
  auto expected = TrainClassifier(data, sprint);
  ASSERT_TRUE(expected.ok());
  SliqOptions sliq;
  sliq.min_split = 10;
  auto actual = TrainSliq(data, sliq);
  ASSERT_TRUE(actual.ok());
  EXPECT_TRUE(TreesEqual(*expected->tree, *actual->tree));
}

TEST(SliqTest, PruningShrinksNoisyTree) {
  SyntheticConfig cfg;
  cfg.function = 1;
  cfg.num_tuples = 3000;
  cfg.label_noise = 0.15;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  SliqOptions raw;
  auto grown = TrainSliq(*data, raw);
  ASSERT_TRUE(grown.ok());
  SliqOptions pruned = raw;
  pruned.prune.method = PruneOptions::Method::kCostComplexity;
  auto trimmed = TrainSliq(*data, pruned);
  ASSERT_TRUE(trimmed.ok());
  EXPECT_LT(trimmed->tree->num_nodes(), grown->tree->num_nodes());
  EXPECT_GT(trimmed->stats.nodes_pruned, 0);
}

TEST(SliqTest, PerfectAccuracyOnCleanFunctions) {
  for (int f : {2, 6, 8}) {
    SyntheticConfig cfg;
    cfg.function = f;
    cfg.num_tuples = 1500;
    auto data = GenerateSynthetic(cfg);
    ASSERT_TRUE(data.ok());
    auto result = TrainSliq(*data, SliqOptions{});
    ASSERT_TRUE(result.ok());
    EXPECT_DOUBLE_EQ(TreeAccuracy(*result->tree, *data), 1.0)
        << "function " << f;
  }
}

}  // namespace
}  // namespace smptree
