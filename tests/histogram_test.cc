#include "core/histogram.h"

#include <gtest/gtest.h>

namespace smptree {
namespace {

TEST(ClassHistogramTest, AddRemoveTotal) {
  ClassHistogram h(3);
  h.Add(0);
  h.Add(1, 5);
  h.Add(2, 2);
  EXPECT_EQ(h.Total(), 8);
  h.Remove(1, 3);
  EXPECT_EQ(h.count(1), 2);
  EXPECT_EQ(h.Total(), 5);
}

TEST(ClassHistogramTest, MergeAndSubtract) {
  ClassHistogram a(2);
  a.Add(0, 3);
  a.Add(1, 1);
  ClassHistogram b(2);
  b.Add(0, 2);
  b.Add(1, 4);
  a.Merge(b);
  EXPECT_EQ(a.count(0), 5);
  EXPECT_EQ(a.count(1), 5);
  a.Subtract(b);
  EXPECT_EQ(a.count(0), 3);
  EXPECT_EQ(a.count(1), 1);
}

TEST(ClassHistogramTest, Purity) {
  ClassHistogram h(3);
  EXPECT_TRUE(h.IsPure());  // empty counts as pure
  h.Add(1, 10);
  EXPECT_TRUE(h.IsPure());
  h.Add(2);
  EXPECT_FALSE(h.IsPure());
}

TEST(ClassHistogramTest, MajorityAndErrors) {
  ClassHistogram h(3);
  h.Add(0, 2);
  h.Add(1, 7);
  h.Add(2, 1);
  EXPECT_EQ(h.Majority(), 1);
  EXPECT_EQ(h.ErrorCount(), 3);
}

TEST(ClassHistogramTest, MajorityTieBreaksLow) {
  ClassHistogram h(2);
  h.Add(0, 4);
  h.Add(1, 4);
  EXPECT_EQ(h.Majority(), 0);
}

TEST(GiniIndexTest, PureIsZero) {
  ClassHistogram h(2);
  h.Add(0, 100);
  EXPECT_DOUBLE_EQ(GiniIndex(h), 0.0);
}

TEST(GiniIndexTest, EvenTwoClassIsHalf) {
  ClassHistogram h(2);
  h.Add(0, 50);
  h.Add(1, 50);
  EXPECT_DOUBLE_EQ(GiniIndex(h), 0.5);
}

TEST(GiniIndexTest, EmptyIsZero) {
  ClassHistogram h(4);
  EXPECT_DOUBLE_EQ(GiniIndex(h), 0.0);
}

TEST(GiniIndexTest, KnownValue) {
  // p = (0.25, 0.75): gini = 1 - (1/16 + 9/16) = 6/16.
  ClassHistogram h(2);
  h.Add(0, 1);
  h.Add(1, 3);
  EXPECT_DOUBLE_EQ(GiniIndex(h), 0.375);
}

TEST(GiniSplitTest, WeightedAverage) {
  ClassHistogram l(2);
  l.Add(0, 10);  // pure left: gini 0
  ClassHistogram r(2);
  r.Add(0, 5);
  r.Add(1, 5);  // gini 0.5
  // (10/20)*0 + (10/20)*0.5 = 0.25
  EXPECT_DOUBLE_EQ(GiniSplit(l, r), 0.25);
}

TEST(GiniSplitTest, EmptySideIsWorst) {
  ClassHistogram l(2);
  ClassHistogram r(2);
  r.Add(0, 5);
  EXPECT_DOUBLE_EQ(GiniSplit(l, r), 1.0);
}

TEST(EntropyIndexTest, PureIsZero) {
  ClassHistogram h(2);
  h.Add(1, 42);
  EXPECT_DOUBLE_EQ(EntropyIndex(h), 0.0);
}

TEST(EntropyIndexTest, EvenTwoClassIsOneBit) {
  ClassHistogram h(2);
  h.Add(0, 8);
  h.Add(1, 8);
  EXPECT_DOUBLE_EQ(EntropyIndex(h), 1.0);
}

TEST(EntropyIndexTest, EvenFourClassIsTwoBits) {
  ClassHistogram h(4);
  for (int c = 0; c < 4; ++c) h.Add(c, 5);
  EXPECT_DOUBLE_EQ(EntropyIndex(h), 2.0);
}

TEST(EntropyIndexTest, KnownValue) {
  // p = (0.25, 0.75): H = 0.25*2 + 0.75*log2(4/3).
  ClassHistogram h(2);
  h.Add(0, 1);
  h.Add(1, 3);
  EXPECT_NEAR(EntropyIndex(h), 0.8112781244591328, 1e-12);
}

TEST(EntropyIndexTest, EmptyIsZero) {
  ClassHistogram h(3);
  EXPECT_DOUBLE_EQ(EntropyIndex(h), 0.0);
}

TEST(SplitImpurityTest, MatchesCriterion) {
  ClassHistogram l(2);
  l.Add(0, 10);
  ClassHistogram r(2);
  r.Add(0, 5);
  r.Add(1, 5);
  EXPECT_DOUBLE_EQ(SplitImpurity(l, r, SplitCriterion::kGini),
                   GiniSplit(l, r));
  // (10/20)*0 + (10/20)*1.0 = 0.5 bits.
  EXPECT_DOUBLE_EQ(SplitImpurity(l, r, SplitCriterion::kEntropy), 0.5);
}

TEST(SplitImpurityTest, EmptySideIsWorst) {
  ClassHistogram l(4);
  ClassHistogram r(4);
  r.Add(2, 3);
  EXPECT_DOUBLE_EQ(SplitImpurity(l, r, SplitCriterion::kEntropy), 2.0);
}

TEST(CountMatrixTest, AddAndTotals) {
  CountMatrix m(3, 2);
  m.Add(0, 0);
  m.Add(0, 1);
  m.Add(2, 1);
  m.Add(2, 1);
  EXPECT_EQ(m.count(0, 0), 1);
  EXPECT_EQ(m.count(0, 1), 1);
  EXPECT_EQ(m.count(2, 1), 2);
  EXPECT_EQ(m.ValueTotal(0), 2);
  EXPECT_EQ(m.ValueTotal(1), 0);
  EXPECT_EQ(m.ValueTotal(2), 2);
}

TEST(CountMatrixTest, SubsetHistogram) {
  CountMatrix m(4, 2);
  m.Add(0, 0);
  m.Add(1, 1);
  m.Add(2, 0);
  m.Add(3, 1);
  ClassHistogram h;
  m.SubsetHistogram(0b0101, &h);  // values {0, 2}
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(1), 0);
  m.SubsetHistogram(0b1111, &h);
  EXPECT_EQ(h.Total(), 4);
  m.SubsetHistogram(0, &h);
  EXPECT_EQ(h.Total(), 0);
}

}  // namespace
}  // namespace smptree
