// forest_io: exact round-trips through the versioned container, and the
// rejection matrix -- truncated containers, corrupted members, wrong
// member counts, bad headers. ModelStore-level rejection (a bad forest
// must not evict the installed model) lives in serve_forest_test.cc.

#include "ensemble/forest_io.h"

#include <gtest/gtest.h>

#include <string>

#include "data/synthetic.h"
#include "ensemble/forest_builder.h"

namespace smptree {
namespace {

Dataset TestData() {
  SyntheticConfig cfg;
  cfg.function = 2;
  cfg.num_tuples = 900;
  cfg.num_attrs = 9;
  cfg.seed = 21;
  auto data = GenerateSynthetic(cfg);
  EXPECT_TRUE(data.ok()) << data.status().ToString();
  return std::move(*data);
}

ForestTrainResult TrainSmallForest(const Dataset& data, int trees = 3) {
  ForestOptions options;
  options.num_trees = trees;
  options.features_per_node = 4;
  auto result = TrainForest(data, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(*result);
}

TEST(ForestIoTest, RoundTripsExactly) {
  const Dataset data = TestData();
  auto trained = TrainSmallForest(data);
  const std::string text = SerializeForest(*trained.forest);

  // Container framing: header with the count, trailer line.
  EXPECT_EQ(text.rfind("forest v1 trees=3\n", 0), 0u);
  EXPECT_NE(text.find("\nend forest\n"), std::string::npos);

  auto parsed = DeserializeForest(data.schema(), text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(ForestsEqual(*trained.forest, *parsed));
  // Re-serialization is byte-stable.
  EXPECT_EQ(SerializeForest(*parsed), text);
  // Parsed members classify identically.
  for (int64_t t = 0; t < 100; ++t) {
    EXPECT_EQ(trained.forest->Classify(data, t), parsed->Classify(data, t));
  }
}

TEST(ForestIoTest, RejectsBadHeader) {
  const Dataset data = TestData();
  EXPECT_TRUE(DeserializeForest(data.schema(), "").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DeserializeForest(data.schema(), "tree v1 classes=2 nodes=1\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DeserializeForest(data.schema(), "forest v1 trees=0\n")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(DeserializeForest(data.schema(), "forest v1 trees=zebra\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(ForestIoTest, RejectsTruncation) {
  const Dataset data = TestData();
  auto trained = TrainSmallForest(data);
  const std::string text = SerializeForest(*trained.forest);

  // Cut anywhere: mid-member, between members, before the trailer -- a
  // truncated container must never parse.
  const size_t second_member = text.find("tree v1 ", text.find("tree v1 ") + 1);
  ASSERT_NE(second_member, std::string::npos);
  EXPECT_TRUE(DeserializeForest(data.schema(),
                                text.substr(0, second_member))
                  .status()
                  .IsCorruption())
      << "cut between members must fail the trailer/count check";
  EXPECT_TRUE(DeserializeForest(data.schema(), text.substr(0, text.size() / 2))
                  .status()
                  .IsCorruption())
      << "cut mid-member must fail the member node-count check";
  // Missing only the trailer line.
  const std::string no_trailer =
      text.substr(0, text.size() - std::string("end forest\n").size());
  EXPECT_TRUE(
      DeserializeForest(data.schema(), no_trailer).status().IsCorruption());
}

TEST(ForestIoTest, RejectsCorruptedMember) {
  const Dataset data = TestData();
  auto trained = TrainSmallForest(data);
  std::string text = SerializeForest(*trained.forest);

  // Flip a member's node record type -- the member parser must object.
  const size_t n_line = text.find("\nN ");
  ASSERT_NE(n_line, std::string::npos);
  text[n_line + 1] = 'X';
  EXPECT_TRUE(
      DeserializeForest(data.schema(), text).status().IsCorruption());
}

TEST(ForestIoTest, RejectsWrongMemberCount) {
  const Dataset data = TestData();
  auto trained = TrainSmallForest(data);
  std::string text = SerializeForest(*trained.forest);
  // Claim 4 members while 3 are present: the container must not parse.
  const size_t pos = text.find("trees=3");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 7, "trees=4");
  EXPECT_TRUE(
      DeserializeForest(data.schema(), text).status().IsCorruption());
}

TEST(ForestIoTest, ForestsEqualDiscriminates) {
  const Dataset data = TestData();
  auto a = TrainSmallForest(data, 3);
  auto b = TrainSmallForest(data, 3);  // same options + seed: identical
  EXPECT_TRUE(ForestsEqual(*a.forest, *b.forest));
  auto c = TrainSmallForest(data, 2);  // different member count
  EXPECT_FALSE(ForestsEqual(*a.forest, *c.forest));
}

}  // namespace
}  // namespace smptree
