// Unit tests for the incremental HTTP request parser shared by both
// serving front ends. The parser is where all protocol decisions live
// (persistence defaults, Connection token lists, size limits), so these
// tests pin the wire-level contract without opening a socket.

#include "serve/http_parser.h"

#include <gtest/gtest.h>

#include <string>

namespace smptree {
namespace {

using State = HttpRequestParser::State;

State FeedAll(HttpRequestParser* parser, const std::string& bytes) {
  return parser->Feed(bytes.data(), bytes.size());
}

TEST(HttpParserTest, SimpleGetCompletes) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/healthz");
  EXPECT_EQ(parser.request().query, "");
  EXPECT_EQ(parser.request().version_major, 1);
  EXPECT_EQ(parser.request().version_minor, 1);
  EXPECT_TRUE(parser.keep_alive());
  EXPECT_EQ(parser.buffered_bytes(), 0u);
}

TEST(HttpParserTest, PostBodyAndQuerySplit) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST /v1/predict?debug=1&v=2 HTTP/1.1\r\n"
                    "Content-Length: 4\r\n\r\nabcd"),
            State::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().path, "/v1/predict");
  EXPECT_EQ(parser.request().query, "debug=1&v=2");
  EXPECT_EQ(parser.request().body, "abcd");
}

TEST(HttpParserTest, ByteAtATimeTrickle) {
  // Every recv() boundary in the middle of the request line, a header
  // name, the CRLFCRLF, and the body must leave the state machine intact.
  const std::string wire =
      "POST /v1/predict HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
  HttpRequestParser parser;
  for (size_t i = 0; i < wire.size(); ++i) {
    const State state = parser.Feed(&wire[i], 1);
    if (i + 1 < wire.size()) {
      ASSERT_NE(state, State::kComplete) << "completed early at byte " << i;
      ASSERT_NE(state, State::kError) << "failed at byte " << i;
    } else {
      ASSERT_EQ(state, State::kComplete);
    }
  }
  EXPECT_EQ(parser.request().body, "xyz");
}

TEST(HttpParserTest, PipelinedRequestsInOneFeed) {
  // Two requests in one TCP segment: the first completes, Reset() keeps
  // the remainder, and Advance() completes the second without new bytes.
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi"
                    "GET /b HTTP/1.1\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  EXPECT_EQ(parser.request().body, "hi");
  EXPECT_GT(parser.buffered_bytes(), 0u);

  parser.Reset();
  ASSERT_EQ(parser.Advance(), State::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.request().body, "");
  EXPECT_EQ(parser.buffered_bytes(), 0u);

  parser.Reset();
  EXPECT_EQ(parser.Advance(), State::kReadingHeaders);
}

TEST(HttpParserTest, Http11DefaultsToKeepAlive) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\n\r\n"), State::kComplete);
  EXPECT_TRUE(parser.keep_alive());
}

TEST(HttpParserTest, Http11CloseToken) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\nConnection: close\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(parser.keep_alive());
}

TEST(HttpParserTest, Http10DefaultsToClose) {
  // RFC 7230 6.3: absent a keep-alive token, HTTP/1.0 is one-shot.
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET / HTTP/1.0\r\nHost: x\r\n\r\n"),
            State::kComplete);
  EXPECT_EQ(parser.request().version_minor, 0);
  EXPECT_FALSE(parser.keep_alive());
}

TEST(HttpParserTest, Http10KeepAliveTokenUpgrades) {
  HttpRequestParser parser;
  ASSERT_EQ(
      FeedAll(&parser, "GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n"),
      State::kComplete);
  EXPECT_TRUE(parser.keep_alive());
}

TEST(HttpParserTest, ConnectionHeaderIsTokenList) {
  // "Keep-Alive, Upgrade" negotiates keep-alive even though the value is
  // not an exact-match "keep-alive"; header name case is irrelevant too.
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "GET / HTTP/1.0\r\n"
                    "CONNECTION: Keep-Alive, Upgrade\r\n\r\n"),
            State::kComplete);
  EXPECT_TRUE(parser.keep_alive());
}

TEST(HttpParserTest, CloseTokenWinsOverKeepAlive) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "GET / HTTP/1.1\r\n"
                    "Connection: keep-alive, close\r\n\r\n"),
            State::kComplete);
  EXPECT_FALSE(parser.keep_alive());
}

TEST(HttpParserTest, MalformedRequestLine) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "GET/nospaces\r\n\r\n"), State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, MalformedVersion) {
  for (const char* version : {"HTTP/11", "HTTP/1.x", "SPDY/1.1", "HTTP/1.11"}) {
    HttpRequestParser parser;
    ASSERT_EQ(FeedAll(&parser,
                      std::string("GET / ") + version + "\r\n\r\n"),
              State::kError)
        << version;
    EXPECT_EQ(parser.error_status(), 400) << version;
  }
}

TEST(HttpParserTest, BadContentLength) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);

  HttpRequestParser negative;
  ASSERT_EQ(FeedAll(&negative,
                    "POST / HTTP/1.1\r\nContent-Length: -3\r\n\r\n"),
            State::kError);
  EXPECT_EQ(negative.error_status(), 400);
}

TEST(HttpParserTest, BodyOverLimitAnswers413) {
  HttpRequestParser::Limits limits;
  limits.max_body_bytes = 16;
  HttpRequestParser parser(limits);
  ASSERT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\nContent-Length: 17\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, HeaderFloodAnswers431) {
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 256;
  HttpRequestParser parser(limits);
  // Drip headers without ever sending the terminating blank line; the
  // parser must fail as soon as the buffer exceeds the limit rather than
  // buffering an unbounded header block.
  const std::string line = "X-Flood: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
  State state = FeedAll(&parser, "GET / HTTP/1.1\r\n");
  for (int i = 0; i < 64 && state != State::kError; ++i) {
    state = FeedAll(&parser, line);
  }
  ASSERT_EQ(state, State::kError);
  EXPECT_EQ(parser.error_status(), 431);
  EXPECT_LE(parser.buffered_bytes(), limits.max_header_bytes + line.size());
}

TEST(HttpParserTest, CompleteHeaderBlockOverLimitAnswers431) {
  // The terminator arrived, but the block itself is over budget.
  HttpRequestParser::Limits limits;
  limits.max_header_bytes = 64;
  HttpRequestParser parser(limits);
  std::string wire = "GET / HTTP/1.1\r\nX-Big: ";
  wire.append(128, 'a');
  wire += "\r\n\r\n";
  ASSERT_EQ(FeedAll(&parser, wire), State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, ChunkedEncodingRejected) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser,
                    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, ErrorStateIsSticky) {
  HttpRequestParser parser;
  ASSERT_EQ(FeedAll(&parser, "bogus\r\n\r\n"), State::kError);
  EXPECT_EQ(FeedAll(&parser, "GET / HTTP/1.1\r\n\r\n"), State::kError);
}

TEST(HttpParserTest, HeaderValueHasTokenUnits) {
  EXPECT_TRUE(HeaderValueHasToken("close", "close"));
  EXPECT_TRUE(HeaderValueHasToken("Close", "close"));
  EXPECT_TRUE(HeaderValueHasToken("keep-alive, close", "close"));
  EXPECT_TRUE(HeaderValueHasToken(" Keep-Alive ,  Upgrade ", "upgrade"));
  EXPECT_FALSE(HeaderValueHasToken("close-enough", "close"));
  EXPECT_FALSE(HeaderValueHasToken("keepalive", "keep-alive"));
  EXPECT_FALSE(HeaderValueHasToken("", "close"));
}

TEST(HttpParserTest, IEqualsAsciiUnits) {
  EXPECT_TRUE(IEqualsAscii("Content-Length", "content-length"));
  EXPECT_TRUE(IEqualsAscii("", ""));
  EXPECT_FALSE(IEqualsAscii("Content-Length", "content-length "));
  EXPECT_FALSE(IEqualsAscii("a", "b"));
}

TEST(HttpParserTest, RenderHttpResponseExtraHeaders) {
  HttpResponse response;
  response.status = 405;
  response.body = "{}\n";
  response.extra_headers.push_back({"Allow", "GET, POST"});
  const std::string wire = RenderHttpResponse(response, /*keep_alive=*/true);
  EXPECT_NE(wire.find("HTTP/1.1 405 Method Not Allowed\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Allow: GET, POST\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Connection: keep-alive\r\n\r\n{}\n"),
            std::string::npos);
}

}  // namespace
}  // namespace smptree
