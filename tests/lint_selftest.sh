#!/bin/sh
# Workflow test for the smptree static-lint pass:
#   1. the fixture selftest must pass (every check fires and stays silent
#      exactly where the EXPECT markers say), and
#   2. the real source tree must lint clean with zero unwaivered findings.
#
# Usage: lint_selftest.sh <python3> <repo-root>
set -eu

PYTHON="${1:?usage: lint_selftest.sh <python3> <repo-root>}"
ROOT="${2:?usage: lint_selftest.sh <python3> <repo-root>}"

echo "== lint fixture selftest =="
"$PYTHON" "$ROOT/tools/lint/selftest.py"

echo "== lint src/ (must be clean) =="
"$PYTHON" "$ROOT/tools/lint/smptree_lint.py" "$ROOT/src"

echo "lint_selftest: PASS"
