#include "serve/json.h"

#include <gtest/gtest.h>

namespace smptree {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->bool_value());
  EXPECT_FALSE(ParseJson("false")->bool_value());
  EXPECT_DOUBLE_EQ(ParseJson("3.5")->number_value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseJson("-12")->number_value(), -12.0);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->number_value(), 1000.0);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(JsonTest, ParsesNestedDocument) {
  auto doc = ParseJson(
      R"({"tuples": [[1.5, "blue", null], [2, 0, 3]], "count": 2})");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* tuples = doc->Find("tuples");
  ASSERT_NE(tuples, nullptr);
  ASSERT_TRUE(tuples->is_array());
  ASSERT_EQ(tuples->array_items().size(), 2u);
  const auto& first = tuples->array_items()[0].array_items();
  EXPECT_DOUBLE_EQ(first[0].number_value(), 1.5);
  EXPECT_EQ(first[1].string_value(), "blue");
  EXPECT_TRUE(first[2].is_null());
  EXPECT_DOUBLE_EQ(doc->Find("count")->number_value(), 2.0);
}

TEST(JsonTest, ParsesEscapes) {
  auto doc = ParseJson(R"("a\"b\\c\nd\u0041")");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->string_value(), "a\"b\\c\nd\x41");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1.2.3").ok());
}

TEST(JsonTest, RejectsDeepNesting) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_TRUE(ParseJson("[]")->array_items().empty());
  EXPECT_TRUE(ParseJson("{}")->object_members().empty());
}

TEST(JsonTest, QuoteEscapesControlCharacters) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\nb"), "\"a\\nb\"");
  EXPECT_EQ(JsonQuote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonTest, NumberFormatting) {
  EXPECT_EQ(JsonNumber(3.0), "3");
  EXPECT_EQ(JsonNumber(-42.0), "-42");
  EXPECT_EQ(JsonNumber(0.5), "0.5");
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
}

TEST(JsonTest, QuoteRoundTripsThroughParser) {
  const std::string nasty = "line1\nline2\t\"quoted\" \\slash\\";
  auto parsed = ParseJson(JsonQuote(nasty));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->string_value(), nasty);
}

}  // namespace
}  // namespace smptree
