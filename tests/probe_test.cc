#include "core/probe.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace smptree {
namespace {

TEST(SplitProbeTest, RouteAndLookup) {
  SplitProbe probe;
  probe.Reset(100);
  EXPECT_EQ(probe.size(), 100u);
  probe.Route(3, true);
  probe.Route(4, false);
  probe.Route(99, true);
  EXPECT_TRUE(probe.GoesLeft(3));
  EXPECT_FALSE(probe.GoesLeft(4));
  EXPECT_TRUE(probe.GoesLeft(99));
}

TEST(SplitProbeTest, RerouteOverwrites) {
  SplitProbe probe;
  probe.Reset(10);
  probe.Route(5, true);
  EXPECT_TRUE(probe.GoesLeft(5));
  probe.Route(5, false);
  EXPECT_FALSE(probe.GoesLeft(5));
}

TEST(SplitProbeTest, ResetToSameSizeKeepsCapacity) {
  SplitProbe probe;
  probe.Reset(64);
  probe.Route(10, true);
  probe.Reset(64);  // no-op resize; bits may persist per documented contract
  EXPECT_EQ(probe.size(), 64u);
}

TEST(SplitProbeTest, ConcurrentLeavesShareWords) {
  // Two "leaves" own interleaved tids within the same 64-bit words; their W
  // phases route concurrently and must not clobber each other.
  SplitProbe probe;
  const size_t n = 4096;
  probe.Reset(n);
  std::thread even([&] {
    for (size_t t = 0; t < n; t += 2) probe.Route(static_cast<Tid>(t), true);
  });
  std::thread odd([&] {
    for (size_t t = 1; t < n; t += 2) probe.Route(static_cast<Tid>(t), false);
  });
  even.join();
  odd.join();
  for (size_t t = 0; t < n; ++t) {
    EXPECT_EQ(probe.GoesLeft(static_cast<Tid>(t)), t % 2 == 0) << t;
  }
}

}  // namespace
}  // namespace smptree
