// End-to-end tests of serial SPRINT growth through the classifier facade:
// exact tree shapes on hand-made data, learnability of the synthetic
// functions, stopping rules, and both storage environments.

#include "core/serial_builder.h"

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "core/metrics.h"
#include "data/synthetic.h"

namespace smptree {
namespace {

Result<TrainResult> TrainSerial(const Dataset& data,
                                ClassifierOptions options = {}) {
  options.build.algorithm = Algorithm::kSerial;
  return TrainClassifier(data, options);
}

TEST(SerialBuilderTest, LearnsSimpleThreshold) {
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"neg", "pos"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 100; ++i) {
    v[0].f = static_cast<float>(i);
    ASSERT_TRUE(data.Append(v, i < 60 ? 0 : 1).ok());
  }
  auto result = TrainSerial(data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DecisionTree& tree = *result->tree;
  EXPECT_EQ(tree.num_nodes(), 3);
  const SplitTest& test = tree.node(tree.root()).split;
  EXPECT_EQ(test.attr, 0);
  EXPECT_EQ(test.threshold, 59.5f);
  EXPECT_EQ(tree.node(tree.node(tree.root()).left).majority, 0);
  EXPECT_EQ(tree.node(tree.node(tree.root()).right).majority, 1);
}

TEST(SerialBuilderTest, LearnsCategoricalSubset) {
  Schema s;
  s.AddCategorical("color", 4);
  s.SetClassNames({"warm", "cold"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 80; ++i) {
    v[0].cat = i % 4;
    ASSERT_TRUE(data.Append(v, (i % 4 == 0 || i % 4 == 2) ? 0 : 1).ok());
  }
  auto result = TrainSerial(data);
  ASSERT_TRUE(result.ok());
  const DecisionTree& tree = *result->tree;
  EXPECT_EQ(tree.num_nodes(), 3);
  const SplitTest& test = tree.node(tree.root()).split;
  EXPECT_TRUE(test.categorical);
  EXPECT_EQ(test.subset, 0b0101u);  // {0, 2}
}

TEST(SerialBuilderTest, PureRootStaysLeaf) {
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 10; ++i) {
    v[0].f = static_cast<float>(i);
    ASSERT_TRUE(data.Append(v, 0).ok());
  }
  auto result = TrainSerial(data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree->num_nodes(), 1);
  EXPECT_EQ(result->tree->node(0).majority, 0);
}

TEST(SerialBuilderTest, ConstantAttributesWithMixedClassesStayLeaf) {
  // No valid split exists: identical values, mixed labels.
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  v[0].f = 3.0f;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(data.Append(v, i % 3 == 0 ? 0 : 1).ok());
  }
  auto result = TrainSerial(data);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->tree->num_nodes(), 1);
  EXPECT_EQ(result->tree->node(0).majority, 1);
}

TEST(SerialBuilderTest, MinSplitStopsGrowth) {
  SyntheticConfig cfg;
  cfg.function = 7;
  cfg.num_tuples = 2000;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  ClassifierOptions loose;
  loose.build.min_split = 2;
  ClassifierOptions tight;
  tight.build.min_split = 200;
  auto big = TrainSerial(*data, loose);
  auto small = TrainSerial(*data, tight);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_LT(small->tree->num_nodes(), big->tree->num_nodes());
}

TEST(SerialBuilderTest, MaxLevelsBoundsDepth) {
  SyntheticConfig cfg;
  cfg.function = 7;
  cfg.num_tuples = 3000;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  ClassifierOptions options;
  options.build.max_levels = 4;
  auto result = TrainSerial(*data, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->tree->Stats().levels, 4);
}

TEST(SerialBuilderTest, F1ProducesSmallTreeF7Large) {
  // The evaluation's premise: function 1 yields small trees, function 7
  // large ones.
  SyntheticConfig cfg;
  cfg.num_tuples = 5000;
  cfg.function = 1;
  auto f1 = GenerateSynthetic(cfg);
  cfg.function = 7;
  auto f7 = GenerateSynthetic(cfg);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f7.ok());
  auto t1 = TrainSerial(*f1);
  auto t7 = TrainSerial(*f7);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t7.ok());
  EXPECT_LE(t1->tree->Stats().levels, 4);
  EXPECT_GT(t7->tree->num_nodes(), 5 * t1->tree->num_nodes());
}

TEST(SerialBuilderTest, F1TreeSplitsOnAgeBoundaries) {
  SyntheticConfig cfg;
  cfg.function = 1;
  cfg.num_tuples = 5000;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  auto result = TrainSerial(*data);
  ASSERT_TRUE(result.ok());
  const DecisionTree& tree = *result->tree;
  const int age = data->schema().FindAttr("age");
  // Root and its internal child must both split on age near 40 / 60.
  const SplitTest& root_test = tree.node(tree.root()).split;
  EXPECT_EQ(root_test.attr, age);
  const float t0 = root_test.threshold;
  EXPECT_TRUE((t0 > 39.0f && t0 < 41.0f) || (t0 > 59.0f && t0 < 61.0f))
      << t0;
}

TEST(SerialBuilderTest, AllFunctionsReachPerfectTrainingAccuracy) {
  for (int f = 1; f <= 10; ++f) {
    SyntheticConfig cfg;
    cfg.function = f;
    cfg.num_tuples = 1500;
    cfg.seed = 100 + f;
    auto data = GenerateSynthetic(cfg);
    ASSERT_TRUE(data.ok());
    auto result = TrainSerial(*data);
    ASSERT_TRUE(result.ok()) << "function " << f << ": "
                             << result.status().ToString();
    EXPECT_DOUBLE_EQ(TreeAccuracy(*result->tree, *data), 1.0)
        << "function " << f;
  }
}

TEST(SerialBuilderTest, PosixEnvMatchesMemEnv) {
  SyntheticConfig cfg;
  cfg.function = 2;
  cfg.num_tuples = 3000;
  cfg.num_attrs = 12;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());

  ClassifierOptions mem_options;  // default MemEnv
  auto mem = TrainSerial(*data, mem_options);
  ASSERT_TRUE(mem.ok());

  ClassifierOptions posix_options;
  posix_options.build.env = Env::Posix();
  auto posix = TrainSerial(*data, posix_options);
  ASSERT_TRUE(posix.ok()) << posix.status().ToString();

  EXPECT_EQ(mem->tree->num_nodes(), posix->tree->num_nodes());
  for (int64_t t = 0; t < data->num_tuples(); t += 7) {
    EXPECT_EQ(mem->tree->Classify(*data, t), posix->tree->Classify(*data, t));
  }
}

TEST(SerialBuilderTest, StatsArepopulated) {
  SyntheticConfig cfg;
  cfg.function = 1;
  cfg.num_tuples = 1000;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  auto result = TrainSerial(*data);
  ASSERT_TRUE(result.ok());
  const TrainStats& stats = result->stats;
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GE(stats.build_seconds, 0.0);
  EXPECT_GT(stats.records_read, 0u);
  EXPECT_GT(stats.records_written, 0u);
  EXPECT_GT(stats.tree.num_nodes, 1);
  EXPECT_GE(stats.tree.levels, 2);
}

TEST(SerialBuilderTest, RejectsCardinalityOverLimit) {
  Schema s;
  s.AddCategorical("huge", 5000);  // > kMaxCategoricalCardinality
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  v[0].cat = 0;
  ASSERT_TRUE(data.Append(v, 0).ok());
  v[0].cat = 4999;
  ASSERT_TRUE(data.Append(v, 1).ok());
  EXPECT_TRUE(TrainSerial(data).status().IsNotSupported());
}

TEST(SerialBuilderTest, LearnsLargeCardinalitySubset) {
  // 100-value categorical domain (> 64 forces BigSubset tests): even codes
  // are class A. The greedy large-domain search must separate them exactly.
  Schema s;
  s.AddCategorical("sku", 100);
  s.SetClassNames({"A", "B"});
  Dataset data(s);
  TupleValues v(1);
  for (int i = 0; i < 1000; ++i) {
    v[0].cat = (i * 37) % 100;
    ASSERT_TRUE(data.Append(v, v[0].cat % 2 == 0 ? 0 : 1).ok());
  }
  auto result = TrainSerial(data);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const DecisionTree& tree = *result->tree;
  EXPECT_EQ(tree.num_nodes(), 3);
  const SplitTest& test = tree.node(tree.root()).split;
  ASSERT_TRUE(test.categorical);
  ASSERT_NE(test.big_subset, nullptr);
  // Every even code on one side, every odd on the other.
  const bool evens_left = test.SubsetContains(0);
  for (int code = 0; code < 100; ++code) {
    EXPECT_EQ(test.SubsetContains(code), (code % 2 == 0) == evens_left)
        << code;
  }
  EXPECT_DOUBLE_EQ(TreeAccuracy(tree, data), 1.0);
}

TEST(SerialBuilderTest, ValidatesOptions) {
  SyntheticConfig cfg;
  cfg.num_tuples = 10;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  ClassifierOptions options;
  options.build.num_threads = 0;
  EXPECT_TRUE(TrainClassifier(*data, options).status().IsInvalidArgument());
  options.build.num_threads = 1;
  options.build.window = 0;
  EXPECT_TRUE(TrainClassifier(*data, options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace smptree
