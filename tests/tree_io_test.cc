#include "core/tree_io.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/classifier.h"
#include "data/synthetic.h"

namespace smptree {
namespace {

Schema CarSchema() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("car", 3);
  s.SetClassNames({"high", "low"});
  return s;
}

ClassHistogram Hist(int64_t a, int64_t b) {
  ClassHistogram h(2);
  h.Add(0, a);
  h.Add(1, b);
  return h;
}

DecisionTree SmallTree() {
  DecisionTree tree(CarSchema());
  const NodeId root = tree.CreateRoot(Hist(3, 3));
  SplitTest t;
  t.attr = 0;
  t.threshold = 27.5f;
  tree.SetSplit(root, t);
  tree.AddChild(root, true, Hist(3, 0));
  const NodeId right = tree.AddChild(root, false, Hist(0, 3));
  SplitTest c;
  c.attr = 1;
  c.categorical = true;
  c.subset = 0b101;
  tree.SetSplit(right, c);
  tree.AddChild(right, true, Hist(0, 1));
  tree.AddChild(right, false, Hist(0, 2));
  return tree;
}

TEST(TreeIoTest, RoundTripSmallTree) {
  DecisionTree tree = SmallTree();
  const std::string text = SerializeTree(tree);
  auto parsed = DeserializeTree(CarSchema(), text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreesEqual(tree, *parsed));
}

TEST(TreeIoTest, RoundTripPreservesExactThreshold) {
  DecisionTree tree(CarSchema());
  tree.CreateRoot(Hist(1, 1));
  SplitTest t;
  t.attr = 0;
  t.threshold = 0.1f;  // not exactly representable in decimal
  tree.SetSplit(tree.root(), t);
  tree.AddChild(tree.root(), true, Hist(1, 0));
  tree.AddChild(tree.root(), false, Hist(0, 1));
  auto parsed = DeserializeTree(CarSchema(), SerializeTree(tree));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->node(0).split.threshold, 0.1f);  // bit-exact
}

TEST(TreeIoTest, RoundTripSingleLeaf) {
  DecisionTree tree(CarSchema());
  tree.CreateRoot(Hist(0, 9));
  auto parsed = DeserializeTree(CarSchema(), SerializeTree(tree));
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(TreesEqual(tree, *parsed));
  EXPECT_EQ(parsed->node(0).majority, 1);
}

TEST(TreeIoTest, RoundTripTrainedTree) {
  SyntheticConfig cfg;
  cfg.function = 2;
  cfg.num_tuples = 2000;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  ClassifierOptions options;
  auto trained = TrainClassifier(*data, options);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  auto parsed =
      DeserializeTree(data->schema(), SerializeTree(*trained->tree));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreesEqual(*trained->tree, *parsed));
  // Classification behaviour must survive the round trip.
  for (int64_t t = 0; t < 200; ++t) {
    EXPECT_EQ(trained->tree->Classify(*data, t), parsed->Classify(*data, t));
  }
}

// The serving path depends on deserialization being exact for every shape
// a trained-then-pruned model can take; the next few tests pin the edge
// cases down one by one.

TEST(TreeIoTest, RoundTripBigSubsetSplit) {
  // Categorical cardinality > 64 forces the BigSubset bit-mask path.
  Schema schema;
  schema.AddCategorical("zip", 100);
  schema.SetClassNames({"yes", "no"});
  DecisionTree tree(schema);
  const NodeId root = tree.CreateRoot(Hist(4, 4));
  SplitTest t;
  t.attr = 0;
  t.categorical = true;
  auto words = std::make_shared<std::vector<uint64_t>>(2, 0);
  (*words)[0] = 0x8000000000000001ull;  // codes 0 and 63
  (*words)[1] = 0x1ull << 35;           // code 99
  t.big_subset = BigSubset(std::move(words));
  tree.SetSplit(root, t);
  tree.AddChild(root, true, Hist(4, 0));
  tree.AddChild(root, false, Hist(0, 4));

  auto parsed = DeserializeTree(schema, SerializeTree(tree));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreesEqual(tree, *parsed));
  const SplitTest& round = parsed->node(0).split;
  ASSERT_NE(round.big_subset, nullptr);
  EXPECT_TRUE(round.SubsetContains(0));
  EXPECT_TRUE(round.SubsetContains(63));
  EXPECT_TRUE(round.SubsetContains(99));
  EXPECT_FALSE(round.SubsetContains(1));
  EXPECT_FALSE(round.SubsetContains(64));
}

TEST(TreeIoTest, RoundTripCollapsedSubtree) {
  // MakeLeaf + CompactAfterPrune is what pruning leaves behind: a node
  // that used to be internal, now a leaf, with the orphans compacted away.
  DecisionTree tree = SmallTree();
  tree.MakeLeaf(tree.node(tree.root()).right);
  tree.CompactAfterPrune();
  ASSERT_EQ(tree.num_nodes(), 3);
  auto parsed = DeserializeTree(CarSchema(), SerializeTree(tree));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreesEqual(tree, *parsed));
  EXPECT_TRUE(parsed->Validate().ok());
  EXPECT_TRUE(parsed->node(parsed->node(0).right).is_leaf());
}

TEST(TreeIoTest, RoundTripPrunedTrainedTree) {
  // End-to-end: noisy training data + cost-complexity pruning produces a
  // tree with collapsed subtrees; the round trip must stay bit-identical
  // in both structure and behaviour.
  SyntheticConfig cfg;
  cfg.function = 2;
  cfg.num_tuples = 1500;
  cfg.label_noise = 0.08;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  ClassifierOptions options;
  options.prune.method = PruneOptions::Method::kCostComplexity;
  auto trained = TrainClassifier(*data, options);
  ASSERT_TRUE(trained.ok()) << trained.status().ToString();
  ASSERT_GT(trained->stats.nodes_pruned, 0) << "test needs a pruned tree";
  auto parsed =
      DeserializeTree(data->schema(), SerializeTree(*trained->tree));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(TreesEqual(*trained->tree, *parsed));
  EXPECT_TRUE(parsed->Validate().ok());
  for (int64_t t = 0; t < data->num_tuples(); ++t) {
    ASSERT_EQ(trained->tree->Classify(*data, t), parsed->Classify(*data, t));
  }
}

TEST(TreeIoTest, RoundTripExtremeThresholds) {
  // Denormals, the missing-value sentinel (lowest float), and negative
  // zero all serialize as raw bits; parsing must reproduce them exactly.
  for (const float threshold :
       {1e-42f, kMissingValue, -0.0f, 3.4028235e+38f}) {
    DecisionTree tree(CarSchema());
    tree.CreateRoot(Hist(1, 1));
    SplitTest t;
    t.attr = 0;
    t.threshold = threshold;
    tree.SetSplit(tree.root(), t);
    tree.AddChild(tree.root(), true, Hist(1, 0));
    tree.AddChild(tree.root(), false, Hist(0, 1));
    auto parsed = DeserializeTree(CarSchema(), SerializeTree(tree));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const float round = parsed->node(0).split.threshold;
    EXPECT_EQ(std::memcmp(&round, &threshold, sizeof(float)), 0)
        << "threshold " << threshold << " not bit-exact";
  }
}

TEST(TreeIoTest, RejectsGarbage) {
  EXPECT_FALSE(DeserializeTree(CarSchema(), "").ok());
  EXPECT_FALSE(DeserializeTree(CarSchema(), "not a tree\n").ok());
  EXPECT_FALSE(
      DeserializeTree(CarSchema(), "tree v1 classes=2 nodes=0\n").ok());
}

TEST(TreeIoTest, RejectsTruncatedBody) {
  DecisionTree tree = SmallTree();
  std::string text = SerializeTree(tree);
  text.resize(text.size() - 30);  // drop the last leaf line(s)
  EXPECT_FALSE(DeserializeTree(CarSchema(), text).ok());
}

TEST(TreeIoTest, RejectsCountArityMismatch) {
  Schema three = CarSchema();
  three.SetClassNames({"a", "b", "c"});
  DecisionTree tree = SmallTree();
  EXPECT_FALSE(DeserializeTree(three, SerializeTree(tree)).ok());
}

TEST(TreesEqualTest, DetectsDifferences) {
  DecisionTree a = SmallTree();
  DecisionTree b = SmallTree();
  EXPECT_TRUE(TreesEqual(a, b));
  SplitTest changed;
  changed.attr = 0;
  changed.threshold = 99.0f;
  b.SetSplit(b.root(), changed);
  EXPECT_FALSE(TreesEqual(a, b));
}

TEST(TreesEqualTest, DetectsShapeDifference) {
  DecisionTree a = SmallTree();
  DecisionTree b = SmallTree();
  b.MakeLeaf(b.node(b.root()).right);
  b.CompactAfterPrune();
  EXPECT_FALSE(TreesEqual(a, b));
}

}  // namespace
}  // namespace smptree
