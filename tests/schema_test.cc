#include "data/schema.h"

#include <gtest/gtest.h>

namespace smptree {
namespace {

Schema TwoClassSchema() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("car", 20);
  s.SetClassNames({"A", "B"});
  return s;
}

TEST(SchemaTest, AddReturnsIndices) {
  Schema s;
  EXPECT_EQ(s.AddContinuous("a"), 0);
  EXPECT_EQ(s.AddCategorical("b", 3), 1);
  EXPECT_EQ(s.num_attrs(), 2);
}

TEST(SchemaTest, AttributeMetadata) {
  Schema s = TwoClassSchema();
  EXPECT_EQ(s.attr(0).name, "age");
  EXPECT_FALSE(s.attr(0).is_categorical());
  EXPECT_TRUE(s.attr(1).is_categorical());
  EXPECT_EQ(s.attr(1).cardinality, 20);
}

TEST(SchemaTest, FindAttr) {
  Schema s = TwoClassSchema();
  EXPECT_EQ(s.FindAttr("car"), 1);
  EXPECT_EQ(s.FindAttr("missing"), -1);
}

TEST(SchemaTest, ClassNames) {
  Schema s = TwoClassSchema();
  EXPECT_EQ(s.num_classes(), 2);
  EXPECT_EQ(s.class_name(1), "B");
}

TEST(SchemaTest, ValidateAcceptsGood) {
  EXPECT_TRUE(TwoClassSchema().Validate().ok());
}

TEST(SchemaTest, ValidateRejectsEmpty) {
  Schema s;
  s.SetClassNames({"A", "B"});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsOneClass) {
  Schema s;
  s.AddContinuous("x");
  s.SetClassNames({"only"});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsZeroCardinality) {
  Schema s;
  s.AddCategorical("bad", 0);
  s.SetClassNames({"A", "B"});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsValueNameArityMismatch) {
  Schema s;
  s.AddCategorical("c", 3, {"x", "y"});
  s.SetClassNames({"A", "B"});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

TEST(SchemaTest, ValidateRejectsUnnamedAttr) {
  Schema s;
  s.AddContinuous("");
  s.SetClassNames({"A", "B"});
  EXPECT_TRUE(s.Validate().IsInvalidArgument());
}

}  // namespace
}  // namespace smptree
