#include "data/csv.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace smptree {
namespace {

Schema SmallSchema() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("car", 3, {"sedan", "sports", "truck"});
  s.SetClassNames({"yes", "no"});
  return s;
}

Dataset SmallData() {
  Dataset d(SmallSchema());
  TupleValues v(2);
  v[0].f = 23.5f;
  v[1].cat = 1;
  EXPECT_TRUE(d.Append(v, 0).ok());
  v[0].f = 68.0f;
  v[1].cat = 2;
  EXPECT_TRUE(d.Append(v, 1).ok());
  return d;
}

TEST(CsvTest, EmitsHeaderAndNames) {
  const std::string csv = ToCsvString(SmallData());
  EXPECT_NE(csv.find("age,car,class"), std::string::npos);
  EXPECT_NE(csv.find("sports"), std::string::npos);
  EXPECT_NE(csv.find("yes"), std::string::npos);
}

TEST(CsvTest, RoundTrip) {
  const Dataset original = SmallData();
  auto parsed = FromCsvString(SmallSchema(), ToCsvString(original));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_tuples(), original.num_tuples());
  for (int64_t t = 0; t < original.num_tuples(); ++t) {
    EXPECT_EQ(parsed->value(t, 0).f, original.value(t, 0).f);
    EXPECT_EQ(parsed->value(t, 1).cat, original.value(t, 1).cat);
    EXPECT_EQ(parsed->label(t), original.label(t));
  }
}

TEST(CsvTest, RoundTripSyntheticSample) {
  SyntheticConfig cfg;
  cfg.function = 3;
  cfg.num_tuples = 50;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  auto parsed = FromCsvString(data->schema(), ToCsvString(*data));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->num_tuples(), 50);
  for (int64_t t = 0; t < 50; ++t) {
    EXPECT_EQ(parsed->label(t), data->label(t));
  }
}

TEST(CsvTest, AcceptsNumericCodesWithoutNames) {
  Schema s;
  s.AddCategorical("c", 4);  // no value names
  s.SetClassNames({"A", "B"});
  auto parsed = FromCsvString(s, "c,class\n2,B\n0,A\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->value(0, 0).cat, 2);
  EXPECT_EQ(parsed->label(1), 0);
}

TEST(CsvTest, AcceptsNumericClassLabels) {
  auto parsed = FromCsvString(SmallSchema(), "age,car,class\n5,0,1\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->label(0), 1);
}

TEST(CsvTest, SkipsBlankLines) {
  auto parsed =
      FromCsvString(SmallSchema(), "age,car,class\n\n5,sedan,yes\n\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_tuples(), 1);
}

TEST(CsvTest, RejectsBadHeader) {
  EXPECT_TRUE(FromCsvString(SmallSchema(), "wrong,car,class\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(FromCsvString(SmallSchema(), "age,class\n").status().IsCorruption());
}

TEST(CsvTest, RejectsBadValues) {
  EXPECT_TRUE(FromCsvString(SmallSchema(), "age,car,class\nxx,sedan,yes\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(FromCsvString(SmallSchema(), "age,car,class\n5,helicopter,yes\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(FromCsvString(SmallSchema(), "age,car,class\n5,sedan,maybe\n")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(FromCsvString(SmallSchema(), "age,car,class\n5,sedan\n")
                  .status()
                  .IsCorruption());
}

TEST(CsvTest, RejectsEmptyInput) {
  EXPECT_TRUE(FromCsvString(SmallSchema(), "").status().IsCorruption());
}

TEST(CsvTest, FileRoundTrip) {
  const std::string path =
      "/tmp/smptree_csv_test_" + std::to_string(::getpid()) + ".csv";
  const Dataset original = SmallData();
  ASSERT_TRUE(WriteCsv(original, path).ok());
  auto parsed = ReadCsv(SmallSchema(), path);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->num_tuples(), original.num_tuples());
  ::unlink(path.c_str());
}

}  // namespace
}  // namespace smptree
