#include "core/sql_export.h"

#include <gtest/gtest.h>

#include "core/classifier.h"
#include "data/synthetic.h"

namespace smptree {
namespace {

Schema CarSchema() {
  Schema s;
  s.AddContinuous("age");
  s.AddCategorical("car", 3, {"sedan", "sports", "truck"});
  s.SetClassNames({"high", "low"});
  return s;
}

ClassHistogram Hist(int64_t a, int64_t b) {
  ClassHistogram h(2);
  h.Add(0, a);
  h.Add(1, b);
  return h;
}

DecisionTree CarTree() {
  DecisionTree tree(CarSchema());
  const NodeId root = tree.CreateRoot(Hist(3, 3));
  SplitTest t;
  t.attr = 0;
  t.threshold = 27.5f;
  tree.SetSplit(root, t);
  tree.AddChild(root, true, Hist(2, 0));
  const NodeId right = tree.AddChild(root, false, Hist(1, 3));
  SplitTest c;
  c.attr = 1;
  c.categorical = true;
  c.subset = 0b010;
  tree.SetSplit(right, c);
  tree.AddChild(right, true, Hist(1, 0));
  tree.AddChild(right, false, Hist(0, 3));
  return tree;
}

TEST(SqlExportTest, CaseContainsAllPathPredicates) {
  const std::string sql = TreeToSqlCase(CarTree());
  EXPECT_NE(sql.find("CASE"), std::string::npos);
  EXPECT_NE(sql.find("age < 27.5"), std::string::npos);
  EXPECT_NE(sql.find("age >= 27.5"), std::string::npos);
  EXPECT_NE(sql.find("car IN ('sports')"), std::string::npos);
  EXPECT_NE(sql.find("car NOT IN ('sports')"), std::string::npos);
  EXPECT_NE(sql.find("'high'"), std::string::npos);
  EXPECT_NE(sql.find("'low'"), std::string::npos);
  EXPECT_NE(sql.find("END"), std::string::npos);
}

TEST(SqlExportTest, SelectsOnePerClass) {
  const auto selects = TreeToSqlSelects(CarTree());
  ASSERT_EQ(selects.size(), 2u);
  EXPECT_NE(selects[0].find("SELECT * FROM training_data WHERE"),
            std::string::npos);
  // 'high' leaves: young OR (old AND sports).
  EXPECT_NE(selects[0].find("(age < 27.5)"), std::string::npos);
  EXPECT_NE(selects[0].find("OR"), std::string::npos);
  // 'low' leaf: old AND not sports.
  EXPECT_NE(selects[1].find("AND"), std::string::npos);
}

TEST(SqlExportTest, CustomTableAndLowercase) {
  SqlOptions options;
  options.table = "customers";
  options.uppercase_keywords = false;
  const auto selects = TreeToSqlSelects(CarTree(), options);
  EXPECT_NE(selects[0].find("select * from customers where"),
            std::string::npos);
  EXPECT_EQ(selects[0].find("SELECT"), std::string::npos);
}

TEST(SqlExportTest, SingleLeafTreeUsesTrue) {
  DecisionTree tree(CarSchema());
  tree.CreateRoot(Hist(5, 0));
  const auto selects = TreeToSqlSelects(tree);
  EXPECT_NE(selects[0].find("TRUE"), std::string::npos);
  EXPECT_NE(selects[1].find("1 = 0"), std::string::npos);  // class with no leaf
}

TEST(SqlExportTest, PredicatesPartitionTheData) {
  // Every tuple must satisfy exactly one class's disjunction -- checked by
  // evaluating the predicates through the tree itself on synthetic data.
  SyntheticConfig cfg;
  cfg.function = 1;
  cfg.num_tuples = 500;
  auto data = GenerateSynthetic(cfg);
  ASSERT_TRUE(data.ok());
  ClassifierOptions options;
  auto trained = TrainClassifier(*data, options);
  ASSERT_TRUE(trained.ok());
  const auto selects = TreeToSqlSelects(*trained->tree);
  EXPECT_EQ(selects.size(), 2u);
  // The CASE expression must mention every attribute used in the tree.
  const std::string sql = TreeToSqlCase(*trained->tree);
  EXPECT_NE(sql.find("age"), std::string::npos);
}

}  // namespace
}  // namespace smptree
