#include "stream/sketch_quantizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/schema.h"

namespace smptree {
namespace {

Schema MixedSchema() {
  Schema s;
  s.AddContinuous("x");
  s.AddCategorical("color", 3, {"red", "green", "blue"});
  s.AddContinuous("y");
  s.SetClassNames({"a", "b"});
  return s;
}

TupleValues Tuple(float x, int32_t color, float y) {
  TupleValues v(3);
  v[0].f = x;
  v[1].cat = color;
  v[2].f = y;
  return v;
}

TEST(SketchQuantizerTest, InitValidatesOptions) {
  SketchQuantizer q;
  SketchQuantizer::Options bad;
  bad.max_bins = 1;
  EXPECT_FALSE(q.Init(MixedSchema(), bad).ok());
  bad.max_bins = 257;
  EXPECT_FALSE(q.Init(MixedSchema(), bad).ok());
  bad.max_bins = 64;
  bad.reservoir_size = 8;  // smaller than max_bins
  EXPECT_FALSE(q.Init(MixedSchema(), bad).ok());

  Schema wide;
  wide.AddCategorical("huge", 300, {});
  wide.SetClassNames({"a", "b"});
  EXPECT_FALSE(q.Init(wide, SketchQuantizer::Options()).ok());

  ASSERT_TRUE(q.Init(MixedSchema(), SketchQuantizer::Options()).ok());
}

TEST(SketchQuantizerTest, FreezeRequiresInitAndIsIdempotent) {
  SketchQuantizer q;
  EXPECT_FALSE(q.Freeze().ok());
  ASSERT_TRUE(q.Init(MixedSchema(), SketchQuantizer::Options()).ok());
  q.Observe(Tuple(1.0f, 0, 2.0f));
  ASSERT_TRUE(q.Freeze().ok());
  EXPECT_TRUE(q.frozen());
  const int bins = q.total_bins();
  ASSERT_TRUE(q.Freeze().ok());
  EXPECT_EQ(q.total_bins(), bins);
}

TEST(SketchQuantizerTest, BinInvariantHoldsOnEveryCut) {
  SketchQuantizer q;
  SketchQuantizer::Options opts;
  opts.max_bins = 8;
  opts.reservoir_size = 64;
  ASSERT_TRUE(q.Init(MixedSchema(), opts).ok());
  for (int i = 0; i < 1000; ++i) {
    q.Observe(Tuple(static_cast<float>(i % 97), i % 3,
                    static_cast<float>((i * 7) % 31)));
  }
  ASSERT_TRUE(q.Freeze().ok());

  for (int attr : {0, 2}) {
    ASSERT_GE(q.num_cuts(attr), 1);
    EXPECT_EQ(q.num_bins(attr), q.num_cuts(attr) + 1);
    for (int i = 0; i < q.num_cuts(attr); ++i) {
      if (i > 0) {
        EXPECT_LT(q.cut(attr, i - 1), q.cut(attr, i));
      }
      // bin(v) = #{cuts <= v}: a cut value itself lands in the bin above it.
      AttrValue at_cut, below;
      at_cut.f = q.cut(attr, i);
      below.f = std::nextafter(q.cut(attr, i), -1e30f);
      EXPECT_EQ(q.BinOf(attr, at_cut), i + 1);
      EXPECT_EQ(q.BinOf(attr, below), i);
    }
  }
}

TEST(SketchQuantizerTest, CategoricalBinsAreCodes) {
  SketchQuantizer q;
  ASSERT_TRUE(q.Init(MixedSchema(), SketchQuantizer::Options()).ok());
  q.Observe(Tuple(0.0f, 2, 0.0f));
  ASSERT_TRUE(q.Freeze().ok());
  EXPECT_TRUE(q.categorical(1));
  EXPECT_EQ(q.num_bins(1), 3);
  for (int32_t code = 0; code < 3; ++code) {
    AttrValue v;
    v.cat = code;
    EXPECT_EQ(q.BinOf(1, v), code);
  }
}

TEST(SketchQuantizerTest, OffsetsTileTheFlatBinSpace) {
  SketchQuantizer q;
  ASSERT_TRUE(q.Init(MixedSchema(), SketchQuantizer::Options()).ok());
  for (int i = 0; i < 500; ++i) {
    q.Observe(Tuple(static_cast<float>(i), i % 3, static_cast<float>(-i)));
  }
  ASSERT_TRUE(q.Freeze().ok());
  int expect_offset = 0;
  for (int a = 0; a < q.num_attrs(); ++a) {
    EXPECT_EQ(q.offset(a), expect_offset);
    expect_offset += q.num_bins(a);
  }
  EXPECT_EQ(q.total_bins(), expect_offset);
}

TEST(SketchQuantizerTest, QuantileCutsTrackTheDistribution) {
  Schema s;
  s.AddContinuous("u");
  s.SetClassNames({"a", "b"});
  SketchQuantizer q;
  SketchQuantizer::Options opts;
  opts.max_bins = 4;
  opts.reservoir_size = 4096;
  ASSERT_TRUE(q.Init(s, opts).ok());
  // Feed 0..4095 in order; the reservoir holds all of them, so cuts are the
  // exact quartiles of the input.
  for (int i = 0; i < 4096; ++i) {
    TupleValues v(1);
    v[0].f = static_cast<float>(i);
    q.Observe(v);
  }
  ASSERT_TRUE(q.Freeze().ok());
  ASSERT_EQ(q.num_cuts(0), 3);
  EXPECT_NEAR(q.cut(0, 0), 1024.0f, 1.0f);
  EXPECT_NEAR(q.cut(0, 1), 2048.0f, 1.0f);
  EXPECT_NEAR(q.cut(0, 2), 3072.0f, 1.0f);
}

TEST(SketchQuantizerTest, EmptyReservoirYieldsSingleBin) {
  Schema s;
  s.AddContinuous("never");
  s.SetClassNames({"a", "b"});
  SketchQuantizer q;
  ASSERT_TRUE(q.Init(s, SketchQuantizer::Options()).ok());
  ASSERT_TRUE(q.Freeze().ok());
  EXPECT_EQ(q.num_cuts(0), 0);
  EXPECT_EQ(q.num_bins(0), 1);
  AttrValue v;
  v.f = 123.0f;
  EXPECT_EQ(q.BinOf(0, v), 0);
}

TEST(SketchQuantizerTest, FreezeReleasesReservoirMemory) {
  SketchQuantizer q;
  SketchQuantizer::Options opts;
  opts.reservoir_size = 4096;
  ASSERT_TRUE(q.Init(MixedSchema(), opts).ok());
  for (int i = 0; i < 10000; ++i) {
    q.Observe(Tuple(static_cast<float>(i), 0, static_cast<float>(i * 2)));
  }
  const uint64_t before = q.MemoryBytes();
  ASSERT_TRUE(q.Freeze().ok());
  EXPECT_LT(q.MemoryBytes(), before / 4);
  EXPECT_EQ(q.observed(), 10000);
}

}  // namespace
}  // namespace smptree
