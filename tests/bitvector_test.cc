#include "util/bitvector.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace smptree {
namespace {

TEST(BitVectorTest, StartsCleared) {
  BitVector bits(130);
  EXPECT_EQ(bits.size(), 130u);
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Get(i));
  EXPECT_EQ(bits.CountOnes(), 0u);
}

TEST(BitVectorTest, SetAndClearSingleBits) {
  BitVector bits(100);
  bits.Set(0, true);
  bits.Set(63, true);
  bits.Set(64, true);
  bits.Set(99, true);
  EXPECT_TRUE(bits.Get(0));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_TRUE(bits.Get(64));
  EXPECT_TRUE(bits.Get(99));
  EXPECT_FALSE(bits.Get(1));
  EXPECT_EQ(bits.CountOnes(), 4u);
  bits.Set(63, false);
  EXPECT_FALSE(bits.Get(63));
  EXPECT_EQ(bits.CountOnes(), 3u);
}

TEST(BitVectorTest, ClearResetsEverything) {
  BitVector bits(77);
  for (size_t i = 0; i < 77; i += 3) bits.Set(i, true);
  bits.Clear();
  EXPECT_EQ(bits.CountOnes(), 0u);
}

TEST(BitVectorTest, ResizePreservesPrefix) {
  BitVector bits(64);
  bits.Set(10, true);
  bits.Set(63, true);
  bits.Resize(256);
  EXPECT_TRUE(bits.Get(10));
  EXPECT_TRUE(bits.Get(63));
  EXPECT_FALSE(bits.Get(200));
  EXPECT_EQ(bits.CountOnes(), 2u);
}

TEST(BitVectorTest, ResizeDownMasksStrayBits) {
  BitVector bits(128);
  for (size_t i = 0; i < 128; ++i) bits.Set(i, true);
  bits.Resize(70);
  EXPECT_EQ(bits.size(), 70u);
  EXPECT_EQ(bits.CountOnes(), 70u);
}

TEST(BitVectorTest, ConcurrentSettersOnSharedWords) {
  // Tids from different leaves can share a word; atomic RMW must not lose
  // updates. 8 threads each own bits i where i % 8 == t.
  const size_t n = 8000;
  BitVector bits(n);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&bits, t] {
      for (size_t i = t; i < n; i += 8) bits.Set(i, true);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bits.CountOnes(), n);
}

}  // namespace
}  // namespace smptree
